//! The probe hot path: the incremental `CoreSums` kernel against the
//! `UtilTable` + `WithTask` + `Theorem1::compute` reference it replaces,
//! and the engine-based CA-TPA against the pre-optimization reference loop
//! (`ReferenceCatpa`). These are the microbenchmarks behind the speedups
//! `mcs-exp perf` reports end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcs_analysis::{CoreSums, TaskRow, Theorem1};
use mcs_bench::{default_fixture, fixture};
use mcs_model::{UtilTable, WithTask};
use mcs_partition::{Catpa, Partitioner, ReferenceCatpa};

fn bench_single_probe(c: &mut Criterion) {
    // Half the fixture resident on a "core", the other half probed against
    // it — the inner operation every placement loop performs N·M times.
    let ts = default_fixture(3);
    let tasks = ts.tasks();
    let (resident, probed) = tasks.split_at(tasks.len() / 2);

    let table = UtilTable::from_tasks(ts.num_levels(), resident);
    let mut sums = CoreSums::new(ts.num_levels());
    for t in resident {
        sums.add(&TaskRow::new(t));
    }
    let rows: Vec<TaskRow> = probed.iter().map(TaskRow::new).collect();

    let mut group = c.benchmark_group("single_probe");
    group.bench_function("reference_withtask_theorem1", |b| {
        b.iter(|| {
            for t in probed {
                let probe = Theorem1::compute(&WithTask::new(&table, t));
                black_box(probe.core_utilization());
            }
        });
    });
    group.bench_function("engine_coresums_kernel", |b| {
        b.iter(|| {
            for row in &rows {
                black_box(sums.probe(row).core_utilization());
            }
        });
    });
    group.bench_function("engine_fused_verdict", |b| {
        b.iter(|| {
            for row in &rows {
                black_box(sums.probe_verdict(row).core_utilization);
            }
        });
    });
    group.finish();
}

fn bench_catpa_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("catpa_probe_path");
    for (label, n, m) in [("n120_m8", 120usize, 8usize), ("n400_m8", 400, 8)] {
        let ts = fixture(n, m, 4, 0.5, 11);
        group.bench_function(format!("reference_{label}").as_str(), |b| {
            let reference = ReferenceCatpa::default();
            b.iter(|| black_box(reference.partition(&ts, m)));
        });
        group.bench_function(format!("engine_{label}").as_str(), |b| {
            let catpa = Catpa::default();
            b.iter(|| black_box(catpa.partition(&ts, m)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_probe, bench_catpa_end_to_end);
criterion_main!(benches);
