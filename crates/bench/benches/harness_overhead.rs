//! Harness dispatch overhead: what does routing a sweep through the
//! `mcs-harness` trial runner cost per trial, relative to the bare inline
//! loop every experiment command used before the refactor?
//!
//! Three views on a fixed 32-trial batch at the paper's default generator
//! point:
//!
//! * `inline_loop` — seed derivation + generation + all paper schemes +
//!   quality summaries, in a plain `for` loop (the pre-harness shape);
//! * `trial_runner` — the identical work through `run_point` at one
//!   thread (runner scheduling + record building + trial-order fold);
//! * `runner_dispatch_empty` — the runner driving an empty trial body,
//!   isolating the pure dispatch cost floor.
//!
//! `mcs-exp perf` times the same inline-vs-runner pair end to end and
//! records it into `BENCH_partition.json`; this bench is the
//! statistically-sampled version of that number.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcs_exp::sweep::{run_point, SweepConfig};
use mcs_gen::{generate_task_set, trial_seed, GenParams};
use mcs_harness::{RunConfig, RunSession, SchemeFlags, SchemeRegistry, PAPER_SET};
use mcs_partition::{PartitionQuality, Partitioner, QualityScratch};

const TRIALS: usize = 32;
const SEED: u64 = 0x5EED;

fn bench_harness_overhead(c: &mut Criterion) {
    let params = GenParams::default();
    let schemes: Vec<Box<dyn Partitioner + Send + Sync>> =
        SchemeRegistry::standard().build_set(&PAPER_SET, &SchemeFlags::default());

    let mut group = c.benchmark_group("harness_overhead");

    group.bench_function("inline_loop", |b| {
        let mut quality = QualityScratch::new();
        b.iter(|| {
            for i in 0..TRIALS {
                let ts = generate_task_set(&params, trial_seed(SEED, i));
                for scheme in &schemes {
                    if let Ok(partition) = scheme.partition(&ts, params.cores) {
                        black_box(
                            PartitionQuality::summarize(&ts, &partition, &mut quality).is_some(),
                        );
                    }
                }
            }
        });
    });

    group.bench_function("trial_runner", |b| {
        let config = SweepConfig { trials: TRIALS, threads: 1, seed: SEED };
        b.iter(|| black_box(run_point(&params, &schemes, &config)));
    });

    group.bench_function("runner_dispatch_empty", |b| {
        let config = RunConfig { trials: TRIALS, threads: 1, seed: SEED };
        b.iter(|| {
            let mut session = RunSession::new(config.clone());
            session.point("empty").run(
                || (),
                |_, trial| {
                    black_box(trial.seed);
                },
            );
        });
    });

    group.finish();
}

criterion_group!(benches, bench_harness_overhead);
criterion_main!(benches);
