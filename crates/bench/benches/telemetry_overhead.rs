//! Telemetry overhead on the probe hot path — the three cost tiers
//! DESIGN.md budgets: the raw `CoreSums` batch kernel (the
//! `telemetry-off` proxy, no instrumentation), the instrumented
//! `ProbeEngine::probe_all_cores` with counters only (tally cells + the
//! span-timing gate, the default), and the same with span timing enabled
//! (two `Instant` reads + a histogram record per batch). The counters-only
//! arm must stay within ~2% of the raw kernel (the `mcs-exp perf`
//! `telemetry_probe_overhead_pct` figure tracks the same bound end to
//! end).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcs_analysis::{CoreSums, TaskRow};
use mcs_bench::fixture;
use mcs_model::TaskSet;
use mcs_obs::{set_timing, Counter};
use mcs_partition::ProbeEngine;

const CORES: usize = 8;

/// Mid-placement state shared by every arm: tasks dealt round-robin, kept
/// only where the engine admits them, mirrored into raw `CoreSums`.
fn mid_placement(ts: &TaskSet) -> (ProbeEngine, Vec<CoreSums>) {
    let mut engine = ProbeEngine::new();
    engine.reset(ts, CORES);
    let mut sums = vec![CoreSums::new(ts.num_levels()); CORES];
    for (i, task) in ts.tasks().iter().enumerate() {
        let core = i % CORES;
        let v = engine.probe_verdict(core, task.id());
        if let (true, Some(util)) = (v.feasible(), v.core_utilization) {
            engine.commit(task.id(), core, util);
            sums[core].add(&TaskRow::new(task));
        }
    }
    (engine, sums)
}

fn bench_probe_batch_tiers(c: &mut Criterion) {
    let ts = fixture(120, CORES, 4, 0.5, 11);
    let rows: Vec<TaskRow> = ts.tasks().iter().map(TaskRow::new).collect();

    let mut group = c.benchmark_group("telemetry_probe_batch");
    group.bench_function("raw_kernel_compiled_out_proxy", |b| {
        let (_, sums) = mid_placement(&ts);
        b.iter(|| {
            for row in &rows {
                for core in &sums {
                    black_box(core.probe_verdict(row).feasible());
                }
            }
        });
    });
    group.bench_function("engine_counters_timing_off", |b| {
        let (mut engine, _) = mid_placement(&ts);
        set_timing(false);
        b.iter(|| {
            for task in ts.tasks() {
                let (verdicts, _) = engine.probe_all_cores(task.id());
                black_box(verdicts.len());
            }
        });
    });
    group.bench_function("engine_counters_timing_on", |b| {
        let (mut engine, _) = mid_placement(&ts);
        set_timing(true);
        b.iter(|| {
            for task in ts.tasks() {
                let (verdicts, _) = engine.probe_all_cores(task.id());
                black_box(verdicts.len());
            }
        });
        set_timing(false);
    });
    group.finish();
}

fn bench_telemetry_primitives(c: &mut Criterion) {
    c.bench_function("counter_sharded_add", |b| {
        b.iter(|| mcs_obs::counter!(Counter::EngineProbesIssued));
    });
    c.bench_function("span_timing_off", |b| {
        set_timing(false);
        b.iter(|| {
            let _timer = mcs_obs::span(mcs_obs::Phase::ProbeBatch);
        });
    });
    c.bench_function("span_timing_on", |b| {
        set_timing(true);
        b.iter(|| {
            let _timer = mcs_obs::span(mcs_obs::Phase::ProbeBatch);
        });
        set_timing(false);
    });
}

criterion_group!(benches, bench_probe_batch_tiers, bench_telemetry_primitives);
criterion_main!(benches);
