//! One benchmark group per paper artifact (Tables I–III, Figures 1–5): each
//! measures the kernel that regenerates that artifact — for tables, the
//! full worked-example trace; for figures, one Monte-Carlo trial (generate
//! one task set at the figure's representative parameter point and run all
//! five schemes on it). `mcs-exp figN --trials T` is exactly `T` such
//! kernels per x value.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mcs_exp::tables;
use mcs_gen::{generate_task_set, GenParams};
use mcs_partition::paper_schemes;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_contributions", |b| b.iter(|| black_box(tables::table1())));
    c.bench_function("table2_ffd_trace", |b| b.iter(|| black_box(tables::table2())));
    c.bench_function("table3_catpa_trace", |b| b.iter(|| black_box(tables::table3())));
}

/// One sweep trial at a parameter point: generate + run all five schemes.
fn trial(params: &GenParams, seed: u64) -> usize {
    let ts = generate_task_set(params, seed);
    paper_schemes().iter().filter(|s| s.partition(&ts, params.cores).is_ok()).count()
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_trial");
    // Representative x values: the schedulability transition of each sweep.
    let points: Vec<(&str, GenParams)> = vec![
        ("fig1_nsu_0.55", GenParams::default().with_nsu(0.55)),
        ("fig2_ifc_0.5", GenParams::default().with_ifc(0.5).with_nsu(0.5)),
        ("fig3_alpha_0.3", GenParams::default().with_nsu(0.55)),
        ("fig4_m32", GenParams::default().with_cores(32).with_nsu(0.55)),
        ("fig5_k6", GenParams::default().with_levels(6).with_nsu(0.4)),
    ];
    for (name, params) in points {
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(trial(p, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
