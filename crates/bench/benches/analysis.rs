//! Schedulability-test micro-benchmarks: the Theorem-1 evaluation is the
//! inner loop of every partitioner probe (called O(M·N) times per
//! partition), and the DBF extension's cost justifies the paper's remark
//! that \[20\]'s test has "much higher complexity".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mcs_analysis::{dbf::dbf_schedulable, dual_condition, simple_condition, Theorem1};
use mcs_bench::fixture;
use mcs_model::{McTask, UtilTable, WithTask};

fn bench_theorem1_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_compute");
    for k in [2u8, 3, 4, 6] {
        let ts = fixture(24, 1, k, 0.4, 3);
        let table = ts.util_table();
        group.bench_with_input(BenchmarkId::from_parameter(k), &table, |b, t| {
            b.iter(|| black_box(Theorem1::compute(t).core_utilization()));
        });
    }
    group.finish();
}

fn bench_probe_vs_rebuild(c: &mut Criterion) {
    // The zero-copy WithTask probe vs rebuilding the table per probe — the
    // design choice that keeps CA-TPA at O((M+N)·N).
    let ts = fixture(24, 1, 4, 0.4, 3);
    let table = ts.util_table();
    let extra = ts.tasks()[0].clone();
    c.bench_function("probe_with_task_view", |b| {
        b.iter(|| {
            let view = WithTask::new(&table, &extra);
            black_box(Theorem1::compute(&view).feasible())
        });
    });
    c.bench_function("probe_rebuild_table", |b| {
        b.iter(|| {
            let mut t = table.clone();
            t.add(&extra);
            black_box(Theorem1::compute(&t).feasible())
        });
    });
}

fn bench_test_hierarchy(c: &mut Criterion) {
    let ts = fixture(12, 1, 2, 0.6, 9);
    let table = UtilTable::from_tasks(2, ts.tasks().iter());
    let refs: Vec<&McTask> = ts.tasks().iter().collect();
    c.bench_function("eq4_simple_condition", |b| {
        b.iter(|| black_box(simple_condition(&table)));
    });
    c.bench_function("eq7_dual_condition", |b| {
        b.iter(|| black_box(dual_condition(&table).schedulable));
    });
    c.bench_function("dbf_demand_analysis", |b| {
        b.iter(|| black_box(dbf_schedulable(&refs).schedulable()));
    });
}

criterion_group!(benches, bench_theorem1_by_k, bench_probe_vs_rebuild, bench_test_hierarchy);
criterion_main!(benches);
