//! The batch Theorem-1 kernel against the scalar per-core probe loop it
//! replaces: one `batch_probe_verdicts` sweep over the struct-of-arrays
//! `CoreBank` versus M independent `CoreView::probe_verdict` calls, across
//! core counts from a workstation (8) to a rack (1024). The two paths are
//! bit-identical (asserted before timing); the benchmark measures the
//! layout + lane-parallel win alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mcs_analysis::{batch_probe_verdicts, CoreBank, TaskRow, TaskTable, Verdict};
use mcs_bench::fixture;
use mcs_model::TaskSet;

/// Deal the fixture round-robin into a bank and materialize probe rows.
fn dealt(ts: &TaskSet, cores: usize) -> (CoreBank, Vec<TaskRow>) {
    let mut table = TaskTable::new();
    table.reset(ts);
    let mut bank = CoreBank::new();
    bank.reset(ts.num_levels(), cores);
    let rows: Vec<TaskRow> = (0..table.len()).map(|i| table.row(i)).collect();
    for (i, row) in rows.iter().enumerate() {
        bank.add(i % cores, row);
    }
    (bank, rows)
}

fn opt_bits(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
        (None, None) => true,
        _ => false,
    }
}

fn verdicts_bit_equal(a: &Verdict, b: &Verdict) -> bool {
    a.own_level_total.to_bits() == b.own_level_total.to_bits()
        && opt_bits(a.core_utilization, b.core_utilization)
        && opt_bits(a.core_utilization_slack, b.core_utilization_slack)
}

fn bench_batch_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_all_cores");
    for cores in [8usize, 64, 256, 1024] {
        // 16 tasks per core keeps per-task utilization realistic as the
        // machine grows (same shape as the `mcs-exp perf` scaling table).
        let n = 16 * cores;
        let ts = fixture(n, cores, 4, 0.5, 11);
        let (bank, rows) = dealt(&ts, cores);

        // The two paths must agree bitwise before we time either.
        let mut out = Vec::new();
        for row in &rows {
            batch_probe_verdicts(&bank, row, &mut out);
            assert_eq!(out.len(), cores);
            for (m, v) in out.iter().enumerate() {
                assert!(
                    verdicts_bit_equal(v, &bank.view(m).probe_verdict(row)),
                    "batch/scalar divergence at core {m}"
                );
            }
        }

        // One "element" = one (task, core) probe, so criterion's
        // throughput line reads directly in probes per second.
        group.throughput(Throughput::Elements((rows.len() * cores) as u64));
        group.bench_with_input(BenchmarkId::new("scalar", cores), &cores, |b, _| {
            b.iter(|| {
                for row in &rows {
                    for m in 0..cores {
                        black_box(bank.view(m).probe_verdict(row).feasible());
                    }
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batch", cores), &cores, |b, _| {
            b.iter(|| {
                for row in &rows {
                    batch_probe_verdicts(&bank, row, &mut out);
                    black_box(out.len());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_scalar);
criterion_main!(benches);
