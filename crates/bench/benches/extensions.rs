//! Benchmarks for the extension modules: sensitivity analysis, elastic
//! factors, AMC/SMC response-time tests, exact rational arithmetic, period
//! transformation and the sporadic/overhead simulator paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcs_analysis::amc::{amc_rtb_audsley, amc_rtb_dm, smc_dm};
use mcs_analysis::exact_arith::theorem1_feasible_exact;
use mcs_analysis::{critical_scaling, elastic_stretch_factors, Theorem1, VdAssignment};
use mcs_bench::fixture;
use mcs_model::rational::Ratio;
use mcs_model::{promote_critical, CritLevel, McTask, UtilTable};
use mcs_sim::{ArrivalModel, CoreSim, LevelCap, Overheads, SchedulerKind, Trace};

fn bench_sensitivity(c: &mut Criterion) {
    let ts = fixture(24, 1, 4, 0.4, 3);
    let table = ts.util_table();
    c.bench_function("critical_scaling", |b| {
        b.iter(|| black_box(critical_scaling(&table)));
    });
    let analysis = Theorem1::compute(&table);
    c.bench_function("elastic_stretch_factors", |b| {
        b.iter(|| black_box(elastic_stretch_factors(&table, &analysis)));
    });
}

fn bench_fp_tests(c: &mut Criterion) {
    let ts = fixture(12, 1, 2, 0.5, 9);
    let refs: Vec<&McTask> = ts.tasks().iter().collect();
    c.bench_function("amc_rtb_dm_n12", |b| b.iter(|| black_box(amc_rtb_dm(&refs))));
    c.bench_function("smc_dm_n12", |b| b.iter(|| black_box(smc_dm(&refs))));
    c.bench_function("amc_rtb_audsley_n12", |b| {
        b.iter(|| black_box(amc_rtb_audsley(&refs).is_some()));
    });
}

fn bench_exact_arith(c: &mut Criterion) {
    let ts = fixture(12, 1, 4, 0.4, 5);
    let refs: Vec<&McTask> = ts.tasks().iter().collect();
    c.bench_function("theorem1_exact_rational", |b| {
        b.iter(|| black_box(theorem1_feasible_exact(&refs, 4)));
    });
    c.bench_function("ratio_arithmetic_chain", |b| {
        b.iter(|| {
            let mut acc = Ratio::ZERO;
            for i in 1..50i128 {
                acc = acc.add(Ratio::new(1, i).unwrap()).unwrap();
            }
            black_box(acc)
        });
    });
}

fn bench_transform(c: &mut Criterion) {
    let ts = fixture(120, 8, 4, 0.5, 7);
    c.bench_function("period_transform_promote", |b| {
        b.iter(|| black_box(promote_critical(&ts, CritLevel::new(3), 2)));
    });
}

fn bench_sim_paths(c: &mut Criterion) {
    let ts = fixture(16, 1, 3, 0.5, 21);
    let tasks: Vec<&McTask> = ts.tasks().iter().collect();
    let table = UtilTable::from_tasks(3, tasks.iter().copied());
    let analysis = Theorem1::compute(&table);
    let vd = VdAssignment::compute(&table, &analysis).expect("fixture feasible");
    let horizon = 1_000_000;
    c.bench_function("core_sim_sporadic", |b| {
        let sim = CoreSim::new(tasks.clone(), SchedulerKind::EdfVd(vd.clone()))
            .with_arrivals(ArrivalModel::Sporadic { slack: 0.3, seed: 5 });
        b.iter(|| black_box(sim.run(&mut LevelCap::lo(), horizon, &mut Trace::disabled())));
    });
    c.bench_function("core_sim_with_overheads", |b| {
        let sim = CoreSim::new(tasks.clone(), SchedulerKind::EdfVd(vd.clone()))
            .with_overheads(Overheads { context_switch: 50, mode_switch: 200 });
        b.iter(|| black_box(sim.run(&mut LevelCap::new(3), horizon, &mut Trace::disabled())));
    });
    c.bench_function("core_sim_fixed_priority", |b| {
        let sim = CoreSim::new(tasks.clone(), SchedulerKind::deadline_monotonic(&tasks));
        b.iter(|| black_box(sim.run(&mut LevelCap::lo(), horizon, &mut Trace::disabled())));
    });
}

criterion_group!(
    benches,
    bench_sensitivity,
    bench_fp_tests,
    bench_exact_arith,
    bench_transform,
    bench_sim_paths
);
criterion_main!(benches);
