//! Partitioner cost scaling: CA-TPA's complexity is O((M + N)·N) (§III);
//! these benches measure it against FFD/BFD/WFD/Hybrid over N and M.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mcs_bench::fixture;
use mcs_partition::{paper_schemes, Catpa, CatpaLs, ExactBnb, Partitioner};

fn bench_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("catpa_scaling_n");
    for n in [50usize, 100, 200, 400, 800] {
        let ts = fixture(n, 8, 4, 0.45, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ts, |b, ts| {
            let catpa = Catpa::default();
            b.iter(|| black_box(catpa.partition(ts, 8)));
        });
    }
    group.finish();
}

fn bench_scaling_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("catpa_scaling_m");
    for m in [2usize, 4, 8, 16, 32, 64] {
        let ts = fixture(160, m, 4, 0.45, 7);
        group.bench_with_input(BenchmarkId::from_parameter(m), &ts, |b, ts| {
            let catpa = Catpa::default();
            b.iter(|| black_box(catpa.partition(ts, m)));
        });
    }
    group.finish();
}

fn bench_all_schemes(c: &mut Criterion) {
    let ts = fixture(120, 8, 4, 0.45, 11);
    let mut group = c.benchmark_group("schemes_n120_m8");
    for scheme in paper_schemes() {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| black_box(scheme.partition(&ts, 8)));
        });
    }
    group.finish();
}

fn bench_exact_and_repair(c: &mut Criterion) {
    // Small instance near the transition: exact search and LS repair both
    // do real work here.
    let ts = fixture(12, 3, 4, 0.66, 5);
    c.bench_function("exact_bnb_n12_m3", |b| {
        let exact = ExactBnb::default();
        b.iter(|| black_box(exact.decide(&ts, 3)));
    });
    c.bench_function("catpa_ls_n12_m3", |b| {
        let ls = CatpaLs::default();
        b.iter(|| black_box(ls.partition(&ts, 3)));
    });
}

criterion_group!(
    benches,
    bench_scaling_n,
    bench_scaling_m,
    bench_all_schemes,
    bench_exact_and_repair
);
criterion_main!(benches);
