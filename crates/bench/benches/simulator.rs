//! Simulator throughput: events per simulated horizon under nominal and
//! overrun-heavy behaviours — establishes that the soundness experiment's
//! cost is dominated by simulation, not analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mcs_analysis::{Theorem1, VdAssignment};
use mcs_bench::fixture;
use mcs_model::{McTask, UtilTable};
use mcs_sim::{CoreSim, GlobalSim, LevelCap, Probabilistic, SchedulerKind, Trace};

fn core_sim_fixture(n: usize) -> (Vec<McTask>, VdAssignment) {
    let ts = fixture(n, 1, 3, 0.5, 21);
    let tasks: Vec<McTask> = ts.tasks().to_vec();
    let table = UtilTable::from_tasks(3, tasks.iter());
    let analysis = Theorem1::compute(&table);
    let vd = VdAssignment::compute(&table, &analysis).expect("fixture is feasible");
    (tasks, vd)
}

fn bench_nominal(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_sim_nominal");
    for n in [8usize, 16, 32] {
        let (tasks, vd) = core_sim_fixture(n);
        let horizon = 2_000_000u64; // 2 simulated seconds at 1000 ticks/ms
        group.throughput(Throughput::Elements(horizon));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tasks, |b, tasks| {
            let refs: Vec<&McTask> = tasks.iter().collect();
            let sim = CoreSim::new(refs, SchedulerKind::EdfVd(vd.clone()));
            b.iter(|| {
                let mut scenario = LevelCap::lo();
                black_box(sim.run(&mut scenario, horizon, &mut Trace::disabled()))
            });
        });
    }
    group.finish();
}

fn bench_overrun_heavy(c: &mut Criterion) {
    let (tasks, vd) = core_sim_fixture(16);
    let horizon = 2_000_000u64;
    c.bench_function("core_sim_overrun_p30", |b| {
        let refs: Vec<&McTask> = tasks.iter().collect();
        let sim = CoreSim::new(refs, SchedulerKind::EdfVd(vd.clone()));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut scenario = Probabilistic::new(0.3, 3, seed);
            black_box(sim.run(&mut scenario, horizon, &mut Trace::disabled()))
        });
    });
}

fn bench_global(c: &mut Criterion) {
    // Global EDF over m cores vs the partitioned per-core loop: the global
    // queue pays an O(n log n) sort per event.
    let ts = fixture(16, 4, 2, 0.5, 13);
    let tasks: Vec<McTask> = ts.tasks().to_vec();
    let horizon = 2_000_000u64;
    c.bench_function("global_sim_m4_nominal", |b| {
        let refs: Vec<&McTask> = tasks.iter().collect();
        let sim = GlobalSim::new(refs, 4, SchedulerKind::PlainEdf);
        b.iter(|| {
            let mut scenario = LevelCap::lo();
            black_box(sim.run(&mut scenario, horizon, &mut Trace::disabled()))
        });
    });
    c.bench_function("global_sim_m4_worst_case", |b| {
        let refs: Vec<&McTask> = tasks.iter().collect();
        let sim = GlobalSim::new(refs, 4, SchedulerKind::PlainEdf);
        b.iter(|| {
            let mut scenario = LevelCap::new(2);
            black_box(sim.run(&mut scenario, horizon, &mut Trace::disabled()))
        });
    });
}

criterion_group!(benches, bench_nominal, bench_overrun_heavy, bench_global);
criterion_main!(benches);
