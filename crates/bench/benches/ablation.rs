//! Ablation benches for the design choices DESIGN.md calls out: the cost of
//! each CA-TPA variant (ordering rule, probe metric, objective) relative to
//! the full algorithm, plus the contribution-ordering step in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcs_bench::default_fixture;
use mcs_partition::{order_by_contribution, BinPacker, CatpaVariant, Partitioner};

fn bench_variants(c: &mut Criterion) {
    let ts = default_fixture(31);
    let mut group = c.benchmark_group("catpa_variants");
    for variant in CatpaVariant::battery() {
        group.bench_function(variant.name(), |b| {
            b.iter(|| black_box(variant.partition(&ts, 8)));
        });
    }
    group.finish();
}

fn bench_orderings(c: &mut Criterion) {
    let ts = default_fixture(31);
    c.bench_function("order_by_contribution", |b| {
        b.iter(|| black_box(order_by_contribution(&ts)));
    });
    c.bench_function("order_by_max_util", |b| {
        b.iter(|| black_box(BinPacker::decreasing_max_util_order(&ts)));
    });
}

criterion_group!(benches, bench_variants, bench_orderings);
criterion_main!(benches);
