//! Shared fixtures for the Criterion benchmarks (see `benches/`).

#![forbid(unsafe_code)]

use mcs_gen::{generate_task_set, GenParams};
use mcs_model::TaskSet;

/// A deterministic task set at the paper's parameter point, scaled to the
/// requested size.
#[must_use]
pub fn fixture(n: usize, cores: usize, levels: u8, nsu: f64, seed: u64) -> TaskSet {
    let params =
        GenParams::default().with_n_range(n, n).with_cores(cores).with_levels(levels).with_nsu(nsu);
    generate_task_set(&params, seed)
}

/// Default fixture used across benches: a schedulable point (NSU = 0.5) so
/// partitioners run to completion.
#[must_use]
pub fn default_fixture(seed: u64) -> TaskSet {
    fixture(120, 8, 4, 0.5, seed)
}
