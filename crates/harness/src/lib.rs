//! # mcs-harness
//!
//! The experiment harness every `mcs-exp` command runs on. Three layers:
//!
//! * [`RunConfig`] — the execution knobs (`--trials`, `--threads`,
//!   `--seed`) parsed once and shared by every trial-driven subcommand;
//! * [`RunSession`] / [`TrialRunner`] — a crossbeam scoped-thread executor
//!   with deterministic per-trial seeding ([`mcs_gen::trial_seed`], i.e.
//!   `seed + i` — preserved exactly across the refactor so every published
//!   number is unchanged) and merge-order-independent reduction: records
//!   come back **indexed by trial**, so output is bit-identical at any
//!   thread count;
//! * the streaming result layer ([`checkpoint`], [`TrialRecord`]) — each
//!   trial can emit one JSONL line to `results/*.jsonl` under a checkpoint
//!   header, so an interrupted sweep resumes with `--resume` instead of
//!   restarting.
//!
//! Scheme construction lives in [`mcs_partition::registry`]
//! (re-exported here): one name→constructor table replaces the per-command
//! copy-pasted scheme lists.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod json;
pub mod runner;

pub use checkpoint::Checkpoint;
pub use config::RunConfig;
pub use json::JsonValue;
pub use runner::{RunSession, Trial, TrialRecord, TrialRunner};

// The scheme registry is defined next to the schemes themselves (the
// dependency points partition → audit, so the table cannot live higher);
// re-exported here because harness users are its main consumers.
pub use mcs_partition::{
    BaselineFit, SchemeFlags, SchemeInfo, SchemeRegistry, AUDIT_SET, DUAL_SET, GAP_SET, PAPER_SET,
};
