//! The deterministic parallel trial executor.
//!
//! Every experiment command reduces to the same shape: *N* independent
//! trials, trial `i` seeded with [`mcs_gen::trial_seed`]`(seed, i)`, folded
//! into an aggregate. [`TrialRunner::run`] executes the trials across worker
//! threads and returns the per-trial records **indexed by trial**, so the
//! caller's fold runs sequentially in trial order — the output is therefore
//! bit-identical at any `--threads`, and exactly equal to the historical
//! single-threaded loops (same per-trial seeds, same fold order).
//!
//! Work distribution is dynamic (atomic block claiming), which is safe
//! precisely because ordering is restored afterwards: a slow trial never
//! perturbs the result, only the wall clock.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crossbeam::thread;

use mcs_obs::{Counter, Phase};

use crate::checkpoint::Checkpoint;
use crate::config::RunConfig;
use crate::json::JsonValue;

/// Saturating nanosecond reading of an elapsed interval.
fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One unit of work handed to the trial closure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trial {
    /// Trial index within the point, `0..trials`.
    pub index: usize,
    /// The trial's RNG seed: [`mcs_gen::trial_seed`]`(config.seed, index)`.
    pub seed: u64,
}

/// A per-trial result that can stream to (and reload from) a JSONL
/// checkpoint line.
pub trait TrialRecord: Sized + Send {
    /// Encode as a JSON object *fragment* — the record's own fields without
    /// braces, e.g. `"sched":true,"usys":0.91` (empty string for no fields).
    /// The runner wraps it with the `point` and `trial` keys.
    fn to_json(&self) -> String;

    /// Decode from a parsed checkpoint line. `None` rejects the record (the
    /// runner recomputes it and everything after it).
    fn from_json(v: &JsonValue) -> Option<Self>;
}

/// Records that never stream (commands run without `--jsonl` still go
/// through the runner; an in-memory-only record type can use this).
impl TrialRecord for () {
    fn to_json(&self) -> String {
        String::new()
    }
    fn from_json(_: &JsonValue) -> Option<Self> {
        Some(())
    }
}

/// One experiment run: execution knobs plus the optional streaming-results
/// checkpoint shared by every point of the run.
#[derive(Debug)]
pub struct RunSession {
    config: RunConfig,
    checkpoint: Option<Checkpoint>,
}

impl RunSession {
    /// A session without streaming results.
    #[must_use]
    pub fn new(config: RunConfig) -> Self {
        Self { config, checkpoint: None }
    }

    /// A session streaming every trial to a JSONL checkpoint at `path`.
    ///
    /// With `resume`, an existing compatible file is continued (recorded
    /// trials are reloaded instead of recomputed); without it the file is
    /// truncated. `command` and `params` go into the header and must match
    /// on resume — they fingerprint the trial stream.
    ///
    /// # Errors
    /// I/O failure, or (on resume) a header from a different run.
    pub fn with_checkpoint(
        config: RunConfig,
        path: &Path,
        resume: bool,
        command: &str,
        params: &str,
    ) -> Result<Self, String> {
        let checkpoint = if resume {
            Checkpoint::resume(path, command, config.seed, params)?
        } else {
            Checkpoint::create(path, command, config.seed, params)?
        };
        Ok(Self { config, checkpoint: Some(checkpoint) })
    }

    /// The session's execution knobs.
    #[must_use]
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Start one data point; `label` names it in the JSONL stream (each
    /// point's label must be unique within a run).
    pub fn point(&mut self, label: &str) -> TrialRunner<'_> {
        TrialRunner { session: self, label: label.to_string() }
    }
}

/// Executor for the trials of one data point; see the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct TrialRunner<'a> {
    session: &'a mut RunSession,
    label: String,
}

impl TrialRunner<'_> {
    /// Run `config.trials` trials and return their records indexed by trial.
    ///
    /// `init` builds one per-worker state (scratch buffers, a scheme set, an
    /// audit registry — anything reused across that worker's trials); `f`
    /// executes one trial against it. Trials already present in a resumed
    /// checkpoint are decoded instead of recomputed; newly computed trials
    /// stream to the checkpoint in trial order.
    ///
    /// # Panics
    /// Propagates worker panics; panics on checkpoint I/O failure.
    pub fn run<S, T, I, F>(self, init: I, f: F) -> Vec<T>
    where
        T: TrialRecord,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Trial) -> T + Sync,
    {
        let trials = self.session.config.trials;
        let base_seed = self.session.config.seed;

        // Reload the contiguous prefix a resumed checkpoint already holds.
        let mut results: Vec<T> = Vec::with_capacity(trials);
        if let Some(ck) = self.session.checkpoint.as_mut() {
            for v in ck.take_loaded(&self.label) {
                if results.len() == trials {
                    break;
                }
                match T::from_json(&v) {
                    Some(rec) => results.push(rec),
                    None => break, // undecodable tail: recompute from here
                }
            }
        }
        let done = results.len();
        if done > 0 {
            mcs_obs::counter!(Counter::HarnessTrialsResumed, done as u64);
        }
        if done >= trials {
            return results;
        }
        let remaining = trials - done;
        let trial = |i: usize| Trial { index: i, seed: mcs_gen::trial_seed(base_seed, i) };

        let threads = self.session.config.effective_threads().max(1).min(remaining);
        if threads == 1 {
            let worker_start = mcs_obs::now_if_timing();
            let mut state = init();
            for i in done..trials {
                let trial_start = mcs_obs::now_if_timing();
                let rec = f(&mut state, trial(i));
                if let Some(start) = trial_start {
                    mcs_obs::worker_busy_ns(0, elapsed_ns(start));
                }
                mcs_obs::worker_trials(0, 1);
                mcs_obs::counter!(Counter::HarnessTrialsComputed);
                if let Some(ck) = self.session.checkpoint.as_mut() {
                    // lint: allow(panic-policy, checkpoint IO failure mid-run has no recovery path; abort with the IO error)
                    ck.append(&self.label, i, &rec.to_json()).unwrap_or_else(|e| panic!("{e}"));
                }
                results.push(rec);
            }
            if let Some(start) = worker_start {
                mcs_obs::worker_wall_ns(0, elapsed_ns(start));
            }
            return results;
        }

        // Dynamic block claiming: workers race for blocks of consecutive
        // trials and send each record home tagged with its index; the main
        // thread slots records by trial and streams them to the checkpoint
        // in trial order. Scheduling nondeterminism cannot reach the output.
        let block = (remaining / (threads * 4)).clamp(1, 64);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(remaining, || None);
        let (tx, rx) = mpsc::channel::<(usize, T)>();

        thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let init = &init;
                let f = &f;
                handles.push(s.spawn(move |_| {
                    let worker_start = mcs_obs::now_if_timing();
                    let mut state = init();
                    loop {
                        let lo = {
                            let _timer = mcs_obs::span(Phase::WorkerBlockClaim);
                            next.fetch_add(block, Ordering::Relaxed)
                        };
                        if lo >= remaining {
                            break;
                        }
                        mcs_obs::counter!(Counter::HarnessBlockClaims);
                        mcs_obs::worker_block(w);
                        let hi = (lo + block).min(remaining);
                        for off in lo..hi {
                            let i = done + off;
                            let trial_start = mcs_obs::now_if_timing();
                            let rec = f(&mut state, trial(i));
                            if let Some(start) = trial_start {
                                mcs_obs::worker_busy_ns(w, elapsed_ns(start));
                            }
                            mcs_obs::worker_trials(w, 1);
                            if tx.send((off, rec)).is_err() {
                                return; // receiver gone: run is unwinding
                            }
                        }
                    }
                    if let Some(start) = worker_start {
                        mcs_obs::worker_wall_ns(w, elapsed_ns(start));
                    }
                }));
            }
            drop(tx);
            let mut next_write = 0usize;
            while let Ok((off, rec)) = rx.recv() {
                mcs_obs::counter!(Counter::HarnessTrialsComputed);
                slots[off] = Some(rec);
                while let Some(Some(rec)) = slots.get(next_write) {
                    if let Some(ck) = self.session.checkpoint.as_mut() {
                        ck.append(&self.label, done + next_write, &rec.to_json())
                            .unwrap_or_else(|e| panic!("{e}")); // lint: allow(panic-policy, checkpoint IO failure mid-run has no recovery path; abort with the IO error)
                    }
                    next_write += 1;
                }
            }
            for h in handles {
                h.join().expect("trial worker panicked");
            }
        })
        .expect("trial scope panicked");

        results.extend(slots.into_iter().map(|s| s.expect("all trials completed")));
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A record carrying the trial seed, so reorderings are detectable.
    struct Rec {
        seed: u64,
        metric: f64,
    }

    impl TrialRecord for Rec {
        fn to_json(&self) -> String {
            format!("\"seed\":{},\"metric\":{}", self.seed, crate::json::fmt_f64(self.metric))
        }
        fn from_json(v: &JsonValue) -> Option<Self> {
            Some(Self {
                seed: v.get("seed").and_then(JsonValue::as_u64)?,
                metric: v.get("metric").and_then(JsonValue::as_f64)?,
            })
        }
    }

    fn compute(t: Trial) -> Rec {
        // A seed-dependent irrational-ish metric: any fold-order change
        // would flip output bits.
        Rec { seed: t.seed, metric: (t.seed as f64).sqrt() / 3.0 }
    }

    fn run_with(threads: usize) -> Vec<Rec> {
        let mut session = RunSession::new(RunConfig { trials: 97, threads, seed: 41 });
        session.point("p").run(|| (), |(), t| compute(t))
    }

    #[test]
    fn output_is_bit_identical_across_thread_counts() {
        let one = run_with(1);
        for threads in [2, 4, 8] {
            let many = run_with(threads);
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.metric.to_bits(), b.metric.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn trial_seeds_follow_the_published_derivation() {
        let recs = run_with(3);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seed, 41 + i as u64);
        }
    }

    #[test]
    fn resume_skips_recorded_trials() {
        let mut path = std::env::temp_dir();
        path.push(format!("mcs-harness-runner-{}.jsonl", std::process::id()));
        let config = RunConfig { trials: 20, threads: 2, seed: 9 };
        let calls = AtomicUsize::new(0);
        let full = {
            let mut session =
                RunSession::with_checkpoint(config.clone(), &path, false, "t", "").unwrap();
            session.point("p").run(
                || (),
                |(), t| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    compute(t)
                },
            )
        };
        assert_eq!(calls.swap(0, Ordering::Relaxed), 20);

        // Resume with more trials: only the extra 10 are computed, and the
        // reloaded prefix is bit-identical to the original run.
        let config = RunConfig { trials: 30, ..config };
        let mut session = RunSession::with_checkpoint(config, &path, true, "t", "").unwrap();
        let resumed = session.point("p").run(
            || (),
            |(), t| {
                calls.fetch_add(1, Ordering::Relaxed);
                compute(t)
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert_eq!(resumed.len(), 30);
        for (a, b) in full.iter().zip(&resumed) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.metric.to_bits(), b.metric.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Bit-identical output at any worker count, for arbitrary
            /// base seeds and trial counts (including counts far from
            /// multiples of the claiming block size).
            #[test]
            fn runner_output_is_thread_count_invariant(
                seed in any::<u64>(),
                trials in 1usize..80,
                threads in 2usize..9,
            ) {
                let run = |threads: usize| {
                    let mut session =
                        RunSession::new(RunConfig { trials, threads, seed });
                    session.point("p").run(|| (), |(), t| compute(t))
                };
                let one = run(1);
                let many = run(threads);
                prop_assert_eq!(one.len(), many.len());
                for (a, b) in one.iter().zip(&many) {
                    prop_assert_eq!(a.seed, b.seed);
                    prop_assert_eq!(a.metric.to_bits(), b.metric.to_bits());
                }
            }
        }
    }
}
