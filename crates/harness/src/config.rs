//! Execution knobs shared by every trial-driven experiment command.

/// Execution knobs of one experiment run: trial count, worker threads, and
/// the base RNG seed. Parsed once by `mcs-exp` (`--trials`, `--threads`,
/// `--seed`) and passed to every command as one struct.
///
/// The per-trial seed is [`mcs_gen::trial_seed`]`(seed, i)` — preserved
/// exactly across the harness refactor so all published numbers are
/// unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Task sets per data point (the paper uses 50,000; the default trades
    /// precision for turnaround and is overridable via `--trials`).
    pub trials: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { trials: 2_000, threads: 0, seed: 0x5EED }
    }
}

impl RunConfig {
    /// Resolved worker-thread count.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_published_runs() {
        let c = RunConfig::default();
        assert_eq!(c.trials, 2_000);
        assert_eq!(c.threads, 0);
        assert_eq!(c.seed, 0x5EED);
        assert!(c.effective_threads() >= 1);
    }

    #[test]
    fn explicit_thread_count_wins() {
        let c = RunConfig { threads: 3, ..RunConfig::default() };
        assert_eq!(c.effective_threads(), 3);
    }
}
