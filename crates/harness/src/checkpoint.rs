//! Streaming JSONL results with crash-safe checkpoint/resume.
//!
//! File layout (`results/*.jsonl`):
//!
//! * **line 1 — header**: `{"schema":"mcs-harness/1","command":…,"seed":…,
//!   "git":…,"params":…}`. The trial *count* is deliberately excluded: a
//!   resumed run may ask for more trials than the interrupted one, and the
//!   already-recorded prefix is still valid (trial `i` depends only on
//!   `seed + i`).
//! * **data lines**: `{"point":"<label>","trial":N,…}` — one per completed
//!   trial, appended in trial order per point, flushed per line.
//!
//! Resume never trusts a stored high-water mark. It re-derives progress by
//! counting the *contiguous* trial prefix recorded for each point: a torn
//! final line (crash mid-write) is truncated away, and any out-of-order or
//! gapped record ends the trusted prefix. Records past the contiguous
//! prefix are discarded on the next append.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead as _, BufReader, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::json::{self, JsonValue};

/// Schema tag written to (and required of) every checkpoint header.
pub const SCHEMA: &str = "mcs-harness/1";

/// An open streaming-results file: every completed trial is appended as one
/// JSONL line, so an interrupted sweep can resume where it stopped.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    file: File,
    /// Decoded data records surviving from a resumed file, keyed by point
    /// label, each a contiguous trial prefix `0..len`.
    loaded: BTreeMap<String, Vec<JsonValue>>,
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn header_line(command: &str, seed: u64, params: &str) -> String {
    format!(
        "{{\"schema\":\"{}\",\"command\":\"{}\",\"seed\":{},\"git\":\"{}\",\"params\":\"{}\"}}",
        SCHEMA,
        json::escape(command),
        seed,
        json::escape(&git_describe()),
        json::escape(params),
    )
}

fn header_compatible(
    header: &JsonValue,
    command: &str,
    seed: u64,
    params: &str,
) -> Result<(), String> {
    let field = |k: &str| header.get(k).and_then(JsonValue::as_str).map(str::to_string);
    if field("schema").as_deref() != Some(SCHEMA) {
        return Err(format!("schema mismatch (want {SCHEMA})"));
    }
    if field("command").as_deref() != Some(command) {
        return Err(format!(
            "command mismatch (file has {:?}, run is {command:?})",
            field("command")
        ));
    }
    if header.get("seed").and_then(JsonValue::as_u64) != Some(seed) {
        return Err(format!("seed mismatch (file has {:?}, run uses {seed})", header.get("seed")));
    }
    if field("params").as_deref() != Some(params) {
        return Err(format!("params mismatch (file has {:?}, run is {params:?})", field("params")));
    }
    Ok(())
}

impl Checkpoint {
    /// Start a fresh checkpoint file (truncating any previous one), writing
    /// the header line. Parent directories are created as needed.
    ///
    /// # Errors
    /// I/O failure creating or writing the file.
    pub fn create(path: &Path, command: &str, seed: u64, params: &str) -> Result<Self, String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        let mut file =
            File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        writeln!(file, "{}", header_line(command, seed, params))
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(Self { path: path.to_path_buf(), file, loaded: BTreeMap::new() })
    }

    /// Reopen an interrupted checkpoint file for resumption.
    ///
    /// Validates that the header matches this run (schema, command, seed,
    /// params — a resumed run must be re-deriving the *same* trial stream),
    /// truncates a torn final line, and loads the contiguous trial prefix
    /// recorded for each point. If the file does not exist, this falls back
    /// to [`Checkpoint::create`].
    ///
    /// # Errors
    /// I/O failure, or a header that belongs to a different run.
    pub fn resume(path: &Path, command: &str, seed: u64, params: &str) -> Result<Self, String> {
        if !path.exists() {
            return Self::create(path, command, seed, params);
        }
        let file = File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let mut reader = BufReader::new(file);
        let mut line = String::new();
        let mut good_bytes: u64 = 0;
        let mut header_seen = false;
        let mut loaded: BTreeMap<String, Vec<JsonValue>> = BTreeMap::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            if n == 0 {
                break;
            }
            if !line.ends_with('\n') {
                break; // torn final line: crash mid-write — truncate it away
            }
            let Ok(v) = json::parse(line.trim_end()) else {
                break; // corrupt tail — treat like a torn line
            };
            if !header_seen {
                header_compatible(&v, command, seed, params).map_err(|e| {
                    format!("{}: {e}; pass a fresh --jsonl path or drop --resume", path.display())
                })?;
                header_seen = true;
            } else {
                let point = v.get("point").and_then(JsonValue::as_str).map(str::to_string);
                let trial = v.get("trial").and_then(JsonValue::as_usize);
                let (Some(point), Some(trial)) = (point, trial) else { break };
                let records = loaded.entry(point).or_default();
                if trial != records.len() {
                    break; // gap or reorder: end of the trusted prefix
                }
                records.push(v);
            }
            good_bytes += n as u64;
        }
        if !header_seen {
            // Empty or headerless file: start over.
            return Self::create(path, command, seed, params);
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot reopen {}: {e}", path.display()))?;
        file.set_len(good_bytes).map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
        let mut file = file;
        file.seek(SeekFrom::End(0)).map_err(|e| format!("cannot seek {}: {e}", path.display()))?;
        Ok(Self { path: path.to_path_buf(), file, loaded })
    }

    /// The records already on disk for `point` (a contiguous trial prefix
    /// starting at 0). Taken by the runner exactly once per point.
    pub(crate) fn take_loaded(&mut self, point: &str) -> Vec<JsonValue> {
        self.loaded.remove(point).unwrap_or_default()
    }

    /// Append one data line for `point`. `fragment` is the record's own
    /// fields, already JSON-encoded (without braces), e.g. `"sched":true`.
    ///
    /// # Errors
    /// I/O failure writing the line.
    pub(crate) fn append(
        &mut self,
        point: &str,
        trial: usize,
        fragment: &str,
    ) -> Result<(), String> {
        let _timer = mcs_obs::span(mcs_obs::Phase::CheckpointFlush);
        let sep = if fragment.is_empty() { "" } else { "," };
        let line =
            format!("{{\"point\":\"{}\",\"trial\":{trial}{sep}{fragment}}}\n", json::escape(point));
        mcs_obs::counter!(mcs_obs::Counter::CheckpointFlushes);
        mcs_obs::counter!(mcs_obs::Counter::CheckpointBytes, line.len() as u64);
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot write {}: {e}", self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mcs-harness-ckpt-{}-{name}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn create_then_resume_loads_contiguous_prefix() {
        let path = tmp("roundtrip");
        {
            let mut ck = Checkpoint::create(&path, "sweep", 7, "m=4").unwrap();
            ck.append("p0", 0, "\"x\":1").unwrap();
            ck.append("p0", 1, "\"x\":2").unwrap();
            ck.append("p1", 0, "\"x\":3").unwrap();
        }
        let mut ck = Checkpoint::resume(&path, "sweep", 7, "m=4").unwrap();
        let p0 = ck.take_loaded("p0");
        assert_eq!(p0.len(), 2);
        assert_eq!(p0[1].get("x").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(ck.take_loaded("p1").len(), 1);
        assert!(ck.take_loaded("p0").is_empty(), "taken once");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_truncated() {
        let path = tmp("torn");
        {
            let mut ck = Checkpoint::create(&path, "sweep", 7, "").unwrap();
            ck.append("p", 0, "\"x\":1").unwrap();
        }
        // Simulate a crash mid-write of trial 1.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"point\":\"p\",\"trial\":1,\"x\"").unwrap();
        drop(f);
        let mut ck = Checkpoint::resume(&path, "sweep", 7, "").unwrap();
        assert_eq!(ck.take_loaded("p").len(), 1);
        ck.append("p", 1, "\"x\":2").unwrap();
        drop(ck);
        // The torn bytes are gone; the file re-resumes cleanly with 2 trials.
        let mut ck = Checkpoint::resume(&path, "sweep", 7, "").unwrap();
        assert_eq!(ck.take_loaded("p").len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_header_is_rejected() {
        let path = tmp("mismatch");
        drop(Checkpoint::create(&path, "sweep", 7, "m=4").unwrap());
        assert!(Checkpoint::resume(&path, "sweep", 8, "m=4").is_err(), "seed drift");
        assert!(Checkpoint::resume(&path, "figures", 7, "m=4").is_err(), "command drift");
        assert!(Checkpoint::resume(&path, "sweep", 7, "m=8").is_err(), "params drift");
        assert!(Checkpoint::resume(&path, "sweep", 7, "m=4").is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gapped_records_end_the_trusted_prefix() {
        let path = tmp("gap");
        {
            let mut ck = Checkpoint::create(&path, "sweep", 7, "").unwrap();
            ck.append("p", 0, "").unwrap();
            ck.append("p", 2, "").unwrap(); // gap: trial 1 missing
        }
        let mut ck = Checkpoint::resume(&path, "sweep", 7, "").unwrap();
        assert_eq!(ck.take_loaded("p").len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
