//! Minimal JSON support for the streaming result layer.
//!
//! The workspace is offline (no serde); the harness needs just enough JSON
//! to write and re-read its own JSONL records. Two properties matter more
//! than generality:
//!
//! * **lossless numbers** — [`JsonValue::Num`] keeps the raw token, so a
//!   `u64` seed or an `f64` metric round-trips bit-exactly (Rust's `{}`
//!   float formatting is shortest-round-trip); and
//! * **total functions on our own output** — the parser additionally
//!   accepts the bare tokens `NaN`, `Infinity` and `-Infinity`, which
//!   [`fmt_f64`] emits for non-finite values (standard JSON has no
//!   spelling for them).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token for lossless round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order (duplicate keys are kept).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts the non-finite tokens).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(raw) => match raw.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                t => t.parse().ok(),
            },
            _ => None,
        }
    }

    /// The value as a `u64` (exact; rejects floats out of range).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Self::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` losslessly (shortest round-trip), with explicit tokens
/// for the non-finite values the metrics can produce.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "Infinity".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Infinity".to_string()
    } else {
        format!("{x}")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always on a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.bytes[self.pos..].starts_with(b"Infinity") {
            self.pos += "Infinity".len();
            return Ok(JsonValue::Num(
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii").to_string(),
            ));
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Validate by parsing; the raw token is what we keep.
        raw.parse::<f64>().map_err(|_| self.err("malformed number"))?;
        Ok(JsonValue::Num(raw.to_string()))
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", JsonValue::Null),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'N' => self.literal("NaN", JsonValue::Num("NaN".to_string())),
            b'I' => self.literal("Infinity", JsonValue::Num("Infinity".to_string())),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            _ => self.number(),
        }
    }
}

/// Parse one JSON document (a full line of a JSONL file).
///
/// # Errors
/// Returns a position-annotated message on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e3}}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let arr = v.get("b").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(JsonValue::as_f64), Some(-2500.0));
    }

    #[test]
    fn numbers_round_trip_losslessly() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 12345.678901234567] {
            let v = parse(&fmt_f64(x)).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
        let v = parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn non_finite_tokens_round_trip() {
        assert!(parse("NaN").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(parse("Infinity").unwrap().as_f64(), Some(f64::INFINITY));
        assert_eq!(parse("-Infinity").unwrap().as_f64(), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn escape_and_parse_are_inverse() {
        let ugly = "a\"b\\c\nd\te\u{1}π";
        let doc = format!("\"{}\"", escape(ugly));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(ugly));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "12x", "{} junk", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
