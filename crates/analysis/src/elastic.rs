//! Elastic degradation factors — a graceful alternative to AMC's
//! drop-everything rule, in the spirit of the elastic mixed-criticality
//! model of Su & Zhu (\[31\] in the paper, by the same author group).
//!
//! AMC discards every task below the operation mode. Instead, the spare
//! capacity that Theorem 1 *proves* unused — the available utilization
//! `A(k*) = µ(k*) − θ(k*)` — can serve the dropped tasks at a stretched
//! period: at mode `l`, tasks below `l` are released every `factor_l · p_i`
//! with their level-1 budgets, where
//!
//! ```text
//! factor_l = Σ_{j < l} U_j(1) / A(k*)        (clamped to ≥ 1)
//! ```
//!
//! so their degraded bandwidth `Σ U_j(1) / factor_l ≤ A(k*)` fits inside
//! the proven slack and the mandatory guarantee is untouched (the same
//! utilization argument as Inequality (5) with `θ' = θ + A ≤ µ`).
//!
//! `None` entries mean "no useful service possible" (zero slack) — the
//! policy then degenerates to AMC dropping.

use mcs_model::{CritLevel, LevelUtils};

use crate::theorem1::Theorem1;
use crate::EPS;

/// Safety margin applied to the proven slack (fraction in (0, 1]); serving
/// at exactly 100 % of the slack leaves no room for the quantization of
/// stretched periods to integer ticks.
pub const ELASTIC_SAFETY: f64 = 0.95;

/// Per-mode stretch factors for below-mode tasks: `factors[l-1]` applies at
/// operation level `l` (entry for `l = 1` is always `Some(1.0)`; nothing is
/// degraded at the base mode). `None` = drop (no slack).
#[must_use]
pub fn elastic_stretch_factors<U: LevelUtils>(
    u: &U,
    analysis: &Theorem1,
) -> Option<Vec<Option<f64>>> {
    let k = u.num_levels();
    let kstar = analysis.smallest_passing()?;
    let slack = analysis.available(kstar).unwrap_or(0.0).max(0.0) * ELASTIC_SAFETY;
    let mut factors: Vec<Option<f64>> = vec![Some(1.0)];
    let mut below = 0.0; // Σ_{j < l} U_j(1)
    for l in 2..=k {
        let prev = CritLevel::new(l - 1);
        below += u.util_jk(prev, CritLevel::LO);
        let factor = if below <= EPS {
            Some(1.0) // nothing below this mode has load
        } else if slack > EPS {
            Some((below / slack).max(1.0))
        } else {
            None
        };
        factors.push(factor);
    }
    Some(factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn factors(k: u8, tasks: &[McTask]) -> Option<Vec<Option<f64>>> {
        let t = UtilTable::from_tasks(k, tasks.iter());
        let a = Theorem1::compute(&t);
        elastic_stretch_factors(&t, &a)
    }

    #[test]
    fn slack_rich_core_gets_small_factors() {
        // U_1(1) = 0.3, HI = (0.1, 0.2): θ(1) = 0.5, slack ≈ 0.5.
        let tasks = [task(0, 10, 1, &[3]), task(1, 100, 2, &[10, 20])];
        let f = factors(2, &tasks).unwrap();
        assert_eq!(f[0], Some(1.0));
        let f2 = f[1].unwrap();
        // 0.3 / (0.5·0.95) ≈ 0.63 → clamped to 1: LO fully served.
        assert!((f2 - 1.0).abs() < 1e-9, "factor {f2}");
    }

    #[test]
    fn tight_core_stretches_proportionally() {
        // U_1(1) = 0.6, HI = (0.05, 0.3):
        // θ(1) = 0.6 + min{0.3, 0.05/0.7} = 0.6714…, slack ≈ 0.3286.
        let tasks = [task(0, 10, 1, &[6]), task(1, 100, 2, &[5, 30])];
        let f = factors(2, &tasks).unwrap();
        let f2 = f[1].unwrap();
        let slack = 1.0 - (0.6 + 0.05 / 0.7);
        let expected = 0.6 / (slack * ELASTIC_SAFETY);
        assert!((f2 - expected).abs() < 1e-6, "factor {f2} vs {expected}");
        assert!(f2 > 1.5);
    }

    #[test]
    fn zero_slack_means_drop() {
        // Exactly saturated: U_2(2) = 1 alone; adding any LO task leaves no
        // slack — factors for modes above their level are None.
        let tasks = [task(0, 10, 1, &[1]), task(1, 10, 2, &[1, 9])];
        // θ(1) = 0.1 + min{0.9, 0.1/0.1 = 1} = 1.0, slack 0.
        let f = factors(2, &tasks).unwrap();
        assert_eq!(f[1], None);
    }

    #[test]
    fn infeasible_core_has_no_factors() {
        let tasks = [task(0, 10, 2, &[6, 11])];
        assert!(factors(2, &tasks).is_none());
    }

    #[test]
    fn empty_levels_need_no_stretch() {
        // No level-1 tasks at all: factor at mode 2 is 1.0 regardless.
        let tasks = [task(0, 10, 2, &[2, 5])];
        let f = factors(2, &tasks).unwrap();
        assert_eq!(f[1], Some(1.0));
    }
}
