//! Fixed-priority AMC response-time analysis (dual criticality).
//!
//! The paper's related work is dominated by fixed-priority mixed-criticality
//! scheduling via Response-Time Analysis (\[7\], \[11\], \[22\], \[33\], \[35\]); this
//! module implements the standard trio for dual-criticality FP-AMC from
//! Baruah, Burns & Davis, *"Response-time analysis for mixed criticality
//! systems"* (RTSS'11), so the repository can compare partitioned EDF-VD
//! against partitioned FP (the setting of Kelly et al. \[22\]):
//!
//! * **LO-mode test** — classic RTA with level-1 WCETs over all tasks:
//!   `R_i = C_i(1) + Σ_{j ∈ hp(i)} ⌈R_i/T_j⌉·C_j(1) ≤ D_i`;
//! * **stable HI-mode test** — RTA with level-2 WCETs over HI tasks only;
//! * **AMC-rtb transition bound** — for HI tasks, LO-criticality
//!   interference is frozen at the LO-mode response time:
//!   `R*_i = C_i(2) + Σ_{j ∈ hpH(i)} ⌈R*_i/T_j⌉·C_j(2)
//!                  + Σ_{k ∈ hpL(i)} ⌈R^LO_i/T_k⌉·C_k(1) ≤ D_i`.
//!
//! Priorities are deadline-monotonic (= rate-monotonic for the
//! implicit-deadline model), which Vestal showed is not optimal for MC
//! systems but is the standard baseline; Audsley-style priority assignment
//! is provided as an upgrade ([`amc_rtb_audsley`]).

use mcs_model::{CritLevel, McTask, Tick};

/// Outcome of the AMC-rtb analysis for one task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskResponse {
    /// LO-mode response time, if it converged within the deadline.
    pub lo: Option<Tick>,
    /// AMC-rtb transition response time (HI tasks only).
    pub transition: Option<Tick>,
}

/// Iterate a response-time recurrence to fixed point, bailing out once the
/// response exceeds `deadline` (divergence).
fn fixed_point<F: Fn(Tick) -> Tick>(c: Tick, deadline: Tick, f: F) -> Option<Tick> {
    let mut r = c;
    loop {
        let next = f(r);
        if next > deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        debug_assert!(next > r, "response-time recurrences are non-decreasing");
        r = next;
    }
}

#[inline]
fn jobs_in(window: Tick, period: Tick) -> Tick {
    window.div_ceil(period)
}

/// Run the full dual-criticality AMC-rtb analysis on `tasks`, which must be
/// sorted by **descending priority** (index 0 = highest).
///
/// Returns per-task responses, or `None` for a task as soon as its test
/// fails (the remaining entries are still computed — useful for reporting).
///
/// # Panics
///
/// Panics if any task has criticality above 2.
#[must_use]
pub fn amc_rtb_responses(tasks: &[&McTask]) -> Vec<TaskResponse> {
    assert!(
        tasks.iter().all(|t| t.level().get() <= 2),
        "AMC-rtb analysis is dual-criticality only"
    );
    let l1 = CritLevel::new(1);
    let l2 = CritLevel::new(2);
    let mut out = Vec::with_capacity(tasks.len());

    for (i, task) in tasks.iter().enumerate() {
        let deadline = task.period();
        let hp = &tasks[..i];

        // LO-mode RTA over all higher-priority tasks at level-1 WCETs.
        let lo = fixed_point(task.wcet(l1), deadline, |r| {
            task.wcet(l1) + hp.iter().map(|j| jobs_in(r, j.period()) * j.wcet(l1)).sum::<Tick>()
        });

        // Transition bound for HI tasks: HI interference grows with R*, LO
        // interference is capped at the LO response time.
        let transition = if task.level() == l2 {
            lo.and_then(|r_lo| {
                let lo_interference: Tick = hp
                    .iter()
                    .filter(|j| j.level() == l1)
                    .map(|j| jobs_in(r_lo, j.period()) * j.wcet(l1))
                    .sum();
                fixed_point(task.wcet(l2), deadline, |r| {
                    task.wcet(l2)
                        + lo_interference
                        + hp.iter()
                            .filter(|j| j.level() == l2)
                            .map(|j| jobs_in(r, j.period()) * j.wcet(l2))
                            .sum::<Tick>()
                })
            })
        } else {
            None
        };

        out.push(TaskResponse { lo, transition });
    }
    out
}

/// Whether a priority-ordered dual-criticality subset is FP-AMC schedulable
/// per AMC-rtb: every task passes the LO test and every HI task passes the
/// transition test. (The transition bound dominates the stable HI-mode
/// test, so the latter needs no separate check.)
#[must_use]
pub fn amc_rtb_schedulable(tasks: &[&McTask]) -> bool {
    amc_rtb_responses(tasks)
        .iter()
        .zip(tasks)
        .all(|(r, t)| r.lo.is_some() && (t.level().get() < 2 || r.transition.is_some()))
}

/// Static mixed-criticality (SMC) response-time test — the pre-AMC
/// baseline of Baruah, Burns & Davis: no mode switch, each task suffers
/// interference from higher-priority task `j` at `C_j(min(l_i, l_j))`
/// (lower-criticality tasks are *trusted* not to exceed the budget relevant
/// to `τ_i`'s level):
///
/// `R_i = C_i(l_i) + Σ_{j ∈ hp(i)} ⌈R_i/T_j⌉·C_j(min(l_i, l_j)) ≤ D_i`.
///
/// AMC-rtb dominates SMC (its frozen-LO interference bound is never
/// larger), which the tests spot-check.
#[must_use]
pub fn smc_schedulable(tasks: &[&McTask]) -> bool {
    assert!(tasks.iter().all(|t| t.level().get() <= 2), "SMC analysis is dual-criticality only");
    for (i, task) in tasks.iter().enumerate() {
        let deadline = task.period();
        let own = task.wcet(task.level());
        let hp = &tasks[..i];
        let r = fixed_point(own, deadline, |r| {
            own + hp
                .iter()
                .map(|j| {
                    let level = task.level().min(j.level());
                    jobs_in(r, j.period()) * j.wcet(level)
                })
                .sum::<Tick>()
        });
        if r.is_none() {
            return false;
        }
    }
    true
}

/// SMC with deadline-monotonic priorities.
#[must_use]
pub fn smc_dm(tasks: &[&McTask]) -> bool {
    smc_schedulable(&deadline_monotonic_order(tasks))
}

/// Sort a subset into deadline-monotonic (shortest period first) priority
/// order; ties favour higher criticality, then smaller id (deterministic).
#[must_use]
pub fn deadline_monotonic_order<'a>(tasks: &[&'a McTask]) -> Vec<&'a McTask> {
    let mut sorted = tasks.to_vec();
    sorted.sort_by(|a, b| {
        a.period()
            .cmp(&b.period())
            .then_with(|| b.level().cmp(&a.level()))
            .then_with(|| a.id().cmp(&b.id()))
    });
    sorted
}

/// AMC-rtb with deadline-monotonic priorities (the common configuration).
#[must_use]
pub fn amc_rtb_dm(tasks: &[&McTask]) -> bool {
    amc_rtb_schedulable(&deadline_monotonic_order(tasks))
}

/// Audsley's optimal priority assignment driven by the AMC-rtb test:
/// repeatedly find some task that is schedulable at the lowest remaining
/// priority given all others above it. Returns the priority order
/// (highest first) if one exists.
#[must_use]
pub fn amc_rtb_audsley<'a>(tasks: &[&'a McTask]) -> Option<Vec<&'a McTask>> {
    let mut remaining: Vec<&McTask> = tasks.to_vec();
    let mut order_rev: Vec<&McTask> = Vec::with_capacity(tasks.len());
    while !remaining.is_empty() {
        let mut placed = None;
        for (idx, candidate) in remaining.iter().enumerate() {
            // Candidate at the lowest priority: everyone else above it, in
            // any order (RTA at the lowest slot is order-insensitive).
            let mut trial: Vec<&McTask> =
                remaining.iter().enumerate().filter(|(i, _)| *i != idx).map(|(_, t)| *t).collect();
            trial.push(candidate);
            let responses = amc_rtb_responses(&trial);
            let last = responses.last().expect("non-empty");
            let ok =
                last.lo.is_some() && (candidate.level().get() < 2 || last.transition.is_some());
            if ok {
                placed = Some(idx);
                break;
            }
        }
        let idx = placed?;
        order_rev.push(remaining.remove(idx));
    }
    order_rev.reverse();
    Some(order_rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn classic_rta_example() {
        // Liu & Layland style: (C,T) = (1,4), (2,6), (3,13) — RM schedulable.
        let a = task(0, 4, 1, &[1]);
        let b = task(1, 6, 1, &[2]);
        let c = task(2, 13, 1, &[3]);
        let rs = amc_rtb_responses(&[&a, &b, &c]);
        assert_eq!(rs[0].lo, Some(1));
        assert_eq!(rs[1].lo, Some(3));
        // R_c = 3 + ⌈R/4⌉·1 + ⌈R/6⌉·2 → 3+1+2=6 → 3+2+2=7 → 3+2+4=9 →
        //       3+3+4=10 → 3+3+4=10 ✓.
        assert_eq!(rs[2].lo, Some(10));
    }

    #[test]
    fn rta_detects_overload() {
        let a = task(0, 4, 1, &[3]);
        let b = task(1, 8, 1, &[5]);
        let rs = amc_rtb_responses(&[&a, &b]);
        assert_eq!(rs[0].lo, Some(3));
        assert_eq!(rs[1].lo, None); // 5 + 2·3 = 11 > 8
    }

    #[test]
    fn transition_bound_accounts_for_frozen_lo_interference() {
        // HI task at lowest priority under one LO task.
        let lo = task(0, 10, 1, &[4]);
        let hi = task(1, 40, 2, &[6, 14]);
        let rs = amc_rtb_responses(&[&lo, &hi]);
        // LO mode: R = 6 + ⌈R/10⌉·4 → 10 → 6+4=10 ✓ (⌈10/10⌉=1) → 10.
        assert_eq!(rs[1].lo, Some(10));
        // Transition: C(2)=14 + frozen LO ⌈10/10⌉·4 = 4 → R* = 18.
        assert_eq!(rs[1].transition, Some(18));
        assert!(amc_rtb_schedulable(&[&lo, &hi]));
    }

    #[test]
    fn transition_bound_can_fail_where_lo_passes() {
        let lo = task(0, 10, 1, &[4]);
        let hi = task(1, 20, 2, &[7, 13]);
        let rs = amc_rtb_responses(&[&lo, &hi]);
        // R^LO = 7 + ⌈R/10⌉·4 → 11 → 15 → 15 ✓ (two LO preemptions).
        assert_eq!(rs[1].lo, Some(15));
        // Transition: 13 + ⌈15/10⌉·4 = 13 + 8 = 21 > 20 ⇒ fail.
        assert_eq!(rs[1].transition, None);
        assert!(!amc_rtb_schedulable(&[&lo, &hi]));
    }

    #[test]
    fn dm_order_sorts_by_period_then_level() {
        let a = task(0, 20, 1, &[1]);
        let b = task(1, 10, 2, &[1, 2]);
        let c = task(2, 10, 1, &[1]);
        let order = deadline_monotonic_order(&[&a, &b, &c]);
        let ids: Vec<u32> = order.iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![1, 2, 0]); // period 10 (HI first), then 20
    }

    #[test]
    fn audsley_dominates_dm() {
        // A set DM rejects but Audsley accepts: the classic MC inversion —
        // a long-period HI task needs priority over a short-period LO task.
        let lo = task(0, 10, 1, &[4]);
        let hi = task(1, 12, 2, &[2, 9]);
        // DM: lo (T=10) above hi (T=12).
        // hi transition: 9 + ⌈R_lo… ⌉ — R^LO_hi = 2+4 = 6;
        //   R* = 9 + ⌈6/10⌉·4 = 13 > 12 ⇒ DM fails.
        assert!(!amc_rtb_dm(&[&lo, &hi]));
        // Audsley can put hi on top: hi R* = 9 ≤ 12; lo below: R = 4 + ⌈R/12⌉·2
        //   → 4+2=6 → 6 ✓.
        let order = amc_rtb_audsley(&[&lo, &hi]).expect("Audsley finds an order");
        let ids: Vec<u32> = order.iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![1, 0]);
        assert!(amc_rtb_schedulable(&order.to_vec()));
    }

    #[test]
    fn audsley_rejects_infeasible() {
        let a = task(0, 10, 2, &[6, 9]);
        let b = task(1, 10, 2, &[6, 9]);
        assert!(amc_rtb_audsley(&[&a, &b]).is_none());
    }

    #[test]
    fn empty_and_single_task_sets() {
        assert!(amc_rtb_dm(&[]));
        let t = task(0, 10, 2, &[3, 9]);
        assert!(amc_rtb_dm(&[&t]));
        let too_big = task(1, 10, 2, &[3, 11]);
        assert!(!amc_rtb_dm(&[&too_big]));
    }

    #[test]
    #[should_panic(expected = "dual-criticality")]
    fn rejects_k3_tasks() {
        let t = task(0, 10, 3, &[1, 2, 3]);
        let _ = amc_rtb_responses(&[&t]);
    }
}

#[cfg(test)]
mod smc_tests {
    use super::*;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn smc_counts_interference_at_the_lower_of_the_levels() {
        // HI task below a LO task: LO interference at C(1) only.
        let lo = task(0, 10, 1, &[4]);
        let hi = task(1, 40, 2, &[6, 14]);
        assert!(smc_dm(&[&lo, &hi]));
        // LO task below a HI task: HI interference also capped at C(1).
        let hi_top = task(0, 10, 2, &[4, 9]);
        let lo_low = task(1, 40, 1, &[14]);
        // R_lo = 14 + ⌈R/10⌉·4 → 18 → 22 → 26 → 26 ✓ ≤ 40.
        assert!(smc_dm(&[&hi_top, &lo_low]));
    }

    #[test]
    fn amc_rtb_dominates_smc_on_samples() {
        let sets: Vec<Vec<McTask>> = vec![
            vec![task(0, 10, 1, &[4]), task(1, 40, 2, &[6, 14])],
            vec![task(0, 8, 2, &[2, 3]), task(1, 16, 1, &[4]), task(2, 32, 2, &[4, 8])],
            vec![task(0, 10, 1, &[4]), task(1, 20, 2, &[7, 13])],
            vec![task(0, 5, 1, &[1]), task(1, 10, 2, &[2, 5]), task(2, 50, 1, &[10])],
        ];
        for set in &sets {
            let refs: Vec<&McTask> = set.iter().collect();
            if smc_dm(&refs) {
                assert!(amc_rtb_dm(&refs), "AMC-rtb must accept whatever SMC accepts: {set:?}");
            }
        }
    }

    #[test]
    fn smc_rejects_overload() {
        let a = task(0, 10, 2, &[6, 9]);
        let b = task(1, 10, 2, &[6, 9]);
        assert!(!smc_dm(&[&a, &b]));
        assert!(smc_dm(&[]));
    }
}
