//! Demand-bound-function (DBF) schedulability analysis for dual-criticality
//! EDF-VD — the higher-precision, higher-complexity alternative the paper
//! cites as the approach of Gu et al. \[20\] (building on Ekberg & Yi).
//!
//! For a dual-criticality subset where each HI task `τ_i` is given a
//! *tightened* relative deadline `d_i ≤ p_i` used while the core is in LO
//! mode:
//!
//! * LO-mode demand of any task in an interval of length `t`:
//!   `dbf_LO(τ_i, t) = max(0, ⌊(t − d_i)/p_i⌋ + 1) · c_i(LO)`
//!   (with `d_i = p_i` for LO tasks);
//! * HI-mode demand of a HI task in an interval of length `ℓ` that starts at
//!   the mode switch: a job released before the switch has at least
//!   `p_i − d_i` of its scheduling window left, so
//!   `dbf_HI(τ_i, ℓ) = max(0, ⌊(ℓ − (p_i − d_i))/p_i⌋ + 1) · c_i(HI)`.
//!
//! The subset is schedulable if `Σ dbf_LO(t) ≤ t` for all test points `t` up
//! to a bounded horizon and `Σ_HI dbf_HI(ℓ) ≤ ℓ` likewise. (This is the
//! standard sound carry-over bound without Ekberg & Yi's `done(ℓ)`
//! refinement; it strictly dominates the utilization-based Eq. (7) test in
//! precision for concrete periods while remaining sound.)
//!
//! Deadline assignment searches a grid of uniform shrink factors
//! `x ∈ (0, 1]` with `d_i = max(c_i(LO), ⌈x·p_i⌉)`, always including the
//! canonical Eq.-(7) factor `U_2(1)/(1 − U_1(1))` so the test accepts at
//! least a superset of utilization-schedulable sets in practice.

use mcs_model::{CritLevel, LevelUtils, McTask, Tick, UtilTable};

use crate::dual::dual_vd_factor;

/// Hard cap on the number of demand test points examined per mode, to keep
/// the test polynomial in practice (the paper notes the DBF approach has
/// "much higher complexity"; this cap bounds it explicitly).
const MAX_TEST_POINTS: usize = 200_000;

/// Number of uniform shrink factors tried between 0 and 1 (besides the
/// canonical Eq.-(7) factor).
const GRID: usize = 24;

/// Result of the DBF analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct DbfReport {
    /// Shrink factor whose deadline assignment passed, if any.
    pub factor: Option<f64>,
    /// Horizon used for LO-mode test points (ticks).
    pub lo_horizon: Tick,
    /// Horizon used for HI-mode test points (ticks).
    pub hi_horizon: Tick,
}

impl DbfReport {
    /// Whether some deadline assignment passed both mode tests.
    #[must_use]
    pub fn schedulable(&self) -> bool {
        self.factor.is_some()
    }
}

/// LO-mode demand of one task with (tightened) relative deadline `d` over an
/// interval of length `t`.
#[inline]
#[must_use]
pub fn dbf_lo(period: Tick, d: Tick, c_lo: Tick, t: Tick) -> Tick {
    if t < d {
        0
    } else {
        ((t - d) / period + 1) * c_lo
    }
}

/// HI-mode carry-over demand of a HI task over an interval of length `ell`
/// starting at the mode switch, given its tightened LO-mode deadline `d`.
///
/// Includes Ekberg & Yi's `done` refinement: if the carry-over job's real
/// deadline lies `p − d + e` after the switch (`e ∈ [0, d]`, the switch
/// happened `e` before the job's virtual deadline), LO-mode schedulability
/// guarantees the job already received at least `c_lo − e` units of service,
/// so only `c_hi − max(0, c_lo − e)` remains. Without this term a single
/// heavy HI task (e.g. `c = <10, 45>, p = 50`) is spuriously rejected.
#[inline]
#[must_use]
pub fn dbf_hi(period: Tick, d: Tick, c_lo: Tick, c_hi: Tick, ell: Tick) -> Tick {
    let offset = period - d; // minimum window remaining after the switch
    if ell < offset {
        return 0;
    }
    let n = (ell - offset) / period + 1;
    let e = (ell - offset) % period;
    let done = c_lo.saturating_sub(e);
    (n * c_hi).saturating_sub(done)
}

/// Run the DBF test on a dual-criticality subset.
///
/// # Panics
///
/// Panics if any task has criticality above 2 (the DBF extension is
/// dual-criticality only, like the analyses of \[20\] and Ekberg & Yi).
#[must_use]
pub fn dbf_schedulable(tasks: &[&McTask]) -> DbfReport {
    assert!(
        tasks.iter().all(|t| t.level().get() <= 2),
        "DBF analysis supports dual-criticality subsets only"
    );
    let l1 = CritLevel::new(1);
    let l2 = CritLevel::new(2);

    let table = UtilTable::from_tasks(2, tasks.iter().copied());
    let u_lo_total: f64 = table.util_at_or_above(l1);
    let u_hi_hi: f64 = table.util_jk(l2, l2);

    // Necessary conditions — fail fast and bound the busy-period horizons.
    if u_lo_total > 1.0 + crate::EPS || u_hi_hi > 1.0 + crate::EPS {
        return DbfReport { factor: None, lo_horizon: 0, hi_horizon: 0 };
    }

    let max_period = tasks.iter().map(|t| t.period()).max().unwrap_or(0);
    // Safe horizon: the larger of the hyperperiod and the EDF busy-period
    // bound L = Σ_i (p_i − d_i)·u_i / (1 − U), evaluated with the smallest
    // possible deadlines (d_i = c_i(LO)) so it upper-bounds every candidate
    // assignment; capped by a multiple of the largest period so the point
    // count stays below MAX_TEST_POINTS (the cap is documented pessimism:
    // truncating test points can only make the test *accept* fewer sets,
    // never unsound ones — points beyond the true busy bound are redundant).
    let l1c = CritLevel::new(1);
    let busy_bound = |util: f64, slack_weighted: f64| -> Tick {
        if util >= 1.0 - crate::EPS {
            Tick::MAX
        } else {
            (slack_weighted / (1.0 - util)).ceil() as Tick
        }
    };
    let lo_slack: f64 = tasks.iter().map(|t| (t.period() - t.wcet(l1c)) as f64 * t.util(l1c)).sum();
    let hi_slack: f64 =
        tasks.iter().filter(|t| t.level() == l2).map(|t| t.period() as f64 * t.util(l2)).sum();
    let hyper = mcs_model::hyperperiod(tasks.iter().map(|t| t.period()));
    let horizon_cap = max_period.saturating_mul(64);
    let lo_horizon = hyper.max(busy_bound(u_lo_total, lo_slack)).min(horizon_cap).max(max_period);
    let hi_horizon = hyper.max(busy_bound(u_hi_hi, hi_slack)).min(horizon_cap).max(max_period);

    // Candidate shrink factors: the canonical Eq. (7) x (if any), 1.0, and a
    // uniform grid. Sorted descending so the loosest assignment that works
    // is reported (less runtime pessimism for LO tasks).
    let mut candidates: Vec<f64> = Vec::with_capacity(GRID + 2);
    candidates.push(1.0);
    if let Some(x) = dual_vd_factor(&table) {
        candidates.push(x);
    }
    for g in 1..GRID {
        candidates.push(g as f64 / GRID as f64);
    }
    candidates.sort_by(|a, b| b.partial_cmp(a).expect("factors are finite"));
    candidates.dedup();

    for x in candidates {
        if passes_with_factor(tasks, x, lo_horizon, hi_horizon) {
            return DbfReport { factor: Some(x), lo_horizon, hi_horizon };
        }
    }
    DbfReport { factor: None, lo_horizon, hi_horizon }
}

/// Tightened deadline of a task for a given shrink factor.
#[inline]
fn tightened_deadline(t: &McTask, x: f64) -> Tick {
    if t.level().get() < 2 {
        t.period()
    } else {
        let c_lo = t.wcet(CritLevel::new(1));
        let scaled = (x * t.period() as f64).ceil() as Tick;
        scaled.clamp(c_lo, t.period())
    }
}

fn passes_with_factor(tasks: &[&McTask], x: f64, lo_h: Tick, hi_h: Tick) -> bool {
    let l1 = CritLevel::new(1);
    let l2 = CritLevel::new(2);

    // LO-mode test: demand of *all* tasks with tightened deadlines.
    let mut lo_points: Vec<Tick> = Vec::new();
    for t in tasks {
        let d = tightened_deadline(t, x);
        let mut point = d;
        while point <= lo_h {
            lo_points.push(point);
            match point.checked_add(t.period()) {
                Some(p) => point = p,
                None => break,
            }
            if lo_points.len() > MAX_TEST_POINTS {
                break;
            }
        }
    }
    lo_points.sort_unstable();
    lo_points.dedup();
    lo_points.truncate(MAX_TEST_POINTS);
    for &p in &lo_points {
        let demand: Tick =
            tasks.iter().map(|t| dbf_lo(t.period(), tightened_deadline(t, x), t.wcet(l1), p)).sum();
        if demand > p {
            return false;
        }
    }

    // HI-mode test: carry-over demand of HI tasks only.
    let his: Vec<&&McTask> = tasks.iter().filter(|t| t.level() == l2).collect();
    if his.is_empty() {
        return true;
    }
    // `demand(ℓ) − ℓ` is piecewise linear in ℓ with breakpoints only at
    // each task's per-job deadline offsets (`offset + m·p`) and the ends of
    // the `done` ramps (`offset + m·p + c_lo`); checking all breakpoints is
    // exact for this bound.
    let mut hi_points: Vec<Tick> = Vec::new();
    for t in &his {
        let d = tightened_deadline(t, x);
        let c_lo = t.wcet(l1);
        let mut point = t.period() - d;
        loop {
            if point > hi_h || hi_points.len() > MAX_TEST_POINTS {
                break;
            }
            hi_points.push(point);
            hi_points.push(point.saturating_add(c_lo).min(hi_h));
            match point.checked_add(t.period()) {
                Some(p) => point = p,
                None => break,
            }
        }
    }
    hi_points.sort_unstable();
    hi_points.dedup();
    hi_points.truncate(MAX_TEST_POINTS);
    for &p in &hi_points {
        let demand: Tick = his
            .iter()
            .map(|t| dbf_hi(t.period(), tightened_deadline(t, x), t.wcet(l1), t.wcet(l2), p))
            .sum();
        if demand > p {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::dual_condition;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn dbf_lo_counts_whole_jobs() {
        // period 10, d 10, c 3: demand 3 at t=10..19, 6 at 20..29.
        assert_eq!(dbf_lo(10, 10, 3, 9), 0);
        assert_eq!(dbf_lo(10, 10, 3, 10), 3);
        assert_eq!(dbf_lo(10, 10, 3, 19), 3);
        assert_eq!(dbf_lo(10, 10, 3, 20), 6);
    }

    #[test]
    fn dbf_lo_with_tightened_deadline() {
        // d = 4: first deadline at 4, then every 10.
        assert_eq!(dbf_lo(10, 4, 3, 3), 0);
        assert_eq!(dbf_lo(10, 4, 3, 4), 3);
        assert_eq!(dbf_lo(10, 4, 3, 13), 3);
        assert_eq!(dbf_lo(10, 4, 3, 14), 6);
    }

    #[test]
    fn dbf_hi_carry_over_window() {
        // period 10, d 4 ⇒ offset 6; c_lo 2, c_hi 7.
        assert_eq!(dbf_hi(10, 4, 2, 7, 5), 0);
        // At ℓ = 6 the carry-over job already got c_lo = 2 of service.
        assert_eq!(dbf_hi(10, 4, 2, 7, 6), 5);
        // `done` ramp: one tick later only 1 unit is guaranteed done.
        assert_eq!(dbf_hi(10, 4, 2, 7, 7), 6);
        assert_eq!(dbf_hi(10, 4, 2, 7, 8), 7);
        assert_eq!(dbf_hi(10, 4, 2, 7, 15), 7);
        // Second (regular) job: full c_hi, done still only once.
        assert_eq!(dbf_hi(10, 4, 2, 7, 16), 12);
    }

    #[test]
    fn dbf_hi_is_monotone() {
        let mut prev = 0;
        for ell in 0..100 {
            let v = dbf_hi(10, 4, 2, 7, ell);
            assert!(v >= prev, "dbf_hi not monotone at ℓ={ell}");
            prev = v;
        }
    }

    #[test]
    fn trivially_schedulable_set_passes() {
        let a = task(0, 100, 1, &[10]);
        let b = task(1, 100, 2, &[10, 20]);
        let r = dbf_schedulable(&[&a, &b]);
        assert!(r.schedulable());
        // x = 1 never passes with c_hi > c_lo (the carry-over job may have
        // its real deadline right at the switch), so a tightened factor is
        // chosen — the loosest one on the candidate grid that works.
        let x = r.factor.unwrap();
        assert!(x > 0.0 && x < 1.0, "x = {x}");
    }

    #[test]
    fn overloaded_set_fails() {
        let a = task(0, 10, 1, &[8]);
        let b = task(1, 10, 2, &[5, 9]);
        assert!(!dbf_schedulable(&[&a, &b]).schedulable());
    }

    #[test]
    fn accepts_everything_eq7_accepts_on_samples() {
        // The DBF test with the canonical x candidate should accept sets
        // that the utilization test accepts.
        let cases: Vec<Vec<McTask>> = vec![
            vec![task(0, 10, 1, &[5]), task(1, 100, 2, &[10, 60])],
            vec![task(0, 20, 1, &[5]), task(1, 40, 2, &[8, 20]), task(2, 80, 2, &[4, 10])],
            vec![task(0, 50, 2, &[10, 45])],
        ];
        for ts in &cases {
            let table = UtilTable::from_tasks(2, ts.iter());
            if dual_condition(&table).schedulable {
                let refs: Vec<&McTask> = ts.iter().collect();
                assert!(
                    dbf_schedulable(&refs).schedulable(),
                    "DBF rejected a utilization-schedulable set: {ts:?}"
                );
            }
        }
    }

    #[test]
    fn dbf_dominates_utilization_test_on_some_set() {
        // Harmonic periods with concrete integer WCETs where the
        // utilization bound is pessimistic: U_1(1) + minterm slightly > 1
        // but the concrete demand never exceeds supply.
        // U_1(1) = 0.7, U_2(2) = 0.4, U_2(1) = 0.2:
        // Eq. (7): 0.7 + min{0.4, 0.2/0.6 = 1/3} = 1.0333 > 1 ⇒ reject.
        let a = task(0, 10, 1, &[7]);
        let b = task(1, 30, 2, &[6, 12]);
        let table = UtilTable::from_tasks(2, [&a, &b]);
        assert!(!dual_condition(&table).schedulable);
        // DBF with d_b tightened: LO demand at t=10: 7 + dbf ≤ 10 needs
        // d_b > t − p … grid search decides; just assert it finds something
        // or (if genuinely infeasible) rejects — here it should accept with
        // a mid-range factor because HI carry-over fits the 30-tick period.
        let r = dbf_schedulable(&[&a, &b]);
        assert!(
            r.schedulable(),
            "expected DBF to accept where Eq. (7) rejects (horizon {})",
            r.lo_horizon
        );
    }

    #[test]
    #[should_panic(expected = "dual-criticality")]
    fn rejects_higher_criticality_inputs() {
        let t3 = task(0, 10, 3, &[1, 2, 3]);
        let _ = dbf_schedulable(&[&t3]);
    }

    #[test]
    fn empty_subset_is_schedulable() {
        assert!(dbf_schedulable(&[]).schedulable());
    }
}
