//! Exact-rational evaluation of the schedulability conditions — the
//! cross-validation oracle for the `f64` implementation in
//! [`crate::theorem1`].
//!
//! All quantities (utilizations, λ factors, θ/µ) are computed with
//! [`mcs_model::rational::Ratio`] over `i128`. Deep λ recursions can
//! overflow `i128`; any overflow yields `None` ("undecidable exactly"),
//! which the cross-check suite simply skips. The tolerance contract this
//! module certifies: the `f64` analysis may disagree with the exact one
//! only when some condition's slack `A(k)` is within the `EPS`
//! neighbourhood of zero.

// lint: exact

use mcs_model::rational::Ratio;
use mcs_model::{CritLevel, McTask};

/// Exact per-level utilization sums of a subset.
fn util_jk(tasks: &[&McTask], j: u8, k: u8) -> Option<Ratio> {
    let (jl, kl) = (CritLevel::new(j), CritLevel::new(k));
    let mut sum = Ratio::ZERO;
    for t in tasks.iter().filter(|t| t.level() == jl) {
        let u = Ratio::from_ticks(t.wcet(kl), t.period())?;
        sum = sum.add(u)?;
    }
    Some(sum)
}

/// Exact evaluation of Eq. (4): `Σ_k U_k(k) ≤ 1`.
#[must_use]
pub fn simple_condition_exact(tasks: &[&McTask], levels: u8) -> Option<bool> {
    let mut total = Ratio::ZERO;
    for k in 1..=levels {
        total = total.add(util_jk(tasks, k, k)?)?;
    }
    Some(total <= Ratio::ONE)
}

/// Exact evaluation of Theorem 1: does some condition `k ∈ 1..K-1` hold?
///
/// Mirrors [`crate::theorem1::Theorem1`] exactly (λ validity guards, the
/// min-term guard `U_K(K) < 1`), with `Ratio` in place of `f64`. Returns
/// `None` when `i128` overflows along the way.
#[must_use]
pub fn theorem1_feasible_exact(tasks: &[&McTask], levels: u8) -> Option<bool> {
    assert!(levels >= 1);
    if levels == 1 {
        return simple_condition_exact(tasks, 1);
    }
    let k = levels;

    // λ recursion.
    let mut lambdas: Vec<Option<Ratio>> = vec![None; usize::from(k) + 1];
    lambdas[1] = Some(Ratio::ZERO);
    let mut prod = Ratio::ONE; // Π (1 - λ_x) over valid prefix
    for j in 2..=k {
        let mut num = Ratio::ZERO;
        for x in j..=k {
            num = num.add(util_jk(tasks, x, j - 1)?)?;
        }
        let num = num.div(prod)?;
        let den = Ratio::ONE.sub(util_jk(tasks, j - 1, j - 1)?.div(prod)?)?;
        if !den.is_positive() {
            break;
        }
        let lambda = num.div(den)?;
        if lambda.is_negative() || lambda >= Ratio::ONE {
            break;
        }
        prod = prod.mul(Ratio::ONE.sub(lambda)?)?;
        lambdas[usize::from(j)] = Some(lambda);
    }

    // Min-term.
    let ukk = util_jk(tasks, k, k)?;
    let ukk1 = util_jk(tasks, k, k - 1)?;
    let one_minus = Ratio::ONE.sub(ukk)?;
    let minterm = if one_minus.is_positive() {
        let fraction = ukk1.div(one_minus)?;
        if fraction < ukk {
            fraction
        } else {
            ukk
        }
    } else {
        ukk // ≥ 1: condition will fail on its own
    };

    // Conditions k' = 1..K-1.
    let mut suffix = Ratio::ZERO;
    let mut thetas: Vec<Ratio> = vec![Ratio::ZERO; usize::from(k)];
    for i in (1..k).rev() {
        suffix = suffix.add(util_jk(tasks, i, i)?)?;
        thetas[usize::from(i)] = suffix.add(minterm)?;
    }
    let mut mu = Ratio::ONE;
    for kk in 1..k {
        let Some(lambda) = lambdas[usize::from(kk)] else {
            break;
        };
        mu = mu.mul(Ratio::ONE.sub(lambda)?)?;
        if thetas[usize::from(kk)] <= mu {
            return Some(true);
        }
    }
    Some(false)
}

/// Minimum absolute slack `|µ(k) − θ(k)|` across evaluable conditions, as
/// `f64` — the cross-check uses this to identify boundary cases where the
/// `f64` analysis is allowed to disagree.
// lint: allow(exact-float, reports slack as f64 for the boundary-tolerance check; the walk itself stays rational)
#[must_use]
pub fn min_abs_slack_exact(tasks: &[&McTask], levels: u8) -> Option<f64> {
    if levels == 1 {
        let mut total = Ratio::ZERO;
        for t in tasks {
            total = total.add(Ratio::from_ticks(t.wcet(CritLevel::LO), t.period())?)?;
        }
        return Some((1.0 - total.to_f64()).abs());
    }
    let k = levels;
    let mut best: Option<f64> = None;
    // Recompute pieces (compact duplicate of the feasibility walk).
    let mut lambdas: Vec<Option<Ratio>> = vec![None; usize::from(k) + 1];
    lambdas[1] = Some(Ratio::ZERO);
    let mut prod = Ratio::ONE;
    for j in 2..=k {
        let mut num = Ratio::ZERO;
        for x in j..=k {
            num = num.add(util_jk(tasks, x, j - 1)?)?;
        }
        let num = num.div(prod)?;
        let den = Ratio::ONE.sub(util_jk(tasks, j - 1, j - 1)?.div(prod)?)?;
        if !den.is_positive() {
            break;
        }
        let lambda = num.div(den)?;
        if lambda.is_negative() || lambda >= Ratio::ONE {
            break;
        }
        prod = prod.mul(Ratio::ONE.sub(lambda)?)?;
        lambdas[usize::from(j)] = Some(lambda);
    }
    let ukk = util_jk(tasks, k, k)?;
    let ukk1 = util_jk(tasks, k, k - 1)?;
    let one_minus = Ratio::ONE.sub(ukk)?;
    let minterm = if one_minus.is_positive() {
        let fraction = ukk1.div(one_minus)?;
        if fraction < ukk {
            fraction
        } else {
            ukk
        }
    } else {
        ukk
    };
    let mut suffix = Ratio::ZERO;
    let mut thetas: Vec<Ratio> = vec![Ratio::ZERO; usize::from(k)];
    for i in (1..k).rev() {
        suffix = suffix.add(util_jk(tasks, i, i)?)?;
        thetas[usize::from(i)] = suffix.add(minterm)?;
    }
    let mut mu = Ratio::ONE;
    for kk in 1..k {
        let Some(lambda) = lambdas[usize::from(kk)] else {
            break;
        };
        mu = mu.mul(Ratio::ONE.sub(lambda)?)?;
        let slack = mu.sub(thetas[usize::from(kk)])?.to_f64().abs();
        best = Some(best.map_or(slack, |b: f64| b.min(slack)));
    }
    best.or(Some(f64::INFINITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem1::Theorem1;
    use mcs_model::{TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn agrees_with_f64_on_the_worked_example() {
        let tasks = [
            task(0, 1000, 1, &[450]),
            task(1, 1000, 2, &[175, 326]),
            task(2, 1000, 1, &[280]),
            task(3, 1000, 2, &[339, 633]),
            task(4, 1000, 1, &[300]),
        ];
        let refs: Vec<&McTask> = tasks.iter().collect();
        // Whole set on one core: infeasible both ways.
        let exact = theorem1_feasible_exact(&refs, 2).unwrap();
        let table = UtilTable::from_tasks(2, refs.iter().copied());
        assert_eq!(exact, Theorem1::compute(&table).feasible());
        // The CA-TPA P2 subset {τ2, τ1, τ3}: feasible both ways.
        let subset = [&tasks[1], &tasks[0], &tasks[2]];
        let exact = theorem1_feasible_exact(&subset, 2).unwrap();
        assert!(exact);
        let table = UtilTable::from_tasks(2, subset.iter().copied());
        assert_eq!(exact, Theorem1::compute(&table).feasible());
    }

    #[test]
    fn exact_boundary_cases_decide_correctly() {
        // θ(1) exactly 1: feasible (≤).
        let t = task(0, 10, 2, &[1, 10]);
        assert_eq!(theorem1_feasible_exact(&[&t], 2), Some(true));
        // One tick over: infeasible. (u(2) = 11/10 > 1.)
        let t = task(0, 10, 2, &[1, 11]);
        assert_eq!(theorem1_feasible_exact(&[&t], 2), Some(false));
    }

    #[test]
    fn k1_reduces_to_simple_condition() {
        let a = task(0, 10, 1, &[5]);
        let b = task(1, 10, 1, &[5]);
        assert_eq!(theorem1_feasible_exact(&[&a, &b], 1), Some(true));
        let c = task(2, 10, 1, &[6]);
        assert_eq!(theorem1_feasible_exact(&[&a, &c], 1), Some(false));
    }

    #[test]
    fn slack_is_zero_at_exact_boundary() {
        let t = task(0, 10, 2, &[1, 10]);
        let s = min_abs_slack_exact(&[&t], 2).unwrap();
        assert!(s.abs() < 1e-15, "slack {s}");
    }

    #[test]
    fn empty_subset_is_feasible() {
        assert_eq!(theorem1_feasible_exact(&[], 3), Some(true));
        assert_eq!(simple_condition_exact(&[], 4), Some(true));
    }
}
