//! Zero-allocation probe kernel for Theorem 1 — the hot path of every
//! probe-based partitioner.
//!
//! The generic [`Theorem1::compute`](crate::Theorem1::compute) path builds a
//! full `Theorem1` value (λ's, θ's, µ's, flags — ~40 field writes) through
//! the [`LevelUtils`] abstraction, re-deriving each `u_i(k) = c_i(k)/p_i`
//! division on every `util_jk` call of every probe. Inside a partitioning
//! sweep that cost is paid once per (task, core) pair per placement, which
//! dominates the experiment pipeline (see `mcs-exp perf`).
//!
//! This module is the allocation-free specialization:
//!
//! * [`TaskRow`] — a task's per-level utilization row, divided out **once**
//!   per task set;
//! * [`CoreSums`] — the per-core triangular `U_j(k)` sums in a fixed-size
//!   array, maintained incrementally with the exact `+=`/clamped `-=`
//!   sequence of [`mcs_model::UtilTable::add`] / `remove`;
//! * [`Probe`] — the compact result (own-level total + available
//!   utilizations `A(k)`), answering the queries the partitioners need:
//!   feasibility, Eq. (9) core utilization, the monotone slack variant;
//! * [`Verdict`] — the fused fast path: one kernel sweep, monomorphized
//!   over the access pattern (resident / `+task` / `−task+task`), that
//!   yields every reading the placement loops consume without
//!   materializing the `A(k)` array or re-scanning it through the
//!   [`Probe`] accessors.
//!
//! # Equivalence contract (bit-identical, not merely close)
//!
//! The kernel performs **the same floating-point operations in the same
//! order** as `Theorem1::compute` over a [`mcs_model::WithTask`] /
//! [`mcs_model::WithoutTask`] view of a [`mcs_model::UtilTable`] that was
//! fed the same task sequence. Utilizations are deterministic functions of
//! integer ticks, the sums are accumulated by an identical `+=` sequence,
//! and the λ/θ/µ recursions below are transcriptions (not refactorings) of
//! the reference loops — so every probe result, every partitioner decision
//! and every downstream figure number is bit-for-bit identical to the
//! generic path. The `probe-engine-consistency` audit rule re-verifies this
//! on every audited partition, and `tests/probe_engine_differential.rs`
//! fuzzes it with proptest.

use mcs_model::{CritLevel, LevelUtils, McTask, MAX_LEVELS};

use crate::EPS;

/// `MAX_LEVELS` as a `usize`, for fixed-size array bounds.
pub const ML: usize = MAX_LEVELS as usize;

/// Length of the lower-triangular `U_j(k)` storage (`k ≤ j ≤ MAX_LEVELS`).
pub const TRI_LEN: usize = ML * (ML + 1) / 2;

/// Index of `(j, k)` (1-based levels, `k ≤ j`) in the triangle.
#[inline]
pub(crate) fn tri(j: u8, k: u8) -> usize {
    debug_assert!(1 <= k && k <= j && j <= MAX_LEVELS);
    let j = usize::from(j - 1);
    j * (j + 1) / 2 + usize::from(k - 1)
}

/// A task's criticality level and per-level utilization row, precomputed
/// once so probes never re-divide `c_i(k)/p_i`.
///
/// `util(k)` returns exactly the same `f64` as [`McTask::util`] — a cached
/// copy of a deterministic division — so substituting rows for tasks cannot
/// change any probe result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskRow {
    pub(crate) level: u8,
    /// `utils[k-1] = u(k)` for `k ≤ level`, 0.0 above.
    pub(crate) utils: [f64; ML],
}

impl TaskRow {
    /// Precompute the row of one task.
    #[must_use]
    pub fn new(task: &McTask) -> Self {
        let level = task.level().get();
        let mut utils = [0.0; ML];
        for k in CritLevel::up_to(level) {
            utils[k.index()] = task.util(k);
        }
        Self { level, utils }
    }

    /// The task's own criticality level.
    #[inline]
    #[must_use]
    pub fn level(&self) -> CritLevel {
        CritLevel::new(self.level)
    }

    /// Cached `u(k)`; 0.0 for `k > l_i` (callers on the hot path only ask
    /// for `k ≤ l_i`).
    #[inline]
    #[must_use]
    pub fn util(&self, k: CritLevel) -> f64 {
        self.utils[k.index()]
    }

    /// Cached maximum utilization `u_i(l_i)`.
    #[inline]
    #[must_use]
    pub fn util_own(&self) -> f64 {
        self.utils[usize::from(self.level - 1)]
    }
}

/// Per-core triangular `U_j(k)` sums in fixed-size storage — the
/// allocation-free twin of [`mcs_model::UtilTable`].
///
/// `add`/`remove` apply the same per-entry `+=` / clamped `-=` in the same
/// ascending-`k` order as the `UtilTable` methods, so a `CoreSums` fed the
/// same row sequence holds bit-identical sums.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreSums {
    pub(crate) k: u8,
    pub(crate) sums: [f64; TRI_LEN],
    pub(crate) tasks: u32,
}

impl CoreSums {
    /// Empty sums for a `k`-level system.
    #[must_use]
    pub fn new(k: u8) -> Self {
        assert!((1..=MAX_LEVELS).contains(&k), "system level count {k} out of 1..={MAX_LEVELS}");
        Self { k, sums: [0.0; TRI_LEN], tasks: 0 }
    }

    /// Reset to an empty table for a (possibly different) level count.
    pub fn reset(&mut self, k: u8) {
        assert!((1..=MAX_LEVELS).contains(&k), "system level count {k} out of 1..={MAX_LEVELS}");
        self.k = k;
        self.sums = [0.0; TRI_LEN];
        self.tasks = 0;
    }

    /// System criticality level count `K`.
    #[inline]
    #[must_use]
    pub fn num_levels(&self) -> u8 {
        self.k
    }

    /// Number of accumulated rows.
    #[inline]
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks as usize
    }

    /// Accumulate a task row (mirrors `UtilTable::add`).
    pub fn add(&mut self, row: &TaskRow) {
        assert!(row.level <= self.k, "task level {} exceeds system K={}", row.level, self.k);
        for kk in 1..=row.level {
            self.sums[tri(row.level, kk)] += row.utils[usize::from(kk - 1)];
        }
        self.tasks += 1;
    }

    /// Remove a previously added row (mirrors `UtilTable::remove`,
    /// including the clamp of negative floating-point residue to zero).
    pub fn remove(&mut self, row: &TaskRow) {
        assert!(row.level <= self.k, "task level {} exceeds system K={}", row.level, self.k);
        assert!(self.tasks > 0, "removing a task from an empty table");
        for kk in 1..=row.level {
            let e = &mut self.sums[tri(row.level, kk)];
            *e = (*e - row.utils[usize::from(kk - 1)]).max(0.0);
        }
        self.tasks -= 1;
    }

    /// Replace `minus` by `plus` in one O(K) delta — the remove-then-add
    /// composition, applied per entry in the same clamp-then-accumulate
    /// order as [`Swapped`], so the committed sums are bit-identical to
    /// the swap probe that justified the move (and to a sequential
    /// [`Self::remove`] + [`Self::add`]).
    // lint: no_alloc
    pub fn swap(&mut self, minus: &TaskRow, plus: &TaskRow) {
        assert!(minus.level <= self.k, "task level {} exceeds system K={}", minus.level, self.k);
        assert!(plus.level <= self.k, "task level {} exceeds system K={}", plus.level, self.k);
        assert!(self.tasks > 0, "swapping a task out of an empty table");
        for kk in 1..=minus.level {
            let e = &mut self.sums[tri(minus.level, kk)];
            *e = (*e - minus.utils[usize::from(kk - 1)]).max(0.0);
        }
        for kk in 1..=plus.level {
            self.sums[tri(plus.level, kk)] += plus.utils[usize::from(kk - 1)];
        }
    }

    /// Raw `U_j(k)` lookup with the same out-of-triangle semantics as
    /// `UtilTable::util_jk`.
    #[inline]
    #[must_use]
    fn entry(&self, j: u8, kk: u8) -> f64 {
        if kk > j || j > self.k {
            0.0
        } else {
            self.sums[tri(j, kk)]
        }
    }

    /// Evaluate Theorem 1 on the current sums (no hypothetical task) —
    /// bit-identical to `Theorem1::compute(&table)`.
    #[must_use]
    pub fn evaluate(&self) -> Probe {
        kernel(self, &Resident)
    }

    /// Evaluate Theorem 1 with `plus` hypothetically added — bit-identical
    /// to `Theorem1::compute(&WithTask::new(&table, task))`.
    #[must_use]
    pub fn probe(&self, plus: &TaskRow) -> Probe {
        assert!(plus.level <= self.k);
        kernel(self, &Added(plus))
    }

    /// Evaluate Theorem 1 with `minus` hypothetically removed and `plus`
    /// added — bit-identical to
    /// `Theorem1::compute(&WithTask::new(&WithoutTask::new(&table, minus), plus))`,
    /// the repair-move probe.
    #[must_use]
    pub fn probe_swap(&self, minus: &TaskRow, plus: &TaskRow) -> Probe {
        assert!(minus.level <= self.k && plus.level <= self.k);
        kernel(self, &Swapped(minus, plus))
    }

    /// Fused single-sweep verdict of [`Self::evaluate`] — bit-identical
    /// readings, no intermediate [`Probe`].
    #[must_use]
    pub fn evaluate_verdict(&self) -> Verdict {
        kernel_verdict(self, &Resident)
    }

    /// Fused single-sweep verdict of [`Self::probe`] — the placement
    /// loops' hot path. Every [`Verdict`] field is bit-identical to the
    /// corresponding accessor of the [`Probe`] this replaces.
    #[must_use]
    pub fn probe_verdict(&self, plus: &TaskRow) -> Verdict {
        assert!(plus.level <= self.k);
        kernel_verdict(self, &Added(plus))
    }

    /// Fused single-sweep verdict of [`Self::probe_swap`].
    #[must_use]
    pub fn probe_swap_verdict(&self, minus: &TaskRow, plus: &TaskRow) -> Verdict {
        assert!(minus.level <= self.k && plus.level <= self.k);
        kernel_verdict(self, &Swapped(minus, plus))
    }

    /// Eq. (4) left side `Σ_k U_k(k)` with `plus` hypothetically added —
    /// bit-identical to `WithTask::new(&table, task).own_level_total()`,
    /// the cheap first stage of the two-stage fit test.
    #[must_use]
    pub fn own_level_total_probe(&self, plus: &TaskRow) -> f64 {
        let view = Added(plus);
        let mut s = 0.0;
        for kk in 1..=self.k {
            s += view.at(self, kk, kk);
        }
        s
    }
}

impl LevelUtils for CoreSums {
    #[inline]
    fn num_levels(&self) -> u8 {
        self.k
    }

    #[inline]
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        self.entry(j.get(), k.get())
    }
}

/// Raw in-triangle access to one core's running `U_j(k)` sums — the
/// storage abstraction the kernels are generic over. Implemented by the
/// fixed-array [`CoreSums`] and by the strided per-core view of the
/// struct-of-arrays [`crate::CoreBank`]; both return the **same `f64`
/// values** for the same accumulated row sequence (identical `+=`/clamped
/// `-=` op order), so the monomorphized kernels below are bit-identical
/// over either backing store.
pub(crate) trait SumsRead {
    /// System criticality level count `K`.
    fn num_levels(&self) -> u8;

    /// Raw `U_j(k)` for in-triangle `(j, kk)` (`1 ≤ kk ≤ j ≤ K`); callers
    /// never leave the triangle, where `UtilTable::util_jk`'s out-of-range
    /// guard is a no-op.
    fn raw(&self, j: u8, kk: u8) -> f64;
}

impl SumsRead for CoreSums {
    #[inline]
    fn num_levels(&self) -> u8 {
        self.k
    }

    #[inline]
    fn raw(&self, j: u8, kk: u8) -> f64 {
        self.sums[tri(j, kk)]
    }
}

/// Monomorphized `U_j(k)` access of the probed view — one implementation
/// per access pattern, so the kernel's inner loops compile without per-read
/// `Option` branches. Kernel call sites stay inside the triangle
/// (`k ≤ j ≤ K`), where `UtilTable::util_jk`'s out-of-range guard is a
/// no-op, so the direct reads below are bit-identical to the guarded
/// [`CoreSums::entry`].
pub(crate) trait ProbeView {
    /// `U_j(k)` of the viewed subset for in-triangle `(j, kk)`.
    fn at<S: SumsRead>(&self, sums: &S, j: u8, kk: u8) -> f64;
}

/// The resident subset, unchanged (`evaluate`).
pub(crate) struct Resident;

impl ProbeView for Resident {
    #[inline]
    fn at<S: SumsRead>(&self, sums: &S, j: u8, kk: u8) -> f64 {
        sums.raw(j, kk)
    }
}

/// The resident subset plus one hypothetical row — the `WithTask` reading.
pub(crate) struct Added<'a>(pub(crate) &'a TaskRow);

impl ProbeView for Added<'_> {
    #[inline]
    fn at<S: SumsRead>(&self, sums: &S, j: u8, kk: u8) -> f64 {
        let v = sums.raw(j, kk);
        if j == self.0.level {
            v + self.0.utils[usize::from(kk - 1)]
        } else {
            v
        }
    }
}

/// One row removed (clamped like `WithoutTask`), one added on top of the
/// removal — the composition order the repair-move probe uses.
pub(crate) struct Swapped<'a>(pub(crate) &'a TaskRow, pub(crate) &'a TaskRow);

impl ProbeView for Swapped<'_> {
    #[inline]
    fn at<S: SumsRead>(&self, sums: &S, j: u8, kk: u8) -> f64 {
        let mut v = sums.raw(j, kk);
        if j == self.0.level {
            v = (v - self.0.utils[usize::from(kk - 1)]).max(0.0);
        }
        if j == self.1.level {
            v += self.1.utils[usize::from(kk - 1)];
        }
        v
    }
}

/// Compact Theorem-1 verdict of one probe: the own-level total (Eq. (4))
/// and the available utilizations `A(k)` (Eq. (8)), `NaN` marking an
/// undefined condition. All queries replicate the corresponding
/// [`crate::Theorem1`] accessors bit-for-bit.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    k: u8,
    own_level_total: f64,
    /// `A(k)` for `k ∈ 1..K-1` at index `k-1`; `NaN` when undefined (some
    /// `λ_j` invalid or the min-term fraction blew up).
    avail: [f64; ML],
}

impl Probe {
    /// Eq. (4) LHS — every task counted at its own level.
    #[inline]
    #[must_use]
    pub fn own_level_total(&self) -> f64 {
        self.own_level_total
    }

    /// Whether the simple condition Eq. (4) holds (mirrors
    /// [`crate::simple_condition`]).
    #[inline]
    #[must_use]
    pub fn plain_edf_sufficient(&self) -> bool {
        self.own_level_total <= 1.0 + EPS
    }

    /// Available utilization `A(k)`, `None` when undefined — mirrors
    /// [`crate::Theorem1::available`].
    #[must_use]
    pub fn available(&self, k: u8) -> Option<f64> {
        if self.k >= 2 && (1..=self.k - 1).contains(&k) {
            let a = self.avail[usize::from(k - 1)];
            (!a.is_nan()).then_some(a)
        } else {
            None
        }
    }

    /// Whether the subset passes Theorem 1 — mirrors
    /// [`crate::Theorem1::feasible`].
    #[must_use]
    pub fn feasible(&self) -> bool {
        if self.k == 1 {
            return self.own_level_total <= 1.0 + EPS;
        }
        (1..=self.k - 1).any(|k| matches!(self.available(k), Some(a) if a >= -EPS))
    }

    /// Core utilization Eq. (9), max-over-satisfied-conditions reading —
    /// mirrors [`crate::Theorem1::core_utilization`].
    #[must_use]
    pub fn core_utilization(&self) -> Option<f64> {
        if self.k == 1 {
            return (self.own_level_total <= 1.0 + EPS).then_some(self.own_level_total);
        }
        let mut best: Option<f64> = None;
        for k in 1..=self.k - 1 {
            if let Some(a) = self.available(k) {
                if a >= -EPS {
                    let v = 1.0 - a;
                    best = Some(best.map_or(v, |b: f64| b.max(v)));
                }
            }
        }
        best
    }

    /// The monotone best-slack reading of Eq. (9) — mirrors
    /// [`crate::Theorem1::core_utilization_slack`].
    #[must_use]
    pub fn core_utilization_slack(&self) -> Option<f64> {
        if self.k == 1 {
            return (self.own_level_total <= 1.0 + EPS).then_some(self.own_level_total);
        }
        let mut best_slack: Option<f64> = None;
        for k in 1..=self.k - 1 {
            if let Some(a) = self.available(k) {
                if a >= -EPS {
                    best_slack = Some(best_slack.map_or(a, |b: f64| b.max(a)));
                }
            }
        }
        best_slack.map(|a| 1.0 - a)
    }
}

/// Fused Theorem-1 verdict of one probe: everything the placement loops
/// read, computed in a single kernel sweep without materializing (or
/// re-scanning) the `A(k)` array of a [`Probe`]. Each field is
/// bit-identical to the corresponding [`Probe`] / [`crate::Theorem1`]
/// accessor on the same view.
#[derive(Clone, Copy, Debug)]
pub struct Verdict {
    /// Eq. (4) LHS `Σ_k U_k(k)` — mirrors [`Probe::own_level_total`].
    pub own_level_total: f64,
    /// Eq. (9) core utilization (max-over-satisfied-conditions reading);
    /// `None` when Theorem 1 rejects the subset — mirrors
    /// [`Probe::core_utilization`].
    pub core_utilization: Option<f64>,
    /// The monotone best-slack reading of Eq. (9) — mirrors
    /// [`Probe::core_utilization_slack`].
    pub core_utilization_slack: Option<f64>,
}

impl Verdict {
    /// Whether the subset passes Theorem 1 — mirrors [`Probe::feasible`].
    /// (A subset is feasible exactly when Eq. (9) is defined: for `K = 1`
    /// both reduce to Eq. (4), for `K ≥ 2` both require some satisfied
    /// `A(k) ≥ −EPS`.)
    #[inline]
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.core_utilization.is_some()
    }

    /// Whether the simple condition Eq. (4) holds — mirrors
    /// [`Probe::plain_edf_sufficient`].
    #[inline]
    #[must_use]
    pub fn plain_edf_sufficient(&self) -> bool {
        self.own_level_total <= 1.0 + EPS
    }
}

/// The Theorem-1 kernel: a line-by-line transcription of
/// `Theorem1::compute` with `util_jk` inlined to the monomorphized
/// [`ProbeView`]. Any edit here must preserve the exact operation order —
/// see the module docs.
pub(crate) fn kernel<S: SumsRead, V: ProbeView>(sums: &S, v: &V) -> Probe {
    let k = sums.num_levels();

    // own_level_total(): ascending-k fold, as the LevelUtils default.
    let mut own_level_total = 0.0;
    for kk in 1..=k {
        own_level_total += v.at(sums, kk, kk);
    }

    let mut out = Probe { k, own_level_total, avail: [f64::NAN; ML] };
    if k == 1 {
        return out;
    }

    // --- λ recursion (Eq. (6)), λ_1 = 0. ---
    let mut lambdas = [f64::NAN; ML];
    lambdas[0] = 0.0;
    let mut prod = 1.0; // Π_{x=1}^{j-1} (1 - λ_x)
    for j in 2..=k {
        let prev = j - 1;
        // Numerator: Σ_{x=j}^{K} U_x(j-1), scaled by 1/prod.
        let mut num = 0.0;
        for x in j..=k {
            num += v.at(sums, x, prev);
        }
        num /= prod;
        // Denominator: 1 - U_{j-1}(j-1)/prod.
        let den = 1.0 - v.at(sums, prev, prev) / prod;
        let lambda = if den > EPS { num / den } else { f64::NAN };
        if lambda.is_finite() && (0.0..1.0).contains(&lambda) {
            lambdas[usize::from(j - 1)] = lambda;
            prod *= 1.0 - lambda;
        } else {
            // λ_j invalid ⇒ λ_{j'} for j' > j invalid too; stop here.
            break;
        }
    }

    // --- min-term: min{ U_K(K), U_K(K-1)/(1-U_K(K)) }. ---
    let ukk = v.at(sums, k, k);
    let ukk1 = v.at(sums, k, k - 1);
    let fraction = if 1.0 - ukk > EPS { ukk1 / (1.0 - ukk) } else { f64::INFINITY };
    let minterm = ukk.min(fraction);

    // --- θ(k) suffix sums, then A(k) = µ(k) − θ(k). ---
    let mut suffix = 0.0;
    let mut thetas = [0.0f64; ML];
    for i in (1..=k - 1).rev() {
        suffix += v.at(sums, i, i);
        thetas[usize::from(i - 1)] = suffix + minterm;
    }
    let mut muprod = 1.0;
    for kk in 1..=k - 1 {
        let idx = usize::from(kk - 1);
        let lambda = lambdas[idx];
        if lambda.is_nan() {
            // Invalid λ — µ(k) undefined from here on; A(k) stays NaN.
            break;
        }
        muprod *= 1.0 - lambda;
        // available(): defined only when θ is finite (µ always is).
        if thetas[idx].is_finite() {
            out.avail[idx] = muprod - thetas[idx];
        }
    }
    out
}

/// The fused verdict kernel: the same floating-point operations as
/// [`kernel`] followed by the [`Probe`] Eq. (9) folds, in one sweep.
///
/// Three structural shortcuts, none of which changes any emitted bit:
///
/// * the λ recursion and the µ product run fused — the λ loop's running
///   `Π (1−λ_x)` and the µ loop's product perform the same multiplication
///   sequence (the µ loop's extra `1·(1−λ_1)` factor is exact because
///   `λ_1 = 0`), so one running product serves both roles;
/// * `λ_K` is never derived — the reference computes it, but no Eq. (9)
///   condition reads it (`A(k)` stops at `K−1`);
/// * the `A(k) ≥ −EPS` folds run inside the µ loop, in the same ascending
///   order [`Probe::core_utilization`] / [`Probe::core_utilization_slack`]
///   scan the materialized `A(k)` array, over the same values.
pub(crate) fn kernel_verdict<S: SumsRead, V: ProbeView>(sums: &S, v: &V) -> Verdict {
    let k = sums.num_levels();

    // own_level_total(): ascending-k fold, as the LevelUtils default.
    let mut own_level_total = 0.0;
    for kk in 1..=k {
        own_level_total += v.at(sums, kk, kk);
    }
    if k == 1 {
        let u = (own_level_total <= 1.0 + EPS).then_some(own_level_total);
        return Verdict { own_level_total, core_utilization: u, core_utilization_slack: u };
    }

    // --- min-term and θ(k) suffix sums (independent of the λ's). ---
    let ukk = v.at(sums, k, k);
    let ukk1 = v.at(sums, k, k - 1);
    let fraction = if 1.0 - ukk > EPS { ukk1 / (1.0 - ukk) } else { f64::INFINITY };
    let minterm = ukk.min(fraction);
    let mut suffix = 0.0;
    let mut thetas = [0.0f64; ML];
    for i in (1..=k - 1).rev() {
        suffix += v.at(sums, i, i);
        thetas[usize::from(i - 1)] = suffix + minterm;
    }

    // --- fused λ recursion (Eq. (6), λ_1 = 0), µ product, Eq. (9) folds. ---
    let mut best: Option<f64> = None;
    let mut best_slack: Option<f64> = None;
    let mut muprod = 1.0; // Π (1 − λ_x): the λ scale and µ(k) at once.
    for kk in 1..=k - 1 {
        if kk >= 2 {
            let prev = kk - 1;
            let mut num = 0.0;
            for x in kk..=k {
                num += v.at(sums, x, prev);
            }
            num /= muprod;
            let den = 1.0 - v.at(sums, prev, prev) / muprod;
            let lambda = if den > EPS { num / den } else { f64::NAN };
            if !(lambda.is_finite() && (0.0..1.0).contains(&lambda)) {
                // λ_kk invalid ⇒ µ(k) undefined from here on.
                break;
            }
            muprod *= 1.0 - lambda;
        }
        let idx = usize::from(kk - 1);
        // available(): defined only when θ is finite (µ always is).
        if thetas[idx].is_finite() {
            let a = muprod - thetas[idx];
            if a >= -EPS {
                let util = 1.0 - a;
                best = Some(best.map_or(util, |b: f64| b.max(util)));
                best_slack = Some(best_slack.map_or(a, |b: f64| b.max(a)));
            }
        }
    }
    Verdict {
        own_level_total,
        core_utilization: best,
        core_utilization_slack: best_slack.map(|a| 1.0 - a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Theorem1;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable, WithTask, WithoutTask};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    /// Bitwise comparison of an `Option<f64>` pair (the accessors never
    /// surface NaN, so bit equality is the right notion).
    fn opt_bits(a: Option<f64>, b: Option<f64>) -> bool {
        match (a, b) {
            (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
            (None, None) => true,
            _ => false,
        }
    }

    fn assert_probe_matches<U: LevelUtils>(p: &Probe, reference: &U) {
        let t = Theorem1::compute(reference);
        assert_eq!(p.feasible(), t.feasible());
        assert!(opt_bits(p.core_utilization(), t.core_utilization()));
        assert!(opt_bits(p.core_utilization_slack(), t.core_utilization_slack()));
        assert_eq!(p.own_level_total().to_bits(), reference.own_level_total().to_bits());
        for k in 1..=MAX_LEVELS {
            assert!(opt_bits(p.available(k), t.available(k)), "A({k}) mismatch");
        }
    }

    fn assert_verdict_matches(v: &Verdict, p: &Probe) {
        assert_eq!(v.own_level_total.to_bits(), p.own_level_total().to_bits());
        assert!(opt_bits(v.core_utilization, p.core_utilization()));
        assert!(opt_bits(v.core_utilization_slack, p.core_utilization_slack()));
        assert_eq!(v.feasible(), p.feasible());
        assert_eq!(v.plain_edf_sufficient(), p.plain_edf_sufficient());
    }

    fn mixed_tasks() -> Vec<McTask> {
        vec![
            task(0, 1000, 2, &[339, 633]),
            task(1, 1000, 2, &[175, 326]),
            task(2, 500, 1, &[200]),
            task(3, 200, 3, &[30, 55, 70]),
            task(4, 100, 1, &[25]),
        ]
    }

    #[test]
    fn row_caches_the_exact_divisions() {
        for t in mixed_tasks() {
            let row = TaskRow::new(&t);
            assert_eq!(row.level(), t.level());
            for k in CritLevel::up_to(t.level().get()) {
                assert_eq!(row.util(k).to_bits(), t.util(k).to_bits());
            }
            assert_eq!(row.util_own().to_bits(), t.util_own().to_bits());
        }
    }

    #[test]
    fn sums_mirror_util_table_bitwise() {
        let tasks = mixed_tasks();
        let mut table = UtilTable::new(3);
        let mut sums = CoreSums::new(3);
        for t in &tasks {
            table.add(t);
            sums.add(&TaskRow::new(t));
            for j in CritLevel::up_to(3) {
                for k in CritLevel::up_to(j.get()) {
                    assert_eq!(sums.util_jk(j, k).to_bits(), table.util_jk(j, k).to_bits());
                }
            }
        }
        assert_eq!(sums.task_count(), table.task_count());
        // Remove in a different order than insertion, exercising the clamp.
        for t in tasks.iter().rev() {
            table.remove(t);
            sums.remove(&TaskRow::new(t));
            for j in CritLevel::up_to(3) {
                for k in CritLevel::up_to(j.get()) {
                    assert_eq!(sums.util_jk(j, k).to_bits(), table.util_jk(j, k).to_bits());
                }
            }
        }
    }

    #[test]
    fn evaluate_matches_reference_compute() {
        let tasks = mixed_tasks();
        let mut table = UtilTable::new(3);
        let mut sums = CoreSums::new(3);
        for t in &tasks {
            table.add(t);
            sums.add(&TaskRow::new(t));
            assert_probe_matches(&sums.evaluate(), &table);
        }
    }

    #[test]
    fn probe_matches_with_task_view() {
        let tasks = mixed_tasks();
        let extra = task(9, 70, 3, &[5, 9, 21]);
        let mut table = UtilTable::new(3);
        let mut sums = CoreSums::new(3);
        // Probe against every prefix, including the empty core.
        for t in &tasks {
            assert_probe_matches(
                &sums.probe(&TaskRow::new(&extra)),
                &WithTask::new(&table, &extra),
            );
            table.add(t);
            sums.add(&TaskRow::new(t));
        }
        assert_probe_matches(&sums.probe(&TaskRow::new(&extra)), &WithTask::new(&table, &extra));
    }

    #[test]
    fn probe_swap_matches_composed_views() {
        let tasks = mixed_tasks();
        let stuck = task(9, 70, 2, &[5, 21]);
        let table = UtilTable::from_tasks(3, tasks.iter());
        let mut sums = CoreSums::new(3);
        for t in &tasks {
            sums.add(&TaskRow::new(t));
        }
        for cand in &tasks {
            let without = WithoutTask::new(&table, cand);
            let reference = WithTask::new(&without, &stuck);
            let p = sums.probe_swap(&TaskRow::new(cand), &TaskRow::new(&stuck));
            assert_probe_matches(&p, &reference);
        }
    }

    #[test]
    fn swap_commit_matches_remove_then_add_and_the_swap_probe() {
        let tasks = mixed_tasks();
        let incoming = task(9, 70, 2, &[5, 21]);
        let mut base = CoreSums::new(3);
        for t in &tasks {
            base.add(&TaskRow::new(t));
        }
        for cand in &tasks {
            let minus = TaskRow::new(cand);
            let plus = TaskRow::new(&incoming);
            // The committed swap must land exactly on the probed view…
            let probed = base.probe_swap(&minus, &plus);
            let mut swapped = base.clone();
            swapped.swap(&minus, &plus);
            let evaluated = swapped.evaluate();
            assert_eq!(evaluated.own_level_total().to_bits(), probed.own_level_total().to_bits());
            assert!(opt_bits(evaluated.core_utilization(), probed.core_utilization()));
            // …and on the sequential remove-then-add composition.
            let mut sequential = base.clone();
            sequential.remove(&minus);
            sequential.add(&plus);
            assert_eq!(swapped, sequential);
        }
    }

    #[test]
    fn own_level_total_probe_matches_simple_condition_input() {
        let tasks = mixed_tasks();
        let extra = task(9, 70, 1, &[30]);
        let table = UtilTable::from_tasks(3, tasks.iter());
        let mut sums = CoreSums::new(3);
        for t in &tasks {
            sums.add(&TaskRow::new(t));
        }
        let view = WithTask::new(&table, &extra);
        assert_eq!(
            sums.own_level_total_probe(&TaskRow::new(&extra)).to_bits(),
            view.own_level_total().to_bits()
        );
    }

    #[test]
    fn k1_degenerate_case() {
        let mut sums = CoreSums::new(1);
        sums.add(&TaskRow::new(&task(0, 10, 1, &[5])));
        let p = sums.evaluate();
        assert!(p.feasible());
        assert_eq!(p.core_utilization(), Some(0.5));
        sums.add(&TaskRow::new(&task(1, 10, 1, &[6])));
        let p = sums.evaluate();
        assert!(!p.feasible());
        assert_eq!(p.core_utilization(), None);
    }

    #[test]
    fn infeasible_probe_reports_none() {
        let mut sums = CoreSums::new(2);
        sums.add(&TaskRow::new(&task(0, 10, 2, &[6, 9])));
        let p = sums.probe(&TaskRow::new(&task(1, 10, 2, &[6, 9])));
        assert!(!p.feasible());
        assert_eq!(p.core_utilization(), None);
        assert_eq!(p.core_utilization_slack(), None);
    }

    #[test]
    fn paper_worked_example() {
        // τ4 on an empty core: U = min{0.633, 0.339/0.367} = 0.633.
        let sums = CoreSums::new(2);
        let p = sums.probe(&TaskRow::new(&task(0, 1000, 2, &[339, 633])));
        assert!((p.core_utilization().unwrap() - 0.633).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut sums = CoreSums::new(2);
        sums.add(&TaskRow::new(&task(0, 10, 2, &[2, 5])));
        sums.reset(4);
        assert_eq!(sums.num_levels(), 4);
        assert_eq!(sums.task_count(), 0);
        assert_eq!(sums.evaluate().core_utilization(), Some(0.0));
    }

    #[test]
    fn verdicts_match_probe_accessors_bitwise() {
        let tasks = mixed_tasks();
        let extra = TaskRow::new(&task(9, 70, 3, &[5, 9, 21]));
        let mut sums = CoreSums::new(3);
        for t in &tasks {
            assert_verdict_matches(&sums.probe_verdict(&extra), &sums.probe(&extra));
            sums.add(&TaskRow::new(t));
            assert_verdict_matches(&sums.evaluate_verdict(), &sums.evaluate());
        }
        for cand in &tasks {
            let minus = TaskRow::new(cand);
            assert_verdict_matches(
                &sums.probe_swap_verdict(&minus, &extra),
                &sums.probe_swap(&minus, &extra),
            );
        }
    }

    #[test]
    fn verdict_degenerate_and_infeasible_cases() {
        // K = 1: both readings collapse to Eq. (4).
        let mut k1 = CoreSums::new(1);
        k1.add(&TaskRow::new(&task(0, 10, 1, &[5])));
        assert_verdict_matches(&k1.evaluate_verdict(), &k1.evaluate());
        k1.add(&TaskRow::new(&task(1, 10, 1, &[6])));
        assert_verdict_matches(&k1.evaluate_verdict(), &k1.evaluate());
        assert!(!k1.evaluate_verdict().feasible());

        // An overloaded K = 2 probe: infeasible through the λ break path.
        let mut sums = CoreSums::new(2);
        sums.add(&TaskRow::new(&task(0, 10, 2, &[6, 9])));
        let row = TaskRow::new(&task(1, 10, 2, &[6, 9]));
        assert_verdict_matches(&sums.probe_verdict(&row), &sums.probe(&row));
        assert!(!sums.probe_verdict(&row).feasible());
    }

    #[test]
    #[should_panic(expected = "exceeds system K")]
    fn add_rejects_row_above_system_k() {
        let mut sums = CoreSums::new(2);
        sums.add(&TaskRow::new(&task(0, 10, 3, &[1, 2, 3])));
    }
}
