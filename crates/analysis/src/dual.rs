//! Dual-criticality (K = 2) closed forms: Eq. (7) and the canonical EDF-VD
//! virtual-deadline factor.
//!
//! These are special cases of [`crate::theorem1`]; they exist both as an
//! independently-derived cross-check (property-tested for agreement) and as
//! the faster path for the common dual-criticality setting.

use mcs_model::{CritLevel, LevelUtils};

use crate::EPS;

/// Outcome of the dual-criticality schedulability test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DualReport {
    /// `U_1(1)` — LO tasks at LO level.
    pub u_lo_lo: f64,
    /// `U_2(1)` — HI tasks at LO level.
    pub u_hi_lo: f64,
    /// `U_2(2)` — HI tasks at HI level.
    pub u_hi_hi: f64,
    /// The value of the min-term in Eq. (7).
    pub minterm: f64,
    /// Whether Eq. (7) holds.
    pub schedulable: bool,
    /// Whether plain EDF suffices (`U_1(1) + U_2(2) ≤ 1`, no virtual
    /// deadlines required).
    pub plain_edf: bool,
}

/// Eq. (7): a dual-criticality subset is EDF-VD schedulable if
///
/// ```text
/// U_1(1) + min{ U_2(2), U_2(1) / (1 − U_2(2)) } ≤ 1.
/// ```
#[must_use]
pub fn dual_condition<U: LevelUtils>(u: &U) -> DualReport {
    assert_eq!(u.num_levels(), 2, "dual_condition requires a 2-level system");
    let l1 = CritLevel::new(1);
    let l2 = CritLevel::new(2);
    let u_lo_lo = u.util_jk(l1, l1);
    let u_hi_lo = u.util_jk(l2, l1);
    let u_hi_hi = u.util_jk(l2, l2);
    let fraction = if 1.0 - u_hi_hi > EPS { u_hi_lo / (1.0 - u_hi_hi) } else { f64::INFINITY };
    let minterm = u_hi_hi.min(fraction);
    let schedulable = u_lo_lo + minterm <= 1.0 + EPS;
    let plain_edf = u_lo_lo + u_hi_hi <= 1.0 + EPS;
    DualReport { u_lo_lo, u_hi_lo, u_hi_hi, minterm, schedulable, plain_edf }
}

/// The canonical EDF-VD deadline-shrink factor for HI tasks in LO mode:
///
/// ```text
/// x = U_2(1) / (1 − U_1(1))
/// ```
///
/// Valid (and returned as `Some`) only when the subset passes Eq. (7) and
/// plain EDF does *not* already suffice; callers use `x = 1` otherwise.
/// The factor is clamped into `(0, 1]`; `x = 0` (no HI tasks) is reported
/// as `Some(1.0)` since no shrinking is needed.
#[must_use]
pub fn dual_vd_factor<U: LevelUtils>(u: &U) -> Option<f64> {
    let r = dual_condition(u);
    if !r.schedulable {
        return None;
    }
    if r.plain_edf || r.u_hi_lo == 0.0 {
        return Some(1.0);
    }
    let den = 1.0 - r.u_lo_lo;
    if den <= EPS {
        return None;
    }
    let x = r.u_hi_lo / den;
    (x > 0.0 && x <= 1.0 + EPS).then(|| x.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem1::Theorem1;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn table(tasks: &[McTask]) -> UtilTable {
        UtilTable::from_tasks(2, tasks.iter())
    }

    #[test]
    fn plain_edf_case() {
        let t = table(&[task(0, 10, 1, &[3]), task(1, 10, 2, &[2, 5])]);
        let r = dual_condition(&t);
        assert!(r.schedulable);
        assert!(r.plain_edf);
        assert_eq!(dual_vd_factor(&t), Some(1.0));
    }

    #[test]
    fn vd_needed_case() {
        // U_1(1)=0.5, U_2(1)=0.1, U_2(2)=0.6 — fails plain, passes Eq. (7).
        let t = table(&[task(0, 10, 1, &[5]), task(1, 100, 2, &[10, 60])]);
        let r = dual_condition(&t);
        assert!(r.schedulable);
        assert!(!r.plain_edf);
        let x = dual_vd_factor(&t).unwrap();
        assert!((x - 0.1 / 0.5).abs() < 1e-12, "x = {x}");
        // x must satisfy both mode conditions:
        // LO: U_1(1) + U_2(1)/x ≤ 1;  HI: x·U_1(1) + U_2(2) ≤ 1.
        assert!(r.u_lo_lo + r.u_hi_lo / x <= 1.0 + 1e-9);
        assert!(x * r.u_lo_lo + r.u_hi_hi <= 1.0 + 1e-9);
    }

    #[test]
    fn unschedulable_case() {
        let t = table(&[task(0, 10, 1, &[7]), task(1, 10, 2, &[4, 8])]);
        let r = dual_condition(&t);
        assert!(!r.schedulable);
        assert_eq!(dual_vd_factor(&t), None);
    }

    #[test]
    fn saturated_high_mode() {
        // U_2(2) = 1.0 exactly, nothing else: schedulable (min-term = 1).
        let t = table(&[task(0, 10, 2, &[1, 10])]);
        let r = dual_condition(&t);
        assert!(r.schedulable);
        assert!((r.minterm - 1.0).abs() < 1e-12);
        // U_2(2) > 1: not schedulable.
        let t = table(&[task(0, 10, 2, &[1, 11])]);
        assert!(!dual_condition(&t).schedulable);
    }

    #[test]
    fn agrees_with_theorem1_on_grid() {
        // Exhaustive small grid of dual-criticality utilization patterns:
        // Eq. (7) and Theorem 1 must agree on feasibility, and when feasible
        // U^Ψ = θ(1) = U_1(1) + minterm.
        let period = 1000u64;
        for lo in (0..=10).map(|v| v * 100) {
            for hi_lo in (1..=8).map(|v| v * 100) {
                for hi_hi in (1..=10).map(|v| v * 100) {
                    if hi_hi < hi_lo {
                        continue;
                    }
                    let mut tasks = vec![task(0, period, 2, &[hi_lo, hi_hi])];
                    if lo > 0 {
                        tasks.push(task(1, period, 1, &[lo]));
                    }
                    let t = UtilTable::from_tasks(2, tasks.iter());
                    let r = dual_condition(&t);
                    let a = Theorem1::compute(&t);
                    assert_eq!(
                        r.schedulable,
                        a.feasible(),
                        "disagreement at lo={lo} hi_lo={hi_lo} hi_hi={hi_hi}"
                    );
                    if r.schedulable {
                        let u = a.core_utilization().unwrap();
                        assert!(
                            (u - (r.u_lo_lo + r.minterm)).abs() < 1e-9,
                            "U mismatch at lo={lo} hi_lo={hi_lo} hi_hi={hi_hi}: {u}"
                        );
                    }
                }
            }
        }
    }
}
