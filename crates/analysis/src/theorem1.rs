//! The improved EDF-VD schedulability condition (Theorem 1 of the paper,
//! originally Theorem 3 of Baruah et al., ESA'11) and the derived *core
//! utilization* metric (Eq. (8)–(9)) that CA-TPA minimizes.
//!
//! For a subset `Ψ` of tasks on one core of a `K`-level system, define for
//! each `k ∈ 1..K-1`:
//!
//! ```text
//! θ(k) = Σ_{i=k}^{K-1} U_i(i) + min{ U_K(K), U_K(K-1)/(1 - U_K(K)) }
//! µ(k) = Π_{j=1}^{k} (1 - λ_j)
//! ```
//!
//! with `λ_1 = 0` and, for `j > 1` (Eq. (6)):
//!
//! ```text
//!         Σ_{x=j}^{K} U_x(j-1) / Π_{x=1}^{j-1}(1-λ_x)
//! λ_j = ─────────────────────────────────────────────────
//!         1 - U_{j-1}(j-1) / Π_{x=1}^{j-1}(1-λ_x)
//! ```
//!
//! The subset is schedulable by EDF-VD if `θ(k) ≤ µ(k)` for **some** `k`.
//! The *available utilization* is `A(k) = µ(k) - θ(k)` and the core
//! utilization is
//!
//! ```text
//! U^Ψ = max_{k : A(k) ≥ 0} (1 - A(k)),   or ∞ if no condition holds.
//! ```
//!
//! Validity guards (any violation makes the affected condition fail, which
//! matches the paper's "feasible iff Inequality (5) holds for some k"):
//!
//! * the min-term fraction is only finite when `U_K(K) < 1`; when
//!   `U_K(K) ≥ 1` the fraction is treated as `+∞` so the min-term becomes
//!   `U_K(K)` and the condition fails on its own;
//! * `λ_j` must satisfy `0 ≤ λ_j < 1` with a positive denominator; an
//!   invalid `λ_j` invalidates `µ(k)` for every `k ≥ j`.
//!
//! `K = 1` systems degenerate to plain EDF and are handled explicitly.

use mcs_model::{CritLevel, LevelUtils, MAX_LEVELS};

use crate::EPS;

/// Full evaluation of Theorem 1 on one core's utilization view.
///
/// Computed once in `O(K²)`; all queries afterwards are `O(1)`/`O(K)`.
///
/// ```
/// use mcs_analysis::Theorem1;
/// use mcs_model::{TaskBuilder, TaskId, UtilTable};
///
/// // U_1(1) = 0.5, U_2(1) = 0.1, U_2(2) = 0.6: fails Eq. (4) (1.1 > 1)
/// // but passes the improved condition (0.5 + 0.1/0.4 = 0.75 ≤ 1).
/// let lo = TaskBuilder::new(TaskId(0)).period(10).level(1).wcet(&[5]).build().unwrap();
/// let hi = TaskBuilder::new(TaskId(1)).period(100).level(2).wcet(&[10, 60]).build().unwrap();
/// let table = UtilTable::from_tasks(2, [&lo, &hi]);
///
/// let analysis = Theorem1::compute(&table);
/// assert!(analysis.feasible());
/// assert!(!analysis.plain_edf_sufficient());
/// assert!((analysis.core_utilization().unwrap() - 0.75).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Theorem1 {
    k: u8,
    /// `λ_1..λ_K` (index `j-1`); `None` marks an invalid factor.
    /// `λ` values above `K-1` are computed too because the runtime
    /// virtual-deadline assignment uses `λ_K`.
    lambdas: [Option<f64>; MAX_LEVELS as usize],
    /// `θ(1)..θ(K-1)` (index `k-1`); `f64::INFINITY` when the min-term is
    /// undefined.
    theta: [f64; MAX_LEVELS as usize],
    /// `µ(1)..µ(K-1)` (index `k-1`); `None` when some `λ_j (j ≤ k)` is
    /// invalid.
    mu: [Option<f64>; MAX_LEVELS as usize],
    /// Whether the min-term resolved to the fraction
    /// `U_K(K-1)/(1-U_K(K))` rather than `U_K(K)` — the runtime needs this
    /// to decide whether level-K tasks keep shrunk deadlines in high modes.
    minterm_is_fraction: bool,
    /// Eq. (4) value, used for the K = 1 degenerate case.
    own_level_total: f64,
}

impl Theorem1 {
    /// Evaluate the theorem on a utilization view.
    #[must_use]
    pub fn compute<U: LevelUtils>(u: &U) -> Self {
        let k = u.num_levels();
        assert!((1..=MAX_LEVELS).contains(&k), "system level count {k} out of 1..={MAX_LEVELS}");
        let own_level_total = u.own_level_total();
        let mut out = Self {
            k,
            lambdas: [None; MAX_LEVELS as usize],
            theta: [f64::INFINITY; MAX_LEVELS as usize],
            mu: [None; MAX_LEVELS as usize],
            minterm_is_fraction: false,
            own_level_total,
        };
        if k == 1 {
            return out;
        }

        let lk = CritLevel::new(k);
        let lk1 = CritLevel::new(k - 1);

        // --- λ recursion (Eq. (6)), λ_1 = 0. ---
        out.lambdas[0] = Some(0.0);
        let mut prod = 1.0; // Π_{x=1}^{j-1} (1 - λ_x)
        for j in 2..=k {
            let jl = CritLevel::new(j);
            let prev = CritLevel::new(j - 1);
            // Numerator: Σ_{x=j}^{K} U_x(j-1), scaled by 1/prod.
            let mut num = 0.0;
            for x in j..=k {
                num += u.util_jk(CritLevel::new(x), prev);
            }
            num /= prod;
            // Denominator: 1 - U_{j-1}(j-1)/prod.
            let den = 1.0 - u.util_jk(prev, prev) / prod;
            let lambda = if den > EPS { num / den } else { f64::NAN };
            if lambda.is_finite() && (0.0..1.0).contains(&lambda) {
                out.lambdas[jl.index()] = Some(lambda);
                prod *= 1.0 - lambda;
            } else {
                // λ_j invalid ⇒ λ_{j'} for j' > j are invalid too (the
                // recursion depends on the product); stop here.
                break;
            }
        }

        // --- min-term: min{ U_K(K), U_K(K-1)/(1-U_K(K)) }. ---
        let ukk = u.util_jk(lk, lk);
        let ukk1 = u.util_jk(lk, lk1);
        let fraction = if 1.0 - ukk > EPS { ukk1 / (1.0 - ukk) } else { f64::INFINITY };
        let minterm = ukk.min(fraction);
        out.minterm_is_fraction = fraction < ukk;

        // --- θ(k) and µ(k) for k = 1..K-1. ---
        // Suffix sums of U_i(i) from i = k to K-1.
        let mut suffix = 0.0;
        let mut thetas = [0.0f64; MAX_LEVELS as usize];
        for i in (1..=k - 1).rev() {
            let li = CritLevel::new(i);
            suffix += u.util_jk(li, li);
            thetas[li.index()] = suffix + minterm;
        }
        let mut muprod = 1.0;
        for kk in 1..=k - 1 {
            let idx = usize::from(kk - 1);
            out.theta[idx] = thetas[idx];
            match out.lambdas[idx] {
                Some(l) => {
                    muprod *= 1.0 - l;
                    out.mu[idx] = Some(muprod);
                }
                None => {
                    // Invalid λ — µ(k) undefined from here on.
                    break;
                }
            }
        }
        out
    }

    /// System criticality level count `K`.
    #[inline]
    #[must_use]
    pub fn num_levels(&self) -> u8 {
        self.k
    }

    /// `λ_j` (1-based), or `None` when invalid / out of range.
    #[must_use]
    pub fn lambda(&self, j: u8) -> Option<f64> {
        if (1..=self.k).contains(&j) {
            self.lambdas[usize::from(j - 1)]
        } else {
            None
        }
    }

    /// `θ(k)` for `k ∈ 1..K-1` (the left side of Inequality (5)).
    #[must_use]
    pub fn theta(&self, k: u8) -> Option<f64> {
        (self.k >= 2 && (1..=self.k - 1).contains(&k)).then(|| self.theta[usize::from(k - 1)])
    }

    /// `µ(k)` for `k ∈ 1..K-1` (the right side of Inequality (5)), `None`
    /// when some `λ_j (j ≤ k)` is invalid.
    #[must_use]
    pub fn mu(&self, k: u8) -> Option<f64> {
        if self.k >= 2 && (1..=self.k - 1).contains(&k) {
            self.mu[usize::from(k - 1)]
        } else {
            None
        }
    }

    /// Available utilization `A(k) = µ(k) − θ(k)` (Eq. (8)), `None` when the
    /// condition's ingredients are undefined.
    #[must_use]
    pub fn available(&self, k: u8) -> Option<f64> {
        let mu = self.mu(k)?;
        let theta = self.theta(k)?;
        if theta.is_finite() {
            Some(mu - theta)
        } else {
            None
        }
    }

    /// Whether Inequality (5) holds for this specific `k`.
    #[must_use]
    pub fn condition_holds(&self, k: u8) -> bool {
        if self.k == 1 {
            return k == 1 && self.own_level_total <= 1.0 + EPS;
        }
        matches!(self.available(k), Some(a) if a >= -EPS)
    }

    /// Smallest `k` for which Inequality (5) holds — the `k*` that the
    /// runtime protocol is built around.
    #[must_use]
    pub fn smallest_passing(&self) -> Option<u8> {
        if self.k == 1 {
            return self.condition_holds(1).then_some(1);
        }
        (1..=self.k - 1).find(|&k| self.condition_holds(k))
    }

    /// Whether the subset is schedulable by EDF-VD per Theorem 1 (some
    /// condition holds).
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.smallest_passing().is_some()
    }

    /// Core utilization `U^Ψ` (Eq. (9)): `max_{A(k) ≥ 0} (1 − A(k))`, or
    /// `None` (representing ∞) when no condition holds.
    ///
    /// For `K = 2` this equals `θ(1)`; for `K = 1` it is the plain EDF
    /// utilization.
    #[must_use]
    pub fn core_utilization(&self) -> Option<f64> {
        if self.k == 1 {
            return (self.own_level_total <= 1.0 + EPS).then_some(self.own_level_total);
        }
        let mut best: Option<f64> = None;
        for k in 1..=self.k - 1 {
            if let Some(a) = self.available(k) {
                if a >= -EPS {
                    let v = 1.0 - a;
                    best = Some(best.map_or(v, |b: f64| b.max(v)));
                }
            }
        }
        best
    }

    /// Whether the min-term picked the fraction `U_K(K-1)/(1-U_K(K))` —
    /// i.e. schedulability leans on virtually-shortened deadlines for
    /// level-K tasks.
    #[inline]
    #[must_use]
    pub fn minterm_is_fraction(&self) -> bool {
        self.minterm_is_fraction
    }

    /// Whether the simple condition Eq. (4) already holds, in which case
    /// EDF-VD degenerates to plain EDF and no virtual deadlines are needed.
    #[inline]
    #[must_use]
    pub fn plain_edf_sufficient(&self) -> bool {
        self.own_level_total <= 1.0 + EPS
    }

    /// Alternative reading of Eq. (9): `U^Ψ = 1 − max_k A(k)` over the
    /// *valid* conditions — the best available slack.
    ///
    /// The scraped paper text reads as a max over *satisfied* conditions of
    /// `1 − A(k)` ([`Self::core_utilization`]), but for `K ≥ 3` that
    /// aggregate is non-monotone (placing a task that invalidates a tight
    /// condition can *lower* the reported utilization), which would steer
    /// CA-TPA toward fragile cores. Both readings coincide for `K ≤ 2`
    /// (including the paper's worked example). The partitioner uses this
    /// monotone variant by default; the ablation battery compares the two.
    #[must_use]
    pub fn core_utilization_slack(&self) -> Option<f64> {
        if self.k == 1 {
            return (self.own_level_total <= 1.0 + EPS).then_some(self.own_level_total);
        }
        let mut best_slack: Option<f64> = None;
        for k in 1..=self.k - 1 {
            if let Some(a) = self.available(k) {
                if a >= -EPS {
                    best_slack = Some(best_slack.map_or(a, |b: f64| b.max(a)));
                }
            }
        }
        best_slack.map(|a| 1.0 - a)
    }
}

/// Convenience: compute the core utilization (Eq. (9)) of a utilization
/// view in one call. `None` means "infinite" (no condition of Theorem 1
/// holds, the subset is not EDF-VD schedulable by this test).
#[must_use]
pub fn core_utilization<U: LevelUtils>(u: &U) -> Option<f64> {
    Theorem1::compute(u).core_utilization()
}

/// Convenience: whether a utilization view passes Theorem 1 (Proposition 2's
/// per-core requirement).
#[must_use]
pub fn is_feasible<U: LevelUtils>(u: &U) -> bool {
    Theorem1::compute(u).feasible()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::simple_condition;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn table(k: u8, tasks: &[McTask]) -> UtilTable {
        UtilTable::from_tasks(k, tasks.iter())
    }

    #[test]
    fn empty_core_is_feasible_with_zero_utilization() {
        let t = UtilTable::new(4);
        let a = Theorem1::compute(&t);
        assert!(a.feasible());
        assert_eq!(a.smallest_passing(), Some(1));
        assert_eq!(a.core_utilization(), Some(0.0));
    }

    #[test]
    fn k1_degenerates_to_edf() {
        let t = table(1, &[task(0, 10, 1, &[5]), task(1, 10, 1, &[4])]);
        let a = Theorem1::compute(&t);
        assert!(a.feasible());
        assert!((a.core_utilization().unwrap() - 0.9).abs() < 1e-12);
        let t2 = table(1, &[task(0, 10, 1, &[6]), task(1, 10, 1, &[5])]);
        assert!(!Theorem1::compute(&t2).feasible());
        assert_eq!(Theorem1::compute(&t2).core_utilization(), None);
    }

    /// The worked example of the paper: after allocating τ4 (level 2,
    /// u(1)=0.339, u(2)=0.633) to an empty core,
    /// `U = 0 + min{0.633, 0.339/(1-0.633)} = 0.633`.
    #[test]
    fn paper_worked_example_tau4() {
        let t = table(2, &[task(0, 1000, 2, &[339, 633])]);
        let a = Theorem1::compute(&t);
        assert!(a.feasible());
        let u = a.core_utilization().unwrap();
        assert!((u - 0.633).abs() < 1e-9, "got {u}");
        // min-term picked U_K(K): 0.339/0.367 = 0.9237 > 0.633.
        assert!(!a.minterm_is_fraction());
    }

    /// Dual-criticality sanity: LO-heavy system where only the fraction
    /// branch makes it schedulable.
    #[test]
    fn fraction_branch_extends_schedulability() {
        // U_1(1) = 0.5, U_2(1) = 0.1, U_2(2) = 0.6:
        // simple test: 0.5 + 0.6 = 1.1 > 1 fails.
        // improved: 0.5 + min{0.6, 0.1/0.4 = 0.25} = 0.75 ≤ 1 passes.
        let tasks = [task(0, 10, 1, &[5]), task(1, 100, 2, &[10, 60])];
        let t = table(2, &tasks);
        assert!(!simple_condition(&t));
        let a = Theorem1::compute(&t);
        assert!(a.feasible());
        assert!(a.minterm_is_fraction());
        assert!((a.core_utilization().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn simple_condition_implies_theorem1() {
        // Eq. (4) ⇒ Inequality (5) at k = 1 (θ(1) ≤ Σ own-level ≤ 1 = µ(1)).
        let tasks = [task(0, 10, 1, &[2]), task(1, 20, 2, &[2, 6]), task(2, 40, 3, &[2, 4, 12])];
        let t = table(3, &tasks);
        assert!(simple_condition(&t));
        assert!(Theorem1::compute(&t).condition_holds(1));
    }

    #[test]
    fn overloaded_high_mode_is_infeasible() {
        // U_K(K) > 1: nothing can save it.
        let t = table(2, &[task(0, 10, 2, &[1, 11])]);
        let a = Theorem1::compute(&t);
        assert!(!a.feasible());
        assert_eq!(a.core_utilization(), None);
    }

    #[test]
    fn exactly_full_high_mode_is_feasible_when_alone() {
        // U_K(K) = 1, no other tasks: min-term = 1, θ(1) = 1 = µ(1).
        let t = table(2, &[task(0, 10, 2, &[1, 10])]);
        let a = Theorem1::compute(&t);
        assert!(a.feasible());
        assert!((a.core_utilization().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_recursion_dual_case() {
        // λ_2 = (U_2(1)) / (1 - U_1(1)).
        let tasks = [task(0, 10, 1, &[4]), task(1, 10, 2, &[3, 5])];
        let t = table(2, &tasks);
        let a = Theorem1::compute(&t);
        assert_eq!(a.lambda(1), Some(0.0));
        let l2 = a.lambda(2).unwrap();
        assert!((l2 - 0.3 / 0.6).abs() < 1e-12, "λ₂ = {l2}");
    }

    #[test]
    fn lambda_invalid_when_low_level_saturated() {
        // U_1(1) = 1.0 ⇒ λ_2 denominator = 0 ⇒ invalid; but condition k=1
        // can still hold if high-mode fits: θ(1) = U_1(1) + minterm.
        let tasks = [task(0, 10, 1, &[10]), task(1, 100, 2, &[1, 2])];
        let t = table(2, &tasks);
        let a = Theorem1::compute(&t);
        assert_eq!(a.lambda(2), None);
        // θ(1) = 1.0 + min{0.02, 0.01/0.98} ≈ 1.0102 > 1 ⇒ infeasible.
        assert!(!a.feasible());
    }

    #[test]
    fn three_level_system_multiple_conditions() {
        // Construct a 3-level set where condition k=1 fails but k=2 holds.
        // Level-1 tasks are heavy at level 1, but get dropped by level 2.
        let tasks = [
            task(0, 10, 1, &[6]),          // u(1)=0.6
            task(1, 100, 2, &[5, 30]),     // u(1)=0.05, u(2)=0.3
            task(2, 100, 3, &[5, 10, 40]), // u(1)=0.05, u(2)=0.1, u(3)=0.4
        ];
        let t = table(3, &tasks);
        let a = Theorem1::compute(&t);
        // θ(1) = U_1(1) + U_2(2) + min{U_3(3), U_3(2)/(1-U_3(3))}
        //      = 0.6 + 0.3 + min{0.4, 0.1/0.6} = 0.9 + 1/6 ≈ 1.0667 > µ(1)=1.
        assert!(!a.condition_holds(1));
        // λ_2 = (U_2(1)+U_3(1)) / (1 - U_1(1)) = 0.1/0.4 = 0.25.
        assert!((a.lambda(2).unwrap() - 0.25).abs() < 1e-12);
        // θ(2) = U_2(2) + min-term = 0.3 + 1/6 ≈ 0.4667;
        // µ(2) = (1-0)·(1-0.25) = 0.75 ⇒ holds.
        assert!(a.condition_holds(2));
        assert_eq!(a.smallest_passing(), Some(2));
        assert!(a.feasible());
        // Core utilization: only k=2 feasible ⇒ 1 - (0.75 - 0.4667) ≈ 0.7167.
        let u = a.core_utilization().unwrap();
        assert!((u - (1.0 - (0.75 - (0.3 + 0.1 / 0.6)))).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn theta_mu_accessors_bounds() {
        let t = table(3, &[task(0, 10, 1, &[1])]);
        let a = Theorem1::compute(&t);
        assert!(a.theta(0).is_none());
        assert!(a.theta(3).is_none()); // only 1..K-1
        assert!(a.theta(1).is_some());
        assert!(a.theta(2).is_some());
        assert!(a.mu(1).is_some());
        assert!(a.lambda(0).is_none());
        assert!(a.lambda(4).is_none());
    }

    #[test]
    fn core_utilization_k2_equals_theta1() {
        let tasks = [task(0, 10, 1, &[2]), task(1, 10, 2, &[1, 4])];
        let t = table(2, &tasks);
        let a = Theorem1::compute(&t);
        assert!((a.core_utilization().unwrap() - a.theta(1).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn adding_task_never_decreases_core_utilization() {
        let base_tasks = [task(0, 10, 1, &[2]), task(1, 20, 2, &[2, 8])];
        let t = table(2, &base_tasks);
        let before = Theorem1::compute(&t).core_utilization().unwrap();
        let extra = task(2, 50, 2, &[5, 10]);
        let view = mcs_model::WithTask::new(&t, &extra);
        let after = Theorem1::compute(&view).core_utilization().unwrap();
        assert!(after >= before - 1e-12, "{after} < {before}");
    }
}
