//! Struct-of-arrays probe storage and the batch Theorem-1 kernel.
//!
//! [`CoreSums`] keeps one core's triangular `U_j(k)` sums in a fixed-size
//! array — ideal for probing one core, but probing *all M cores* for one
//! candidate task (the shape of every min-increment placement heuristic)
//! walks M disjoint 300-byte structs and re-runs the scalar kernel M times
//! with all its per-call branch and bounds overhead.
//!
//! This module transposes the layout:
//!
//! * [`TaskTable`] — per-*level* utilization planes `utils[k][task]` plus a
//!   level column, the struct-of-arrays twin of a `Vec<TaskRow>`;
//! * [`CoreBank`] — per-`(j, k)` triangle planes `U_j(k)[core]`, each plane
//!   a contiguous run of M (lane-padded) `f64`s, maintained with the exact
//!   `+=`/clamped `-=` op order of [`CoreSums::add`]/`remove`;
//! * [`CoreView`] — a zero-cost strided view of one core inside the bank,
//!   running the *same* monomorphized scalar kernels as [`CoreSums`]
//!   (generic over `SumsRead`), hence bit-identical by construction;
//! * [`batch_probe_verdicts`] — the batch kernel: one sweep over the
//!   contiguous planes evaluates all M cores in fixed-width lanes of
//!   [`LANES`] with branch-free inner loops, a fused λ-recursion/µ-product
//!   pass shared across cores, and the early-exit conditions folded as
//!   per-lane masks instead of per-core control flow.
//!
//! # Bit-identity of the batch kernel
//!
//! Every lane `l` of the batch kernel performs **exactly the floating-point
//! operations of the scalar [`kernel_verdict`] on core `base + l`, in the
//! same order** — lanes never mix (no cross-core reassociation), and the
//! scalar control flow maps onto masks as follows:
//!
//! * the λ-break (`λ_kk` invalid ⇒ stop) becomes a per-lane `alive` flag:
//!   once false, the lane's µ product freezes and its Eq. (9) folds are
//!   skipped — the same suffix of operations the scalar `break` skips;
//! * the `Option` accumulators of the Eq. (9) max-folds become
//!   value+`has` flag pairs with the same `old.max(new)` operand order;
//! * dead and padding lanes still *execute* arithmetic, but those results
//!   are never written to an emitted verdict, so garbage in, nothing out.
//!
//! The audit rule `batch-kernel-consistency` re-checks batch-vs-scalar bit
//! equality on live partitions, and `tests/probe_engine_differential.rs`
//! fuzzes it across K ∈ {2..8} and M ∈ {2, 8, 128}.

use mcs_model::{CritLevel, TaskSet, MAX_LEVELS};

use crate::probe::{
    kernel, kernel_verdict, tri, Added, ProbeView as _, Resident, SumsRead, Swapped, TRI_LEN,
};
use crate::{CoreSums, Probe, TaskRow, Verdict, EPS};

/// `MAX_LEVELS` as a `usize` (array bound of the per-level scratch).
const ML: usize = MAX_LEVELS as usize;

/// Fixed lane width of the batch kernel: 8 × `f64` = one AVX-512 register,
/// two AVX2 registers, four SSE2 registers — wide enough that LLVM
/// autovectorizes the unrolled inner loops at any of those ISA levels.
pub const LANES: usize = 8;

/// Per-level utilization planes of a task set — the struct-of-arrays twin
/// of a `Vec<TaskRow>`. Plane `k` holds `u_i(k+1)` for every task `i`
/// (0.0 above the task's own level), so [`Self::row`] materializes a
/// [`TaskRow`] whose cached divisions are verbatim copies of
/// [`mcs_model::McTask::util`] — substituting the table for per-task rows
/// cannot change any probe result.
#[derive(Clone, Debug, Default)]
pub struct TaskTable {
    n: usize,
    /// `levels[i]` = own criticality level of task `i`.
    levels: Vec<u8>,
    /// `planes[k * n + i]` = `u_i(k+1)`, 0.0 for `k+1 > l_i`.
    planes: Vec<f64>,
}

impl TaskTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild the planes for a task set, reusing the buffers.
    pub fn reset(&mut self, ts: &TaskSet) {
        let tasks = ts.tasks();
        self.n = tasks.len();
        self.levels.clear();
        self.levels.extend(tasks.iter().map(|t| t.level().get()));
        self.planes.clear();
        self.planes.resize(ML * self.n, 0.0);
        for (i, t) in tasks.iter().enumerate() {
            for k in CritLevel::up_to(t.level().get()) {
                self.planes[k.index() * self.n + i] = t.util(k);
            }
        }
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table holds no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Own criticality level of task `i`.
    #[inline]
    #[must_use]
    pub fn level(&self, i: usize) -> CritLevel {
        CritLevel::new(self.levels[i])
    }

    /// Cached own-level utilization `u_i(l_i)` — O(1), no row gather.
    // lint: no_alloc
    #[inline]
    #[must_use]
    pub fn util_own(&self, i: usize) -> f64 {
        self.planes[usize::from(self.levels[i] - 1) * self.n + i]
    }

    /// Materialize the [`TaskRow`] of task `i` (a gather of at most
    /// `MAX_LEVELS` plane reads; the values are the exact `f64`s a
    /// `TaskRow::new` of the same task caches).
    // lint: no_alloc
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> TaskRow {
        let level = self.levels[i];
        let mut utils = [0.0; ML];
        for (k, u) in utils.iter_mut().enumerate().take(usize::from(level)) {
            *u = self.planes[k * self.n + i];
        }
        TaskRow { level, utils }
    }
}

/// All cores' triangular `U_j(k)` sums as contiguous per-entry planes:
/// `planes[tri(j, k) * stride + m]` is core `m`'s `U_j(k)`. `stride` is the
/// core count rounded up to [`LANES`] and the padding lanes stay 0.0, so
/// the batch kernel reads whole lanes without tail handling.
///
/// `add`/`remove` apply the same per-entry `+=` / clamped `-=` in the same
/// ascending-`k` order as [`CoreSums::add`]/`remove`, so a bank fed the
/// same per-core row sequences holds bit-identical sums.
#[derive(Clone, Debug, Default)]
pub struct CoreBank {
    k: u8,
    cores: usize,
    stride: usize,
    /// `TRI_LEN` planes of `stride` entries each.
    planes: Vec<f64>,
    /// Per-core accumulated row count.
    tasks: Vec<u32>,
}

impl CoreBank {
    /// Empty bank (no cores).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset to `cores` empty cores for a `k`-level system, reusing the
    /// plane buffer.
    pub fn reset(&mut self, k: u8, cores: usize) {
        assert!((1..=MAX_LEVELS).contains(&k), "system level count {k} out of 1..={MAX_LEVELS}");
        self.k = k;
        self.cores = cores;
        self.stride = cores.div_ceil(LANES) * LANES;
        self.planes.clear();
        self.planes.resize(TRI_LEN * self.stride, 0.0);
        self.tasks.clear();
        self.tasks.resize(cores, 0);
    }

    /// System criticality level count `K`.
    #[inline]
    #[must_use]
    pub fn num_levels(&self) -> u8 {
        self.k
    }

    /// Number of (real, unpadded) cores.
    #[inline]
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores
    }

    /// Lane slots per plane (`cores` rounded up to [`LANES`]) — the number
    /// of per-lane evaluations one batch sweep performs.
    #[inline]
    #[must_use]
    pub fn lane_slots(&self) -> usize {
        self.stride
    }

    /// Accumulate a task row on core `m` (mirrors [`CoreSums::add`]).
    // lint: no_alloc
    pub fn add(&mut self, m: usize, row: &TaskRow) {
        assert!(row.level <= self.k, "task level {} exceeds system K={}", row.level, self.k);
        assert!(m < self.cores);
        for kk in 1..=row.level {
            self.planes[tri(row.level, kk) * self.stride + m] += row.utils[usize::from(kk - 1)];
        }
        self.tasks[m] += 1;
    }

    /// Remove a previously added row from core `m` (mirrors
    /// [`CoreSums::remove`], including the clamp of negative residue).
    // lint: no_alloc
    pub fn remove(&mut self, m: usize, row: &TaskRow) {
        assert!(row.level <= self.k, "task level {} exceeds system K={}", row.level, self.k);
        assert!(m < self.cores);
        assert!(self.tasks[m] > 0, "removing a task from an empty core");
        for kk in 1..=row.level {
            let e = &mut self.planes[tri(row.level, kk) * self.stride + m];
            *e = (*e - row.utils[usize::from(kk - 1)]).max(0.0);
        }
        self.tasks[m] -= 1;
    }

    /// Replace `minus` by `plus` on core `m` in one O(K) delta — the same
    /// clamp-then-accumulate per-entry order as [`CoreSums::swap`] (and the
    /// `Swapped` probe view), so a committed migration lands bit-identical
    /// to the swap probe that justified it.
    // lint: no_alloc
    pub fn swap(&mut self, m: usize, minus: &TaskRow, plus: &TaskRow) {
        assert!(minus.level <= self.k, "task level {} exceeds system K={}", minus.level, self.k);
        assert!(plus.level <= self.k, "task level {} exceeds system K={}", plus.level, self.k);
        assert!(m < self.cores);
        assert!(self.tasks[m] > 0, "swapping a task out of an empty core");
        for kk in 1..=minus.level {
            let e = &mut self.planes[tri(minus.level, kk) * self.stride + m];
            *e = (*e - minus.utils[usize::from(kk - 1)]).max(0.0);
        }
        for kk in 1..=plus.level {
            self.planes[tri(plus.level, kk) * self.stride + m] += plus.utils[usize::from(kk - 1)];
        }
    }

    /// Zero core `m`'s triangle entries and row count — the per-core reset
    /// a departure refold starts from. Only core `m`'s strided slots are
    /// touched, so every other core's sums keep their exact bits.
    // lint: no_alloc
    pub fn clear_core(&mut self, m: usize) {
        assert!(m < self.cores);
        for j in 1..=self.k {
            for kk in 1..=j {
                self.planes[tri(j, kk) * self.stride + m] = 0.0;
            }
        }
        self.tasks[m] = 0;
    }

    /// Number of rows accumulated on core `m`.
    #[inline]
    #[must_use]
    pub fn task_count(&self, m: usize) -> usize {
        self.tasks[m] as usize
    }

    /// Scalar view of core `m` — runs the exact [`CoreSums`] kernels over
    /// the strided storage.
    #[inline]
    #[must_use]
    pub fn view(&self, m: usize) -> CoreView<'_> {
        assert!(m < self.cores);
        CoreView { bank: self, m }
    }

    /// Materialize core `m` as a standalone [`CoreSums`] (diagnostics and
    /// audit paths; the copied entries are bit-exact).
    #[must_use]
    pub fn to_core_sums(&self, m: usize) -> CoreSums {
        let mut sums = CoreSums::new(self.k);
        for j in 1..=self.k {
            for kk in 1..=j {
                sums.sums[tri(j, kk)] = self.planes[tri(j, kk) * self.stride + m];
            }
        }
        sums.tasks = self.tasks[m];
        sums
    }
}

/// One core of a [`CoreBank`]: implements the kernels' storage abstraction
/// with strided plane reads, so every probe below is the same monomorphized
/// code path as the [`CoreSums`] methods — bit-identical by construction,
/// not by re-derivation.
#[derive(Clone, Copy, Debug)]
pub struct CoreView<'a> {
    bank: &'a CoreBank,
    m: usize,
}

impl SumsRead for CoreView<'_> {
    #[inline]
    fn num_levels(&self) -> u8 {
        self.bank.k
    }

    #[inline]
    fn raw(&self, j: u8, kk: u8) -> f64 {
        self.bank.planes[tri(j, kk) * self.bank.stride + self.m]
    }
}

impl CoreView<'_> {
    /// System criticality level count `K`.
    #[inline]
    #[must_use]
    pub fn num_levels(&self) -> u8 {
        self.bank.k
    }

    /// Number of rows accumulated on this core.
    #[inline]
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.bank.task_count(self.m)
    }

    /// Theorem 1 on the resident subset — mirrors [`CoreSums::evaluate`].
    #[must_use]
    pub fn evaluate(&self) -> Probe {
        kernel(self, &Resident)
    }

    /// Theorem 1 with `plus` hypothetically added — mirrors
    /// [`CoreSums::probe`].
    #[must_use]
    pub fn probe(&self, plus: &TaskRow) -> Probe {
        assert!(plus.level <= self.bank.k);
        kernel(self, &Added(plus))
    }

    /// Repair-move probe — mirrors [`CoreSums::probe_swap`].
    #[must_use]
    pub fn probe_swap(&self, minus: &TaskRow, plus: &TaskRow) -> Probe {
        assert!(minus.level <= self.bank.k && plus.level <= self.bank.k);
        kernel(self, &Swapped(minus, plus))
    }

    /// Fused verdict of [`Self::evaluate`] — mirrors
    /// [`CoreSums::evaluate_verdict`].
    // lint: no_alloc
    #[must_use]
    pub fn evaluate_verdict(&self) -> Verdict {
        kernel_verdict(self, &Resident)
    }

    /// Fused verdict of [`Self::probe`] — mirrors
    /// [`CoreSums::probe_verdict`].
    // lint: no_alloc
    #[must_use]
    pub fn probe_verdict(&self, plus: &TaskRow) -> Verdict {
        assert!(plus.level <= self.bank.k);
        kernel_verdict(self, &Added(plus))
    }

    /// Fused verdict of [`Self::probe_swap`] — mirrors
    /// [`CoreSums::probe_swap_verdict`].
    // lint: no_alloc
    #[must_use]
    pub fn probe_swap_verdict(&self, minus: &TaskRow, plus: &TaskRow) -> Verdict {
        assert!(minus.level <= self.bank.k && plus.level <= self.bank.k);
        kernel_verdict(self, &Swapped(minus, plus))
    }

    /// Eq. (4) own-level total with `plus` added — mirrors
    /// [`CoreSums::own_level_total_probe`].
    // lint: no_alloc
    #[must_use]
    pub fn own_level_total_probe(&self, plus: &TaskRow) -> f64 {
        let view = Added(plus);
        let mut s = 0.0;
        for kk in 1..=self.bank.k {
            s += view.at(self, kk, kk);
        }
        s
    }
}

/// One lane-chunk's worth of `U_j(k) (+ u(k))` — the batch counterpart of
/// `Added::at`, applied to [`LANES`] consecutive cores at once. The
/// `j == level` test is hoisted outside the lane loop (it depends only on
/// `(j, plus)`), so the inner loops are branch-free; the taken branch adds
/// the identical `v + u` the scalar view computes, the other copies the
/// plane verbatim (never `v + 0.0`, which would rewrite a `-0.0` sum).
// lint: no_alloc
#[inline(always)]
fn lane_at(bank: &CoreBank, base: usize, j: u8, kk: u8, plus: &TaskRow) -> [f64; LANES] {
    let seg = &bank.planes[tri(j, kk) * bank.stride + base..][..LANES];
    let mut out = [0.0; LANES];
    if j == plus.level {
        let u = plus.utils[usize::from(kk - 1)];
        for (o, s) in out.iter_mut().zip(seg) {
            *o = s + u;
        }
    } else {
        out.copy_from_slice(seg);
    }
    out
}

/// All-ones / all-zeros lane mask of a predicate — comparisons lower to
/// `vcmppd`-style full-width masks, keeping the lane loops in pure 64-bit
/// vector lanes (`bool` lanes would mix i8 into the f64 pipeline and
/// defeat the vectorizer).
// lint: no_alloc
#[inline(always)]
fn lane_mask(c: bool) -> u64 {
    (c as u64).wrapping_neg()
}

/// Bitwise lane select: `a` where `mask` is all-ones, else `b` — an exact
/// bit copy of the chosen operand, so selects cannot perturb values.
// lint: no_alloc
#[inline(always)]
fn lane_sel(mask: u64, a: f64, b: f64) -> f64 {
    f64::from_bits((a.to_bits() & mask) | (b.to_bits() & !mask))
}

/// The batch Theorem-1 kernel: verdicts of `Ψ_m ∪ {plus}` for **every**
/// core `m` of the bank, in one sweep over the contiguous planes.
/// `out` is a reusable scratch buffer (cleared, then one [`Verdict`] per
/// core in core order); each emitted verdict is bit-identical to
/// `bank.view(m).probe_verdict(plus)` — see the module docs for why the
/// masked control flow preserves the scalar operation sequence.
// lint: no_alloc
pub fn batch_probe_verdicts(bank: &CoreBank, plus: &TaskRow, out: &mut Vec<Verdict>) {
    assert!(plus.level <= bank.k, "task level {} exceeds system K={}", plus.level, bank.k);
    out.clear();
    // Monomorphize the sweep per system level count: with `K` const, every
    // level loop below fully unrolls, so the per-lane state arrays live in
    // vector registers across the whole chunk instead of bouncing through
    // the stack between loops (a ~2× throughput difference at K ≥ 4).
    match bank.k {
        1 => batch_sweep::<1>(bank, plus, out),
        2 => batch_sweep::<2>(bank, plus, out),
        3 => batch_sweep::<3>(bank, plus, out),
        4 => batch_sweep::<4>(bank, plus, out),
        5 => batch_sweep::<5>(bank, plus, out),
        6 => batch_sweep::<6>(bank, plus, out),
        7 => batch_sweep::<7>(bank, plus, out),
        8 => batch_sweep::<8>(bank, plus, out),
        _ => unreachable!("CoreBank::reset bounds K to 1..=MAX_LEVELS"), // lint: allow(panic-policy, K > MAX_LEVELS is rejected at CoreBank::reset; this arm is dead by construction)
    }
}

/// One λ-recursion step (`kk = KK ≥ 2`) of the fused pass: computes λ_KK
/// for all lanes, folds it into the µ products of the still-live lanes,
/// and reports whether any lane survived. Bit-for-bit the scalar step —
/// the divisions run unconditionally (IEEE ∞/NaN, no traps) and the
/// validity guard is an AND of full-width compare masks, so the lane loop
/// is straight-line vector code.
// lint: no_alloc
#[inline(always)]
fn lambda_step<const KK: u8, const K: u8>(
    bank: &CoreBank,
    base: usize,
    plus: &TaskRow,
    muprod: &mut [f64; LANES],
    alive: &mut [u64; LANES],
) -> bool {
    let prev = KK - 1;
    let mut num = [0.0f64; LANES];
    for x in KK..=K {
        let a = lane_at(bank, base, x, prev, plus);
        for (n, a) in num.iter_mut().zip(&a) {
            *n += a;
        }
    }
    let pd = lane_at(bank, base, prev, prev, plus);
    for l in 0..LANES {
        let n = num[l] / muprod[l];
        let den = 1.0 - pd[l] / muprod[l];
        let q = n / den;
        // λ valid ⇔ den > EPS ∧ q ∈ [0, 1) — the scalar guard as an AND
        // of full-width compare masks. The scalar kernel also tests
        // `is_finite`, but q ∈ [0, 1) already implies finite (NaN fails
        // both range compares), so the predicate value is identical.
        let ok = lane_mask(den > EPS) & lane_mask(q >= 0.0) & lane_mask(q < 1.0);
        let live = alive[l] & ok;
        // Dead lanes freeze their µ — the operations the scalar `break`
        // never runs.
        muprod[l] = lane_sel(live, muprod[l] * (1.0 - q), muprod[l]);
        alive[l] = live;
    }
    !alive.iter().all(|&a| a == 0)
}

/// One Eq. (9) fold step of the fused pass: on every live lane whose θ is
/// finite and whose availability `a = µ − θ` clears `-EPS`, fold `1 − a`
/// and `a` into the value+flag accumulators with the scalar kernel's
/// `old.max(new)` operand order. The scalar folds both accumulators under
/// one shared condition, so a single `has` flag serves both.
// lint: no_alloc
#[inline(always)]
fn fold_step(
    th: &[f64; LANES],
    muprod: &[f64; LANES],
    alive: &[u64; LANES],
    best: &mut [f64; LANES],
    best_slack: &mut [f64; LANES],
    has: &mut [u64; LANES],
) {
    for l in 0..LANES {
        let a = muprod[l] - th[l];
        // θ is a sum of non-negative utilizations plus a min-term in
        // [0, +∞] — never NaN, never -∞ — so the scalar `is_finite` guard
        // is exactly `θ < ∞`, a plain FP compare the lane loop keeps in
        // the vector domain (`is_finite`'s bit-level form drags LLVM into
        // scalar integer code).
        let take = alive[l] & lane_mask(th[l] < f64::INFINITY) & lane_mask(a >= -EPS);
        let util = 1.0 - a;
        best[l] = lane_sel(take, lane_sel(has[l], best[l].max(util), util), best[l]);
        best_slack[l] = lane_sel(take, lane_sel(has[l], best_slack[l].max(a), a), best_slack[l]);
        has[l] |= take;
    }
}

/// One full sweep of the batch kernel for a compile-time level count `K`
/// (equal to the bank's runtime `k`, enforced by the dispatcher above).
// lint: no_alloc
fn batch_sweep<const K: u8>(bank: &CoreBank, plus: &TaskRow, out: &mut Vec<Verdict>) {
    debug_assert_eq!(bank.k, K);
    let k = K;
    let mut base = 0;
    while base < bank.cores {
        // own_level_total: ascending-k fold per lane.
        let mut olt = [0.0f64; LANES];
        for kk in 1..=k {
            let a = lane_at(bank, base, kk, kk, plus);
            for (o, a) in olt.iter_mut().zip(&a) {
                *o += a;
            }
        }
        if k == 1 {
            for &olt in olt.iter().take(bank.cores - base) {
                let u = (olt <= 1.0 + EPS).then_some(olt);
                out.push(Verdict {
                    own_level_total: olt,
                    core_utilization: u,
                    core_utilization_slack: u,
                });
            }
            base += LANES;
            continue;
        }

        // min-term: min{ U_K(K), U_K(K-1)/(1-U_K(K)) } per lane. The
        // division runs unconditionally (IEEE ∞/NaN, no traps) and the
        // guard becomes a select, so the loop is a straight vector lane.
        let ukk = lane_at(bank, base, k, k, plus);
        let ukk1 = lane_at(bank, base, k, k - 1, plus);
        let mut minterm = [0.0f64; LANES];
        for l in 0..LANES {
            let q = ukk1[l] / (1.0 - ukk[l]);
            let fraction = if 1.0 - ukk[l] > EPS { q } else { f64::INFINITY };
            minterm[l] = ukk[l].min(fraction);
        }

        // θ(k) suffix sums, built descending as the scalar kernel does.
        let mut suffix = [0.0f64; LANES];
        let mut thetas = [[0.0f64; LANES]; ML];
        for i in (1..=k - 1).rev() {
            let a = lane_at(bank, base, i, i, plus);
            let th = &mut thetas[usize::from(i - 1)];
            for l in 0..LANES {
                suffix[l] += a[l];
                th[l] = suffix[l] + minterm[l];
            }
        }

        // Fused λ recursion / µ product / Eq. (9) folds. `alive[l]` is the
        // mask form of the scalar λ-break; the Option accumulators become
        // value+flag pairs with the same max operand order. Every lane
        // computes unconditionally and commits through selects — divisions
        // on dead or guarded lanes produce IEEE ∞/NaN that the selects
        // discard, never a trap — so each loop body is straight-line
        // vector code. The scalar kernel folds `best` and `best_slack`
        // under one shared condition, so a single `has` flag serves both.
        let mut alive = [u64::MAX; LANES];
        let mut muprod = [1.0f64; LANES];
        let mut best = [0.0f64; LANES];
        let mut best_slack = [0.0f64; LANES];
        let mut has = [0u64; LANES];
        // The scalar `for kk in 1..=K-1` recursion, unrolled by hand into
        // const-generic steps: LLVM refuses to unroll the rolled loop (the
        // body is past its size threshold), which forces every lane array
        // through the stack on each iteration. Spelled out per `kk`, the
        // whole fused section keeps its state in vector registers. `K ≥ n`
        // gates are compile-time, so each monomorphization carries exactly
        // its own steps; the λ-break becomes `break 'fused`.
        'fused: {
            fold_step(&thetas[0], &muprod, &alive, &mut best, &mut best_slack, &mut has);
            macro_rules! step {
                ($kk:literal) => {
                    if K > $kk {
                        if !lambda_step::<$kk, K>(bank, base, plus, &mut muprod, &mut alive) {
                            // Every lane broke — nothing further can fold
                            // (the scalar kernels have all returned too).
                            break 'fused;
                        }
                        fold_step(
                            &thetas[$kk - 1],
                            &muprod,
                            &alive,
                            &mut best,
                            &mut best_slack,
                            &mut has,
                        );
                    }
                };
            }
            step!(2);
            step!(3);
            step!(4);
            step!(5);
            step!(6);
            step!(7);
        }

        for l in 0..LANES.min(bank.cores - base) {
            // `then_some` (not if/else) so the Some/None tag is a data move,
            // not a per-lane data-dependent branch: with hundreds of task
            // sets cycling through the predictor, 16 such branches per chunk
            // were the dominant misprediction source.
            let found = has[l] != 0;
            out.push(Verdict {
                own_level_total: olt[l],
                core_utilization: found.then_some(best[l]),
                core_utilization_slack: found.then_some(1.0 - best_slack[l]),
            });
        }
        base += LANES;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{LevelUtils, McTask, TaskBuilder, TaskId, TaskSet};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn mixed_set(k: u8) -> TaskSet {
        let mut tasks = Vec::new();
        for i in 0..12u32 {
            let level = 1 + (i as u8 % k);
            let wcet: Vec<u64> =
                (1..=level).map(|j| 20 + 13 * u64::from(j) + 7 * u64::from(i)).collect();
            tasks.push(task(i, 400 + 37 * u64::from(i), level, &wcet));
        }
        TaskSet::new(k, tasks).unwrap()
    }

    fn opt_bits(a: Option<f64>, b: Option<f64>) -> bool {
        match (a, b) {
            (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
            (None, None) => true,
            _ => false,
        }
    }

    fn assert_verdicts_bit_equal(a: &Verdict, b: &Verdict) {
        assert_eq!(a.own_level_total.to_bits(), b.own_level_total.to_bits());
        assert!(opt_bits(a.core_utilization, b.core_utilization));
        assert!(opt_bits(a.core_utilization_slack, b.core_utilization_slack));
    }

    /// Round-robin deal of the set into `cores`, mirrored into a bank and
    /// a `Vec<CoreSums>` oracle.
    fn dealt(ts: &TaskSet, cores: usize) -> (TaskTable, CoreBank, Vec<CoreSums>) {
        let mut table = TaskTable::new();
        table.reset(ts);
        let mut bank = CoreBank::new();
        bank.reset(ts.num_levels(), cores);
        let mut oracle = vec![CoreSums::new(ts.num_levels()); cores];
        for i in 0..table.len() {
            let m = i % cores;
            let row = table.row(i);
            bank.add(m, &row);
            oracle[m].add(&row);
        }
        (table, bank, oracle)
    }

    #[test]
    fn task_table_rows_are_verbatim_task_rows() {
        let ts = mixed_set(4);
        let mut table = TaskTable::new();
        table.reset(&ts);
        assert_eq!(table.len(), ts.tasks().len());
        for (i, t) in ts.tasks().iter().enumerate() {
            let row = table.row(i);
            let direct = TaskRow::new(t);
            assert_eq!(row, direct);
            assert_eq!(table.util_own(i).to_bits(), direct.util_own().to_bits());
            assert_eq!(table.level(i), t.level());
        }
    }

    #[test]
    fn bank_views_match_core_sums_bitwise() {
        for k in [1u8, 2, 3, 4, 6, 8] {
            let ts = mixed_set(k);
            for cores in [1usize, 2, 3, 8, 9, 17] {
                let (table, bank, oracle) = dealt(&ts, cores);
                let probe_row = table.row(0);
                for m in 0..cores {
                    let view = bank.view(m);
                    assert_eq!(view.task_count(), oracle[m].task_count());
                    assert_verdicts_bit_equal(
                        &view.evaluate_verdict(),
                        &oracle[m].evaluate_verdict(),
                    );
                    assert_verdicts_bit_equal(
                        &view.probe_verdict(&probe_row),
                        &oracle[m].probe_verdict(&probe_row),
                    );
                    assert_eq!(
                        view.own_level_total_probe(&probe_row).to_bits(),
                        oracle[m].own_level_total_probe(&probe_row).to_bits()
                    );
                    // The full-Probe paths too.
                    let a = view.probe(&probe_row);
                    let b = oracle[m].probe(&probe_row);
                    assert!(opt_bits(a.core_utilization(), b.core_utilization()));
                    assert_eq!(a.feasible(), b.feasible());
                }
            }
        }
    }

    #[test]
    fn batch_kernel_matches_scalar_views_bitwise() {
        for k in [1u8, 2, 3, 4, 5, 8] {
            let ts = mixed_set(k);
            for cores in [1usize, 2, 7, 8, 9, 16, 31] {
                let (table, bank, oracle) = dealt(&ts, cores);
                let mut out = Vec::new();
                for i in 0..table.len() {
                    let row = table.row(i);
                    batch_probe_verdicts(&bank, &row, &mut out);
                    assert_eq!(out.len(), cores);
                    for (m, v) in out.iter().enumerate() {
                        assert_verdicts_bit_equal(v, &bank.view(m).probe_verdict(&row));
                        assert_verdicts_bit_equal(v, &oracle[m].probe_verdict(&row));
                    }
                }
            }
        }
    }

    #[test]
    fn batch_kernel_tracks_removal_and_overload() {
        let ts = mixed_set(4);
        let cores = 5;
        let (table, mut bank, mut oracle) = dealt(&ts, cores);
        // Remove a few rows (exercising the clamp), then overload core 0
        // so some verdicts go infeasible through the λ-break path.
        for i in [0usize, 3, 7] {
            let m = i % cores;
            let row = table.row(i);
            bank.remove(m, &row);
            oracle[m].remove(&row);
        }
        for _ in 0..6 {
            let row = table.row(1);
            bank.add(0, &row);
            oracle[0].add(&row);
        }
        let mut out = Vec::new();
        let probe_row = table.row(2);
        batch_probe_verdicts(&bank, &probe_row, &mut out);
        assert!(!out[0].feasible(), "core 0 should be overloaded");
        for (m, v) in out.iter().enumerate() {
            assert_verdicts_bit_equal(v, &oracle[m].probe_verdict(&probe_row));
        }
    }

    #[test]
    fn to_core_sums_is_bit_exact() {
        let ts = mixed_set(3);
        let (_, bank, oracle) = dealt(&ts, 4);
        for (m, sums) in oracle.iter().enumerate() {
            let copy = bank.to_core_sums(m);
            assert_eq!(copy.task_count(), sums.task_count());
            for j in 1..=3u8 {
                for kk in 1..=j {
                    assert_eq!(
                        copy.util_jk(mcs_model::CritLevel::new(j), mcs_model::CritLevel::new(kk))
                            .to_bits(),
                        sums.util_jk(mcs_model::CritLevel::new(j), mcs_model::CritLevel::new(kk))
                            .to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn bank_swap_matches_core_sums_swap_and_remove_add() {
        let ts = mixed_set(4);
        let cores = 3;
        let (table, bank, oracle) = dealt(&ts, cores);
        let plus = table.row(1);
        for i in 0..table.len() {
            let minus = table.row(i);
            let m = i % cores;
            // Bank swap vs CoreSums swap fed the identical op sequence.
            let mut b = bank.clone();
            b.swap(m, &minus, &plus);
            let mut o = oracle[m].clone();
            o.swap(&minus, &plus);
            assert_eq!(b.task_count(m), o.task_count());
            assert_verdicts_bit_equal(&b.view(m).evaluate_verdict(), &o.evaluate_verdict());
            // …and vs the sequential remove-then-add composition.
            let mut seq = bank.clone();
            seq.remove(m, &minus);
            seq.add(m, &plus);
            assert_verdicts_bit_equal(
                &b.view(m).evaluate_verdict(),
                &seq.view(m).evaluate_verdict(),
            );
            // …and vs the Swapped probe view of the untouched bank.
            let probed = bank.view(m).probe_swap_verdict(&minus, &plus);
            assert_verdicts_bit_equal(&b.view(m).evaluate_verdict(), &probed);
        }
    }

    #[test]
    fn clear_core_resets_one_core_and_keeps_the_rest_bit_exact() {
        let ts = mixed_set(5);
        let cores = 4;
        let (table, mut bank, oracle) = dealt(&ts, cores);
        bank.clear_core(2);
        assert_eq!(bank.task_count(2), 0);
        let empty = CoreSums::new(ts.num_levels());
        assert_verdicts_bit_equal(&bank.view(2).evaluate_verdict(), &empty.evaluate_verdict());
        for m in [0usize, 1, 3] {
            assert_verdicts_bit_equal(
                &bank.view(m).evaluate_verdict(),
                &oracle[m].evaluate_verdict(),
            );
        }
        // A refold of the surviving rows on the cleared core reproduces a
        // fresh fold bit-for-bit (the departure path's contract).
        let mut fresh = CoreSums::new(ts.num_levels());
        for i in 0..table.len() {
            if i % cores == 2 && i != 2 {
                let row = table.row(i);
                bank.add(2, &row);
                fresh.add(&row);
            }
        }
        assert_verdicts_bit_equal(&bank.view(2).evaluate_verdict(), &fresh.evaluate_verdict());
    }

    #[test]
    fn swap_verdicts_match_through_views() {
        let ts = mixed_set(4);
        let (table, bank, oracle) = dealt(&ts, 3);
        let plus = table.row(1);
        for i in 0..table.len() {
            let minus = table.row(i);
            let m = i % 3;
            assert_verdicts_bit_equal(
                &bank.view(m).probe_swap_verdict(&minus, &plus),
                &oracle[m].probe_swap_verdict(&minus, &plus),
            );
        }
    }
}
