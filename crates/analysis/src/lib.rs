//! # mcs-analysis
//!
//! Uniprocessor schedulability analysis for mixed-criticality task systems
//! under the **EDF-VD** scheduler, as used by the ICPP'16 CA-TPA paper.
//!
//! Provided tests, from cheapest/most pessimistic to most precise:
//!
//! * [`edf`] — classic Liu & Layland utilization bound for single-level
//!   (K = 1) EDF, the degenerate case of the MC model;
//! * [`simple`] — the simple sufficient condition Eq. (4):
//!   `Σ_k U_k^Ψ(k) ≤ 1` (every task counted at its own level — EDF-VD
//!   degenerates to plain EDF);
//! * [`theorem1`] — the improved condition of Baruah et al. (ESA'11),
//!   Theorem 1 / Inequality (5) of the paper, with the λ-factor recursion
//!   Eq. (6), available utilization `A(k)` Eq. (8), and the *core
//!   utilization* Eq. (9) that CA-TPA minimizes;
//! * [`dual`] — the closed-form dual-criticality (K = 2) special case
//!   Eq. (7), plus the canonical virtual-deadline factor
//!   `x = U_2(1)/(1 − U_1(1))`;
//! * [`vd`] — virtual-deadline assignment for the runtime simulator
//!   (per-mode shrink factors derived from the λ's);
//! * [`dbf`] — a demand-bound-function analysis for dual-criticality EDF-VD
//!   in the style of Ekberg & Yi, the higher-precision (and much more
//!   expensive) test the paper cites as the approach of \[20\];
//! * [`amc`] — fixed-priority AMC response-time analysis (AMC-rtb, Baruah,
//!   Burns & Davis RTSS'11) with deadline-monotonic and Audsley priority
//!   assignment, for partitioned-FP comparisons (\[22\]);
//! * [`sensitivity`] — critical scaling factors (uniform load headroom of a
//!   subset under Theorem 1);
//! * [`probe`] — the zero-allocation Theorem-1 probe kernel used by the
//!   partitioners' hot path ([`TaskRow`] / [`CoreSums`] / [`Probe`]),
//!   bit-identical to [`theorem1`] by construction;
//! * [`soa`] — struct-of-arrays probe storage ([`TaskTable`] /
//!   [`CoreBank`]) and the lane-parallel batch kernel
//!   [`batch_probe_verdicts`] that evaluates all M cores of one candidate
//!   probe in a single sweep, bit-identical to the scalar kernels per lane.

#![forbid(unsafe_code)]

pub mod amc;
pub mod dbf;
pub mod dual;
pub mod edf;
pub mod elastic;
pub mod exact_arith;
pub mod probe;
pub mod sensitivity;
pub mod simple;
pub mod soa;
pub mod theorem1;
pub mod vd;

pub use amc::{amc_rtb_dm, amc_rtb_schedulable, smc_dm};
pub use dual::{dual_condition, dual_vd_factor, DualReport};
pub use edf::edf_utilization_test;
pub use elastic::elastic_stretch_factors;
pub use probe::{CoreSums, Probe, TaskRow, Verdict};
pub use sensitivity::{critical_scaling, ScaledView};
pub use simple::simple_condition;
pub use soa::{batch_probe_verdicts, CoreBank, CoreView, TaskTable, LANES};
pub use theorem1::{core_utilization, is_feasible, Theorem1};
pub use vd::VdAssignment;

/// Tolerance used in `≤` comparisons of utilization sums to absorb
/// floating-point accumulation noise (utilizations are ratios of integer
/// ticks, so true values are exact rationals; sums carry ~1e-16 error each).
pub const EPS: f64 = 1e-12;
