//! The simple sufficient schedulability condition, Eq. (4).

use mcs_model::LevelUtils;

use crate::EPS;

/// Eq. (4): the MC tasks on a core are schedulable under EDF-VD if
///
/// ```text
/// Σ_{k=1}^{K} U_k^Ψ(k) ≤ 1
/// ```
///
/// i.e. if the core can accommodate the *maximum* utilization demand of every
/// task at its own criticality level. In that case EDF-VD degenerates to
/// plain EDF (no virtual deadlines needed). This is the pessimistic test
/// classical partitioning heuristics use first.
#[must_use]
pub fn simple_condition<U: LevelUtils>(u: &U) -> bool {
    u.own_level_total() <= 1.0 + EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn counts_each_task_at_its_own_level() {
        // u(own): 0.5 (L2 at level 2) + 0.4 (L1) = 0.9 ≤ 1, even though
        // level-2 WCETs alone would mislead a max-only reading.
        let mut t = UtilTable::new(2);
        t.add(&task(0, 100, 2, &[10, 50]));
        t.add(&task(1, 100, 1, &[40]));
        assert!(simple_condition(&t));
    }

    #[test]
    fn fails_above_unity() {
        let mut t = UtilTable::new(2);
        t.add(&task(0, 100, 2, &[10, 60]));
        t.add(&task(1, 100, 1, &[50]));
        assert!(!simple_condition(&t)); // 0.6 + 0.5 = 1.1
    }

    #[test]
    fn boundary_exactly_one_passes() {
        let mut t = UtilTable::new(3);
        t.add(&task(0, 100, 3, &[10, 20, 100]));
        assert!(simple_condition(&t)); // exactly 1.0
    }

    #[test]
    fn empty_core_passes() {
        assert!(simple_condition(&UtilTable::new(4)));
    }
}
