//! Virtual-deadline assignment for the EDF-VD runtime.
//!
//! Theorem 1 is existence-style: it guarantees schedulability when
//! Inequality (5) holds for some `k* ∈ 1..K-1`, under a runtime protocol
//! (sketched in the paper, detailed in Baruah et al. ESA'11) where
//! high-criticality tasks run with *shortened (virtual) relative deadlines*
//! while the core operates below their level. This module turns a Theorem-1
//! result into the concrete per-mode deadline multipliers the simulator
//! applies:
//!
//! * At operation level `l < k*`, a task of level `j > l` uses relative
//!   deadline `p_i · Π_{x=2}^{l+1} λ_x` (the paper's cumulative
//!   `p_i(l+1) = λ_{l+1}·p_i(l)`, `p_i(1) = p_i`); a task of level exactly
//!   `l` keeps its original deadline.
//! * At operation level `l ∈ k*..K-1`, tasks of levels `l..K-1` are
//!   restored to original deadlines. Level-K tasks keep a **single**
//!   dual-criticality-style shrink
//!
//!   ```text
//!   x_K = U_K(K-1) / ( µ(k*) − Σ_{i=k*}^{K-1} U_i(i) )
//!   ```
//!
//!   whenever the min-term of Inequality (5) resolved to the fraction
//!   (i.e. schedulability leans on shortening level-K deadlines); for
//!   `K = 2, k* = 1` this is exactly the canonical EDF-VD factor
//!   `x = U_2(1)/(1 − U_1(1))`. Inequality (5) at `k*` guarantees
//!   `0 < x_K ≤ 1 − U_K(K)`, so the mode-(K-1) demand
//!   `Σ U_i(i) + U_K(K-1)/x_K ≤ µ(k*)` fits *and* a job that overruns into
//!   mode K still has at least `(1 − x_K)·p_i ≥ U_K(K)·p_i` of window left.
//!
//!   Using one constant factor across modes `k*..K-1` (rather than a
//!   per-mode one) is essential for soundness: a factor that shrinks as the
//!   mode rises would *shorten an in-flight job's deadline at the switch*,
//!   creating priority inversions the analysis never accounted for — our
//!   simulation-backed soundness experiment caught exactly that failure
//!   mode. For the same reason level-K tasks already use
//!   `min(λ-product, x_K)` below `k*`, and the simulator never shrinks an
//!   in-flight job's effective deadline on a mode switch.
//! * At operation level `K` every (remaining) task uses its original
//!   deadline.
//!
//! The factors are all clamped into `(0, 1]`; a factor of 1 means "no
//! virtual deadline".

use mcs_model::{CritLevel, LevelUtils, MAX_LEVELS};

use crate::theorem1::Theorem1;
use crate::EPS;

/// Per-mode virtual-deadline multipliers for one core's task subset.
#[derive(Clone, Debug, PartialEq)]
pub struct VdAssignment {
    k: u8,
    kstar: u8,
    /// `low[l-1]` = multiplier at operation level `l < k*` for active tasks
    /// of level `> l` (cumulative λ product).
    low: [f64; MAX_LEVELS as usize],
    /// Constant multiplier for level-K tasks at operation levels `< K`.
    xk: f64,
}

impl VdAssignment {
    /// Derive the assignment from a Theorem-1 evaluation of the same
    /// utilization view. Returns `None` when the view is not feasible (no
    /// condition of Inequality (5) holds), since then no protocol is
    /// guaranteed.
    #[must_use]
    pub fn compute<U: LevelUtils>(u: &U, analysis: &Theorem1) -> Option<Self> {
        let k = u.num_levels();
        assert_eq!(k, analysis.num_levels(), "analysis/view level mismatch");
        let kstar = analysis.smallest_passing()?;
        let mut out = Self { k, kstar, low: [1.0; MAX_LEVELS as usize], xk: 1.0 };
        if k == 1 || analysis.plain_edf_sufficient() {
            // Eq. (4) holds: EDF-VD reduces to plain EDF, no shrinking.
            return Some(out);
        }

        // Cumulative λ product for modes below k*: factor at mode l is
        // Π_{x=2}^{l+1} λ_x.
        let mut prod = 1.0;
        for l in 1..kstar {
            let lambda =
                analysis.lambda(l + 1).expect("λ_2..λ_{k*} are valid whenever condition k* holds");
            // λ = 0 only when no tasks above level l exist, in which case
            // the factor is never consulted; keep 1.0 to stay in (0, 1].
            if lambda > 0.0 {
                prod *= lambda;
                out.low[usize::from(l - 1)] = prod.clamp(EPS, 1.0);
            }
        }

        // Single level-K shrink for modes k*..K-1 when the min-term leaned
        // on the fraction.
        if analysis.minterm_is_fraction() {
            let lk = CritLevel::new(k);
            let ukk1 = u.util_jk(lk, CritLevel::new(k - 1));
            if ukk1 > 0.0 {
                let own_sum: f64 = (kstar..k)
                    .map(|i| {
                        let li = CritLevel::new(i);
                        u.util_jk(li, li)
                    })
                    .sum();
                let mu = analysis.mu(kstar).expect("µ(k*) valid when condition k* holds");
                let den = mu - own_sum;
                out.xk = if den > EPS { (ukk1 / den).clamp(EPS, 1.0) } else { 1.0 };
            }
        }
        Some(out)
    }

    /// The smallest passing condition `k*` the protocol is built around.
    #[inline]
    #[must_use]
    pub fn kstar(&self) -> u8 {
        self.kstar
    }

    /// The constant level-K shrink factor (1.0 when unused).
    #[inline]
    #[must_use]
    pub fn level_k_factor(&self) -> f64 {
        self.xk
    }

    /// Relative-deadline multiplier for an *active* task of criticality
    /// `task_level` while the core operates at `mode`.
    ///
    /// Panics if the task would already be dropped (`task_level < mode`).
    #[must_use]
    pub fn factor(&self, mode: CritLevel, task_level: CritLevel) -> f64 {
        assert!(task_level >= mode, "task of level {task_level} is dropped at mode {mode}");
        let l = mode.get();
        let is_top = task_level.get() == self.k;
        if l < self.kstar {
            if task_level == mode {
                1.0
            } else {
                let base = self.low[usize::from(l - 1)];
                if is_top {
                    base.min(self.xk)
                } else {
                    base
                }
            }
        } else if l < self.k && is_top {
            self.xk
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn assignment(k: u8, tasks: &[McTask]) -> Option<(Theorem1, VdAssignment)> {
        let t = UtilTable::from_tasks(k, tasks.iter());
        let a = Theorem1::compute(&t);
        let vd = VdAssignment::compute(&t, &a)?;
        Some((a, vd))
    }

    const M1: CritLevel = CritLevel::LO;

    #[test]
    fn infeasible_view_yields_none() {
        let tasks = [task(0, 10, 1, &[9]), task(1, 10, 2, &[5, 9])];
        assert!(assignment(2, &tasks).is_none());
    }

    #[test]
    fn plain_edf_case_has_unit_factors() {
        let tasks = [task(0, 10, 1, &[3]), task(1, 10, 2, &[2, 5])];
        let (_, vd) = assignment(2, &tasks).unwrap();
        assert_eq!(vd.factor(M1, M1), 1.0);
        assert_eq!(vd.factor(M1, CritLevel::new(2)), 1.0);
        assert_eq!(vd.factor(CritLevel::new(2), CritLevel::new(2)), 1.0);
    }

    #[test]
    fn dual_vd_case_matches_canonical_x() {
        // U_1(1)=0.5, U_2(1)=0.1, U_2(2)=0.6: x = 0.1/0.5 = 0.2.
        let tasks = [task(0, 10, 1, &[5]), task(1, 100, 2, &[10, 60])];
        let (a, vd) = assignment(2, &tasks).unwrap();
        assert!(a.minterm_is_fraction());
        assert_eq!(vd.kstar(), 1);
        let x = vd.factor(M1, CritLevel::new(2));
        assert!((x - 0.2).abs() < 1e-12, "x = {x}");
        assert!((vd.level_k_factor() - 0.2).abs() < 1e-12);
        // LO tasks unaffected; HI mode restores original deadlines.
        assert_eq!(vd.factor(M1, M1), 1.0);
        assert_eq!(vd.factor(CritLevel::new(2), CritLevel::new(2)), 1.0);
        // Agreement with the standalone closed form.
        let t = UtilTable::from_tasks(2, tasks.iter());
        assert!((crate::dual::dual_vd_factor(&t).unwrap() - x).abs() < 1e-12);
    }

    #[test]
    fn three_level_kstar2_uses_lambda_below_and_xk_above() {
        // Same set as the theorem1 test: k* = 2, λ_2 = 0.25.
        let tasks =
            [task(0, 10, 1, &[6]), task(1, 100, 2, &[5, 30]), task(2, 100, 3, &[5, 10, 40])];
        let (a, vd) = assignment(3, &tasks).unwrap();
        assert_eq!(vd.kstar(), 2);
        assert!(a.minterm_is_fraction());
        // x_K = U_3(2) / (µ(2) − U_2(2)) = 0.1 / (0.75 − 0.3) = 2/9.
        let xk = vd.level_k_factor();
        assert!((xk - 0.1 / 0.45).abs() < 1e-12, "x_K = {xk}");
        // Mode 1 (< k*): level-2 gets λ_2 = 0.25; level-3 (top) gets
        // min(λ_2, x_K) = 0.2222….
        assert!((vd.factor(M1, CritLevel::new(2)) - 0.25).abs() < 1e-12);
        assert!((vd.factor(M1, CritLevel::new(3)) - xk).abs() < 1e-12);
        assert_eq!(vd.factor(M1, M1), 1.0);
        // Mode 2 (= k*): level-2 restored; level-3 keeps x_K.
        assert_eq!(vd.factor(CritLevel::new(2), CritLevel::new(2)), 1.0);
        assert!((vd.factor(CritLevel::new(2), CritLevel::new(3)) - xk).abs() < 1e-12);
        // Mode 3: original.
        assert_eq!(vd.factor(CritLevel::new(3), CritLevel::new(3)), 1.0);
    }

    #[test]
    fn level_k_factor_is_mode_monotone() {
        // The factor for the top level must never *decrease* as the mode
        // rises (a decrease would shrink in-flight deadlines — the unsound
        // behaviour the soundness experiment caught).
        let tasks = [
            task(0, 50, 1, &[10]),
            task(1, 100, 2, &[10, 25]),
            task(2, 200, 3, &[10, 20, 60]),
            task(3, 400, 4, &[10, 20, 30, 100]),
        ];
        if let Some((_, vd)) = assignment(4, &tasks) {
            let mut prev = 0.0f64;
            for mode in CritLevel::up_to(4) {
                let f = vd.factor(mode, CritLevel::new(4));
                assert!(
                    f >= prev - 1e-12,
                    "top-level factor decreased at mode {mode}: {prev} -> {f}"
                );
                prev = f;
            }
        }
    }

    #[test]
    fn factors_always_in_unit_interval() {
        let tasks = [
            task(0, 50, 1, &[10]),
            task(1, 100, 2, &[10, 25]),
            task(2, 200, 3, &[10, 20, 80]),
            task(3, 400, 4, &[10, 20, 30, 100]),
        ];
        if let Some((_, vd)) = assignment(4, &tasks) {
            for mode in CritLevel::up_to(4) {
                for lvl in CritLevel::up_to(4).filter(|l| *l >= mode) {
                    let f = vd.factor(mode, lvl);
                    assert!(f > 0.0 && f <= 1.0, "factor {f} at mode {mode} level {lvl}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dropped")]
    fn querying_dropped_task_panics() {
        let tasks = [task(0, 10, 2, &[1, 2])];
        let (_, vd) = assignment(2, &tasks).unwrap();
        let _ = vd.factor(CritLevel::new(2), CritLevel::new(1));
    }
}
