//! Sensitivity analysis: how much load headroom a subset has.
//!
//! The *critical scaling factor* of a subset is the largest `s` such that
//! inflating every task's utilization by `s` keeps the subset
//! Theorem-1-feasible. `s < 1` means the subset is infeasible as given;
//! `s = 1.3` means 30 % of uniform growth margin. Feasibility is
//! anti-monotone in `s` (inflating utilizations only lowers every available
//! utilization `A(k)`), so binary search applies.

use mcs_model::{CritLevel, LevelUtils};

use crate::theorem1::Theorem1;

/// A view of `base` with every utilization multiplied by `scale`.
#[derive(Clone, Copy)]
pub struct ScaledView<'a, U: LevelUtils> {
    base: &'a U,
    scale: f64,
}

impl<'a, U: LevelUtils> ScaledView<'a, U> {
    /// Wrap a utilization view with a uniform scale factor.
    #[must_use]
    pub fn new(base: &'a U, scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "scale must be finite and non-negative");
        Self { base, scale }
    }
}

impl<U: LevelUtils> LevelUtils for ScaledView<'_, U> {
    fn num_levels(&self) -> u8 {
        self.base.num_levels()
    }
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        self.base.util_jk(j, k) * self.scale
    }
}

/// Binary-search precision of [`critical_scaling`].
const TOLERANCE: f64 = 1e-6;

/// The largest uniform utilization scale keeping the view Theorem-1
/// feasible, or `None` when even a vanishing load is infeasible (cannot
/// happen for non-degenerate views) or the view is empty (unbounded —
/// reported as `None` as well since no finite answer exists).
#[must_use]
pub fn critical_scaling<U: LevelUtils>(u: &U) -> Option<f64> {
    let feasible_at = |s: f64| Theorem1::compute(&ScaledView::new(u, s)).feasible();
    // An empty / zero-utilization view is feasible at any scale.
    let total: f64 = CritLevel::up_to(u.num_levels()).map(|j| u.util_jk(j, CritLevel::LO)).sum();
    if total <= 0.0 {
        return None;
    }
    if !feasible_at(TOLERANCE) {
        return Some(0.0);
    }
    // Bracket: grow hi until infeasible (bounded — scaling U_K(K) past 1
    // always kills feasibility).
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while feasible_at(hi) {
        lo = hi;
        hi *= 2.0;
        if hi > 1e9 {
            return None; // degenerate: nothing ever becomes infeasible
        }
    }
    while hi - lo > TOLERANCE {
        let mid = 0.5 * (lo + hi);
        if feasible_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn single_level_scaling_is_inverse_utilization() {
        // One task at 0.4: critical scale = 1/0.4 = 2.5.
        let t = task(0, 10, 1, &[4]);
        let table = UtilTable::from_tasks(1, [&t]);
        let s = critical_scaling(&table).unwrap();
        assert!((s - 2.5).abs() < 1e-4, "s = {s}");
    }

    #[test]
    fn infeasible_subset_scales_below_one() {
        let a = task(0, 10, 1, &[7]);
        let b = task(1, 10, 1, &[7]);
        let table = UtilTable::from_tasks(1, [&a, &b]);
        let s = critical_scaling(&table).unwrap();
        assert!(s < 1.0, "s = {s}");
        assert!((s - 1.0 / 1.4).abs() < 1e-4, "s = {s}");
    }

    #[test]
    fn dual_criticality_scaling_respects_theorem1() {
        // U_1(1)=0.5, U_2(1)=0.1, U_2(2)=0.6: feasible at 1 (θ = 0.75).
        let lo = task(0, 10, 1, &[5]);
        let hi = task(1, 100, 2, &[10, 60]);
        let table = UtilTable::from_tasks(2, [&lo, &hi]);
        let s = critical_scaling(&table).unwrap();
        assert!(s > 1.0, "must have headroom: {s}");
        // Verify the boundary: feasible just below, infeasible just above.
        assert!(Theorem1::compute(&ScaledView::new(&table, s - 1e-3)).feasible());
        assert!(!Theorem1::compute(&ScaledView::new(&table, s + 1e-3)).feasible());
    }

    #[test]
    fn empty_view_has_no_finite_scale() {
        let table = UtilTable::new(3);
        assert_eq!(critical_scaling(&table), None);
    }

    #[test]
    fn scaling_is_monotone_in_load() {
        // Adding a task can only lower the critical scale.
        let a = task(0, 10, 2, &[2, 4]);
        let b = task(1, 20, 1, &[5]);
        let small = UtilTable::from_tasks(2, [&a]);
        let big = UtilTable::from_tasks(2, [&a, &b]);
        let s_small = critical_scaling(&small).unwrap();
        let s_big = critical_scaling(&big).unwrap();
        assert!(s_big <= s_small + 1e-6, "{s_big} > {s_small}");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_scale() {
        let table = UtilTable::new(1);
        let _ = ScaledView::new(&table, -1.0);
    }
}
