//! Classic single-level EDF utilization test.

use mcs_model::LevelUtils;

use crate::EPS;

/// Liu & Layland: a set of implicit-deadline periodic tasks is schedulable
/// by preemptive EDF on one processor iff its total utilization is ≤ 1.
///
/// In the MC model this is the `K = 1` degenerate case, where every task is
/// counted at its (single) level.
#[must_use]
pub fn edf_utilization_test<U: LevelUtils>(u: &U) -> bool {
    u.own_level_total() <= 1.0 + EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{TaskBuilder, TaskId, UtilTable};

    fn table(utils: &[(u64, u64)]) -> UtilTable {
        let mut t = UtilTable::new(1);
        for (i, &(c, p)) in utils.iter().enumerate() {
            let task =
                TaskBuilder::new(TaskId(i as u32)).period(p).level(1).wcet(&[c]).build().unwrap();
            t.add(&task);
        }
        t
    }

    #[test]
    fn under_full_utilization_passes() {
        assert!(edf_utilization_test(&table(&[(1, 4), (1, 2), (1, 8)]))); // 0.875
    }

    #[test]
    fn exactly_full_utilization_passes() {
        assert!(edf_utilization_test(&table(&[(1, 2), (1, 2)]))); // 1.0
    }

    #[test]
    fn over_full_utilization_fails() {
        assert!(!edf_utilization_test(&table(&[(3, 4), (2, 4)]))); // 1.25
    }

    #[test]
    fn empty_set_passes() {
        assert!(edf_utilization_test(&UtilTable::new(1)));
    }
}
