//! Simulation statistics.

use mcs_model::{CritLevel, TaskId, Tick, MAX_LEVELS};

/// Statistics of one core's simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreReport {
    /// Jobs released.
    pub released: u64,
    /// Jobs that signalled completion (on time or late).
    pub completed: u64,
    /// Jobs discarded by mode switches.
    pub dropped: u64,
    /// Mode switches that occurred.
    pub mode_switches: u64,
    /// Idle resets back to level-1 operation.
    pub idle_resets: u64,
    /// Deadline misses per criticality level of the missing task
    /// (`misses_by_level[l-1]`). Dropped jobs never count as misses.
    pub misses_by_level: [u64; MAX_LEVELS as usize],
    /// Highest operation mode reached.
    pub max_mode: u8,
    /// Worst observed response time per task (`(task, ticks)`), over
    /// completed jobs only.
    pub worst_response: Vec<(TaskId, Tick)>,
}

impl CoreReport {
    /// Record a completed job's response time, keeping the per-task worst.
    pub fn record_response(&mut self, task: TaskId, response: Tick) {
        match self.worst_response.iter_mut().find(|(t, _)| *t == task) {
            Some((_, worst)) => *worst = (*worst).max(response),
            None => self.worst_response.push((task, response)),
        }
    }

    /// Worst observed response time of one task, if it completed any job.
    #[must_use]
    pub fn worst_response_of(&self, task: TaskId) -> Option<Tick> {
        self.worst_response.iter().find(|(t, _)| *t == task).map(|(_, r)| *r)
    }

    /// Total deadline misses across all levels.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.misses_by_level.iter().sum()
    }

    /// Misses by tasks of criticality ≥ `level` — under a behaviour of
    /// level `b`, `mandatory_misses(b) > 0` is a violation of the MC
    /// guarantee.
    #[must_use]
    pub fn mandatory_misses(&self, level: CritLevel) -> u64 {
        self.misses_by_level[level.index()..].iter().sum()
    }

    /// Merge another core's statistics into this one.
    pub fn merge(&mut self, other: &CoreReport) {
        self.released += other.released;
        self.completed += other.completed;
        self.dropped += other.dropped;
        self.mode_switches += other.mode_switches;
        self.idle_resets += other.idle_resets;
        for (a, b) in self.misses_by_level.iter_mut().zip(&other.misses_by_level) {
            *a += b;
        }
        self.max_mode = self.max_mode.max(other.max_mode);
        for (task, r) in &other.worst_response {
            self.record_response(*task, *r);
        }
    }
}

/// Statistics of a full multicore simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Per-core statistics.
    pub cores: Vec<CoreReport>,
}

impl SimReport {
    /// Aggregate over all cores.
    #[must_use]
    pub fn total(&self) -> CoreReport {
        let mut acc = CoreReport::default();
        for c in &self.cores {
            acc.merge(c);
        }
        acc
    }

    /// Whether the MC guarantee held for a behaviour of level `b`: no task
    /// of criticality ≥ `b` missed a deadline on any core.
    #[must_use]
    pub fn guarantee_held(&self, behaviour: CritLevel) -> bool {
        self.cores.iter().all(|c| c.mandatory_misses(behaviour) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mandatory_misses_filters_by_level() {
        let mut r = CoreReport::default();
        r.misses_by_level[0] = 3; // level-1 tasks missed 3 deadlines
        r.misses_by_level[2] = 1; // level-3 task missed once
        assert_eq!(r.total_misses(), 4);
        assert_eq!(r.mandatory_misses(CritLevel::new(1)), 4);
        assert_eq!(r.mandatory_misses(CritLevel::new(2)), 1);
        assert_eq!(r.mandatory_misses(CritLevel::new(3)), 1);
        assert_eq!(r.mandatory_misses(CritLevel::new(4)), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CoreReport { released: 10, completed: 8, max_mode: 2, ..Default::default() };
        let b = CoreReport { released: 5, dropped: 2, max_mode: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.released, 15);
        assert_eq!(a.completed, 8);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.max_mode, 3);
    }

    #[test]
    fn guarantee_checks_all_cores() {
        let mut bad = CoreReport::default();
        bad.misses_by_level[1] = 1;
        let report = SimReport { cores: vec![CoreReport::default(), bad] };
        assert!(!report.guarantee_held(CritLevel::new(1)));
        assert!(!report.guarantee_held(CritLevel::new(2)));
        assert!(report.guarantee_held(CritLevel::new(3)));
    }
}
