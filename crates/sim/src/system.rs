//! Multicore simulation over a partition.
//!
//! Partitioned scheduling means the cores are fully independent: the system
//! simulation runs each core's subset through [`CoreSim`] and aggregates the
//! reports. Scenarios are instantiated per core (seeded independently) so
//! overrun randomness does not correlate across cores.

use mcs_analysis::{Theorem1, VdAssignment};
use mcs_model::{CoreId, McTask, Partition, TaskSet, Tick, UtilTable};

use crate::core::{CoreSim, SchedulerKind};
use crate::report::SimReport;
use crate::scenario::Scenario;
use crate::trace::Trace;

/// Configuration for a multicore simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Explicit horizon in ticks, or `None` to derive one.
    pub horizon: Option<Tick>,
    /// When deriving: simulate `min(hyperperiod, horizon_periods ×
    /// max_period)` per core.
    pub horizon_periods: u32,
    /// Capture per-core traces with this capacity (0 = tracing off).
    pub trace_cap: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { horizon: None, horizon_periods: 20, trace_cap: 0 }
    }
}

impl SimConfig {
    /// The horizon used for a given subset.
    #[must_use]
    pub fn horizon_for(&self, tasks: &[&McTask]) -> Tick {
        if let Some(h) = self.horizon {
            return h;
        }
        let hyper = mcs_model::hyperperiod(tasks.iter().map(|t| t.period()));
        let max_p = tasks.iter().map(|t| t.period()).max().unwrap_or(0);
        hyper.min(max_p.saturating_mul(Tick::from(self.horizon_periods)))
    }
}

/// Errors from setting up a partitioned simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimSetupError {
    /// The partition does not place every task.
    IncompletePartition,
    /// EDF-VD was requested but core `core` fails Theorem 1, so no
    /// virtual-deadline protocol exists for it.
    InfeasibleCore {
        /// The offending core.
        core: CoreId,
    },
}

impl std::fmt::Display for SimSetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimSetupError::IncompletePartition => write!(f, "partition is incomplete"),
            SimSetupError::InfeasibleCore { core } => {
                write!(f, "core {core} fails the EDF-VD schedulability test")
            }
        }
    }
}

impl std::error::Error for SimSetupError {}

/// Which scheduler the cores run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemScheduler {
    /// EDF-VD with per-core analysis-derived virtual deadlines. Fails setup
    /// if any core is infeasible.
    EdfVd,
    /// Plain EDF everywhere (baseline; offers no MC guarantee).
    PlainEdf,
    /// Preemptive fixed priority with deadline-monotonic priorities + AMC
    /// (for partitions produced by `mcs_partition::FpAmc`). No setup-time
    /// feasibility gate: the FP analyses live in `mcs_analysis::amc` and
    /// the caller is expected to have applied them.
    FixedPriorityDm,
}

/// Simulate a partitioned system.
///
/// `make_scenario(core_index)` builds each core's scenario instance.
/// Returns the aggregated report and, when `config.trace_cap > 0`, per-core
/// traces.
pub fn simulate_partition<S, F>(
    ts: &TaskSet,
    partition: &Partition,
    scheduler: SystemScheduler,
    config: &SimConfig,
    mut make_scenario: F,
) -> Result<(SimReport, Vec<Trace>), SimSetupError>
where
    S: Scenario,
    F: FnMut(usize) -> S,
{
    if partition.require_complete(ts).is_err() {
        return Err(SimSetupError::IncompletePartition);
    }

    let mut reports = Vec::with_capacity(partition.num_cores());
    let mut traces = Vec::with_capacity(partition.num_cores());

    for core in CoreId::all(partition.num_cores()) {
        let tasks: Vec<&McTask> = partition.tasks_on(core).map(|id| ts.task(id)).collect();
        let kind = match scheduler {
            SystemScheduler::PlainEdf => SchedulerKind::PlainEdf,
            SystemScheduler::FixedPriorityDm => SchedulerKind::deadline_monotonic(&tasks),
            SystemScheduler::EdfVd => {
                let table = UtilTable::from_tasks(ts.num_levels(), tasks.iter().copied());
                let analysis = Theorem1::compute(&table);
                let vd = VdAssignment::compute(&table, &analysis)
                    .ok_or(SimSetupError::InfeasibleCore { core })?;
                SchedulerKind::EdfVd(vd)
            }
        };
        let horizon = config.horizon_for(&tasks);
        let mut trace =
            if config.trace_cap > 0 { Trace::enabled(config.trace_cap) } else { Trace::disabled() };
        let mut scenario = make_scenario(core.index());
        let sim = CoreSim::new(tasks, kind);
        reports.push(sim.run(&mut scenario, horizon, &mut trace));
        traces.push(trace);
    }
    Ok((SimReport { cores: reports }, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::LevelCap;
    use mcs_model::{CritLevel, TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn demo() -> (TaskSet, Partition) {
        let ts = TaskSet::new(
            2,
            vec![
                task(0, 10, 1, &[4]),
                task(1, 20, 2, &[4, 8]),
                task(2, 10, 1, &[4]),
                task(3, 40, 2, &[8, 16]),
            ],
        )
        .unwrap();
        let mut p = Partition::empty(2, 4);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(0));
        p.assign(TaskId(2), CoreId(1));
        p.assign(TaskId(3), CoreId(1));
        (ts, p)
    }

    #[test]
    fn nominal_behaviour_has_no_misses() {
        let (ts, p) = demo();
        let (report, _) =
            simulate_partition(&ts, &p, SystemScheduler::EdfVd, &SimConfig::default(), |_| {
                LevelCap::lo()
            })
            .unwrap();
        assert_eq!(report.total().total_misses(), 0);
        assert!(report.guarantee_held(CritLevel::new(1)));
    }

    #[test]
    fn worst_case_behaviour_protects_hi_tasks() {
        let (ts, p) = demo();
        let (report, _) =
            simulate_partition(&ts, &p, SystemScheduler::EdfVd, &SimConfig::default(), |_| {
                LevelCap::new(2)
            })
            .unwrap();
        assert!(report.guarantee_held(CritLevel::new(2)), "{report:?}");
    }

    #[test]
    fn incomplete_partition_is_rejected() {
        let (ts, _) = demo();
        let p = Partition::empty(2, 4);
        let err =
            simulate_partition(&ts, &p, SystemScheduler::EdfVd, &SimConfig::default(), |_| {
                LevelCap::lo()
            })
            .unwrap_err();
        assert_eq!(err, SimSetupError::IncompletePartition);
    }

    #[test]
    fn infeasible_core_is_rejected_for_edfvd() {
        let ts = TaskSet::new(2, vec![task(0, 10, 2, &[6, 9]), task(1, 10, 2, &[6, 9])]).unwrap();
        let mut p = Partition::empty(1, 2);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(0));
        let err =
            simulate_partition(&ts, &p, SystemScheduler::EdfVd, &SimConfig::default(), |_| {
                LevelCap::lo()
            })
            .unwrap_err();
        assert_eq!(err, SimSetupError::InfeasibleCore { core: CoreId(0) });
        // Plain EDF runs anyway (and will miss under load).
        let r =
            simulate_partition(&ts, &p, SystemScheduler::PlainEdf, &SimConfig::default(), |_| {
                LevelCap::new(2)
            });
        assert!(r.is_ok());
    }

    #[test]
    fn traces_are_captured_when_enabled() {
        let (ts, p) = demo();
        let cfg = SimConfig { trace_cap: 64, ..Default::default() };
        let (_, traces) =
            simulate_partition(&ts, &p, SystemScheduler::EdfVd, &cfg, |_| LevelCap::lo()).unwrap();
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| !t.events().is_empty()));
    }

    #[test]
    fn horizon_defaults_to_hyperperiod_when_small() {
        let t0 = task(0, 10, 1, &[1]);
        let t1 = task(1, 15, 1, &[1]);
        let cfg = SimConfig::default();
        assert_eq!(cfg.horizon_for(&[&t0, &t1]), 30);
        let cfg = SimConfig { horizon: Some(7), ..Default::default() };
        assert_eq!(cfg.horizon_for(&[&t0, &t1]), 7);
    }
}

#[cfg(test)]
mod fp_system_tests {
    use super::*;
    use crate::scenario::LevelCap;
    use mcs_model::{CritLevel, TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn fp_system_runs_partitions_end_to_end() {
        let ts = TaskSet::new(
            2,
            vec![
                task(0, 10, 1, &[2]),
                task(1, 40, 2, &[6, 12]),
                task(2, 20, 1, &[5]),
                task(3, 80, 2, &[10, 20]),
            ],
        )
        .unwrap();
        let mut p = Partition::empty(2, 4);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(0));
        p.assign(TaskId(2), CoreId(1));
        p.assign(TaskId(3), CoreId(1));
        for b in 1..=2u8 {
            let (report, _) = simulate_partition(
                &ts,
                &p,
                SystemScheduler::FixedPriorityDm,
                &SimConfig::default(),
                |_| LevelCap::new(b),
            )
            .unwrap();
            assert!(
                report.guarantee_held(CritLevel::new(b)),
                "FP-DM missed at behaviour {b}: {report:?}"
            );
        }
    }
}

/// Parallel variant of [`simulate_partition`]: cores are simulated on
/// crossbeam scoped threads (partitioned scheduling makes them fully
/// independent, so this is an embarrassingly parallel fan-out). Produces
/// bit-identical reports to the sequential version — scenarios are
/// constructed per core index up front, so thread scheduling cannot leak
/// into the results.
pub fn simulate_partition_parallel<S, F>(
    ts: &TaskSet,
    partition: &Partition,
    scheduler: SystemScheduler,
    config: &SimConfig,
    mut make_scenario: F,
) -> Result<(SimReport, Vec<Trace>), SimSetupError>
where
    S: Scenario + Send,
    F: FnMut(usize) -> S,
{
    if partition.require_complete(ts).is_err() {
        return Err(SimSetupError::IncompletePartition);
    }

    // Per-core setup happens serially (cheap); only the runs fan out.
    struct CoreJob<'a, S> {
        tasks: Vec<&'a McTask>,
        kind: SchedulerKind,
        horizon: Tick,
        scenario: S,
        trace_cap: usize,
    }
    let mut jobs: Vec<CoreJob<'_, S>> = Vec::with_capacity(partition.num_cores());
    for core in CoreId::all(partition.num_cores()) {
        let tasks: Vec<&McTask> = partition.tasks_on(core).map(|id| ts.task(id)).collect();
        let kind = match scheduler {
            SystemScheduler::PlainEdf => SchedulerKind::PlainEdf,
            SystemScheduler::FixedPriorityDm => SchedulerKind::deadline_monotonic(&tasks),
            SystemScheduler::EdfVd => {
                let table = UtilTable::from_tasks(ts.num_levels(), tasks.iter().copied());
                let analysis = Theorem1::compute(&table);
                let vd = VdAssignment::compute(&table, &analysis)
                    .ok_or(SimSetupError::InfeasibleCore { core })?;
                SchedulerKind::EdfVd(vd)
            }
        };
        let horizon = config.horizon_for(&tasks);
        jobs.push(CoreJob {
            tasks,
            kind,
            horizon,
            scenario: make_scenario(core.index()),
            trace_cap: config.trace_cap,
        });
    }

    let results: Vec<(crate::report::CoreReport, Trace)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|mut job| {
                s.spawn(move |_| {
                    let mut trace = if job.trace_cap > 0 {
                        Trace::enabled(job.trace_cap)
                    } else {
                        Trace::disabled()
                    };
                    let sim = CoreSim::new(job.tasks, job.kind);
                    let report = sim.run(&mut job.scenario, job.horizon, &mut trace);
                    (report, trace)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("core simulation panicked")).collect()
    })
    .expect("simulation scope panicked");

    let (reports, traces): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    Ok((SimReport { cores: reports }, traces))
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::scenario::Probabilistic;

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        use mcs_model::{TaskBuilder, TaskId};
        let mk = |id: u32, p: u64, l: u8, w: &[u64]| {
            TaskBuilder::new(TaskId(id)).period(p).level(l).wcet(w).build().unwrap()
        };
        let ts = TaskSet::new(
            2,
            vec![
                mk(0, 10, 1, &[3]),
                mk(1, 20, 2, &[4, 8]),
                mk(2, 15, 1, &[5]),
                mk(3, 60, 2, &[10, 20]),
            ],
        )
        .unwrap();
        let mut p = Partition::empty(2, 4);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(0));
        p.assign(TaskId(2), CoreId(1));
        p.assign(TaskId(3), CoreId(1));
        let cfg = SimConfig { trace_cap: 32, ..Default::default() };
        let scenario = |c: usize| Probabilistic::new(0.3, 2, c as u64);
        let (seq, seq_traces) =
            simulate_partition(&ts, &p, SystemScheduler::EdfVd, &cfg, scenario).unwrap();
        let (par, par_traces) =
            simulate_partition_parallel(&ts, &p, SystemScheduler::EdfVd, &cfg, scenario).unwrap();
        assert_eq!(seq, par);
        for (a, b) in seq_traces.iter().zip(&par_traces) {
            assert_eq!(a.events(), b.events());
        }
    }

    #[test]
    fn parallel_propagates_setup_errors() {
        use mcs_model::{TaskBuilder, TaskId};
        let t = |id: u32| {
            TaskBuilder::new(TaskId(id)).period(10).level(2).wcet(&[6, 9]).build().unwrap()
        };
        let ts = TaskSet::new(2, vec![t(0), t(1)]).unwrap();
        let mut p = Partition::empty(1, 2);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(0));
        let err = simulate_partition_parallel(
            &ts,
            &p,
            SystemScheduler::EdfVd,
            &SimConfig::default(),
            |_| crate::scenario::LevelCap::lo(),
        )
        .unwrap_err();
        assert_eq!(err, SimSetupError::InfeasibleCore { core: CoreId(0) });
    }
}
