//! Optional event tracing for the simulator — used by examples to show the
//! runtime behaviour (mode switches, drops, completions) and by tests to
//! assert event ordering.

use std::fmt;

use mcs_model::{CritLevel, TaskId, Tick};

/// One simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A job arrived.
    Release {
        /// Release instant.
        time: Tick,
        /// Releasing task.
        task: TaskId,
        /// Job index within the task (0-based).
        job: u64,
        /// The job's absolute deadline.
        deadline: Tick,
    },
    /// A job signalled completion.
    Complete {
        /// Completion instant.
        time: Tick,
        /// Completing task.
        task: TaskId,
        /// Job index within the task (0-based).
        job: u64,
        /// Whether completion happened after the deadline.
        late: bool,
    },
    /// A job of `task` exhausted its level-`from` budget: the core switched
    /// modes.
    ModeSwitch {
        /// Switch instant.
        time: Tick,
        /// The task whose budget overran.
        task: TaskId,
        /// Mode before the switch.
        from: CritLevel,
        /// Mode after the switch.
        to: CritLevel,
    },
    /// A live job was discarded by a mode switch.
    Drop {
        /// Drop instant.
        time: Tick,
        /// Task whose job was discarded.
        task: TaskId,
        /// Job index within the task (0-based).
        job: u64,
    },
    /// The core idled and reset to level-1 operation.
    IdleReset {
        /// Reset instant.
        time: Tick,
    },
    /// A (non-dropped) job's deadline passed before completion.
    DeadlineMiss {
        /// The missed deadline instant.
        time: Tick,
        /// Task that missed.
        task: TaskId,
        /// Job index within the task (0-based).
        job: u64,
    },
}

impl TraceEvent {
    /// Event timestamp.
    #[must_use]
    pub fn time(&self) -> Tick {
        match self {
            TraceEvent::Release { time, .. }
            | TraceEvent::Complete { time, .. }
            | TraceEvent::ModeSwitch { time, .. }
            | TraceEvent::Drop { time, .. }
            | TraceEvent::IdleReset { time }
            | TraceEvent::DeadlineMiss { time, .. } => *time,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Release { time, task, job, deadline } => {
                write!(f, "[{time:>8}] release  τ{task}#{job} (deadline {deadline})")
            }
            TraceEvent::Complete { time, task, job, late } => {
                let mark = if *late { " LATE" } else { "" };
                write!(f, "[{time:>8}] complete τ{task}#{job}{mark}")
            }
            TraceEvent::ModeSwitch { time, task, from, to } => {
                write!(f, "[{time:>8}] MODE {from}→{to} (τ{task} exceeded its level-{from} budget)")
            }
            TraceEvent::Drop { time, task, job } => {
                write!(f, "[{time:>8}] drop     τ{task}#{job}")
            }
            TraceEvent::IdleReset { time } => write!(f, "[{time:>8}] idle — reset to level 1"),
            TraceEvent::DeadlineMiss { time, task, job } => {
                write!(f, "[{time:>8}] MISS     τ{task}#{job}")
            }
        }
    }
}

/// A bounded event log. Disabled traces cost one branch per event.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    cap: usize,
}

impl Trace {
    /// An enabled trace holding at most `cap` events (older events are kept;
    /// excess events are discarded).
    #[must_use]
    pub fn enabled(cap: usize) -> Self {
        Self { events: Vec::new(), enabled: true, cap }
    }

    /// A disabled trace (records nothing).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Record an event (no-op when disabled or full).
    ///
    /// Every simulator event flows through here whether or not the trace
    /// is enabled, so this is also the telemetry bridge: each event kind
    /// bumps its [`mcs_obs`] counter before the enabled check.
    pub fn push(&mut self, event: TraceEvent) {
        mcs_obs::counter!(match event {
            TraceEvent::Release { .. } => mcs_obs::Counter::SimReleases,
            TraceEvent::Complete { .. } => mcs_obs::Counter::SimCompletions,
            TraceEvent::ModeSwitch { .. } => mcs_obs::Counter::SimModeSwitches,
            TraceEvent::Drop { .. } => mcs_obs::Counter::SimDrops,
            TraceEvent::IdleReset { .. } => mcs_obs::Counter::SimIdleResets,
            TraceEvent::DeadlineMiss { .. } => mcs_obs::Counter::SimDeadlineMisses,
        });
        if self.enabled && self.events.len() < self.cap {
            self.events.push(event);
        }
    }

    /// Recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether this trace records events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceEvent::IdleReset { time: 5 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_caps_events() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.push(TraceEvent::IdleReset { time: i });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].time(), 0);
        assert_eq!(t.events()[1].time(), 1);
    }

    #[test]
    fn display_formats_are_stable() {
        let e = TraceEvent::ModeSwitch {
            time: 42,
            task: TaskId(3),
            from: CritLevel::new(1),
            to: CritLevel::new(2),
        };
        let s = e.to_string();
        assert!(s.contains("MODE 1→2"), "{s}");
        assert!(s.contains("τ3"), "{s}");
    }
}
