//! Execution scenarios: how much work each job actually demands.
//!
//! A scenario assigns every job a *behaviour level* `b ≤ l_i`; the job then
//! executes for exactly `c_i(b)` before signalling completion. A job whose
//! behaviour exceeds the core's current mode budget triggers the AMC mode
//! switch on its way there.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mcs_model::{CritLevel, McTask, TaskId, Tick};

/// Decides each job's actual execution demand.
pub trait Scenario {
    /// Demand (in ticks) of the `job_index`-th job of `task`
    /// (0-based per task). Must be within `[1, c_i(l_i)]`.
    fn demand(&mut self, task: &McTask, job_index: u64) -> Tick;

    /// The highest behaviour level any job of this scenario may exhibit —
    /// the `b` of the MC guarantee ("tasks of criticality ≥ b meet their
    /// deadlines"). Used by validators to decide which misses are
    /// violations.
    fn behaviour_level(&self) -> CritLevel;
}

/// Every job behaves at level `min(l_i, cap)` — the deterministic worst case
/// for that behaviour level. `LevelCap::lo()` is the all-nominal scenario,
/// `LevelCap::new(K)` the global worst case.
#[derive(Clone, Copy, Debug)]
pub struct LevelCap {
    cap: CritLevel,
}

impl LevelCap {
    /// Worst-case behaviour at level `cap`.
    #[must_use]
    pub fn new(cap: u8) -> Self {
        Self { cap: CritLevel::new(cap) }
    }

    /// All jobs stay within their level-1 estimates.
    #[must_use]
    pub fn lo() -> Self {
        Self::new(1)
    }
}

impl Scenario for LevelCap {
    fn demand(&mut self, task: &McTask, _job_index: u64) -> Tick {
        task.wcet(task.level().min(self.cap))
    }

    fn behaviour_level(&self) -> CritLevel {
        self.cap
    }
}

/// Each job of a task with criticality above 1 *escalates* one level with
/// probability `p` per level (independently), modelling sporadic overruns.
#[derive(Clone, Debug)]
pub struct Probabilistic {
    p: f64,
    rng: SmallRng,
    max_level: CritLevel,
}

impl Probabilistic {
    /// Overrun probability `p ∈ [0, 1]` per level step; deterministic for a
    /// given seed. `max_level` caps the escalation (the guarantee level).
    #[must_use]
    pub fn new(p: f64, max_level: u8, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self { p, rng: SmallRng::seed_from_u64(seed), max_level: CritLevel::new(max_level) }
    }
}

impl Scenario for Probabilistic {
    fn demand(&mut self, task: &McTask, _job_index: u64) -> Tick {
        let mut level = CritLevel::LO;
        let cap = task.level().min(self.max_level);
        while level < cap && self.rng.gen_bool(self.p) {
            level = level.next().expect("bounded by cap");
        }
        task.wcet(level)
    }

    fn behaviour_level(&self) -> CritLevel {
        self.max_level
    }
}

/// Exactly one designated job overruns to its task's own level; everything
/// else stays nominal. Useful for tracing a single mode switch.
#[derive(Clone, Copy, Debug)]
pub struct SingleOverrun {
    task: TaskId,
    job_index: u64,
    level: CritLevel,
}

impl SingleOverrun {
    /// The `job_index`-th job of `task` behaves at `level`.
    #[must_use]
    pub fn new(task: TaskId, job_index: u64, level: u8) -> Self {
        Self { task, job_index, level: CritLevel::new(level) }
    }
}

impl Scenario for SingleOverrun {
    fn demand(&mut self, task: &McTask, job_index: u64) -> Tick {
        if task.id() == self.task && job_index == self.job_index {
            task.wcet(task.level().min(self.level))
        } else {
            task.wcet(CritLevel::LO)
        }
    }

    fn behaviour_level(&self) -> CritLevel {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::TaskBuilder;

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn level_cap_caps_at_task_level() {
        let t = task(0, 100, 2, &[10, 30]);
        assert_eq!(LevelCap::lo().demand(&t, 0), 10);
        assert_eq!(LevelCap::new(2).demand(&t, 0), 30);
        // Cap above the task's own level clamps to the task level.
        assert_eq!(LevelCap::new(4).demand(&t, 0), 30);
    }

    #[test]
    fn single_overrun_hits_one_job_only() {
        let t = task(0, 100, 3, &[10, 20, 30]);
        let other = task(1, 100, 3, &[5, 6, 7]);
        let mut s = SingleOverrun::new(TaskId(0), 2, 3);
        assert_eq!(s.demand(&t, 0), 10);
        assert_eq!(s.demand(&t, 2), 30);
        assert_eq!(s.demand(&t, 3), 10);
        assert_eq!(s.demand(&other, 2), 5);
        assert_eq!(s.behaviour_level().get(), 3);
    }

    #[test]
    fn probabilistic_zero_p_is_nominal() {
        let t = task(0, 100, 3, &[10, 20, 30]);
        let mut s = Probabilistic::new(0.0, 3, 1);
        for j in 0..50 {
            assert_eq!(s.demand(&t, j), 10);
        }
    }

    #[test]
    fn probabilistic_one_p_is_worst_case() {
        let t = task(0, 100, 3, &[10, 20, 30]);
        let mut s = Probabilistic::new(1.0, 3, 1);
        assert_eq!(s.demand(&t, 0), 30);
        // Capped by max_level.
        let mut s2 = Probabilistic::new(1.0, 2, 1);
        assert_eq!(s2.demand(&t, 0), 20);
    }

    #[test]
    fn probabilistic_is_seed_deterministic() {
        let t = task(0, 100, 4, &[10, 20, 30, 40]);
        let mut a = Probabilistic::new(0.5, 4, 99);
        let mut b = Probabilistic::new(0.5, 4, 99);
        for j in 0..100 {
            assert_eq!(a.demand(&t, j), b.demand(&t, j));
        }
    }

    #[test]
    fn demands_always_within_bounds() {
        let t = task(0, 100, 4, &[10, 20, 30, 40]);
        let mut s = Probabilistic::new(0.7, 4, 5);
        for j in 0..200 {
            let d = s.demand(&t, j);
            assert!((10..=40).contains(&d));
        }
    }
}

/// A correlated *burst*: within a time-indexed window of job indices, every
/// job of every task behaves at the burst level; outside it, nominal. This
/// models the common-cause overruns (cache storms, interrupt floods) that
/// independent per-job models miss — AMC must survive many tasks
/// escalating in the same window.
#[derive(Clone, Copy, Debug)]
pub struct BurstOverrun {
    /// First affected job index (per task).
    pub from_index: u64,
    /// Last affected job index (inclusive, per task).
    pub to_index: u64,
    /// Behaviour level inside the burst.
    pub level: CritLevel,
}

impl BurstOverrun {
    /// Jobs `from..=to` (per task) behave at `level`.
    #[must_use]
    pub fn new(from_index: u64, to_index: u64, level: u8) -> Self {
        assert!(from_index <= to_index, "empty burst window");
        Self { from_index, to_index, level: CritLevel::new(level) }
    }
}

impl Scenario for BurstOverrun {
    fn demand(&mut self, task: &McTask, job_index: u64) -> Tick {
        if (self.from_index..=self.to_index).contains(&job_index) {
            task.wcet(task.level().min(self.level))
        } else {
            task.wcet(CritLevel::LO)
        }
    }

    fn behaviour_level(&self) -> CritLevel {
        self.level
    }
}

/// A fully scripted scenario: explicit `(task, job_index) → level`
/// overrides with a nominal default — lets tests pin down exact interleaved
/// behaviours.
#[derive(Clone, Debug, Default)]
pub struct Scripted {
    overrides: Vec<(TaskId, u64, CritLevel)>,
}

impl Scripted {
    /// Empty script (all nominal).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an override: the `job`-th job of `task` behaves at `level`.
    #[must_use]
    pub fn with(mut self, task: TaskId, job: u64, level: u8) -> Self {
        self.overrides.push((task, job, CritLevel::new(level)));
        self
    }
}

impl Scenario for Scripted {
    fn demand(&mut self, task: &McTask, job_index: u64) -> Tick {
        let level = self
            .overrides
            .iter()
            .find(|(t, j, _)| *t == task.id() && *j == job_index)
            .map_or(CritLevel::LO, |(_, _, l)| *l);
        task.wcet(task.level().min(level))
    }

    fn behaviour_level(&self) -> CritLevel {
        self.overrides.iter().map(|(_, _, l)| *l).max().unwrap_or(CritLevel::LO)
    }
}

#[cfg(test)]
mod extra_scenario_tests {
    use super::*;
    use mcs_model::TaskBuilder;

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn burst_affects_only_its_window() {
        let t = task(0, 100, 3, &[10, 20, 30]);
        let mut s = BurstOverrun::new(2, 4, 3);
        assert_eq!(s.demand(&t, 1), 10);
        assert_eq!(s.demand(&t, 2), 30);
        assert_eq!(s.demand(&t, 4), 30);
        assert_eq!(s.demand(&t, 5), 10);
        assert_eq!(s.behaviour_level().get(), 3);
    }

    #[test]
    #[should_panic(expected = "empty burst window")]
    fn burst_rejects_inverted_window() {
        let _ = BurstOverrun::new(5, 2, 2);
    }

    #[test]
    fn scripted_overrides_specific_jobs() {
        let a = task(0, 100, 2, &[10, 25]);
        let b = task(1, 100, 2, &[5, 9]);
        let mut s = Scripted::new().with(TaskId(0), 1, 2).with(TaskId(1), 3, 2);
        assert_eq!(s.demand(&a, 0), 10);
        assert_eq!(s.demand(&a, 1), 25);
        assert_eq!(s.demand(&b, 1), 5);
        assert_eq!(s.demand(&b, 3), 9);
        assert_eq!(s.behaviour_level().get(), 2);
        assert_eq!(Scripted::new().behaviour_level(), CritLevel::LO);
    }

    #[test]
    fn burst_guarantee_holds_on_feasible_core() {
        use crate::core::{CoreSim, SchedulerKind};
        use crate::trace::Trace;
        use mcs_analysis::{Theorem1, VdAssignment};
        use mcs_model::UtilTable;
        let lo = task(0, 10, 1, &[5]);
        let hi = task(1, 100, 2, &[10, 60]);
        let tasks = vec![&lo, &hi];
        let table = UtilTable::from_tasks(2, tasks.iter().copied());
        let analysis = Theorem1::compute(&table);
        let vd = VdAssignment::compute(&table, &analysis).unwrap();
        let sim = CoreSim::new(tasks, SchedulerKind::EdfVd(vd));
        let mut burst = BurstOverrun::new(3, 8, 2);
        let r = sim.run(&mut burst, 3_000, &mut Trace::disabled());
        assert_eq!(r.mandatory_misses(CritLevel::new(2)), 0, "{r:?}");
        assert!(r.mode_switches >= 1);
    }
}
