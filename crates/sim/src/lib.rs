//! # mcs-sim
//!
//! Discrete-event simulator for *partitioned EDF-VD with AMC mode switching*
//! — the runtime substrate the paper assumes ("the system provides run-time
//! support to monitor the execution of individual jobs", §II-A).
//!
//! Each core runs independently (partitioned scheduling has no migration):
//!
//! * jobs are released synchronously at multiples of their period;
//! * the ready job with the earliest *effective* deadline runs (EDF), where
//!   effective deadlines apply the per-mode virtual-deadline factors of
//!   [`mcs_analysis::VdAssignment`];
//! * if a job executes for its level-`m` WCET `c_i(m)` at operation mode `m`
//!   without signalling completion, the core switches to mode `m + 1`,
//!   *drops* every job (and future release) of tasks with criticality ≤ `m`,
//!   and re-evaluates the effective deadlines of the surviving jobs;
//! * when the core idles, it resets to level-1 operation and resumes
//!   releasing all tasks (the AMC idle-reset rule).
//!
//! What each job actually demands is decided by an [`scenario`] — worst-case
//! at a chosen behaviour level, probabilistic overruns, etc. The central
//! soundness property (exercised by the validation tests and the
//! `mcs-exp soundness` experiment): *if a core's subset passes Theorem 1,
//! then under any behaviour of level `b` every task with criticality ≥ `b`
//! meets all deadlines*; and under level-1 behaviour, **all** tasks do.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod core;
pub mod global;
pub mod report;
pub mod scenario;
pub mod system;
pub mod trace;

pub use crate::analyze::{ResponseStats, TraceAnalysis};
pub use crate::core::{ArrivalModel, CoreSim, DegradationPolicy, Overheads, SchedulerKind};
pub use crate::global::GlobalSim;
pub use report::{CoreReport, SimReport};
pub use scenario::{BurstOverrun, LevelCap, Probabilistic, Scenario, Scripted, SingleOverrun};
pub use system::{simulate_partition, simulate_partition_parallel, SimConfig};
pub use trace::{Trace, TraceEvent};
