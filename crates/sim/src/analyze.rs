//! Post-hoc trace analysis: turn a recorded [`Trace`] into
//! per-task response statistics, mode-residency accounting and event
//! counts — the numbers a systems paper's "runtime behaviour" section
//! reports.

use std::collections::BTreeMap;

use mcs_model::{CritLevel, TaskId, Tick};

use crate::trace::{Trace, TraceEvent};

/// Response-time statistics of one task, computed from matched
/// release/complete pairs in a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResponseStats {
    /// Completed jobs observed.
    pub completed: u64,
    /// Minimum response (ticks).
    pub min: Tick,
    /// Maximum response (ticks).
    pub max: Tick,
    /// Mean response (ticks).
    pub mean: f64,
    /// Late completions.
    pub late: u64,
}

/// Full trace analysis.
#[derive(Clone, Debug, Default)]
pub struct TraceAnalysis {
    /// Per-task response statistics, in task-id order.
    pub responses: BTreeMap<TaskId, ResponseStats>,
    /// Ticks spent in each operation mode (`residency[l-1]`), measured
    /// between the first and last event.
    pub mode_residency: Vec<Tick>,
    /// Mode switches observed.
    pub mode_switches: u64,
    /// Jobs dropped.
    pub dropped: u64,
    /// Deadline misses.
    pub misses: u64,
}

impl TraceAnalysis {
    /// Analyse a trace recorded by a core with `levels` criticality levels.
    ///
    /// The trace must not have hit its capacity cap mid-run for the
    /// residency numbers to be exact; statistics are computed over whatever
    /// events are present.
    #[must_use]
    pub fn from_trace(trace: &Trace, levels: u8) -> Self {
        let mut out =
            TraceAnalysis { mode_residency: vec![0; usize::from(levels)], ..Default::default() };
        let events = trace.events();
        let mut releases: BTreeMap<(TaskId, u64), Tick> = BTreeMap::new();
        let mut mode: usize = 0; // level-1 == index 0
        let mut mode_since: Option<Tick> = events.first().map(TraceEvent::time);

        for e in events {
            match e {
                TraceEvent::Release { time, task, job, .. } => {
                    releases.insert((*task, *job), *time);
                }
                TraceEvent::Complete { time, task, job, late } => {
                    if let Some(rel) = releases.remove(&(*task, *job)) {
                        let resp = time - rel;
                        let s = out
                            .responses
                            .entry(*task)
                            .or_insert(ResponseStats { min: Tick::MAX, ..Default::default() });
                        s.completed += 1;
                        s.min = s.min.min(resp);
                        s.max = s.max.max(resp);
                        // Incremental mean.
                        s.mean += (resp as f64 - s.mean) / s.completed as f64;
                        if *late {
                            s.late += 1;
                        }
                    }
                }
                TraceEvent::ModeSwitch { time, to, .. } => {
                    if let Some(since) = mode_since {
                        out.mode_residency[mode] += time - since;
                    }
                    mode = to.index();
                    mode_since = Some(*time);
                    out.mode_switches += 1;
                }
                TraceEvent::IdleReset { time } => {
                    if let Some(since) = mode_since {
                        out.mode_residency[mode] += time - since;
                    }
                    mode = 0;
                    mode_since = Some(*time);
                }
                TraceEvent::Drop { .. } => out.dropped += 1,
                TraceEvent::DeadlineMiss { .. } => out.misses += 1,
            }
        }
        if let (Some(since), Some(last)) = (mode_since, events.last()) {
            out.mode_residency[mode] += last.time().saturating_sub(since);
        }
        out
    }

    /// Fraction of traced time spent at or above `level` (0 when the trace
    /// is empty).
    #[must_use]
    pub fn residency_at_or_above(&self, level: CritLevel) -> f64 {
        let total: Tick = self.mode_residency.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let high: Tick = self.mode_residency[level.index()..].iter().sum();
        high as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{CoreSim, SchedulerKind};
    use crate::scenario::{LevelCap, SingleOverrun};
    use crate::trace::Trace;
    use mcs_analysis::{Theorem1, VdAssignment};
    use mcs_model::{McTask, TaskBuilder, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn nominal_trace_analysis() {
        let t = task(0, 10, 1, &[3]);
        let sim = CoreSim::new(vec![&t], SchedulerKind::PlainEdf);
        let mut trace = Trace::enabled(10_000);
        let report = sim.run(&mut LevelCap::lo(), 100, &mut trace);
        let a = TraceAnalysis::from_trace(&trace, 1);
        let s = &a.responses[&TaskId(0)];
        assert_eq!(s.completed, report.completed);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.late, 0);
        assert_eq!(a.mode_switches, 0);
        assert_eq!(a.misses, 0);
        assert!((a.residency_at_or_above(CritLevel::LO) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_residency_reflects_switches() {
        let lo = task(0, 10, 1, &[3]);
        let hi = task(1, 10, 2, &[2, 6]);
        let tasks = vec![&lo, &hi];
        let table = UtilTable::from_tasks(2, tasks.iter().copied());
        let analysis = Theorem1::compute(&table);
        let vd = VdAssignment::compute(&table, &analysis).unwrap();
        let sim = CoreSim::new(tasks, SchedulerKind::EdfVd(vd));
        let mut trace = Trace::enabled(10_000);
        let _ = sim.run(&mut SingleOverrun::new(TaskId(1), 1, 2), 100, &mut trace);
        let a = TraceAnalysis::from_trace(&trace, 2);
        assert_eq!(a.mode_switches, 1);
        let high_share = a.residency_at_or_above(CritLevel::new(2));
        assert!(high_share > 0.0 && high_share < 0.5, "share = {high_share}");
        assert!(a.dropped >= 1 || a.misses == 0);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let a = TraceAnalysis::from_trace(&Trace::disabled(), 3);
        assert!(a.responses.is_empty());
        assert_eq!(a.mode_switches, 0);
        assert_eq!(a.residency_at_or_above(CritLevel::LO), 0.0);
    }
}
