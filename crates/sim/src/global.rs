//! Global multicore EDF + AMC simulation — the scheduling family the paper
//! *argues against* (§I cites Bastoni et al. \[9\]: partitioned generally
//! outperforms global). This simulator lets the repository check that
//! argument empirically: a single system-wide ready queue, the `m`
//! earliest-deadline jobs run in parallel (full migration, zero cost — the
//! most charitable possible setting for global scheduling), one system-wide
//! operation mode with AMC budget monitoring, dropping and idle reset.
//!
//! With `m = 1` this coincides with [`CoreSim`](crate::CoreSim) under the
//! same scheduler — a differential test pins that down.

use mcs_model::{CritLevel, McTask, Tick};

use crate::core::SchedulerKind;
use crate::report::CoreReport;
use crate::scenario::Scenario;
use crate::trace::{Trace, TraceEvent};

/// An in-flight job (global variant).
#[derive(Clone, Debug)]
struct GJob {
    slot: usize,
    index: u64,
    release: Tick,
    abs_deadline: Tick,
    eff_deadline: Tick,
    demand: Tick,
    executed: Tick,
    missed: bool,
}

/// Global m-core simulator.
pub struct GlobalSim<'a> {
    tasks: Vec<&'a McTask>,
    scheduler: SchedulerKind,
    cores: usize,
}

impl<'a> GlobalSim<'a> {
    /// Build a global simulator over all tasks and `cores` processors.
    ///
    /// `scheduler` supplies the per-mode deadline factors exactly as for
    /// [`CoreSim`](crate::CoreSim); use [`SchedulerKind::PlainEdf`] for
    /// classic global EDF.
    #[must_use]
    pub fn new(tasks: Vec<&'a McTask>, cores: usize, scheduler: SchedulerKind) -> Self {
        assert!(cores >= 1, "need at least one core");
        Self { tasks, scheduler, cores }
    }

    fn eff_deadline(&self, task: &McTask, release: Tick, mode: CritLevel) -> Tick {
        let f = match &self.scheduler {
            SchedulerKind::PlainEdf | SchedulerKind::FixedPriority(_) => 1.0,
            SchedulerKind::EdfVd(vd) => vd.factor(mode, task.level()),
        };
        let rel = ((task.period() as f64) * f).round().max(1.0) as Tick;
        release + rel.min(task.period())
    }

    /// Run until `horizon`; a single aggregated report (the global queue
    /// has no per-core attribution).
    pub fn run<S: Scenario>(
        &self,
        scenario: &mut S,
        horizon: Tick,
        trace: &mut Trace,
    ) -> CoreReport {
        let mut report = CoreReport { max_mode: 1, ..Default::default() };
        if self.tasks.is_empty() || horizon == 0 {
            return report;
        }
        let mut mode = CritLevel::LO;
        let mut time: Tick = 0;
        let mut next_release: Vec<Tick> = vec![0; self.tasks.len()];
        let mut next_index: Vec<u64> = vec![0; self.tasks.len()];
        let mut ready: Vec<GJob> = Vec::new();

        loop {
            // Releases due now (suppressed below the mode, as in AMC).
            for (slot, task) in self.tasks.iter().enumerate() {
                while next_release[slot] <= time && next_release[slot] < horizon {
                    let release = next_release[slot];
                    let index = next_index[slot];
                    next_release[slot] += task.period();
                    next_index[slot] += 1;
                    if task.level() < mode {
                        continue;
                    }
                    let demand = scenario.demand(task, index);
                    let job = GJob {
                        slot,
                        index,
                        release,
                        abs_deadline: release + task.period(),
                        eff_deadline: self.eff_deadline(task, release, mode),
                        demand,
                        executed: 0,
                        missed: false,
                    };
                    trace.push(TraceEvent::Release {
                        time,
                        task: task.id(),
                        job: index,
                        deadline: job.abs_deadline,
                    });
                    report.released += 1;
                    ready.push(job);
                }
            }

            // Miss detection.
            for job in &mut ready {
                if !job.missed && time >= job.abs_deadline && job.executed < job.demand {
                    job.missed = true;
                    let task = self.tasks[job.slot];
                    report.misses_by_level[task.level().index()] += 1;
                    trace.push(TraceEvent::DeadlineMiss {
                        time: job.abs_deadline,
                        task: task.id(),
                        job: job.index,
                    });
                }
            }

            let upcoming: Option<Tick> = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.level() >= mode)
                .map(|(s, _)| next_release[s])
                .filter(|&r| r < horizon)
                .min();

            if ready.is_empty() {
                if mode > CritLevel::LO {
                    mode = CritLevel::LO;
                    report.idle_resets += 1;
                    trace.push(TraceEvent::IdleReset { time });
                    continue;
                }
                match upcoming {
                    Some(r) => {
                        time = r;
                        continue;
                    }
                    None => break,
                }
            }

            // Pick the m earliest effective deadlines to run.
            let mut order: Vec<usize> = (0..ready.len()).collect();
            order.sort_by_key(|&i| (ready[i].eff_deadline, ready[i].slot, ready[i].index));
            let running: Vec<usize> = order.into_iter().take(self.cores).collect();

            // Next event: earliest of upcoming release, any running job's
            // target point, or the horizon.
            let mut next_event = upcoming.unwrap_or(horizon).min(horizon);
            for &i in &running {
                let job = &ready[i];
                let task = self.tasks[job.slot];
                let budget = task.wcet(mode.min(task.level()));
                let target = job.demand.min(budget);
                // A job already at its target is a zero-length event (its
                // completion/overrun must be processed *now*).
                next_event = next_event.min(time + target.saturating_sub(job.executed));
            }
            debug_assert!(next_event >= time, "time went backwards");
            let delta = next_event - time;
            time = next_event;
            for &i in &running {
                // Advance, capped at the job's own target: a job already at
                // its target (zero-length dispatch, e.g. equal consecutive
                // WCETs awaiting a mode switch) must not absorb idle time.
                let job = &ready[i];
                let task = self.tasks[job.slot];
                let budget = task.wcet(mode.min(task.level()));
                let target = job.demand.min(budget);
                let job = &mut ready[i];
                job.executed = (job.executed + delta).min(target);
            }
            // Events landing exactly on the horizon are still processed
            // (matching CoreSim); only break early when no running job
            // reached its target point.
            let any_at_target = running.iter().any(|&i| {
                let job = &ready[i];
                let task = self.tasks[job.slot];
                let budget = task.wcet(mode.min(task.level()));
                job.executed >= job.demand.min(budget)
            });
            if time >= horizon && !any_at_target {
                break;
            }

            // Handle completions and overruns among the running set,
            // highest index first so swap_remove stays valid.
            let mut finished: Vec<usize> = Vec::new();
            let mut overrun: Option<usize> = None;
            for &i in &running {
                let job = &ready[i];
                let task = self.tasks[job.slot];
                let budget = task.wcet(mode.min(task.level()));
                if job.executed == job.demand {
                    finished.push(i);
                } else if job.executed == budget && job.demand > budget && overrun.is_none() {
                    overrun = Some(i);
                }
            }
            finished.sort_unstable_by(|a, b| b.cmp(a));
            for i in finished {
                let job = &mut ready[i];
                let task = self.tasks[job.slot];
                let late = job.missed || time > job.abs_deadline;
                if !job.missed && late {
                    report.misses_by_level[task.level().index()] += 1;
                    trace.push(TraceEvent::DeadlineMiss {
                        time: job.abs_deadline,
                        task: task.id(),
                        job: job.index,
                    });
                }
                trace.push(TraceEvent::Complete { time, task: task.id(), job: job.index, late });
                report.completed += 1;
                report.record_response(task.id(), time - job.release);
                if let Some(o) = overrun.as_mut() {
                    // Keep the overrun index valid across swap_remove.
                    if *o == ready.len() - 1 {
                        *o = i;
                    }
                }
                ready.swap_remove(i);
            }

            if let Some(i) = overrun {
                // The job may have completed-and-been-removed above; verify.
                if let Some(job) = ready.get(i) {
                    let task = self.tasks[job.slot];
                    let budget = task.wcet(mode.min(task.level()));
                    if job.executed == budget && job.demand > budget {
                        let old = mode;
                        mode = mode.next().expect("demand > budget implies mode < level");
                        report.mode_switches += 1;
                        report.max_mode = report.max_mode.max(mode.get());
                        trace.push(TraceEvent::ModeSwitch {
                            time,
                            task: task.id(),
                            from: old,
                            to: mode,
                        });
                        let mut j = 0;
                        while j < ready.len() {
                            let t = self.tasks[ready[j].slot];
                            if t.level() < mode {
                                trace.push(TraceEvent::Drop {
                                    time,
                                    task: t.id(),
                                    job: ready[j].index,
                                });
                                report.dropped += 1;
                                ready.swap_remove(j);
                            } else {
                                j += 1;
                            }
                        }
                        for j in &mut ready {
                            let t = self.tasks[j.slot];
                            j.eff_deadline =
                                j.eff_deadline.max(self.eff_deadline(t, j.release, mode));
                        }
                    }
                }
            }
            if time >= horizon {
                break;
            }
        }

        for job in &mut ready {
            if !job.missed && job.abs_deadline <= horizon && job.executed < job.demand {
                let task = self.tasks[job.slot];
                report.misses_by_level[task.level().index()] += 1;
                trace.push(TraceEvent::DeadlineMiss {
                    time: job.abs_deadline,
                    task: task.id(),
                    job: job.index,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreSim;
    use crate::scenario::{LevelCap, SingleOverrun};
    use mcs_analysis::{Theorem1, VdAssignment};
    use mcs_model::{TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn single_core_global_matches_coresim() {
        let a = task(0, 10, 1, &[3]);
        let b = task(1, 20, 2, &[4, 8]);
        let tasks = vec![&a, &b];
        let table = UtilTable::from_tasks(2, tasks.iter().copied());
        let analysis = Theorem1::compute(&table);
        let vd = VdAssignment::compute(&table, &analysis).unwrap();
        for horizon in [100u64, 400] {
            let mut s1 = SingleOverrun::new(TaskId(1), 1, 2);
            let partitioned = CoreSim::new(tasks.clone(), SchedulerKind::EdfVd(vd.clone())).run(
                &mut s1,
                horizon,
                &mut Trace::disabled(),
            );
            let mut s2 = SingleOverrun::new(TaskId(1), 1, 2);
            let global = GlobalSim::new(tasks.clone(), 1, SchedulerKind::EdfVd(vd.clone())).run(
                &mut s2,
                horizon,
                &mut Trace::disabled(),
            );
            assert_eq!(partitioned, global, "horizon {horizon}");
        }
    }

    #[test]
    fn two_cores_run_in_parallel() {
        // Two 0.8-utilization tasks: impossible on one core, trivial on two.
        let a = task(0, 10, 1, &[8]);
        let b = task(1, 10, 1, &[8]);
        let tasks = vec![&a, &b];
        let one = GlobalSim::new(tasks.clone(), 1, SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            100,
            &mut Trace::disabled(),
        );
        assert!(one.total_misses() > 0);
        let two = GlobalSim::new(tasks, 2, SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            100,
            &mut Trace::disabled(),
        );
        assert_eq!(two.total_misses(), 0);
        assert_eq!(two.completed, 20);
    }

    #[test]
    fn dhall_effect_reproduces() {
        // The classic global-EDF pathology: m light tasks + one heavy task
        // with utilization ≈ 1 misses on m cores under global EDF, while
        // any partitioned scheme trivially isolates the heavy task.
        let light1 = task(0, 10, 1, &[1]);
        let light2 = task(1, 10, 1, &[1]);
        let heavy = task(2, 100, 1, &[95]);
        let tasks = vec![&light1, &light2, &heavy];
        let global = GlobalSim::new(tasks, 2, SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            1000,
            &mut Trace::disabled(),
        );
        assert!(
            global.worst_response_of(TaskId(2)).unwrap_or(0) > 95,
            "the heavy task should be delayed by the light ones: {global:?}"
        );
        // (With these numbers it stays schedulable — 95+2·1 ≤ 100 — the
        // *delay* is the Dhall signature; tightening c to 99 breaks it.)
        let heavy99 = task(2, 100, 1, &[99]);
        let light1 = task(0, 10, 1, &[1]);
        let light2 = task(1, 10, 1, &[1]);
        let tasks = vec![&light1, &light2, &heavy99];
        let global = GlobalSim::new(tasks, 2, SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            1000,
            &mut Trace::disabled(),
        );
        assert!(global.total_misses() > 0, "Dhall effect must bite: {global:?}");
    }

    #[test]
    fn global_amc_mode_switch_protects_hi() {
        let lo = task(0, 10, 1, &[4]);
        let hi1 = task(1, 50, 2, &[5, 25]);
        let hi2 = task(2, 50, 2, &[5, 25]);
        let tasks = vec![&lo, &hi1, &hi2];
        let r = GlobalSim::new(tasks, 2, SchedulerKind::PlainEdf).run(
            &mut LevelCap::new(2),
            2_000,
            &mut Trace::disabled(),
        );
        assert!(r.mode_switches >= 1);
        assert_eq!(
            r.mandatory_misses(CritLevel::new(2)),
            0,
            "plenty of capacity for the HI tasks on 2 cores: {r:?}"
        );
    }

    #[test]
    fn empty_and_zero_horizon() {
        let r = GlobalSim::new(vec![], 2, SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            100,
            &mut Trace::disabled(),
        );
        assert_eq!(r.released, 0);
        let t = task(0, 10, 1, &[1]);
        let r = GlobalSim::new(vec![&t], 2, SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            0,
            &mut Trace::disabled(),
        );
        assert_eq!(r.released, 0);
    }
}
