//! Single-core EDF / EDF-VD + AMC runtime simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mcs_analysis::VdAssignment;
use mcs_model::{CritLevel, McTask, Tick};

use crate::report::CoreReport;
use crate::scenario::Scenario;
use crate::trace::{Trace, TraceEvent};

/// Scheduling policy of one core.
#[derive(Clone, Debug)]
pub enum SchedulerKind {
    /// EDF on original deadlines (no virtual deadlines) — the baseline that
    /// *fails* under overruns whenever Eq. (4) does not hold.
    PlainEdf,
    /// EDF-VD with the per-mode deadline factors from the analysis.
    EdfVd(VdAssignment),
    /// Preemptive fixed-priority + AMC (the FP side of the related work,
    /// analysed by `mcs_analysis::amc`). `priorities[slot]` is the priority
    /// of the task at that position in the subset — smaller = higher.
    FixedPriority(Vec<u32>),
}

impl SchedulerKind {
    /// Deadline-monotonic fixed priorities for a subset (ties: higher
    /// criticality, then smaller id — matching
    /// `mcs_analysis::amc::deadline_monotonic_order`).
    #[must_use]
    pub fn deadline_monotonic(tasks: &[&McTask]) -> Self {
        let mut idx: Vec<usize> = (0..tasks.len()).collect();
        idx.sort_by(|&a, &b| {
            tasks[a]
                .period()
                .cmp(&tasks[b].period())
                .then_with(|| tasks[b].level().cmp(&tasks[a].level()))
                .then_with(|| tasks[a].id().cmp(&tasks[b].id()))
        });
        let mut priorities = vec![0u32; tasks.len()];
        for (rank, slot) in idx.into_iter().enumerate() {
            priorities[slot] = u32::try_from(rank).expect("subset fits u32");
        }
        SchedulerKind::FixedPriority(priorities)
    }

    fn factor(&self, mode: CritLevel, level: CritLevel) -> f64 {
        match self {
            SchedulerKind::PlainEdf | SchedulerKind::FixedPriority(_) => 1.0,
            SchedulerKind::EdfVd(vd) => vd.factor(mode, level),
        }
    }

    /// Dispatch key of a pending job: lower wins. Fixed priority ignores
    /// deadlines; the EDF family uses the effective deadline. Slot/index
    /// tie-breaks keep dispatch deterministic.
    fn dispatch_key(&self, job: &Job) -> (u64, usize, u64) {
        match self {
            SchedulerKind::PlainEdf | SchedulerKind::EdfVd(_) => {
                (job.eff_deadline, job.slot, job.index)
            }
            SchedulerKind::FixedPriority(prio) => (u64::from(prio[job.slot]), job.slot, job.index),
        }
    }
}

/// Runtime overheads charged by the simulated kernel, in ticks. Real AMC
/// implementations pay for budget-enforcement timers, mode-switch
/// bookkeeping (dropping queues, re-sorting deadlines) and context switches;
/// analyses usually fold these into WCETs, so the simulator charges them
/// explicitly to let experiments quantify how much margin that folding must
/// provision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overheads {
    /// Charged whenever the running job changes to a different pending job
    /// (dispatch after preemption or completion).
    pub context_switch: Tick,
    /// Charged at every mode switch (queue purge + deadline updates).
    pub mode_switch: Tick,
}

/// What happens to tasks *below* the operation mode.
#[derive(Clone, Debug, Default)]
pub enum DegradationPolicy {
    /// AMC (the paper's rule): below-mode tasks are dropped outright and
    /// their releases suppressed until the idle reset.
    #[default]
    Drop,
    /// Elastic degradation (cf. \[31\]): below-mode tasks keep running with
    /// their level-1 budgets at a stretched period. `factors[l-1]` is the
    /// stretch at operation level `l` (see
    /// `mcs_analysis::elastic_stretch_factors`); a `None` entry drops at
    /// that mode. Degraded jobs that exhaust their level-1 budget are
    /// killed rather than escalating the mode.
    Elastic {
        /// Per-mode stretch factors.
        factors: Vec<Option<f64>>,
    },
}

/// Job arrival model. The schedulability analyses cover *sporadic* tasks
/// (inter-arrival ≥ period), so the simulator can exercise late arrivals to
/// probe that the guarantees do not secretly depend on strict periodicity.
#[derive(Clone, Debug)]
pub enum ArrivalModel {
    /// Strictly periodic, synchronous first releases (the default and the
    /// paper's model).
    Periodic,
    /// Sporadic: each inter-arrival is drawn uniformly from
    /// `[p, (1 + slack)·p]`; deterministic per seed.
    Sporadic {
        /// Maximum relative arrival delay (e.g. 0.25 = up to 25 % late).
        slack: f64,
        /// RNG seed (each task slot derives its own stream).
        seed: u64,
    },
}

/// An in-flight job.
#[derive(Clone, Debug)]
struct Job {
    slot: usize,
    index: u64,
    release: Tick,
    abs_deadline: Tick,
    eff_deadline: Tick,
    demand: Tick,
    executed: Tick,
    missed: bool,
    /// Released below the operation mode under the elastic policy: runs
    /// with the level-1 budget and is killed (not escalated) on overrun.
    degraded: bool,
}

/// Per-task release bookkeeping.
#[derive(Clone, Debug)]
struct TaskState {
    next_release: Tick,
    next_index: u64,
    /// Sporadic arrivals: max extra delay in ticks + RNG (None = periodic).
    jitter: Option<(Tick, SmallRng)>,
}

impl TaskState {
    /// Advance to the next release, `step` ticks (plus sporadic jitter)
    /// later. `step` is the period, possibly stretched by the elastic
    /// degradation policy.
    fn advance(&mut self, step: Tick) {
        let delay = match &mut self.jitter {
            None => 0,
            Some((max_delay, rng)) => rng.gen_range(0..=*max_delay),
        };
        self.next_release += step + delay;
        self.next_index += 1;
    }
}

/// Simulator for one core and its task subset.
///
/// ```
/// use mcs_sim::{CoreSim, LevelCap, SchedulerKind, Trace};
/// use mcs_model::{TaskBuilder, TaskId};
///
/// let t = TaskBuilder::new(TaskId(0)).period(10).level(1).wcet(&[3]).build().unwrap();
/// let sim = CoreSim::new(vec![&t], SchedulerKind::PlainEdf);
/// let report = sim.run(&mut LevelCap::lo(), 100, &mut Trace::disabled());
/// assert_eq!(report.released, 10);
/// assert_eq!(report.total_misses(), 0);
/// ```
pub struct CoreSim<'a> {
    tasks: Vec<&'a McTask>,
    scheduler: SchedulerKind,
    arrivals: ArrivalModel,
    overheads: Overheads,
    degradation: DegradationPolicy,
}

impl<'a> CoreSim<'a> {
    /// Build a core simulator over a task subset (periodic arrivals, zero
    /// overheads).
    #[must_use]
    pub fn new(tasks: Vec<&'a McTask>, scheduler: SchedulerKind) -> Self {
        Self {
            tasks,
            scheduler,
            arrivals: ArrivalModel::Periodic,
            overheads: Overheads::default(),
            degradation: DegradationPolicy::Drop,
        }
    }

    /// Override the arrival model.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalModel) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Override the kernel overheads.
    #[must_use]
    pub fn with_overheads(mut self, overheads: Overheads) -> Self {
        self.overheads = overheads;
        self
    }

    /// Override the degradation policy.
    #[must_use]
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> Self {
        self.degradation = degradation;
        self
    }

    fn eff_deadline(&self, task: &McTask, release: Tick, mode: CritLevel) -> Tick {
        let f = self.scheduler.factor(mode, task.level());
        let rel = ((task.period() as f64) * f).round().max(1.0) as Tick;
        release + rel.min(task.period())
    }

    /// Run the core until `horizon`, drawing job demands from `scenario`.
    pub fn run<S: Scenario>(
        &self,
        scenario: &mut S,
        horizon: Tick,
        trace: &mut Trace,
    ) -> CoreReport {
        let mut report = CoreReport { max_mode: 1, ..Default::default() };
        if self.tasks.is_empty() || horizon == 0 {
            return report;
        }

        let mut mode = CritLevel::LO;
        let mut time: Tick = 0;
        let mut states: Vec<TaskState> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(slot, task)| TaskState {
                next_release: 0,
                next_index: 0,
                jitter: match &self.arrivals {
                    ArrivalModel::Periodic => None,
                    ArrivalModel::Sporadic { slack, seed } => {
                        assert!((0.0..=4.0).contains(slack), "slack out of range");
                        let max_delay = (task.period() as f64 * slack).floor() as Tick;
                        Some((max_delay, SmallRng::seed_from_u64(seed.wrapping_add(slot as u64))))
                    }
                },
            })
            .collect();
        let mut ready: Vec<Job> = Vec::new();
        // (slot, index) of the job that ran last, for context-switch
        // accounting.
        let mut last_dispatched: Option<(usize, u64)> = None;

        loop {
            // 1. Release jobs due now. Tasks below the current mode have
            // their releases suppressed (AMC drops future jobs of dropped
            // levels); their counters are fast-forwarded at idle reset.
            for (slot, task) in self.tasks.iter().enumerate() {
                let st = &mut states[slot];
                while st.next_release <= time && st.next_release < horizon {
                    let release = st.next_release;
                    let index = st.next_index;
                    let mut degraded = false;
                    if task.level() < mode {
                        match &self.degradation {
                            DegradationPolicy::Drop => {
                                st.advance(task.period());
                                continue; // suppressed while dropped
                            }
                            DegradationPolicy::Elastic { factors } => {
                                match factors.get(mode.index()).copied().flatten() {
                                    Some(factor) => {
                                        degraded = true;
                                        let stretched = ((task.period() as f64 * factor).round()
                                            as Tick)
                                            .max(task.period());
                                        st.advance(stretched);
                                    }
                                    None => {
                                        st.advance(task.period());
                                        continue; // no slack at this mode
                                    }
                                }
                            }
                        }
                    } else {
                        st.advance(task.period());
                    }
                    let demand = scenario.demand(task, index);
                    debug_assert!(
                        demand >= 1 && demand <= task.wcet_own(),
                        "scenario demand out of bounds"
                    );
                    // Degraded jobs always use their original deadline (the
                    // VD factors are only defined for tasks at or above the
                    // mode).
                    let eff_deadline = if degraded {
                        release + task.period()
                    } else {
                        self.eff_deadline(task, release, mode)
                    };
                    let job = Job {
                        slot,
                        index,
                        release,
                        abs_deadline: release + task.period(),
                        eff_deadline,
                        demand,
                        executed: 0,
                        missed: false,
                        degraded,
                    };
                    trace.push(TraceEvent::Release {
                        time,
                        task: task.id(),
                        job: index,
                        deadline: job.abs_deadline,
                    });
                    report.released += 1;
                    ready.push(job);
                }
            }

            // 2. Record deadline misses of pending jobs.
            for job in &mut ready {
                if !job.missed && time >= job.abs_deadline && job.executed < job.demand {
                    job.missed = true;
                    let task = self.tasks[job.slot];
                    report.misses_by_level[task.level().index()] += 1;
                    trace.push(TraceEvent::DeadlineMiss {
                        time: job.abs_deadline,
                        task: task.id(),
                        job: job.index,
                    });
                }
            }

            // 3. Earliest next release among *active* tasks.
            let next_release: Option<Tick> = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.level() >= mode)
                .map(|(s, _)| states[s].next_release)
                .filter(|&r| r < horizon)
                .min();

            // 4. Pick the job to run (EDF: earliest effective deadline;
            // FP: highest priority; determinism via slot/index tie-breaks).
            let running = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| self.scheduler.dispatch_key(j))
                .map(|(i, _)| i);

            let Some(run_idx) = running else {
                // Idle: AMC resets the core to level-1 operation.
                if mode > CritLevel::LO {
                    mode = CritLevel::LO;
                    report.idle_resets += 1;
                    trace.push(TraceEvent::IdleReset { time });
                    // Dropped tasks resume at their next period boundary —
                    // counters already advanced in step 1, so nothing else
                    // to do; but releases suppressed between now and their
                    // counters are gone by construction.
                    continue; // re-evaluate releases/next_release at level 1
                }
                match next_release {
                    Some(r) => {
                        time = r;
                        continue;
                    }
                    None => break,
                }
            };

            // 5. Charge the context-switch overhead when the dispatched job
            // changes (idle time advances below; overhead advances here).
            let dispatched = (ready[run_idx].slot, ready[run_idx].index);
            if self.overheads.context_switch > 0 && last_dispatched != Some(dispatched) {
                last_dispatched = Some(dispatched);
                time = (time + self.overheads.context_switch).min(horizon);
                if time >= horizon {
                    break;
                }
                continue; // re-evaluate releases/misses at the new time
            }
            last_dispatched = Some(dispatched);

            // 6. Advance to the next event.
            let job = &ready[run_idx];
            let task = self.tasks[job.slot];
            let budget = if job.degraded {
                task.wcet(CritLevel::LO)
            } else {
                task.wcet(mode.min(task.level()))
            };
            let target = job.demand.min(budget);
            // `target == executed` is possible when consecutive WCETs are
            // equal (c_i(m) == c_i(m+1) < demand): the zero-length dispatch
            // falls through to the mode-switch branch below and escalates
            // without advancing time.
            debug_assert!(job.executed <= target, "job ran past its target");
            let finish_at = time + (target - job.executed);
            let advance_to = next_release.map_or(finish_at, |r| finish_at.min(r)).min(horizon);

            let delta = advance_to - time;
            time = advance_to;
            let job = &mut ready[run_idx];
            job.executed += delta;

            if time >= horizon && job.executed < target {
                // Horizon reached mid-execution: final miss sweep happens
                // after the loop.
                break;
            }

            if job.executed == job.demand {
                // Completion.
                let late = job.missed || time > job.abs_deadline;
                if !job.missed && late {
                    report.misses_by_level[task.level().index()] += 1;
                    trace.push(TraceEvent::DeadlineMiss {
                        time: job.abs_deadline,
                        task: task.id(),
                        job: job.index,
                    });
                }
                trace.push(TraceEvent::Complete { time, task: task.id(), job: job.index, late });
                report.completed += 1;
                report.record_response(task.id(), time - job.release);
                ready.swap_remove(run_idx);
            } else if job.executed == budget && job.demand > budget {
                if job.degraded {
                    // Elastic service exhausted: kill the job, never
                    // escalate the mode on behalf of degraded work.
                    trace.push(TraceEvent::Drop { time, task: task.id(), job: job.index });
                    report.dropped += 1;
                    ready.swap_remove(run_idx);
                    if time >= horizon {
                        break;
                    }
                    continue;
                }
                // Budget exhausted without completion: AMC mode switch.
                let old = mode;
                mode = mode.next().expect("demand > budget implies mode < task level <= K");
                report.mode_switches += 1;
                report.max_mode = report.max_mode.max(mode.get());
                trace.push(TraceEvent::ModeSwitch { time, task: task.id(), from: old, to: mode });
                if self.overheads.mode_switch > 0 {
                    time = (time + self.overheads.mode_switch).min(horizon);
                }

                // Drop jobs of tasks below the new mode.
                let mut i = 0;
                while i < ready.len() {
                    let t = self.tasks[ready[i].slot];
                    if t.level() < mode {
                        trace.push(TraceEvent::Drop { time, task: t.id(), job: ready[i].index });
                        report.dropped += 1;
                        ready.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                // Surviving jobs get their mode-appropriate deadlines.
                // Deadlines may only *extend* at a switch (e.g. restoring
                // originals at k*); shrinking an in-flight job's deadline
                // would manufacture urgency the analysis never accounted
                // for, so the tighter of the two is never re-applied.
                for j in &mut ready {
                    let t = self.tasks[j.slot];
                    j.eff_deadline = j.eff_deadline.max(self.eff_deadline(t, j.release, mode));
                }
            }
            // (If the event was a release or the horizon, the next loop
            // iteration handles it.)
            if time >= horizon {
                break;
            }
        }

        // Final miss sweep: pending jobs whose deadline fell within the
        // horizon.
        for job in &mut ready {
            if !job.missed && job.abs_deadline <= horizon && job.executed < job.demand {
                job.missed = true;
                let task = self.tasks[job.slot];
                report.misses_by_level[task.level().index()] += 1;
                trace.push(TraceEvent::DeadlineMiss {
                    time: job.abs_deadline,
                    task: task.id(),
                    job: job.index,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{LevelCap, SingleOverrun};
    use mcs_analysis::Theorem1;
    use mcs_model::{LevelUtils, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn vd_for(tasks: &[&McTask], k: u8) -> VdAssignment {
        let table = UtilTable::from_tasks(k, tasks.iter().copied());
        let a = Theorem1::compute(&table);
        VdAssignment::compute(&table, &a).expect("subset must be feasible")
    }

    #[test]
    fn single_task_runs_every_period() {
        let t = task(0, 10, 1, &[3]);
        let sim = CoreSim::new(vec![&t], SchedulerKind::PlainEdf);
        let mut trace = Trace::disabled();
        let r = sim.run(&mut LevelCap::lo(), 100, &mut trace);
        assert_eq!(r.released, 10);
        assert_eq!(r.completed, 10);
        assert_eq!(r.total_misses(), 0);
        assert_eq!(r.mode_switches, 0);
    }

    #[test]
    fn edf_schedules_full_utilization() {
        let a = task(0, 4, 1, &[2]);
        let b = task(1, 8, 1, &[4]);
        let sim = CoreSim::new(vec![&a, &b], SchedulerKind::PlainEdf);
        let r = sim.run(&mut LevelCap::lo(), 80, &mut Trace::disabled());
        assert_eq!(r.total_misses(), 0);
        assert_eq!(r.completed, 20 + 10);
    }

    #[test]
    fn overloaded_edf_misses() {
        let a = task(0, 4, 1, &[3]);
        let b = task(1, 4, 1, &[3]);
        let sim = CoreSim::new(vec![&a, &b], SchedulerKind::PlainEdf);
        let r = sim.run(&mut LevelCap::lo(), 40, &mut Trace::disabled());
        assert!(r.total_misses() > 0);
    }

    #[test]
    fn overrun_triggers_mode_switch_and_drops() {
        // HI task overruns its LO budget once; LO task gets dropped.
        let lo = task(0, 10, 1, &[3]);
        let hi = task(1, 10, 2, &[2, 6]);
        let tasks = vec![&lo, &hi];
        let vd = vd_for(&tasks, 2);
        let sim = CoreSim::new(tasks, SchedulerKind::EdfVd(vd));
        let mut scenario = SingleOverrun::new(TaskId(1), 1, 2);
        let mut trace = Trace::enabled(1000);
        let r = sim.run(&mut scenario, 100, &mut trace);
        assert_eq!(r.mode_switches, 1);
        assert_eq!(r.max_mode, 2);
        assert!(r.idle_resets >= 1, "core must return to level 1 when idle");
        // The HI task must never miss (behaviour level 2).
        assert_eq!(r.mandatory_misses(CritLevel::new(2)), 0);
        let events = trace.events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::ModeSwitch { .. })));
    }

    #[test]
    fn edfvd_protects_hi_where_plain_edf_fails() {
        // Classic EDF-VD motivating case: U_1(1)=0.5, U_2(1)=0.3, U_2(2)=0.6.
        // Eq. (7): 0.5 + min{0.6, 0.3/0.4 = 0.75} = 1.1 > 1 … pick smaller:
        // need a schedulable-by-VD set: U_1(1)=0.4, U_2(1)=0.3, U_2(2)=0.55:
        // 0.4 + min{0.55, 0.3/0.45 = 0.667} = 0.95 ≤ 1 ✓ (VD branch when
        // plain EDF total 0.4+0.55 = 0.95 ≤ 1 — need a case failing Eq. (4):
        // U_1(1)=0.5, U_2(1)=0.1, U_2(2)=0.6 → 0.5+0.25=0.75 ✓, Eq4 = 1.1 ✗.
        let lo = task(0, 10, 1, &[5]);
        let hi = task(1, 100, 2, &[10, 60]);
        let tasks = vec![&lo, &hi];
        let vd = vd_for(&tasks, 2);
        let sim_vd = CoreSim::new(tasks.clone(), SchedulerKind::EdfVd(vd));
        let mut worst = LevelCap::new(2);
        let r = sim_vd.run(&mut worst, 1000, &mut Trace::disabled());
        assert_eq!(
            r.mandatory_misses(CritLevel::new(2)),
            0,
            "EDF-VD must protect the HI task: {r:?}"
        );
        assert!(r.mode_switches >= 1);
    }

    #[test]
    fn dropped_tasks_resume_after_idle_reset() {
        let lo = task(0, 10, 1, &[2]);
        let hi = task(1, 20, 2, &[2, 4]);
        let tasks = vec![&lo, &hi];
        let vd = vd_for(&tasks, 2);
        let sim = CoreSim::new(tasks, SchedulerKind::EdfVd(vd));
        // One overrun early; afterwards everything nominal: LO jobs must
        // flow again after the idle reset.
        let mut scenario = SingleOverrun::new(TaskId(1), 0, 2);
        let r = sim.run(&mut scenario, 200, &mut Trace::disabled());
        assert!(r.idle_resets >= 1);
        // 20 LO releases possible; at most a couple suppressed around the
        // switch window.
        assert!(r.completed > 20, "completed = {}", r.completed);
    }

    #[test]
    fn report_counts_are_consistent() {
        let a = task(0, 10, 1, &[2]);
        let b = task(1, 20, 2, &[3, 6]);
        let tasks = vec![&a, &b];
        let vd = vd_for(&tasks, 2);
        let sim = CoreSim::new(tasks, SchedulerKind::EdfVd(vd));
        let mut scenario = LevelCap::new(2);
        let r = sim.run(&mut scenario, 400, &mut Trace::disabled());
        // Every released job either completed, was dropped, or is pending at
        // the horizon.
        assert!(r.completed + r.dropped <= r.released);
        assert!(r.released >= 40);
    }

    #[test]
    fn zero_horizon_is_a_noop() {
        let t = task(0, 10, 1, &[3]);
        let sim = CoreSim::new(vec![&t], SchedulerKind::PlainEdf);
        let r = sim.run(&mut LevelCap::lo(), 0, &mut Trace::disabled());
        assert_eq!(r.released, 0);
    }

    #[test]
    fn empty_core_is_a_noop() {
        let sim = CoreSim::new(vec![], SchedulerKind::PlainEdf);
        let r = sim.run(&mut LevelCap::lo(), 100, &mut Trace::disabled());
        assert_eq!(r, CoreReport { max_mode: 1, ..Default::default() });
    }

    #[test]
    fn utilization_accounting_sanity() {
        // Completed work over the horizon cannot exceed the horizon.
        let a = task(0, 5, 1, &[2]);
        let b = task(1, 10, 1, &[4]);
        let sim = CoreSim::new(vec![&a, &b], SchedulerKind::PlainEdf);
        let horizon = 1000;
        let r = sim.run(&mut LevelCap::lo(), horizon, &mut Trace::disabled());
        let work = r.completed * 2; // not exact, but a ≥ half of jobs are τ0
        assert!(work <= horizon);
        let table = UtilTable::from_tasks(1, [&a, &b]);
        assert!(table.own_level_total() <= 1.0);
        assert_eq!(r.total_misses(), 0);
    }
}

#[cfg(test)]
mod fp_tests {
    use super::*;
    use crate::scenario::{LevelCap, SingleOverrun};
    use mcs_analysis::amc::{amc_rtb_dm, deadline_monotonic_order};
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn fixed_priority_respects_priorities_not_deadlines() {
        // τ0 (P=20) outranks τ1 (P=30) under DM even when τ1's absolute
        // deadline is closer at dispatch time; observable as τ1's response.
        let a = task(0, 20, 1, &[10]);
        let b = task(1, 30, 1, &[10]);
        let tasks = vec![&a, &b];
        let sched = SchedulerKind::deadline_monotonic(&tasks);
        let sim = CoreSim::new(tasks, sched);
        let mut trace = Trace::enabled(100);
        let r = sim.run(&mut LevelCap::lo(), 60, &mut trace);
        assert_eq!(r.total_misses(), 0);
        // τ1's first job finishes at 20 (after τ0's first job).
        let first_b_completion = trace
            .events()
            .iter()
            .find_map(|e| match e {
                TraceEvent::Complete { time, task, .. } if task.0 == 1 => Some(*time),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_b_completion, 20);
    }

    #[test]
    fn dm_priorities_match_analysis_order() {
        let a = task(0, 20, 1, &[1]);
        let b = task(1, 10, 2, &[1, 2]);
        let c = task(2, 10, 1, &[1]);
        let tasks = vec![&a, &b, &c];
        let SchedulerKind::FixedPriority(prio) = SchedulerKind::deadline_monotonic(&tasks) else {
            unreachable!()
        };
        // Analysis order: τ1, τ2, τ0 → slots 1, 2, 0 get ranks 0, 1, 2.
        assert_eq!(prio, vec![2, 0, 1]);
        let order = deadline_monotonic_order(&tasks);
        let by_rank: Vec<u32> = {
            let mut pairs: Vec<(u32, usize)> = prio.iter().copied().zip(0..tasks.len()).collect();
            pairs.sort_unstable();
            pairs.into_iter().map(|(_, slot)| tasks[slot].id().0).collect()
        };
        let expected: Vec<u32> = order.iter().map(|t| t.id().0).collect();
        assert_eq!(by_rank, expected);
    }

    #[test]
    fn amc_rtb_accepted_sets_survive_worst_case_fp() {
        // Subsets accepted by AMC-rtb must not miss mandatory deadlines
        // under FP + AMC simulation at any behaviour level.
        let sets: Vec<Vec<McTask>> = vec![
            vec![task(0, 10, 1, &[4]), task(1, 40, 2, &[6, 14])],
            vec![task(0, 8, 2, &[2, 3]), task(1, 16, 1, &[4]), task(2, 32, 2, &[4, 8])],
            vec![task(0, 5, 1, &[1]), task(1, 10, 2, &[2, 5]), task(2, 50, 1, &[10])],
        ];
        for set in &sets {
            let refs: Vec<&McTask> = set.iter().collect();
            if !amc_rtb_dm(&refs) {
                continue;
            }
            let ordered = deadline_monotonic_order(&refs);
            let sched = SchedulerKind::deadline_monotonic(&ordered);
            let sim = CoreSim::new(ordered.clone(), sched);
            let horizon = mcs_model::hyperperiod(set.iter().map(McTask::period)).min(100_000);
            for b in 1..=2u8 {
                let mut scenario = LevelCap::new(b);
                let r = sim.run(&mut scenario, horizon, &mut Trace::disabled());
                assert_eq!(
                    r.mandatory_misses(CritLevel::new(b)),
                    0,
                    "AMC-rtb-accepted set missed at behaviour {b}: {set:?}"
                );
            }
        }
    }

    #[test]
    fn fp_amc_mode_switch_drops_lo_tasks() {
        let lo = task(0, 10, 1, &[3]);
        let hi = task(1, 40, 2, &[6, 14]);
        let tasks = vec![&lo, &hi];
        let sched = SchedulerKind::deadline_monotonic(&tasks);
        let sim = CoreSim::new(tasks, sched);
        let mut scenario = SingleOverrun::new(TaskId(1), 0, 2);
        let r = sim.run(&mut scenario, 200, &mut Trace::disabled());
        assert_eq!(r.mode_switches, 1);
        assert!(r.idle_resets >= 1);
        assert_eq!(r.mandatory_misses(CritLevel::new(2)), 0);
    }
}

#[cfg(test)]
mod sporadic_tests {
    use super::*;
    use crate::scenario::LevelCap;
    use mcs_analysis::Theorem1;
    use mcs_model::{TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn sporadic_releases_fewer_jobs_than_periodic() {
        let t = task(0, 10, 1, &[2]);
        let periodic = CoreSim::new(vec![&t], SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            1000,
            &mut Trace::disabled(),
        );
        let sporadic = CoreSim::new(vec![&t], SchedulerKind::PlainEdf)
            .with_arrivals(ArrivalModel::Sporadic { slack: 0.5, seed: 3 })
            .run(&mut LevelCap::lo(), 1000, &mut Trace::disabled());
        assert_eq!(periodic.released, 100);
        assert!(sporadic.released < 100, "jitter must stretch inter-arrivals");
        assert!(sporadic.released > 50, "inter-arrival at most 1.5 periods");
        assert_eq!(sporadic.total_misses(), 0);
    }

    #[test]
    fn sporadic_is_seed_deterministic() {
        let t = task(0, 10, 1, &[2]);
        let run = |seed| {
            CoreSim::new(vec![&t], SchedulerKind::PlainEdf)
                .with_arrivals(ArrivalModel::Sporadic { slack: 0.3, seed })
                .run(&mut LevelCap::lo(), 1000, &mut Trace::disabled())
        };
        assert_eq!(run(7), run(7));
        // Some pair of seeds must diverge (released counts concentrate, so
        // check several).
        let counts: Vec<u64> = (0..8).map(|s| run(s).released).collect();
        assert!(counts.iter().any(|&c| c != counts[0]), "all seeds identical: {counts:?}");
    }

    #[test]
    fn guarantees_hold_under_sporadic_arrivals() {
        // The analyses cover sporadic tasks; late arrivals must not break
        // the MC guarantee of an accepted subset.
        let lo = task(0, 10, 1, &[5]);
        let hi = task(1, 100, 2, &[10, 60]);
        let tasks = vec![&lo, &hi];
        let table = UtilTable::from_tasks(2, tasks.iter().copied());
        let analysis = Theorem1::compute(&table);
        let vd = VdAssignment::compute(&table, &analysis).expect("feasible");
        for seed in 0..20 {
            let r = CoreSim::new(tasks.clone(), SchedulerKind::EdfVd(vd.clone()))
                .with_arrivals(ArrivalModel::Sporadic { slack: 0.4, seed })
                .run(&mut LevelCap::new(2), 5_000, &mut Trace::disabled());
            assert_eq!(
                r.mandatory_misses(CritLevel::new(2)),
                0,
                "sporadic arrivals broke the guarantee at seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "slack out of range")]
    fn rejects_absurd_slack() {
        let t = task(0, 10, 1, &[2]);
        let _ = CoreSim::new(vec![&t], SchedulerKind::PlainEdf)
            .with_arrivals(ArrivalModel::Sporadic { slack: 10.0, seed: 0 })
            .run(&mut LevelCap::lo(), 100, &mut Trace::disabled());
    }
}

#[cfg(test)]
mod overhead_tests {
    use super::*;
    use crate::scenario::LevelCap;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn zero_overheads_are_the_default() {
        let t = task(0, 10, 1, &[3]);
        let base = CoreSim::new(vec![&t], SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            100,
            &mut Trace::disabled(),
        );
        let explicit = CoreSim::new(vec![&t], SchedulerKind::PlainEdf)
            .with_overheads(Overheads::default())
            .run(&mut LevelCap::lo(), 100, &mut Trace::disabled());
        assert_eq!(base, explicit);
    }

    #[test]
    fn context_switch_overhead_delays_completions() {
        let t = task(0, 10, 1, &[3]);
        let sim = CoreSim::new(vec![&t], SchedulerKind::PlainEdf)
            .with_overheads(Overheads { context_switch: 1, mode_switch: 0 });
        let mut trace = Trace::enabled(10);
        let r = sim.run(&mut LevelCap::lo(), 30, &mut trace);
        assert_eq!(r.total_misses(), 0);
        // First completion at 4 (1 tick dispatch overhead + 3 execution).
        assert_eq!(r.worst_response_of(TaskId(0)), Some(4));
    }

    #[test]
    fn overheads_can_erode_a_tight_guarantee() {
        // Two tasks at exactly full utilization: any overhead causes misses.
        let a = task(0, 4, 1, &[2]);
        let b = task(1, 8, 1, &[4]);
        let clean = CoreSim::new(vec![&a, &b], SchedulerKind::PlainEdf).run(
            &mut LevelCap::lo(),
            200,
            &mut Trace::disabled(),
        );
        assert_eq!(clean.total_misses(), 0);
        let loaded = CoreSim::new(vec![&a, &b], SchedulerKind::PlainEdf)
            .with_overheads(Overheads { context_switch: 1, mode_switch: 0 })
            .run(&mut LevelCap::lo(), 200, &mut Trace::disabled());
        assert!(loaded.total_misses() > 0, "full-utilization set must crack: {loaded:?}");
    }

    #[test]
    fn mode_switch_overhead_is_charged_once_per_switch() {
        let lo = task(0, 100, 1, &[10]);
        let hi = task(1, 100, 2, &[10, 30]);
        let tasks = vec![&lo, &hi];
        let plain = CoreSim::new(tasks.clone(), SchedulerKind::PlainEdf).run(
            &mut LevelCap::new(2),
            1000,
            &mut Trace::disabled(),
        );
        let charged = CoreSim::new(tasks, SchedulerKind::PlainEdf)
            .with_overheads(Overheads { context_switch: 0, mode_switch: 5 })
            .run(&mut LevelCap::new(2), 1000, &mut Trace::disabled());
        assert_eq!(plain.mode_switches, charged.mode_switches);
        // Charged run finishes the HI job later each period.
        let a = plain.worst_response_of(TaskId(1)).unwrap();
        let b = charged.worst_response_of(TaskId(1)).unwrap();
        assert!(b >= a + 5, "mode-switch overhead not visible: {a} vs {b}");
    }

    #[test]
    fn response_times_track_the_worst_job() {
        let a = task(0, 10, 1, &[2]);
        let b = task(1, 20, 1, &[9]);
        let sim = CoreSim::new(vec![&a, &b], SchedulerKind::PlainEdf);
        let r = sim.run(&mut LevelCap::lo(), 200, &mut Trace::disabled());
        // τ0 preempts τ1 (shorter deadline): τ1's response ≥ 9 + 2·2.
        assert_eq!(r.worst_response_of(TaskId(0)), Some(2));
        let rb = r.worst_response_of(TaskId(1)).unwrap();
        assert!(rb >= 13, "τ1 response {rb}");
        assert!(r.worst_response_of(TaskId(7)).is_none());
    }
}

#[cfg(test)]
mod elastic_tests {
    use super::*;
    use crate::scenario::LevelCap;
    use mcs_analysis::{elastic_stretch_factors, Theorem1, VdAssignment};
    use mcs_model::{TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    /// Shared fixture: a feasible dual-criticality core with real slack.
    fn fixture() -> (Vec<McTask>, VdAssignment, Vec<Option<f64>>) {
        let tasks = vec![task(0, 10_000, 1, &[3_000]), task(1, 100_000, 2, &[10_000, 45_000])];
        let table = UtilTable::from_tasks(2, tasks.iter());
        let analysis = Theorem1::compute(&table);
        let vd = VdAssignment::compute(&table, &analysis).expect("feasible");
        let factors = elastic_stretch_factors(&table, &analysis).expect("feasible");
        (tasks, vd, factors)
    }

    #[test]
    fn elastic_serves_lo_tasks_during_high_modes() {
        let (tasks, vd, factors) = fixture();
        let refs: Vec<&McTask> = tasks.iter().collect();
        let horizon = 1_000_000;
        let drop_run = CoreSim::new(refs.clone(), SchedulerKind::EdfVd(vd.clone())).run(
            &mut LevelCap::new(2),
            horizon,
            &mut Trace::disabled(),
        );
        let elastic_run = CoreSim::new(refs, SchedulerKind::EdfVd(vd))
            .with_degradation(DegradationPolicy::Elastic { factors })
            .run(&mut LevelCap::new(2), horizon, &mut Trace::disabled());
        // The HI guarantee must hold under both policies.
        assert_eq!(drop_run.mandatory_misses(CritLevel::new(2)), 0);
        assert_eq!(
            elastic_run.mandatory_misses(CritLevel::new(2)),
            0,
            "elastic service broke the HI guarantee: {elastic_run:?}"
        );
        // Elastic completes at least as many LO jobs (τ0 completions).
        let lo_drop = drop_run.worst_response_of(TaskId(0)).map(|_| drop_run.completed);
        let lo_elastic = elastic_run.completed;
        assert!(
            lo_elastic >= lo_drop.unwrap_or(0),
            "elastic should not serve fewer jobs: {lo_elastic} vs {lo_drop:?}"
        );
    }

    #[test]
    fn degraded_jobs_never_escalate_the_mode() {
        // A LO task whose scenario demand exceeds its level-1 budget while
        // degraded must be killed, not trigger a switch past the HI level.
        let tasks = [
            task(0, 10_000, 2, &[2_000, 4_000]), // its own overrun drives mode 2
            task(1, 20_000, 1, &[5_000]),
        ];
        let table = UtilTable::from_tasks(2, tasks.iter());
        let analysis = Theorem1::compute(&table);
        let vd = VdAssignment::compute(&table, &analysis).unwrap();
        let factors = elastic_stretch_factors(&table, &analysis).unwrap();
        let refs: Vec<&McTask> = tasks.iter().collect();
        let r = CoreSim::new(refs, SchedulerKind::EdfVd(vd))
            .with_degradation(DegradationPolicy::Elastic { factors })
            .run(&mut LevelCap::new(2), 500_000, &mut Trace::disabled());
        assert!(r.max_mode <= 2, "degraded work escalated the mode: {r:?}");
        assert_eq!(r.mandatory_misses(CritLevel::new(2)), 0);
    }

    #[test]
    fn drop_policy_is_unchanged_by_default() {
        let (tasks, vd, _) = fixture();
        let refs: Vec<&McTask> = tasks.iter().collect();
        let a = CoreSim::new(refs.clone(), SchedulerKind::EdfVd(vd.clone())).run(
            &mut LevelCap::new(2),
            300_000,
            &mut Trace::disabled(),
        );
        let b = CoreSim::new(refs, SchedulerKind::EdfVd(vd))
            .with_degradation(DegradationPolicy::Drop)
            .run(&mut LevelCap::new(2), 300_000, &mut Trace::disabled());
        assert_eq!(a, b);
    }
}
