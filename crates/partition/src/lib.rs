//! # mcs-partition
//!
//! Task-to-core partitioning for mixed-criticality systems — the primary
//! contribution of the ICPP'16 paper — plus every baseline it compares
//! against.
//!
//! * [`catpa`] — **CA-TPA** (Algorithm 1): tasks ordered by *utilization
//!   contribution*, probe-based core selection minimizing the increment of
//!   the Theorem-1 core utilization, with the workload-imbalance threshold α;
//! * [`binpack`] — the classical decreasing heuristics FFD / BFD / WFD (and
//!   next-fit), ordered by maximum utilization, with the paper's two-stage
//!   fit test (Eq. (4), then Theorem 1);
//! * [`hybrid`] — the Hybrid scheme of Rodriguez et al. \[28\]: WFD for
//!   high-criticality tasks, then FFD for low-criticality ones;
//! * [`mod@contribution`] — utilization contribution (Eq. (12)–(13)) and the
//!   paper's ordering-priority relation;
//! * [`fit`] — feasibility predicates shared by all heuristics;
//! * [`metrics`] — partition quality: `U_sys` (Eq. (10)), `U_avg`
//!   (Eq. (11)), the workload imbalance factor `Λ` (Eq. (16));
//! * [`ablation`] — CA-TPA variants isolating each design choice (ordering
//!   rule, probe objective, fit test, imbalance fallback) for the ablation
//!   experiments;
//! * [`engine`] — the incremental [`ProbeEngine`] all probe-style heuristics
//!   run on: precomputed task rows, per-core running sums, batch probes over
//!   a thread-local scratch — bit-identical to the generic Theorem-1 path;
//! * [`admission`] — the online [`AdmissionEngine`]: a task-lifecycle state
//!   machine over the probe engine serving admit/depart streams, with
//!   registry-derived admission policies and repair-on-reject relocation;
//! * [`reference`] — the pre-optimization placement loops, kept as the
//!   differential-test oracle and the `mcs-exp perf` baseline.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod admission;
pub mod anneal;
pub mod binpack;
pub mod catpa;
pub mod contribution;
pub mod dbfpart;
pub mod engine;
pub mod exact;
pub mod fit;
pub mod fppart;
pub mod hybrid;
pub mod metrics;
pub mod reference;
pub mod registry;
pub mod repair;

use std::fmt;

pub use ablation::{CatpaVariant, Objective, Ordering as CatpaOrdering};
pub use admission::{AdmissionEngine, AdmissionPolicy, AdmissionStats, Decision};
pub use anneal::SimAnneal;
pub use binpack::{BinPacker, Placement};
pub use catpa::{Catpa, DEFAULT_ALPHA};
pub use contribution::{contribution, order_by_contribution, ordering_priority};
pub use dbfpart::DbfFirstFit;
pub use engine::{with_scratch, PlacementScratch, ProbeEngine};
pub use exact::{ExactBnb, ExactOutcome};
pub use fit::FitTest;
pub use fppart::{FpAmc, FpOrdering, FpPriorities};
pub use hybrid::Hybrid;
pub use metrics::{PartitionQuality, QualityScratch, QualitySummary};
pub use reference::{reference_paper_schemes, ReferenceBinPacker, ReferenceCatpa, ReferenceHybrid};
pub use registry::{
    BaselineFit, SchemeFlags, SchemeInfo, SchemeRegistry, AUDIT_SET, DUAL_SET, GAP_SET, PAPER_SET,
};
pub use repair::CatpaLs;

use mcs_model::{Partition, TaskId, TaskSet};

/// Failure to find a feasible partitioning: the first task that could not be
/// placed on any core, plus how many tasks had already been placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionFailure {
    /// The task no core could feasibly accommodate.
    pub task: TaskId,
    /// Number of tasks successfully placed before the failure.
    pub placed: usize,
}

impl fmt::Display for PartitionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no core can feasibly accommodate task {} (after placing {})",
            self.task, self.placed
        )
    }
}

impl std::error::Error for PartitionFailure {}

/// A task-to-core partitioning heuristic.
pub trait Partitioner {
    /// Short display name (used in experiment tables: "CA-TPA", "FFD", …).
    fn name(&self) -> &'static str;

    /// Try to produce a complete, feasible partition of `ts` on `cores`
    /// cores (feasible = every core passes the EDF-VD test used by the
    /// scheme).
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure>;

    /// Whether a successful partition certifies per-core EDF-VD Theorem-1
    /// feasibility. True for CA-TPA and the bin-packing family (their
    /// admission test is Eq. (4)/Theorem 1); false for schemes with a
    /// different admission test (DBF, FP-AMC), whose partitions the audit
    /// layer checks structurally only.
    fn certifies_theorem1(&self) -> bool {
        true
    }
}

impl<P: Partitioner + ?Sized> Partitioner for &P {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        (**self).partition(ts, cores)
    }
    fn certifies_theorem1(&self) -> bool {
        (**self).certifies_theorem1()
    }
}

impl<P: Partitioner + ?Sized> Partitioner for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        (**self).partition(ts, cores)
    }
    fn certifies_theorem1(&self) -> bool {
        (**self).certifies_theorem1()
    }
}

/// The five schemes evaluated in the paper's figures, in their plot order.
///
/// Baselines use the paper-text reading of §IV-A: Eq. (4) first, then the
/// improved Theorem-1 test. See [`paper_schemes_weak`] for the alternative
/// reading.
#[must_use]
pub fn paper_schemes() -> Vec<Box<dyn Partitioner + Send + Sync>> {
    SchemeRegistry::standard().build_set(&PAPER_SET, &SchemeFlags::default())
}

/// The same five schemes, but with the *classical* baselines: WFD, FFD, BFD
/// and Hybrid admit a task only under the pessimistic Eq. (4) test — how
/// the prior partitioned-MC literature the paper compares against (\[22\],
/// \[28\]) actually assesses fit. Only CA-TPA exploits the improved
/// Theorem-1 condition. This reading reproduces the paper's reported
/// CA-TPA advantage; the strong-baseline reading ([`paper_schemes`]) mostly
/// erases it (see EXPERIMENTS.md).
#[must_use]
pub fn paper_schemes_weak() -> Vec<Box<dyn Partitioner + Send + Sync>> {
    SchemeRegistry::standard().build_set(&PAPER_SET, &SchemeFlags::weak())
}
