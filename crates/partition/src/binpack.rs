//! Classical decreasing bin-packing heuristics: FFD, BFD, WFD, NFD.
//!
//! As in the paper's baselines, tasks are sorted in decreasing order of
//! their *maximum* utilization `u_i(l_i)` and placed one by one; feasibility
//! of a core is assessed with Eq. (4) first and Theorem 1 second
//! ([`FitTest::SimpleThenImproved`]). The per-core "load" that best/worst
//! fit compare is the classical own-level utilization sum `Σ u_i(l_i)`.

use mcs_model::{CoreId, McTask, Partition, TaskId, TaskSet};

use crate::engine::{with_scratch, ProbeEngine};
use crate::fit::FitTest;
use crate::{PartitionFailure, Partitioner};

/// Placement policy of a decreasing bin-packer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// First feasible core in index order.
    FirstFit,
    /// Feasible core with the highest load (tightest fit); ties → smaller
    /// index.
    BestFit,
    /// Feasible core with the lowest load; ties → smaller index.
    WorstFit,
    /// The most recently used core, advancing (cyclically, one full lap)
    /// when it no longer fits.
    NextFit,
}

/// A classical bin-packing partitioner.
#[derive(Clone, Debug)]
pub struct BinPacker {
    placement: Placement,
    fit: FitTest,
    name: &'static str,
}

impl BinPacker {
    /// First-Fit Decreasing with the paper's two-stage fit test.
    #[must_use]
    pub fn ffd() -> Self {
        Self { placement: Placement::FirstFit, fit: FitTest::default(), name: "FFD" }
    }

    /// Best-Fit Decreasing.
    #[must_use]
    pub fn bfd() -> Self {
        Self { placement: Placement::BestFit, fit: FitTest::default(), name: "BFD" }
    }

    /// Worst-Fit Decreasing.
    #[must_use]
    pub fn wfd() -> Self {
        Self { placement: Placement::WorstFit, fit: FitTest::default(), name: "WFD" }
    }

    /// Next-Fit Decreasing (extra baseline, not in the paper's plots).
    #[must_use]
    pub fn nfd() -> Self {
        Self { placement: Placement::NextFit, fit: FitTest::default(), name: "NFD" }
    }

    /// Override the fit test (used by ablations).
    #[must_use]
    pub fn with_fit(mut self, fit: FitTest) -> Self {
        self.fit = fit;
        self
    }

    /// Sort task ids by decreasing maximum utilization `u_i(l_i)` (ties →
    /// smaller index) — the classical "decreasing" order.
    #[must_use]
    pub fn decreasing_max_util_order(ts: &TaskSet) -> Vec<&McTask> {
        let mut tasks: Vec<&McTask> = ts.tasks().iter().collect();
        tasks.sort_by(|a, b| {
            b.util_own()
                .partial_cmp(&a.util_own())
                .expect("utilizations are finite")
                .then_with(|| a.id().cmp(&b.id()))
        });
        tasks
    }

    /// [`Self::decreasing_max_util_order`] as ids into a reused buffer —
    /// same keys, same stable sort, so the same order.
    pub(crate) fn decreasing_max_util_order_into(ts: &TaskSet, out: &mut Vec<TaskId>) {
        out.clear();
        out.extend(ts.tasks().iter().map(McTask::id));
        out.sort_by(|a, b| {
            ts.task(*b)
                .util_own()
                .partial_cmp(&ts.task(*a).util_own())
                .expect("utilizations are finite")
                .then_with(|| a.cmp(b))
        });
    }
}

/// Place one task according to a placement policy, probing feasibility
/// through the engine's zero-allocation kernel. `loads` are the classical
/// per-core `Σ u_i(l_i)` sums best/worst fit compare; `rank` is a reused
/// index buffer for the load-ordered probing of best/worst fit; `cursor`
/// is only used (and advanced) by next-fit. Returns the chosen core or
/// `None`.
pub(crate) fn choose_core(
    placement: Placement,
    fit: FitTest,
    engine: &ProbeEngine,
    loads: &[f64],
    rank: &mut Vec<usize>,
    id: TaskId,
    cursor: &mut usize,
) -> Option<usize> {
    engine.note_attempt();
    let fits = |m: usize| -> bool { engine.fits(m, id, fit) };
    match placement {
        Placement::FirstFit => (0..loads.len()).find(|&m| fits(m)),
        // Best/worst fit probe candidates in preference order — load
        // descending (best) / ascending (worst), ties → smaller index —
        // and stop at the first feasible one. Outcome-identical to the
        // classical probe-every-core fold: that fold selects the
        // extremal-load feasible core with smallest-index tie-breaking,
        // which is exactly the first feasible core in this order. The
        // difference is probe count, not outcome: ~1 Theorem-1 probe per
        // placement instead of M. The extremal core is found with a plain
        // O(M) scan (it fits almost always — one probe, no sort); only
        // when it rejects does the O(M log M) ranked fallback run.
        Placement::BestFit | Placement::WorstFit => {
            let preferred = |a: f64, b: f64| -> bool {
                // Strict comparison keeps the smaller index on load ties.
                if placement == Placement::BestFit {
                    a > b
                } else {
                    a < b
                }
            };
            let mut first = 0usize;
            for (m, &load) in loads.iter().enumerate().skip(1) {
                if preferred(load, loads[first]) {
                    first = m;
                }
            }
            if fits(first) {
                return Some(first);
            }
            rank.clear();
            rank.extend(0..loads.len());
            rank.sort_unstable_by(|&a, &b| {
                let by_load = loads[a].partial_cmp(&loads[b]).expect("loads are finite");
                let by_load =
                    if placement == Placement::BestFit { by_load.reverse() } else { by_load };
                by_load.then_with(|| a.cmp(&b))
            });
            rank.iter().copied().filter(|&m| m != first).find(|&m| fits(m))
        }
        Placement::NextFit => {
            for step in 0..loads.len() {
                let m = (*cursor + step) % loads.len();
                if fits(m) {
                    *cursor = m;
                    return Some(m);
                }
            }
            None
        }
    }
}

impl Partitioner for BinPacker {
    fn name(&self) -> &'static str {
        self.name
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        with_scratch(|scratch| {
            Self::decreasing_max_util_order_into(ts, &mut scratch.order);
            let engine = &mut scratch.engine;
            engine.reset(ts, cores);
            let loads = &mut scratch.loads;
            loads.clear();
            loads.resize(cores, 0.0);
            let mut partition = Partition::empty(cores, ts.len());
            let mut cursor = 0usize;
            for (placed, &id) in scratch.order.iter().enumerate() {
                match choose_core(
                    self.placement,
                    self.fit,
                    engine,
                    loads,
                    &mut scratch.rank,
                    id,
                    &mut cursor,
                ) {
                    Some(m) => {
                        loads[m] += engine.util_own(id);
                        engine.place_untracked(id, m);
                        partition.assign(id, CoreId(u16::try_from(m).expect("core fits u16")));
                    }
                    None => return Err(PartitionFailure { task: id, placed }),
                }
            }
            mcs_audit::debug_audit(ts, &partition, self.name, true, None);
            Ok(partition)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    /// Four half-utilization tasks on two cores: every decreasing scheme
    /// must pack two per core.
    fn four_halves() -> TaskSet {
        set((0..4).map(|i| task(i, 10, 1, &[5])).collect(), 1)
    }

    #[test]
    fn ffd_packs_greedily() {
        let ts = four_halves();
        let p = BinPacker::ffd().partition(&ts, 2).unwrap();
        assert_eq!(p.load_counts(), vec![2, 2]);
        // First-fit keeps filling core 0 first.
        assert_eq!(p.core_of(TaskId(0)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(1)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(2)), Some(CoreId(1)));
    }

    #[test]
    fn wfd_spreads_load() {
        let ts = set(vec![task(0, 10, 1, &[4]), task(1, 10, 1, &[3]), task(2, 10, 1, &[2])], 1);
        let p = BinPacker::wfd().partition(&ts, 2).unwrap();
        // τ0 → P1 (empty), τ1 → P2 (load 0 < 0.4), τ2 → P2 (0.3 < 0.4).
        assert_eq!(p.core_of(TaskId(0)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(1)), Some(CoreId(1)));
        assert_eq!(p.core_of(TaskId(2)), Some(CoreId(1)));
    }

    #[test]
    fn bfd_prefers_fullest_feasible_core() {
        // τ0=0.6 → P1; τ1=0.3 → best-fit picks P1 (0.6 load, still fits);
        // τ2=0.3 no longer fits P1 (0.9+0.3 > 1) → P2.
        let ts = set(vec![task(0, 10, 1, &[6]), task(1, 10, 1, &[3]), task(2, 10, 1, &[3])], 1);
        let p = BinPacker::bfd().partition(&ts, 2).unwrap();
        assert_eq!(p.core_of(TaskId(0)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(1)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(2)), Some(CoreId(1)));
    }

    #[test]
    fn nfd_advances_cyclically() {
        let ts = four_halves();
        let p = BinPacker::nfd().partition(&ts, 2).unwrap();
        assert!(p.is_complete());
        assert_eq!(p.load_counts().iter().sum::<usize>(), 4);
    }

    #[test]
    fn failure_reports_unplaceable_task() {
        // Three 0.6 tasks on two cores: third cannot fit anywhere.
        let ts = set((0..3).map(|i| task(i, 10, 1, &[6])).collect(), 1);
        let err = BinPacker::ffd().partition(&ts, 2).unwrap_err();
        assert_eq!(err.placed, 2);
    }

    #[test]
    fn improved_fit_rescues_mc_sets() {
        // Per-core: U_1(1)=0.5 + HI(0.1, 0.6) passes Thm 1 but not Eq. (4).
        let ts = set(vec![task(0, 10, 1, &[5]), task(1, 100, 2, &[10, 60])], 2);
        assert!(BinPacker::ffd().with_fit(FitTest::Simple).partition(&ts, 1).is_err());
        assert!(BinPacker::ffd().partition(&ts, 1).is_ok());
    }

    #[test]
    fn order_is_by_max_utilization() {
        let ts = set(
            vec![
                task(0, 10, 1, &[2]),    // 0.2
                task(1, 10, 2, &[1, 8]), // 0.8
                task(2, 10, 1, &[5]),    // 0.5
            ],
            2,
        );
        let order: Vec<u32> =
            BinPacker::decreasing_max_util_order(&ts).iter().map(|t| t.id().0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn empty_task_set_yields_empty_partition() {
        let ts = set(vec![], 2);
        let p = BinPacker::ffd().partition(&ts, 4).unwrap();
        assert!(p.is_complete());
        assert_eq!(p.num_tasks(), 0);
    }

    #[test]
    fn single_core_acts_as_pure_schedulability_test() {
        let ts = set(vec![task(0, 10, 2, &[3, 9]), task(1, 100, 1, &[10])], 2);
        // θ(1) = 0.1 + min{0.9, 0.3/0.1=3} = 1.0 ⇒ feasible on one core.
        assert!(BinPacker::ffd().partition(&ts, 1).is_ok());
    }
}
