//! Simulated-annealing partitioner — a metaheuristic extension that can
//! escape the local optima greedy constructions get stuck in, at a cost
//! between the heuristics and the exact search.
//!
//! Starts from the best greedy attempt (CA-TPA if it completes; otherwise
//! a least-loaded spread of *all* tasks, feasible or not) and performs
//! random single-task relocations under a geometric cooling schedule. The
//! energy of an assignment is
//!
//! ```text
//! E(Γ) = Σ_m [ infeasible(Ψ_m) · (1 + overload(Ψ_m)) ]
//! ```
//!
//! where `overload` is the Eq.-(4)-style excess `max(0, Σ U_i(i) − 1)` —
//! zero energy ⇔ every core passes Theorem 1. The search stops early at
//! zero energy; a failed run reports the best energy reached.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mcs_analysis::Theorem1;
use mcs_model::{CoreId, LevelUtils, Partition, TaskSet, UtilTable};

use crate::catpa::Catpa;
use crate::{PartitionFailure, Partitioner};

/// Simulated-annealing partitioner.
#[derive(Clone, Copy, Debug)]
pub struct SimAnneal {
    /// Relocation attempts.
    pub iterations: u32,
    /// Initial temperature (energy units).
    pub t0: f64,
    /// Geometric cooling rate per iteration.
    pub cooling: f64,
    /// RNG seed (deterministic given the task set).
    pub seed: u64,
}

impl Default for SimAnneal {
    fn default() -> Self {
        Self { iterations: 20_000, t0: 1.0, cooling: 0.9995, seed: 0xA22EA1 }
    }
}

fn core_energy(table: &UtilTable) -> f64 {
    if Theorem1::compute(table).feasible() {
        0.0
    } else {
        1.0 + (table.own_level_total() - 1.0).max(0.0)
    }
}

impl Partitioner for SimAnneal {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        if let Ok(p) = Catpa::default().partition(&ts.clone(), cores) {
            return Ok(p); // greedy already solves it — nothing to anneal
        }
        if ts.is_empty() {
            return Ok(Partition::empty(cores, 0));
        }

        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Initial assignment: least-loaded spread by own-level utilization.
        let mut assignment: Vec<usize> = vec![0; ts.len()];
        let mut loads = vec![0.0f64; cores];
        let mut order: Vec<usize> = (0..ts.len()).collect();
        order.sort_by(|&a, &b| {
            ts.tasks()[b].util_own().partial_cmp(&ts.tasks()[a].util_own()).expect("finite")
        });
        for i in order {
            let m = (0..cores)
                .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite"))
                .expect("at least one core");
            assignment[i] = m;
            loads[m] += ts.tasks()[i].util_own();
        }

        let mut tables: Vec<UtilTable> =
            (0..cores).map(|_| UtilTable::new(ts.num_levels())).collect();
        for (i, &m) in assignment.iter().enumerate() {
            tables[m].add(&ts.tasks()[i]);
        }
        let mut energies: Vec<f64> = tables.iter().map(core_energy).collect();
        let mut energy: f64 = energies.iter().sum();
        let mut temperature = self.t0;

        for _ in 0..self.iterations {
            if energy <= 0.0 {
                break;
            }
            let i = rng.gen_range(0..ts.len());
            let from = assignment[i];
            let to = rng.gen_range(0..cores);
            if to == from {
                temperature *= self.cooling;
                continue;
            }
            let task = &ts.tasks()[i];
            tables[from].remove(task);
            tables[to].add(task);
            let (e_from, e_to) = (core_energy(&tables[from]), core_energy(&tables[to]));
            let new_energy = energy - energies[from] - energies[to] + e_from + e_to;
            let accept = new_energy <= energy
                || rng.gen_bool(((energy - new_energy) / temperature.max(1e-9)).exp().min(1.0));
            if accept {
                assignment[i] = to;
                energies[from] = e_from;
                energies[to] = e_to;
                energy = new_energy;
            } else {
                tables[to].remove(task);
                tables[from].add(task);
            }
            temperature *= self.cooling;
        }

        if energy > 0.0 {
            // Report the first task on the most overloaded core.
            let worst = energies
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map_or(0, |(m, _)| m);
            let task = assignment
                .iter()
                .position(|&m| m == worst)
                .map_or(mcs_model::TaskId(0), |i| ts.tasks()[i].id());
            return Err(PartitionFailure { task, placed: 0 });
        }
        let mut partition = Partition::empty(cores, ts.len());
        for (i, &m) in assignment.iter().enumerate() {
            partition.assign(ts.tasks()[i].id(), CoreId(u16::try_from(m).expect("fits")));
        }
        mcs_audit::debug_audit(ts, &partition, self.name(), true, None);
        Ok(partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::BinPacker;
    use mcs_model::{McTask, TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    #[test]
    fn solves_the_ffd_trap() {
        // The unique-packing trap FFD fails on; SA should find it.
        let utils = [50u64, 34, 33, 33, 25, 25];
        let ts = set(
            utils
                .iter()
                .enumerate()
                .map(|(i, &c)| task(u32::try_from(i).unwrap(), 100, 1, &[c]))
                .collect(),
            1,
        );
        assert!(BinPacker::ffd().partition(&ts, 2).is_err());
        let p = SimAnneal::default().partition(&ts, 2).expect("SA must find the packing");
        for t in p.core_tables(&ts) {
            assert!(Theorem1::compute(&t).feasible());
        }
    }

    #[test]
    fn returns_greedy_result_when_it_works() {
        let ts = set((0..4).map(|i| task(i, 10, 1, &[4])).collect(), 1);
        let sa = SimAnneal::default().partition(&ts, 2).unwrap();
        let greedy = Catpa::default().partition(&ts, 2).unwrap();
        for t in ts.tasks() {
            assert_eq!(sa.core_of(t.id()), greedy.core_of(t.id()));
        }
    }

    #[test]
    fn reports_failure_on_truly_infeasible_sets() {
        let ts = set((0..3).map(|i| task(i, 10, 1, &[6])).collect(), 1);
        let sa = SimAnneal { iterations: 2_000, ..Default::default() };
        assert!(sa.partition(&ts, 2).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let utils = [50u64, 34, 33, 33, 25, 25];
        let ts = set(
            utils
                .iter()
                .enumerate()
                .map(|(i, &c)| task(u32::try_from(i).unwrap(), 100, 1, &[c]))
                .collect(),
            1,
        );
        let a = SimAnneal::default().partition(&ts, 2).unwrap();
        let b = SimAnneal::default().partition(&ts, 2).unwrap();
        for t in ts.tasks() {
            assert_eq!(a.core_of(t.id()), b.core_of(t.id()));
        }
    }

    #[test]
    fn output_satisfies_the_contract_on_generated_sets() {
        use mcs_gen::{generate_task_set, GenParams};
        let params = GenParams::default().with_n_range(10, 16).with_cores(3).with_nsu(0.66);
        for seed in 0..10 {
            let ts = generate_task_set(&params, seed);
            if let Ok(p) = SimAnneal::default().partition(&ts, 3) {
                p.require_complete(&ts).unwrap();
                for t in p.core_tables(&ts) {
                    assert!(Theorem1::compute(&t).feasible(), "seed {seed}");
                }
            }
        }
    }
}
