//! CA-TPA ablation variants: each variant isolates one design choice of the
//! algorithm (task ordering, probe objective, probe metric, imbalance
//! fallback) so the experiment harness can attribute CA-TPA's advantage.

use mcs_analysis::Theorem1;
use mcs_model::{
    CoreId, CritLevel, LevelUtils, McTask, Partition, TaskId, TaskSet, UtilTable, WithTask,
};

use crate::contribution::order_by_contribution_into;
use crate::engine::{with_scratch, ProbeEngine};
use crate::{PartitionFailure, Partitioner};

/// Task ordering rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// The paper's utilization-contribution order (Eq. (12)–(13)).
    Contribution,
    /// Classical decreasing maximum utilization `u_i(l_i)`.
    MaxUtil,
    /// Criticality level first (descending), then max utilization — the
    /// criticality-sorted order of Kelly et al. \[22\].
    CriticalityThenUtil,
    /// Input order (no sorting) — lower bound on ordering value.
    Index,
}

/// Core-selection objective evaluated on the probe results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the utilization increment `Δ = U^{Ψ∪{τ}} − U^{Ψ}` (CA-TPA).
    MinIncrement,
    /// Minimize the resulting utilization `U^{Ψ∪{τ}}` (best-fit flavour on
    /// core utilization).
    MinNewUtil,
    /// Maximize the resulting slack (worst-fit flavour: choose the core
    /// with the *lowest current* utilization among feasible ones).
    MinCurrentUtil,
    /// First feasible core (first-fit flavour).
    FirstFeasible,
}

/// Which utilization the probes compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeMetric {
    /// Theorem-1 core utilization, Eq. (9) — the paper's choice (max over
    /// satisfied conditions of `1 − A(k)`).
    Theorem1Util,
    /// The monotone reading of Eq. (9): `1 − max_k A(k)` (best slack).
    Theorem1Slack,
    /// The pessimistic own-level sum of Eq. (4) (feasible iff ≤ 1).
    OwnLevelSum,
}

/// A configurable CA-TPA-family partitioner.
#[derive(Clone, Debug)]
pub struct CatpaVariant {
    name: &'static str,
    ordering: Ordering,
    objective: Objective,
    metric: ProbeMetric,
    alpha: Option<f64>,
}

impl CatpaVariant {
    /// Build a variant. The caller supplies a static display name.
    #[must_use]
    pub fn new(
        name: &'static str,
        ordering: Ordering,
        objective: Objective,
        metric: ProbeMetric,
        alpha: Option<f64>,
    ) -> Self {
        Self { name, ordering, objective, metric, alpha }
    }

    /// The full CA-TPA configuration expressed as a variant (for sanity
    /// checks that the variant machinery reproduces `Catpa`).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            "CA-TPA(var)",
            Ordering::Contribution,
            Objective::MinIncrement,
            ProbeMetric::Theorem1Util,
            Some(crate::catpa::DEFAULT_ALPHA),
        )
    }

    /// The standard ablation battery used by `mcs-exp ablation`.
    #[must_use]
    pub fn battery() -> Vec<CatpaVariant> {
        use Objective::*;
        use Ordering::*;
        use ProbeMetric::*;
        vec![
            Self::paper_default(),
            Self::new("-imbalance", Contribution, MinIncrement, Theorem1Util, None),
            Self::new("-contribution", MaxUtil, MinIncrement, Theorem1Util, Some(0.7)),
            Self::new("-probe(eq4)", Contribution, MinIncrement, OwnLevelSum, Some(0.7)),
            Self::new("probe=slack", Contribution, MinIncrement, Theorem1Slack, Some(0.7)),
            Self::new("obj=new-util", Contribution, MinNewUtil, Theorem1Util, Some(0.7)),
            Self::new("obj=worst-fit", Contribution, MinCurrentUtil, Theorem1Util, Some(0.7)),
            Self::new("obj=first-fit", Contribution, FirstFeasible, Theorem1Util, Some(0.7)),
            Self::new("order=crit", CriticalityThenUtil, MinIncrement, Theorem1Util, Some(0.7)),
            Self::new("order=index", Index, MinIncrement, Theorem1Util, Some(0.7)),
        ]
    }

    /// The placement order this variant uses for `ts`.
    #[must_use]
    pub fn order(&self, ts: &TaskSet) -> Vec<TaskId> {
        let mut totals = Vec::new();
        let mut keyed = Vec::new();
        let mut out = Vec::new();
        self.order_into(ts, &mut totals, &mut keyed, &mut out);
        out
    }

    /// Fill `out` with the placement order, reusing the sort buffers.
    fn order_into(
        &self,
        ts: &TaskSet,
        totals: &mut Vec<f64>,
        keyed: &mut Vec<(TaskId, f64, CritLevel)>,
        out: &mut Vec<TaskId>,
    ) {
        out.clear();
        match self.ordering {
            Ordering::Contribution => order_by_contribution_into(ts, totals, keyed, out),
            Ordering::MaxUtil => {
                out.extend(ts.tasks().iter().map(McTask::id));
                out.sort_by(|a, b| {
                    ts.task(*b)
                        .util_own()
                        .partial_cmp(&ts.task(*a).util_own())
                        .expect("finite")
                        .then_with(|| a.cmp(b))
                });
            }
            Ordering::CriticalityThenUtil => {
                out.extend(ts.tasks().iter().map(McTask::id));
                out.sort_by(|a, b| {
                    let (ta, tb) = (ts.task(*a), ts.task(*b));
                    tb.level()
                        .cmp(&ta.level())
                        .then_with(|| tb.util_own().partial_cmp(&ta.util_own()).expect("finite"))
                        .then_with(|| a.cmp(b))
                });
            }
            Ordering::Index => out.extend(ts.tasks().iter().map(McTask::id)),
        }
    }

    /// Probe the metric value of `table ∪ {task}`; `None` when infeasible.
    /// Reference path through the generic `Theorem1` machinery, kept as the
    /// specification the engine probe below is tested against.
    #[must_use]
    pub fn probe(&self, table: &UtilTable, task: &McTask) -> Option<f64> {
        let view = WithTask::new(table, task);
        match self.metric {
            ProbeMetric::Theorem1Util => Theorem1::compute(&view).core_utilization(),
            ProbeMetric::Theorem1Slack => Theorem1::compute(&view).core_utilization_slack(),
            ProbeMetric::OwnLevelSum => {
                let s = view.own_level_total();
                (s <= 1.0 + mcs_analysis::EPS).then_some(s)
            }
        }
    }

    /// The same metric probe through the zero-allocation engine kernel.
    /// `OwnLevelSum` keeps its cheap O(K) path (the old code never ran the
    /// full Theorem-1 recursion for it either).
    fn probe_engine(&self, engine: &ProbeEngine, m: usize, id: TaskId) -> Option<f64> {
        match self.metric {
            ProbeMetric::Theorem1Util => engine.probe_verdict(m, id).core_utilization,
            ProbeMetric::Theorem1Slack => engine.probe_verdict(m, id).core_utilization_slack,
            ProbeMetric::OwnLevelSum => {
                let s = engine.own_level_total_probe(m, id);
                let feasible = s <= 1.0 + mcs_analysis::EPS;
                engine.note_probe(feasible);
                feasible.then_some(s)
            }
        }
    }
}

impl Partitioner for CatpaVariant {
    fn name(&self) -> &'static str {
        self.name
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        with_scratch(|scratch| {
            self.order_into(ts, &mut scratch.totals, &mut scratch.keyed, &mut scratch.order);
            let engine = &mut scratch.engine;
            engine.reset(ts, cores);
            let mut partition = Partition::empty(cores, ts.len());

            for (placed, &id) in scratch.order.iter().enumerate() {
                engine.note_attempt();
                let rebalance = self.alpha.is_some_and(|a| engine.imbalance() > a);
                if rebalance {
                    engine.note_alpha_fallback();
                }
                // (core, selection key, probed commit value). A manual core
                // loop rather than the batch API: FirstFeasible must stop at
                // the first hit, exactly like the original loop.
                let mut best: Option<(usize, f64, f64)> = None;
                for m in 0..cores {
                    let Some(new_u) = self.probe_engine(engine, m, id) else { continue };
                    if rebalance {
                        let key = engine.utils()[m];
                        if best.is_none_or(|(_, bk, _)| key < bk) {
                            best = Some((m, key, new_u));
                        }
                        continue;
                    }
                    match self.objective {
                        Objective::MinIncrement => {
                            let key = new_u - engine.utils()[m];
                            if best.is_none_or(|(_, bk, _)| key < bk) {
                                best = Some((m, key, new_u));
                            }
                        }
                        Objective::MinNewUtil => {
                            if best.is_none_or(|(_, bk, _)| new_u < bk) {
                                best = Some((m, new_u, new_u));
                            }
                        }
                        Objective::MinCurrentUtil => {
                            let key = engine.utils()[m];
                            if best.is_none_or(|(_, bk, _)| key < bk) {
                                best = Some((m, key, new_u));
                            }
                        }
                        Objective::FirstFeasible => {
                            best = Some((m, 0.0, new_u));
                        }
                    }
                    if matches!(self.objective, Objective::FirstFeasible) && best.is_some() {
                        break;
                    }
                }
                let Some((m, _, new_u)) = best else {
                    return Err(PartitionFailure { task: id, placed });
                };
                // Commit reuses the probed metric value; for every metric
                // the probed view is bit-identical to a post-add
                // recomputation (the kernel's equivalence contract).
                engine.commit(id, m, new_u);
                partition.assign(id, CoreId(u16::try_from(m).expect("core fits u16")));
            }
            mcs_audit::debug_audit(ts, &partition, self.name(), true, self.alpha);
            Ok(partition)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catpa::Catpa;
    use mcs_model::TaskBuilder;

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    fn mixed_set() -> TaskSet {
        set(
            vec![
                task(0, 1000, 2, &[339, 633]),
                task(1, 1000, 2, &[175, 326]),
                task(2, 500, 1, &[200]),
                task(3, 200, 2, &[30, 70]),
                task(4, 100, 1, &[25]),
            ],
            2,
        )
    }

    #[test]
    fn paper_default_variant_matches_catpa() {
        let ts = mixed_set();
        let a = CatpaVariant::paper_default().partition(&ts, 2).unwrap();
        let b = Catpa::default().partition(&ts, 2).unwrap();
        for t in ts.tasks() {
            assert_eq!(a.core_of(t.id()), b.core_of(t.id()), "task {:?}", t.id());
        }
    }

    #[test]
    fn battery_all_run_on_feasible_set() {
        let ts = mixed_set();
        for v in CatpaVariant::battery() {
            let r = v.partition(&ts, 2);
            assert!(r.is_ok(), "variant {} failed", v.name());
        }
    }

    #[test]
    fn orderings_differ_on_skewed_sets() {
        let ts = mixed_set();
        let contribution = CatpaVariant::paper_default().order(&ts);
        let maxutil = CatpaVariant::new(
            "x",
            Ordering::MaxUtil,
            Objective::MinIncrement,
            ProbeMetric::Theorem1Util,
            None,
        )
        .order(&ts);
        // MaxUtil ranks τ0 (0.633) first; contribution also ranks τ0 first
        // here, but the LO task τ2 (u=0.4) must outrank τ3 (0.45 max util is
        // wrong: 90/200 = 0.45 > 0.4) under MaxUtil while contribution uses
        // per-level shares. At minimum the orders must be valid permutations.
        let mut c = contribution.clone();
        let mut m = maxutil.clone();
        c.sort();
        m.sort();
        assert_eq!(c, m, "orders must be permutations of the same ids");
    }

    #[test]
    fn index_order_is_identity() {
        let ts = mixed_set();
        let v = CatpaVariant::new(
            "x",
            Ordering::Index,
            Objective::MinIncrement,
            ProbeMetric::Theorem1Util,
            None,
        );
        let ids: Vec<u32> = v.order(&ts).iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn criticality_order_puts_high_levels_first() {
        let ts = mixed_set();
        let v = CatpaVariant::new(
            "x",
            Ordering::CriticalityThenUtil,
            Objective::MinIncrement,
            ProbeMetric::Theorem1Util,
            None,
        );
        let order = v.order(&ts);
        let levels: Vec<u8> = order.iter().map(|id| ts.task(*id).level().get()).collect();
        let mut sorted = levels.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(levels, sorted);
    }

    #[test]
    fn eq4_probe_is_more_conservative() {
        // A set only schedulable via Theorem 1 on one core: the eq4-probe
        // variant must fail where the full variant succeeds.
        let ts = set(vec![task(0, 10, 1, &[5]), task(1, 100, 2, &[10, 60])], 2);
        let full = CatpaVariant::paper_default();
        let eq4 = CatpaVariant::new(
            "eq4",
            Ordering::Contribution,
            Objective::MinIncrement,
            ProbeMetric::OwnLevelSum,
            None,
        );
        assert!(full.partition(&ts, 1).is_ok());
        assert!(eq4.partition(&ts, 1).is_err());
    }
}
