//! The incremental [`ProbeEngine`] — shared placement state for every
//! probe-style partitioner, built on the zero-allocation Theorem-1 kernel
//! of [`mcs_analysis::probe`].
//!
//! Responsibilities:
//!
//! * precompute every task's utilization row once per task set into the
//!   struct-of-arrays [`TaskTable`] (the `c/p` divisions are never
//!   repeated inside the placement loop);
//! * maintain all cores' running sums in one [`CoreBank`] — contiguous
//!   per-`(j, k)` planes, updated incrementally on commit/evict with the
//!   exact `UtilTable` operation sequence;
//! * cache the committed per-core utilization `U^{Ψ_m}` and its running
//!   min/max so the imbalance factor `Λ` (Eq. (16)) is O(1) per placement
//!   instead of an O(M) scan;
//! * expose the batch-probe API [`ProbeEngine::probe_all_cores`] — a thin
//!   wrapper over the lane-parallel [`batch_probe_verdicts`] kernel that
//!   evaluates all `M` cores in one sweep over the contiguous planes into
//!   a reusable scratch buffer (zero allocation after warm-up).
//!
//! Everything the engine reports is **bit-identical** to the generic
//! `Theorem1::compute`-over-`WithTask` path the partitioners used before
//! (see the equivalence contract in [`mcs_analysis::probe`]); the
//! `probe-engine-consistency` audit rule re-checks this claim on every
//! audited partition.
//!
//! [`PlacementScratch`] bundles the engine with the ordering buffers the
//! partitioners need and lives in a thread-local, so a sweep worker running
//! hundreds of thousands of placements reuses one warm allocation set.

use std::cell::{Cell, RefCell};

use mcs_analysis::{
    batch_probe_verdicts, CoreBank, CoreSums, CoreView, Probe, TaskRow, TaskTable, Verdict, EPS,
};
use mcs_model::{CritLevel, TaskId, TaskSet};
use mcs_obs::{Counter, Phase};

use crate::fit::FitTest;

/// Local telemetry tally. The probe kernel runs in tens of nanoseconds, so
/// per-probe atomic traffic would dominate it; instead the engine counts
/// into plain [`Cell`]s (a register add each — `&self` probe methods can
/// still count) and [`with_scratch`] flushes the whole tally to the global
/// [`mcs_obs`] registry once per partitioning run.
#[derive(Debug, Default)]
struct EngineTally {
    issued: Cell<u64>,
    rejected: Cell<u64>,
    feasible: Cell<u64>,
    commits: Cell<u64>,
    untracked: Cell<u64>,
    evictions: Cell<u64>,
    resets: Cell<u64>,
    attempts: Cell<u64>,
    alpha_fallbacks: Cell<u64>,
    repair_moves: Cell<u64>,
    batch_calls: Cell<u64>,
    batch_lanes: Cell<u64>,
}

#[inline]
fn bump(cell: &Cell<u64>, n: u64) {
    cell.set(cell.get() + n);
}

fn flush(counter: Counter, cell: &Cell<u64>) {
    let n = cell.take();
    if n > 0 {
        mcs_obs::add(counter, n);
    }
}

/// Incremental probe state: per-task utilization rows, per-core running
/// sums, cached core utilizations and their min/max.
#[derive(Debug, Default)]
pub struct ProbeEngine {
    /// Per-level utilization planes of the loaded task set (SoA).
    tasks: TaskTable,
    /// All cores' triangular sums as contiguous per-entry planes (SoA).
    bank: CoreBank,
    /// Committed metric value per core (the Theorem-1 core utilization for
    /// CA-TPA; variants may commit the slack or Eq. (4) readings). Always
    /// finite: only probed-feasible placements are committed.
    utils: Vec<f64>,
    /// Running `max_m utils[m]` / `min_m utils[m]`, maintained on every
    /// commit/evict so [`Self::imbalance`] is O(1).
    max_util: f64,
    min_util: f64,
    /// Reusable output buffer of [`Self::probe_all_cores`].
    probes: Vec<Verdict>,
    /// Telemetry cells, flushed by [`with_scratch`].
    tally: EngineTally,
}

impl ProbeEngine {
    /// Fresh, empty engine (no task set loaded).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a task set and reset all per-core state for `cores` empty
    /// cores, reusing every buffer from previous runs.
    pub fn reset(&mut self, ts: &TaskSet, cores: usize) {
        assert!(cores >= 1, "need at least one core");
        if mcs_obs::compiled() {
            bump(&self.tally.resets, 1);
        }
        self.tasks.reset(ts);
        self.bank.reset(ts.num_levels(), cores);
        self.utils.clear();
        self.utils.resize(cores, 0.0);
        self.max_util = 0.0;
        self.min_util = 0.0;
    }

    /// Number of cores of the current run.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.bank.num_cores()
    }

    /// The precomputed row of a task, materialized from the planes (the
    /// cached divisions are verbatim copies — see [`TaskTable::row`]).
    #[must_use]
    pub fn row(&self, id: TaskId) -> TaskRow {
        self.tasks.row(id.index())
    }

    /// A task's own-level utilization `u_i(l_i)` — O(1) plane read, no row
    /// gather (the bin-packing family's load key).
    // lint: no_alloc
    #[inline]
    #[must_use]
    pub fn util_own(&self, id: TaskId) -> f64 {
        self.tasks.util_own(id.index())
    }

    /// Committed per-core utilizations.
    #[must_use]
    pub fn utils(&self) -> &[f64] {
        &self.utils
    }

    /// Scalar view of one core's running sums (used by tests and
    /// diagnostics).
    #[must_use]
    pub fn core(&self, m: usize) -> CoreView<'_> {
        self.bank.view(m)
    }

    /// Materialize one core's running sums as a standalone [`CoreSums`]
    /// (bit-exact copies — the admission-state audit compares these
    /// against a fresh rebuild of the surviving member list).
    #[must_use]
    pub fn core_sums(&self, m: usize) -> CoreSums {
        self.bank.to_core_sums(m)
    }

    /// Probe one core: Theorem 1 on `Ψ_m ∪ {task}`, full `A(k)` vector
    /// (the audit layer and tests read it; placement loops use
    /// [`Self::probe_verdict`]). Reference path, not telemetry-counted.
    #[must_use]
    pub fn probe(&self, m: usize, id: TaskId) -> Probe {
        self.bank.view(m).probe(&self.tasks.row(id.index()))
    }

    /// Count one decided probe into the local tally.
    #[inline]
    pub(crate) fn note_probe(&self, feasible: bool) {
        if mcs_obs::compiled() {
            bump(&self.tally.issued, 1);
            bump(if feasible { &self.tally.feasible } else { &self.tally.rejected }, 1);
        }
    }

    /// Count one placement attempt (one task a scheme tried to place).
    #[inline]
    pub(crate) fn note_attempt(&self) {
        if mcs_obs::compiled() {
            bump(&self.tally.attempts, 1);
        }
    }

    /// Count one α-threshold (imbalance fallback) activation.
    #[inline]
    pub(crate) fn note_alpha_fallback(&self) {
        if mcs_obs::compiled() {
            bump(&self.tally.alpha_fallbacks, 1);
        }
    }

    /// Count one applied repair (local-search) move.
    #[inline]
    pub(crate) fn note_repair_move(&self) {
        if mcs_obs::compiled() {
            bump(&self.tally.repair_moves, 1);
        }
    }

    /// Flush the local tally to the global registry (called by
    /// [`with_scratch`] once per partitioning run).
    pub(crate) fn flush_telemetry(&self) {
        if mcs_obs::compiled() {
            let t = &self.tally;
            flush(Counter::EngineProbesIssued, &t.issued);
            flush(Counter::EngineProbesRejected, &t.rejected);
            flush(Counter::EngineProbesFeasible, &t.feasible);
            flush(Counter::EngineCommits, &t.commits);
            flush(Counter::EnginePlacementsUntracked, &t.untracked);
            flush(Counter::EngineEvictions, &t.evictions);
            flush(Counter::EngineResets, &t.resets);
            flush(Counter::PlacementAttempts, &t.attempts);
            flush(Counter::AlphaFallbacks, &t.alpha_fallbacks);
            flush(Counter::RepairMoves, &t.repair_moves);
            flush(Counter::EngineBatchCalls, &t.batch_calls);
            flush(Counter::EngineBatchLaneSlots, &t.batch_lanes);
        }
    }

    /// Fused probe of one core — the placement hot path: one kernel sweep
    /// yields feasibility, Eq. (9) utilization and the slack reading,
    /// bit-identical to the [`Self::probe`] accessors.
    // lint: no_alloc
    #[must_use]
    pub fn probe_verdict(&self, m: usize, id: TaskId) -> Verdict {
        let row = self.tasks.row(id.index());
        let v = self.bank.view(m).probe_verdict(&row);
        self.note_probe(v.feasible());
        v
    }

    /// Batch probe: evaluate `Ψ_m ∪ {task}` for every core `m` in one
    /// lane-parallel sweep over the bank's contiguous planes (the
    /// [`batch_probe_verdicts`] kernel) into the reusable scratch buffer.
    /// Returns the verdicts alongside the committed utilizations (the
    /// selection keys need both). Each verdict is bit-identical to the
    /// scalar [`Self::probe_verdict`] of the same core.
    // lint: no_alloc
    pub fn probe_all_cores(&mut self, id: TaskId) -> (&[Verdict], &[f64]) {
        let _timer = mcs_obs::span(Phase::ProbeBatch);
        let row = self.tasks.row(id.index());
        {
            let _kernel = mcs_obs::span(Phase::BatchKernel);
            batch_probe_verdicts(&self.bank, &row, &mut self.probes);
        }
        if mcs_obs::compiled() {
            let issued = self.probes.len() as u64;
            let feasible = self.probes.iter().filter(|v| v.feasible()).count() as u64;
            bump(&self.tally.batch_calls, 1);
            bump(&self.tally.batch_lanes, self.bank.lane_slots() as u64);
            bump(&self.tally.issued, issued);
            bump(&self.tally.feasible, feasible);
            bump(&self.tally.rejected, issued - feasible);
        }
        (&self.probes, &self.utils)
    }

    /// Repair-move probe: Theorem 1 on `Ψ_m ∖ {minus} ∪ {plus}`.
    /// Reference path, not telemetry-counted.
    #[must_use]
    pub fn probe_swap(&self, m: usize, minus: TaskId, plus: TaskId) -> Probe {
        self.bank.view(m).probe_swap(&self.tasks.row(minus.index()), &self.tasks.row(plus.index()))
    }

    /// Fused repair-move probe — the repair loop's hot path.
    // lint: no_alloc
    #[must_use]
    pub fn probe_swap_verdict(&self, m: usize, minus: TaskId, plus: TaskId) -> Verdict {
        let minus = self.tasks.row(minus.index());
        let plus = self.tasks.row(plus.index());
        let v = self.bank.view(m).probe_swap_verdict(&minus, &plus);
        self.note_probe(v.feasible());
        v
    }

    /// The Eq. (4) own-level total of `Ψ_m ∪ {task}` — the cheap first
    /// stage of the two-stage fit test, O(K) instead of O(K²).
    // lint: no_alloc
    #[must_use]
    pub fn own_level_total_probe(&self, m: usize, id: TaskId) -> f64 {
        let row = self.tasks.row(id.index());
        self.bank.view(m).own_level_total_probe(&row)
    }

    /// Whether `task` fits on core `m` under `fit` — the bin-packing
    /// admission test, short-circuiting exactly like
    /// [`FitTest::feasible`] over a `WithTask` view.
    // lint: no_alloc
    #[must_use]
    pub fn fits(&self, m: usize, id: TaskId, fit: FitTest) -> bool {
        match fit {
            FitTest::Simple => {
                let ok = self.own_level_total_probe(m, id) <= 1.0 + EPS;
                self.note_probe(ok);
                ok
            }
            FitTest::Improved => self.probe_verdict(m, id).feasible(),
            FitTest::SimpleThenImproved => {
                let simple = self.own_level_total_probe(m, id) <= 1.0 + EPS;
                self.note_probe(simple);
                simple || self.probe_verdict(m, id).feasible()
            }
        }
    }

    /// Commit `task` to core `m`, reusing the already probed metric value
    /// `util` (bit-identical to a post-add recomputation — that is the
    /// probe kernel's equivalence contract, so the old "probe, add,
    /// recompute" double evaluation is gone).
    // lint: no_alloc
    pub fn commit(&mut self, id: TaskId, m: usize, util: f64) {
        let _timer = mcs_obs::span(Phase::Commit);
        if mcs_obs::compiled() {
            bump(&self.tally.commits, 1);
        }
        let row = self.tasks.row(id.index());
        self.bank.add(m, &row);
        let old = self.utils[m];
        self.utils[m] = util;
        self.note_util_change(old, util);
    }

    /// Add `task` to core `m` without utilization tracking — for the
    /// bin-packing family, which keys on the classical load, not on the
    /// Theorem-1 utilization.
    pub fn place_untracked(&mut self, id: TaskId, m: usize) {
        if mcs_obs::compiled() {
            bump(&self.tally.untracked, 1);
        }
        let row = self.tasks.row(id.index());
        self.bank.add(m, &row);
    }

    /// Remove `task` from core `m` (repair moves), re-deriving the core's
    /// committed utilization from the shrunk sums.
    pub fn evict(&mut self, id: TaskId, m: usize) {
        if mcs_obs::compiled() {
            bump(&self.tally.evictions, 1);
        }
        let row = self.tasks.row(id.index());
        self.bank.remove(m, &row);
        let old = self.utils[m];
        let new = {
            let _timer = mcs_obs::span(Phase::Theorem1Eval);
            self.bank
                .view(m)
                .evaluate_verdict()
                .core_utilization
                .expect("a subset of a feasible core stays feasible")
        };
        self.utils[m] = new;
        self.note_util_change(old, new);
    }

    /// Remove `task` from core `m` without utilization tracking — the
    /// eviction counterpart of [`Self::place_untracked`]. [`Self::evict`]
    /// re-derives the committed Theorem-1 utilization, which is wrong for
    /// cores the bin-packing family loaded untracked (their `utils[m]`
    /// stays 0.0 by contract); this variant only shrinks the running sums,
    /// keeping [`Self::probe_all_cores`] valid after the removal.
    // lint: no_alloc
    pub fn evict_untracked(&mut self, id: TaskId, m: usize) {
        if mcs_obs::compiled() {
            bump(&self.tally.evictions, 1);
        }
        let row = self.tasks.row(id.index());
        self.bank.remove(m, &row);
    }

    /// Commit a migration in one O(K) delta: replace `minus` by `plus` on
    /// core `m` and record the new metric value `util`. The committed sums
    /// are bit-identical to the [`Self::probe_swap_verdict`] view that
    /// justified the move (clamp-then-accumulate per entry — the
    /// [`CoreBank::swap`] contract), i.e. to a sequential evict + commit,
    /// without the intermediate utilization re-derivation [`Self::evict`]
    /// performs.
    // lint: no_alloc
    pub fn swap_committed(&mut self, minus: TaskId, plus: TaskId, m: usize, util: f64) {
        if mcs_obs::compiled() {
            bump(&self.tally.evictions, 1);
            bump(&self.tally.commits, 1);
        }
        let minus = self.tasks.row(minus.index());
        let plus = self.tasks.row(plus.index());
        self.bank.swap(m, &minus, &plus);
        let old = self.utils[m];
        self.utils[m] = util;
        self.note_util_change(old, util);
    }

    /// Refold core `m` from scratch: clear its sums and re-accumulate
    /// `survivors` in the given order, re-deriving the committed
    /// utilization from the refolded sums (0.0 for an emptied core). This
    /// is the departure path of the admission engine: a refold is by
    /// construction bit-identical to a fresh rebuild of the surviving
    /// subset — the clamped O(K) remove delta is not (floating-point
    /// subtraction does not exactly undo addition), so departures pay
    /// O(|Ψ_m| · K) to keep the engine's live state equal to a
    /// from-scratch repartition of the survivors (the
    /// `admission-state-consistency` audit contract).
    // lint: no_alloc
    pub fn refold_core(&mut self, m: usize, survivors: &[TaskId]) {
        if mcs_obs::compiled() {
            bump(&self.tally.evictions, 1);
        }
        self.bank.clear_core(m);
        for id in survivors {
            let row = self.tasks.row(id.index());
            self.bank.add(m, &row);
        }
        let old = self.utils[m];
        let new = if survivors.is_empty() {
            0.0
        } else {
            let _timer = mcs_obs::span(Phase::Theorem1Eval);
            self.bank
                .view(m)
                .evaluate_verdict()
                .core_utilization
                .expect("a subset of a feasible core stays feasible")
        };
        self.utils[m] = new;
        self.note_util_change(old, new);
    }

    /// Maintain the running min/max after `utils[m]` changed `old → new`.
    /// When the changed core *was* the extremum and moved inward, the
    /// extremum is rescanned (rare: utilization usually grows on commit).
    fn note_util_change(&mut self, old: f64, new: f64) {
        if new >= self.max_util {
            self.max_util = new;
        } else if old >= self.max_util {
            self.max_util = self.utils.iter().copied().fold(0.0f64, f64::max);
        }
        if new <= self.min_util {
            self.min_util = new;
        } else if old <= self.min_util {
            self.min_util = self.utils.iter().copied().fold(f64::INFINITY, f64::min);
        }
    }

    /// Current workload imbalance factor `Λ` (Eq. (16)) over the committed
    /// utilizations — O(1), bit-identical to [`crate::catpa::imbalance`]
    /// on the utils slice (min/max are order-independent folds).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let u_sys = self.max_util;
        if u_sys <= 0.0 {
            return 0.0;
        }
        (u_sys - self.min_util) / u_sys
    }
}

/// Reusable per-thread placement state: the probe engine plus the ordering
/// and load buffers the partitioners fill each run. One warm
/// `PlacementScratch` serves every partitioner invocation on its thread.
#[derive(Debug, Default)]
pub struct PlacementScratch {
    /// The incremental probe engine.
    pub engine: ProbeEngine,
    /// Placement order of the current run.
    pub order: Vec<TaskId>,
    /// Sort-key buffer for the ordering rules.
    pub keyed: Vec<(TaskId, f64, CritLevel)>,
    /// System-wide level totals `U(1)..U(K)` (contribution ordering).
    pub totals: Vec<f64>,
    /// Classical per-core loads `Σ u_i(l_i)` (bin-packing family).
    pub loads: Vec<f64>,
    /// Core-index ranking buffer (best/worst fit load-ordered probing).
    pub rank: Vec<usize>,
}

impl PlacementScratch {
    /// Fresh scratch with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static SCRATCH: RefCell<PlacementScratch> = RefCell::new(PlacementScratch::new());
}

/// Run `f` with this thread's warm [`PlacementScratch`]. Re-entrant calls
/// (a partitioner invoking another partitioner, e.g. annealing seeding from
/// CA-TPA) fall back to a fresh scratch rather than aliasing the borrow.
// lint: no_alloc
pub fn with_scratch<R>(f: impl FnOnce(&mut PlacementScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            mcs_obs::counter!(Counter::ScratchReuseHits);
            let result = f(&mut scratch);
            scratch.engine.flush_telemetry();
            result
        }
        Err(_) => {
            mcs_obs::counter!(Counter::ScratchFallbacks);
            let mut scratch = PlacementScratch::new();
            let result = f(&mut scratch);
            scratch.engine.flush_telemetry();
            result
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_analysis::Theorem1;
    use mcs_model::{McTask, TaskBuilder, UtilTable, WithTask};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn mixed_set() -> TaskSet {
        TaskSet::new(
            2,
            vec![
                task(0, 1000, 2, &[339, 633]),
                task(1, 1000, 2, &[175, 326]),
                task(2, 500, 1, &[200]),
                task(3, 200, 2, &[30, 70]),
                task(4, 100, 1, &[25]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn batch_probe_matches_reference_per_core() {
        let ts = mixed_set();
        let mut engine = ProbeEngine::new();
        engine.reset(&ts, 3);
        engine.commit(TaskId(0), 0, engine.probe(0, TaskId(0)).core_utilization().unwrap());
        engine.commit(TaskId(2), 1, engine.probe(1, TaskId(2)).core_utilization().unwrap());

        let mut tables = vec![UtilTable::new(2), UtilTable::new(2), UtilTable::new(2)];
        tables[0].add(ts.task(TaskId(0)));
        tables[1].add(ts.task(TaskId(2)));

        let (probes, _) = engine.probe_all_cores(TaskId(1));
        for (m, p) in probes.iter().enumerate() {
            let reference = Theorem1::compute(&WithTask::new(&tables[m], ts.task(TaskId(1))));
            assert_eq!(
                p.core_utilization.map(f64::to_bits),
                reference.core_utilization().map(f64::to_bits),
                "core {m}"
            );
        }
    }

    #[test]
    fn imbalance_is_bit_identical_to_the_slice_fold() {
        let ts = mixed_set();
        let mut engine = ProbeEngine::new();
        engine.reset(&ts, 3);
        for (id, m) in [(0u32, 0usize), (1, 1), (2, 1), (3, 2), (4, 0)] {
            let u = engine.probe(m, TaskId(id)).core_utilization().unwrap();
            engine.commit(TaskId(id), m, u);
            assert_eq!(
                engine.imbalance().to_bits(),
                crate::catpa::imbalance(engine.utils()).to_bits()
            );
        }
        // Evictions walk the extrema back down.
        for (id, m) in [(0u32, 0usize), (3, 2)] {
            engine.evict(TaskId(id), m);
            assert_eq!(
                engine.imbalance().to_bits(),
                crate::catpa::imbalance(engine.utils()).to_bits()
            );
        }
    }

    #[test]
    fn fits_matches_fit_test_on_views() {
        let ts = mixed_set();
        let mut engine = ProbeEngine::new();
        engine.reset(&ts, 2);
        engine.place_untracked(TaskId(0), 0);
        let mut table = UtilTable::new(2);
        table.add(ts.task(TaskId(0)));
        for fit in [FitTest::Simple, FitTest::Improved, FitTest::SimpleThenImproved] {
            for id in [1u32, 2, 3, 4] {
                let view = WithTask::new(&table, ts.task(TaskId(id)));
                assert_eq!(
                    engine.fits(0, TaskId(id), fit),
                    fit.feasible(&view),
                    "fit {fit:?} task {id}"
                );
            }
        }
    }

    #[test]
    fn probe_all_cores_stays_valid_after_evictions() {
        // Regression: the batch probe must see the shrunk sums after every
        // eviction flavour (tracked, untracked, refold), bit-identical to
        // reference tables fed the same add/remove sequence.
        let ts = mixed_set();
        let mut engine = ProbeEngine::new();
        engine.reset(&ts, 3);
        let mut tables = vec![UtilTable::new(2), UtilTable::new(2), UtilTable::new(2)];
        for (id, m) in [(0u32, 0usize), (1, 1), (2, 1), (3, 2), (4, 0)] {
            let u = engine.probe(m, TaskId(id)).core_utilization().unwrap();
            engine.commit(TaskId(id), m, u);
            tables[m].add(ts.task(TaskId(id)));
        }
        let check = |engine: &mut ProbeEngine, tables: &[UtilTable]| {
            let (probes, _) = engine.probe_all_cores(TaskId(3));
            for (m, p) in probes.iter().enumerate() {
                let reference = Theorem1::compute(&WithTask::new(&tables[m], ts.task(TaskId(3))));
                assert_eq!(
                    p.core_utilization.map(f64::to_bits),
                    reference.core_utilization().map(f64::to_bits),
                    "core {m}"
                );
            }
        };
        // Tracked eviction.
        engine.evict(TaskId(2), 1);
        tables[1].remove(ts.task(TaskId(2)));
        check(&mut engine, &tables);
        // Untracked eviction (no utilization re-derivation).
        engine.evict_untracked(TaskId(4), 0);
        tables[0].remove(ts.task(TaskId(4)));
        check(&mut engine, &tables);
        // Refold (departure path): survivors re-accumulated from scratch.
        engine.refold_core(2, &[]);
        tables[2].remove(ts.task(TaskId(3)));
        check(&mut engine, &tables);
        assert_eq!(engine.utils()[2], 0.0);
    }

    #[test]
    fn swap_committed_lands_on_the_probed_view() {
        let ts = mixed_set();
        let mut engine = ProbeEngine::new();
        engine.reset(&ts, 2);
        engine.commit(TaskId(1), 0, engine.probe(0, TaskId(1)).core_utilization().unwrap());
        engine.commit(TaskId(2), 0, engine.probe(0, TaskId(2)).core_utilization().unwrap());
        // Migrate: replace task 2 by task 3 on core 0 in one delta.
        let v = engine.probe_swap_verdict(0, TaskId(2), TaskId(3));
        let util = v.core_utilization.unwrap();
        engine.swap_committed(TaskId(2), TaskId(3), 0, util);
        assert_eq!(engine.utils()[0].to_bits(), util.to_bits());
        // The committed sums evaluate exactly to the probed swap verdict.
        let resident = engine.core(0).evaluate_verdict();
        assert_eq!(resident.core_utilization.map(f64::to_bits), Some(util.to_bits()));
        assert_eq!(resident.own_level_total.to_bits(), v.own_level_total.to_bits());
        assert_eq!(engine.core(0).task_count(), 2);
    }

    #[test]
    fn refold_matches_fresh_rebuild_bitwise() {
        let ts = mixed_set();
        let survivors = [TaskId(1), TaskId(4)];
        let mut engine = ProbeEngine::new();
        engine.reset(&ts, 2);
        for id in [1u32, 3, 4] {
            let u = engine.probe(0, TaskId(id)).core_utilization().unwrap();
            engine.commit(TaskId(id), 0, u);
        }
        engine.refold_core(0, &survivors);
        let mut fresh = ProbeEngine::new();
        fresh.reset(&ts, 2);
        for id in survivors {
            let u = fresh.probe(0, id).core_utilization().unwrap();
            fresh.commit(id, 0, u);
        }
        let a = engine.core(0).evaluate_verdict();
        let b = fresh.core(0).evaluate_verdict();
        assert_eq!(a.own_level_total.to_bits(), b.own_level_total.to_bits());
        assert_eq!(a.core_utilization.map(f64::to_bits), b.core_utilization.map(f64::to_bits));
        assert_eq!(engine.utils()[0].to_bits(), fresh.utils()[0].to_bits());
    }

    #[test]
    fn reset_reuses_buffers_across_shapes() {
        let ts = mixed_set();
        let mut engine = ProbeEngine::new();
        engine.reset(&ts, 4);
        engine.commit(TaskId(0), 3, engine.probe(3, TaskId(0)).core_utilization().unwrap());
        engine.reset(&ts, 2);
        assert_eq!(engine.num_cores(), 2);
        assert_eq!(engine.utils(), &[0.0, 0.0]);
        assert_eq!(engine.imbalance(), 0.0);
        assert_eq!(engine.core(0).task_count(), 0);
    }

    #[test]
    fn scratch_is_reentrancy_safe() {
        let answer = with_scratch(|outer| {
            outer.order.push(TaskId(7));
            with_scratch(|inner| inner.order.len())
        });
        assert_eq!(answer, 0, "nested call must see a fresh scratch");
        with_scratch(|s| s.order.clear());
    }
}
