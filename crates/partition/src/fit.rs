//! Feasibility predicates shared by the partitioning heuristics.

use mcs_analysis::{simple_condition, Theorem1};
use mcs_model::LevelUtils;

/// Which schedulability test a heuristic uses to decide whether a core can
/// accommodate a candidate subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FitTest {
    /// Only the pessimistic Eq. (4).
    Simple,
    /// Only Theorem 1 (Inequality (5) for some k).
    Improved,
    /// The paper's baseline procedure: Eq. (4) first, then Theorem 1 when
    /// the simple test fails. Logically equivalent to `Improved` (Eq. (4)
    /// implies condition k = 1) but cheaper on the common path.
    #[default]
    SimpleThenImproved,
}

impl FitTest {
    /// Whether a utilization view passes this test.
    #[must_use]
    pub fn feasible<U: LevelUtils>(self, view: &U) -> bool {
        match self {
            FitTest::Simple => simple_condition(view),
            FitTest::Improved => Theorem1::compute(view).feasible(),
            FitTest::SimpleThenImproved => {
                simple_condition(view) || Theorem1::compute(view).feasible()
            }
        }
    }

    /// Short label for ablation tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FitTest::Simple => "eq4",
            FitTest::Improved => "thm1",
            FitTest::SimpleThenImproved => "eq4+thm1",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{McTask, TaskBuilder, TaskId, UtilTable};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn improved_accepts_more_than_simple() {
        // U_1(1)=0.5, U_2(1)=0.1, U_2(2)=0.6: Eq. (4) = 1.1 fails, Thm 1 ok.
        let t = UtilTable::from_tasks(2, [&task(0, 10, 1, &[5]), &task(1, 100, 2, &[10, 60])]);
        assert!(!FitTest::Simple.feasible(&t));
        assert!(FitTest::Improved.feasible(&t));
        assert!(FitTest::SimpleThenImproved.feasible(&t));
    }

    #[test]
    fn two_stage_equals_improved_on_samples() {
        let sets = [
            vec![task(0, 10, 1, &[5]), task(1, 100, 2, &[10, 60])],
            vec![task(0, 10, 1, &[9]), task(1, 10, 2, &[5, 9])],
            vec![task(0, 10, 2, &[2, 6])],
        ];
        for s in &sets {
            let t = UtilTable::from_tasks(2, s.iter());
            assert_eq!(FitTest::Improved.feasible(&t), FitTest::SimpleThenImproved.feasible(&t));
        }
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(FitTest::Simple.label(), FitTest::Improved.label());
        assert_ne!(FitTest::Improved.label(), FitTest::SimpleThenImproved.label());
    }
}
