//! The online [`AdmissionEngine`] — a task-lifecycle state machine over
//! the incremental [`ProbeEngine`], answering "can this system absorb
//! τ_new, and on which core?" without repartitioning from scratch.
//!
//! The batch partitioners of this crate see the whole task set once and
//! answer offline. The admission engine instead serves a *stream* of
//! lifecycle events:
//!
//! * [`AdmissionEngine::admit`] — probe every core in one batch sweep,
//!   pick a target under the configured [`AdmissionPolicy`], commit the
//!   placement in O(K), and return the [`Decision`]. When no core can
//!   absorb the task directly, a repair move search (the `repair.rs`
//!   relocation, seeded from the engine's **live** sums — no rebuild)
//!   tries to relocate one resident task to make room;
//! * [`AdmissionEngine::depart`] — remove a resident task. Departures
//!   *refold* the affected core: its sums are cleared and the survivors
//!   re-accumulated in arrival order, so the live state is bit-identical
//!   to a from-scratch rebuild of the surviving set by construction (a
//!   clamped O(K) subtraction cannot guarantee that — floating-point
//!   subtraction does not exactly undo addition). Only the departed
//!   task's core pays the refold; every other core keeps its exact bits.
//!
//! Placement schemes become admission policies through the
//! [`SchemeRegistry`](crate::SchemeRegistry): [`AdmissionPolicy::from_scheme`]
//! maps a registered scheme's metadata onto an online selection rule
//! (CA-TPA's imbalance-aware min-increment probe, or the classical
//! first/best/worst-fit orders driven by the same Theorem-1 verdicts).
//!
//! The `admission-state-consistency` audit rule and the churn proptests in
//! `tests/probe_engine_differential.rs` enforce the state contract:
//! after any admit/depart/repair interleaving, [`AdmissionEngine::state_identical_to_rebuild`]
//! must hold and the resulting partition must re-certify Theorem 1.

use mcs_analysis::CoreSums;
use mcs_model::{CoreId, CritLevel, LevelUtils, Partition, TaskId, TaskSet};
use mcs_obs::{Counter, Phase};

use crate::catpa::select_core;
use crate::engine::ProbeEngine;
use crate::registry::{SchemeFlags, SchemeInfo, SchemeRegistry};
use crate::DEFAULT_ALPHA;

/// The outcome of one admission request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// The task was placed: target core and its new committed Theorem-1
    /// core utilization (Eq. (9)).
    Admitted {
        /// Core the task now runs on.
        core: CoreId,
        /// The core's committed utilization after the placement.
        utilization: f64,
    },
    /// No core (even after the repair move search) can absorb the task;
    /// engine state is unchanged.
    Rejected,
}

impl Decision {
    /// Whether the request was admitted.
    #[must_use]
    pub fn admitted(&self) -> bool {
        matches!(self, Decision::Admitted { .. })
    }
}

/// Online core-selection rule of one admission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PolicyKind {
    /// CA-TPA's probe selection: minimize the utilization *increment*,
    /// falling back to min-utilization when the imbalance Λ exceeds α.
    MinIncrement,
    /// Lowest-index feasible core (FFD's online reading).
    FirstFit,
    /// Fullest feasible core — highest committed utilization (BFD).
    BestFit,
    /// Emptiest feasible core — lowest committed utilization (WFD).
    WorstFit,
}

/// A pluggable admission policy: a registered placement scheme's metadata
/// mapped onto an online selection rule.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    name: &'static str,
    kind: PolicyKind,
    alpha: Option<f64>,
}

impl AdmissionPolicy {
    /// The default policy: CA-TPA with the paper's α.
    #[must_use]
    pub fn catpa() -> Self {
        Self { name: "CA-TPA", kind: PolicyKind::MinIncrement, alpha: Some(DEFAULT_ALPHA) }
    }

    /// Derive the online policy of a registered scheme, `None` when the
    /// scheme has no online reading (dual-criticality-only analyses, the
    /// stateful metaheuristics).
    #[must_use]
    pub fn from_scheme(info: &SchemeInfo, flags: &SchemeFlags) -> Option<Self> {
        let kind = match info.name {
            "CA-TPA" | "CA-TPA+LS" => PolicyKind::MinIncrement,
            "FFD" => PolicyKind::FirstFit,
            "BFD" => PolicyKind::BestFit,
            "WFD" => PolicyKind::WorstFit,
            _ => return None,
        };
        Some(Self { name: info.name, kind, alpha: info.effective_alpha(flags) })
    }

    /// Look up a scheme by name in the standard registry and derive its
    /// online policy (`None` for unknown or offline-only schemes).
    #[must_use]
    pub fn named(name: &str) -> Option<Self> {
        let registry = SchemeRegistry::standard();
        let info = registry.get(name)?;
        Self::from_scheme(info, &SchemeFlags::default())
    }

    /// Every registered scheme with an online reading, in registry order
    /// (fixes the `mcs-exp admit` report row order).
    #[must_use]
    pub fn all() -> Vec<Self> {
        let registry = SchemeRegistry::standard();
        registry
            .entries()
            .iter()
            .filter_map(|info| Self::from_scheme(info, &SchemeFlags::default()))
            .collect()
    }

    /// The policy's stable display name (the underlying scheme's name).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Lifecycle statistics of one engine instance (monotone counters; the
/// experiment layer folds them across shards in trial order).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (including repair-rescued ones).
    pub admits: u64,
    /// Requests rejected.
    pub rejects: u64,
    /// Departures processed.
    pub departs: u64,
    /// Repair relocations applied.
    pub repair_moves: u64,
}

/// The online admission-control state machine: a [`ProbeEngine`] plus the
/// per-core member lists (in arrival order) that make exact departures
/// possible, driven by one [`AdmissionPolicy`].
#[derive(Debug)]
pub struct AdmissionEngine {
    policy: AdmissionPolicy,
    /// Configured repair relocations per run (restored on [`Self::reset`]).
    repair_budget: usize,
    /// Remaining repair relocations (decremented per applied move).
    repair_left: usize,
    engine: ProbeEngine,
    /// Per-core resident tasks, in arrival order — the refold source.
    members: Vec<Vec<TaskId>>,
    /// `home[i]` = core of task `i`, `None` while not resident.
    home: Vec<Option<u16>>,
    /// System criticality level count of the loaded task universe.
    k: u8,
    stats: AdmissionStats,
}

impl AdmissionEngine {
    /// Default repair budget (matches [`crate::CatpaLs`]).
    pub const DEFAULT_REPAIR_BUDGET: usize = 64;

    /// Fresh engine under `policy` (no task universe loaded yet).
    #[must_use]
    pub fn new(policy: AdmissionPolicy) -> Self {
        Self {
            policy,
            repair_budget: Self::DEFAULT_REPAIR_BUDGET,
            repair_left: Self::DEFAULT_REPAIR_BUDGET,
            engine: ProbeEngine::new(),
            members: Vec::new(),
            home: Vec::new(),
            k: 1,
            stats: AdmissionStats::default(),
        }
    }

    /// Set the repair move budget (0 disables repair).
    #[must_use]
    pub fn with_repair_budget(mut self, budget: usize) -> Self {
        self.repair_budget = budget;
        self.repair_left = budget;
        self
    }

    /// Load the task universe `ts` (the tasks the trace may admit) and
    /// reset to `cores` empty cores, reusing every buffer.
    pub fn reset(&mut self, ts: &TaskSet, cores: usize) {
        assert!(cores >= 1, "need at least one core");
        self.engine.reset(ts, cores);
        self.members.resize_with(cores, Vec::new);
        self.members.truncate(cores);
        for m in &mut self.members {
            m.clear();
        }
        self.home.clear();
        self.home.resize(ts.len(), None);
        self.k = ts.num_levels();
        self.stats = AdmissionStats::default();
        self.repair_left = self.repair_budget;
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Number of cores of the current run.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.engine.num_cores()
    }

    /// Whether `id` is currently placed.
    #[must_use]
    pub fn is_resident(&self, id: TaskId) -> bool {
        self.home[id.index()].is_some()
    }

    /// Number of currently resident tasks.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Lifecycle statistics since the last [`Self::reset`].
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Select a target core for `id` under the active policy, returning
    /// `(core, committed utilization)`; `None` when no core is feasible.
    fn select(&mut self, id: TaskId) -> Option<(usize, f64)> {
        if self.policy.kind == PolicyKind::MinIncrement {
            return select_core(&mut self.engine, id, self.policy.alpha);
        }
        self.engine.note_attempt();
        let kind = self.policy.kind;
        let (verdicts, utils) = self.engine.probe_all_cores(id);
        let mut best: Option<(usize, f64, f64)> = None;
        for (m, v) in verdicts.iter().enumerate() {
            let Some(new_u) = v.core_utilization else { continue };
            match kind {
                PolicyKind::FirstFit => return Some((m, new_u)),
                // Strict compares keep the first (lowest-index) core on
                // ties, mirroring the batch heuristics' scan order.
                PolicyKind::BestFit => {
                    if best.is_none_or(|(_, key, _)| utils[m] > key) {
                        best = Some((m, utils[m], new_u));
                    }
                }
                PolicyKind::WorstFit => {
                    if best.is_none_or(|(_, key, _)| utils[m] < key) {
                        best = Some((m, utils[m], new_u));
                    }
                }
                PolicyKind::MinIncrement => unreachable!("handled above"), // lint: allow(panic-policy, MinIncrement returns before the scan)
            }
        }
        best.map(|(m, _, new_u)| (m, new_u))
    }

    /// Commit `id` to core `m` with the probed utilization and record it
    /// in the member list / home index.
    fn place(&mut self, id: TaskId, m: usize, util: f64) {
        self.engine.commit(id, m, util);
        self.members[m].push(id);
        self.home[id.index()] = Some(u16::try_from(m).expect("core fits u16"));
    }

    /// Try one relocation making room for `stuck` — the `repair.rs` move
    /// search run against the engine's live sums (no rebuild): for every
    /// core `m` and resident `τ'` on `m` (smallest own-level utilization
    /// first), apply the first move where `stuck` fits on `m` without
    /// `τ'` and `τ'` fits elsewhere. The eviction side refolds core `m`,
    /// so the post-repair state keeps the rebuild-identity contract.
    fn repair(&mut self, stuck: TaskId) -> Option<(usize, f64)> {
        let _timer = mcs_obs::span(Phase::AdmissionRepair);
        for m in 0..self.engine.num_cores() {
            let mut candidates = self.members[m].clone();
            candidates.sort_by(|a, b| {
                self.engine
                    .util_own(*a)
                    .partial_cmp(&self.engine.util_own(*b))
                    .expect("utilizations are finite")
            });
            for cand in candidates {
                // (a) Would `stuck` fit on m without `cand`?
                if !self.engine.probe_swap_verdict(m, cand, stuck).feasible() {
                    continue;
                }
                // (b) Does `cand` fit elsewhere?
                let target = (0..self.engine.num_cores())
                    .find(|&m2| m2 != m && self.engine.probe_verdict(m2, cand).feasible());
                let Some(m2) = target else { continue };
                self.engine.note_repair_move();
                self.stats.repair_moves += 1;
                // Evict `cand` by refolding m's survivors (exact state).
                self.members[m].retain(|t| *t != cand);
                self.home[cand.index()] = None;
                self.engine.refold_core(m, &self.members[m]);
                // Re-place `cand` on its new core, then `stuck` on m.
                let cand_u = self
                    .engine
                    .probe_verdict(m2, cand)
                    .core_utilization
                    .expect("repair target was probed feasible");
                self.place(cand, m2, cand_u);
                let stuck_u = self
                    .engine
                    .probe_verdict(m, stuck)
                    .core_utilization
                    .expect("stuck fits on the vacated core by the swap probe");
                return Some((m, stuck_u));
            }
        }
        None
    }

    /// Process one admission request: probe, select under the policy,
    /// commit — falling back to the repair move search when no core fits
    /// directly. `id` must index into the loaded task universe and not be
    /// resident.
    pub fn admit(&mut self, id: TaskId) -> Decision {
        assert!(!self.is_resident(id), "task {id} is already resident");
        let _timer = mcs_obs::span(Phase::AdmissionDecision);
        let mut placement = self.select(id);
        if placement.is_none() && self.repair_left > 0 {
            placement = self.repair(id);
            if placement.is_some() {
                self.repair_left -= 1;
            }
        }
        match placement {
            Some((m, util)) => {
                self.place(id, m, util);
                self.stats.admits += 1;
                mcs_obs::counter!(Counter::AdmissionAdmits);
                Decision::Admitted {
                    core: CoreId(u16::try_from(m).expect("core fits u16")),
                    utilization: util,
                }
            }
            None => {
                self.stats.rejects += 1;
                mcs_obs::counter!(Counter::AdmissionRejects);
                Decision::Rejected
            }
        }
    }

    /// Process one departure: remove `id` and refold its core so the live
    /// sums stay bit-identical to a fresh rebuild of the survivors.
    /// Returns false (and changes nothing) when `id` is not resident.
    pub fn depart(&mut self, id: TaskId) -> bool {
        let Some(m) = self.home[id.index()] else {
            return false;
        };
        let m = usize::from(m);
        self.members[m].retain(|t| *t != id);
        self.home[id.index()] = None;
        self.engine.refold_core(m, &self.members[m]);
        self.stats.departs += 1;
        mcs_obs::counter!(Counter::AdmissionDeparts);
        true
    }

    /// The current placement as a [`Partition`] (audit input).
    #[must_use]
    pub fn partition(&self) -> Partition {
        let mut p = Partition::empty(self.engine.num_cores(), self.home.len());
        for (i, home) in self.home.iter().enumerate() {
            if let Some(m) = home {
                p.assign(TaskId(u32::try_from(i).expect("task index fits u32")), CoreId(*m));
            }
        }
        p
    }

    /// The state-identity gate: every core's live sums (and its committed
    /// utilization) must be bit-identical to a fresh [`CoreSums`] rebuild
    /// of its member list in arrival order. Departure refolds make this
    /// hold by construction; the audit rule and the `mcs-exp admit` JSON
    /// gate re-verify it after every churn run.
    #[must_use]
    pub fn state_identical_to_rebuild(&self) -> bool {
        for (m, members) in self.members.iter().enumerate() {
            let mut fresh = CoreSums::new(self.k);
            for id in members {
                fresh.add(&self.engine.row(*id));
            }
            let live = self.engine.core_sums(m);
            if live.task_count() != fresh.task_count() {
                return false;
            }
            for j in 1..=self.k {
                for kk in 1..=j {
                    let (j, kk) = (CritLevel::new(j), CritLevel::new(kk));
                    if live.util_jk(j, kk).to_bits() != fresh.util_jk(j, kk).to_bits() {
                        return false;
                    }
                }
            }
            let expected = if members.is_empty() {
                0.0
            } else {
                let Some(u) = fresh.evaluate_verdict().core_utilization else {
                    return false;
                };
                u
            };
            if self.engine.utils()[m].to_bits() != expected.to_bits() {
                return false;
            }
        }
        true
    }

    /// Flush the inner engine's telemetry tally to the global registry
    /// (call once per batch of lifecycle events, not per event).
    pub fn flush_telemetry(&self) {
        self.engine.flush_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_analysis::Theorem1;
    use mcs_gen::{generate_task_set, GenParams};
    use mcs_model::{McTask, TaskBuilder};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn mixed_set() -> TaskSet {
        TaskSet::new(
            2,
            vec![
                task(0, 1000, 2, &[339, 633]),
                task(1, 1000, 2, &[175, 326]),
                task(2, 500, 1, &[200]),
                task(3, 200, 2, &[30, 70]),
                task(4, 100, 1, &[25]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn policies_resolve_through_the_registry() {
        for name in ["CA-TPA", "FFD", "BFD", "WFD"] {
            let p = AdmissionPolicy::named(name).expect(name);
            assert_eq!(p.name(), name);
        }
        // Offline-only schemes have no online reading.
        for name in ["SA", "DBF-FFD", "FP-DM"] {
            assert!(AdmissionPolicy::named(name).is_none(), "{name}");
        }
        assert!(AdmissionPolicy::named("BOGUS").is_none());
        let all = AdmissionPolicy::all();
        assert!(all.len() >= 4);
    }

    #[test]
    fn admit_depart_churn_keeps_rebuild_identity() {
        let ts = mixed_set();
        let mut engine = AdmissionEngine::new(AdmissionPolicy::catpa());
        engine.reset(&ts, 2);
        for id in 0..5u32 {
            engine.admit(TaskId(id));
            assert!(engine.state_identical_to_rebuild(), "after admit {id}");
        }
        for id in [0u32, 3] {
            if engine.is_resident(TaskId(id)) {
                assert!(engine.depart(TaskId(id)));
                assert!(engine.state_identical_to_rebuild(), "after depart {id}");
            }
        }
        // Re-admission after departure works and stays exact.
        if !engine.is_resident(TaskId(0)) {
            engine.admit(TaskId(0));
            assert!(engine.state_identical_to_rebuild());
        }
        assert!(!engine.depart(TaskId(1000 % 5)) || engine.state_identical_to_rebuild());
    }

    #[test]
    fn admitted_partitions_certify_theorem1() {
        let params = GenParams::default().with_n_range(10, 16).with_cores(3).with_nsu(0.6);
        for seed in 0..10 {
            let ts = generate_task_set(&params, seed);
            let mut engine = AdmissionEngine::new(AdmissionPolicy::catpa());
            engine.reset(&ts, 3);
            for i in 0..ts.len() {
                engine.admit(TaskId(u32::try_from(i).unwrap()));
            }
            let p = engine.partition();
            for t in p.core_tables(&ts) {
                assert!(Theorem1::compute(&t).feasible(), "seed {seed}");
            }
            assert!(engine.state_identical_to_rebuild(), "seed {seed}");
        }
    }

    #[test]
    fn full_stream_admission_matches_catpa_batch_placement() {
        // With no departures and the CA-TPA policy, the admission stream
        // over the task set in contribution order is exactly the batch
        // partitioner's greedy pass — same cores, same commits.
        use crate::contribution::order_by_contribution;
        use crate::{Catpa, Partitioner};
        let params = GenParams::default().with_n_range(8, 14).with_cores(3).with_nsu(0.55);
        for seed in 0..10 {
            let ts = generate_task_set(&params, seed);
            let Ok(batch) = Catpa::default().partition(&ts, 3) else {
                continue;
            };
            let mut engine = AdmissionEngine::new(AdmissionPolicy::catpa()).with_repair_budget(0);
            engine.reset(&ts, 3);
            for id in order_by_contribution(&ts) {
                assert!(engine.admit(id).admitted(), "seed {seed} task {id}");
            }
            let online = engine.partition();
            for t in ts.tasks() {
                assert_eq!(online.core_of(t.id()), batch.core_of(t.id()), "seed {seed}");
            }
        }
    }

    #[test]
    fn rejects_leave_state_unchanged() {
        // A universe where one task can never fit next to the others on a
        // single core: admit everything, count rejects, verify identity.
        let ts = TaskSet::new(
            2,
            vec![task(0, 10, 2, &[6, 9]), task(1, 10, 2, &[6, 9]), task(2, 10, 1, &[9])],
        )
        .unwrap();
        let mut engine = AdmissionEngine::new(AdmissionPolicy::catpa());
        engine.reset(&ts, 1);
        assert!(engine.admit(TaskId(0)).admitted());
        let before = engine.stats();
        assert_eq!(engine.admit(TaskId(1)), Decision::Rejected);
        assert_eq!(engine.stats().rejects, before.rejects + 1);
        assert!(engine.state_identical_to_rebuild());
        assert_eq!(engine.resident_count(), 1);
    }

    #[test]
    fn repair_rescues_a_strandable_stream() {
        // Exact /64 utilizations, 3 cores, first-fit arrival order
        // 0.9375, 0.5, 0.25, 0.125, 0.6875 lands the stream on
        // {0.9375} | {0.5, 0.25, 0.125} | {0.6875}; the final 0.375
        // arrival fits nowhere directly, but relocating the 0.25 task to
        // core 2 vacates exactly enough room on core 1.
        let utils = [60u64, 32, 16, 8, 44, 24];
        let ts = TaskSet::new(
            1,
            utils
                .iter()
                .enumerate()
                .map(|(i, &c)| task(u32::try_from(i).unwrap(), 64, 1, &[c]))
                .collect(),
        )
        .unwrap();
        let mut without =
            AdmissionEngine::new(AdmissionPolicy::named("FFD").unwrap()).with_repair_budget(0);
        without.reset(&ts, 3);
        let mut with = AdmissionEngine::new(AdmissionPolicy::named("FFD").unwrap());
        with.reset(&ts, 3);
        let mut rescued = false;
        for i in 0..ts.len() {
            let id = TaskId(u32::try_from(i).unwrap());
            let a = without.admit(id);
            let b = with.admit(id);
            if !a.admitted() && b.admitted() {
                rescued = true;
            }
        }
        assert!(rescued, "repair never rescued the stranded item");
        assert_eq!(with.stats().repair_moves, 1);
        assert!(with.state_identical_to_rebuild());
        let p = with.partition();
        assert!(p.require_complete(&ts).is_ok());
        for t in p.core_tables(&ts) {
            assert!(Theorem1::compute(&t).feasible());
        }
    }

    #[test]
    fn classical_policies_differ_in_target_choice() {
        let ts = mixed_set();
        // First-fit packs core 0; worst-fit spreads to the emptiest core.
        let mut ff = AdmissionEngine::new(AdmissionPolicy::named("FFD").unwrap());
        ff.reset(&ts, 2);
        let mut wf = AdmissionEngine::new(AdmissionPolicy::named("WFD").unwrap());
        wf.reset(&ts, 2);
        assert_eq!(ff.admit(TaskId(4)), wf.admit(TaskId(4)));
        let Decision::Admitted { core: c_ff, .. } = ff.admit(TaskId(2)) else {
            panic!("first-fit must admit task 2");
        };
        let Decision::Admitted { core: c_wf, .. } = wf.admit(TaskId(2)) else {
            panic!("worst-fit must admit task 2");
        };
        assert_eq!(c_ff, CoreId(0), "first-fit stays on the first core");
        assert_eq!(c_wf, CoreId(1), "worst-fit moves to the empty core");
        assert!(ff.state_identical_to_rebuild());
        assert!(wf.state_identical_to_rebuild());
    }
}
