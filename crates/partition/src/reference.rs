//! Reference (pre-optimization) partitioner implementations.
//!
//! These are faithful transcriptions of the placement loops as they existed
//! before the [`crate::engine::ProbeEngine`] rewrite: every probe builds a
//! fresh `WithTask` view and runs the generic `Theorem1::compute`, every
//! commit recomputes the core utilization from the updated table, and the
//! imbalance factor rescans the utilization vector. They are deliberately
//! *slow* and exist for three reasons:
//!
//! * the differential property tests assert the optimized partitioners emit
//!   **identical partitions** (`tests/probe_engine_differential.rs`);
//! * `mcs-exp perf` measures them as the baseline the engine's speedup is
//!   reported against (`BENCH_partition.json`);
//! * `crates/bench/benches/probe_hot.rs` pits the probe kernels against
//!   each other directly.
//!
//! Do not "fix" or optimize these — their value is being the old code.

use mcs_analysis::Theorem1;
use mcs_model::{CoreId, McTask, Partition, TaskSet, UtilTable, WithTask};

use crate::binpack::{BinPacker, Placement};
use crate::catpa::{imbalance, probe, DEFAULT_ALPHA};
use crate::contribution::order_by_contribution;
use crate::fit::FitTest;
use crate::{PartitionFailure, Partitioner};

/// The original CA-TPA loop: per-probe `WithTask` + `Theorem1::compute`,
/// per-commit recomputation, per-placement imbalance rescan.
#[derive(Clone, Debug)]
pub struct ReferenceCatpa {
    /// Imbalance threshold α; `None` disables the fallback.
    pub alpha: Option<f64>,
}

impl Default for ReferenceCatpa {
    fn default() -> Self {
        Self { alpha: Some(DEFAULT_ALPHA) }
    }
}

impl Partitioner for ReferenceCatpa {
    fn name(&self) -> &'static str {
        "CA-TPA(ref)"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        let order = order_by_contribution(ts);
        let mut tables: Vec<UtilTable> =
            (0..cores).map(|_| UtilTable::new(ts.num_levels())).collect();
        let mut utils = vec![0.0f64; cores];
        let mut partition = Partition::empty(cores, ts.len());

        for (placed, &id) in order.iter().enumerate() {
            let task = ts.task(id);
            let rebalance = self.alpha.is_some_and(|alpha| imbalance(&utils) > alpha);
            let mut best: Option<(usize, f64)> = None;
            for (m, table) in tables.iter().enumerate() {
                let Some(new_u) = probe(table, task) else { continue };
                let key = if rebalance { utils[m] } else { new_u - utils[m] };
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((m, key));
                }
            }
            let Some((m, _)) = best else {
                return Err(PartitionFailure { task: id, placed });
            };
            tables[m].add(task);
            utils[m] = Theorem1::compute(&tables[m])
                .core_utilization()
                .expect("committed assignment was probed feasible");
            partition.assign(id, CoreId(u16::try_from(m).expect("core fits u16")));
        }
        Ok(partition)
    }
}

/// Original per-core state of the bin-packing family.
struct RefCoreState {
    table: UtilTable,
    load: f64,
}

fn ref_cores(k: u8, cores: usize) -> Vec<RefCoreState> {
    (0..cores).map(|_| RefCoreState { table: UtilTable::new(k), load: 0.0 }).collect()
}

/// The original `choose_core`: fit tests through fresh `WithTask` views.
fn ref_choose_core(
    placement: Placement,
    fit: FitTest,
    cores: &[RefCoreState],
    task: &McTask,
    cursor: &mut usize,
) -> Option<usize> {
    let fits = |m: usize| -> bool { fit.feasible(&WithTask::new(&cores[m].table, task)) };
    match placement {
        Placement::FirstFit => (0..cores.len()).find(|&m| fits(m)),
        Placement::BestFit => {
            let mut best: Option<(usize, f64)> = None;
            for (m, core) in cores.iter().enumerate() {
                if fits(m) {
                    let load = core.load;
                    if best.is_none_or(|(_, bl)| load > bl) {
                        best = Some((m, load));
                    }
                }
            }
            best.map(|(m, _)| m)
        }
        Placement::WorstFit => {
            let mut best: Option<(usize, f64)> = None;
            for (m, core) in cores.iter().enumerate() {
                if fits(m) {
                    let load = core.load;
                    if best.is_none_or(|(_, bl)| load < bl) {
                        best = Some((m, load));
                    }
                }
            }
            best.map(|(m, _)| m)
        }
        Placement::NextFit => {
            for step in 0..cores.len() {
                let m = (*cursor + step) % cores.len();
                if fits(m) {
                    *cursor = m;
                    return Some(m);
                }
            }
            None
        }
    }
}

/// The original decreasing bin-packer loop.
#[derive(Clone, Debug)]
pub struct ReferenceBinPacker {
    placement: Placement,
    fit: FitTest,
    name: &'static str,
}

impl ReferenceBinPacker {
    /// Reference twin of [`BinPacker::ffd`].
    #[must_use]
    pub fn ffd() -> Self {
        Self { placement: Placement::FirstFit, fit: FitTest::default(), name: "FFD(ref)" }
    }

    /// Reference twin of [`BinPacker::bfd`].
    #[must_use]
    pub fn bfd() -> Self {
        Self { placement: Placement::BestFit, fit: FitTest::default(), name: "BFD(ref)" }
    }

    /// Reference twin of [`BinPacker::wfd`].
    #[must_use]
    pub fn wfd() -> Self {
        Self { placement: Placement::WorstFit, fit: FitTest::default(), name: "WFD(ref)" }
    }

    /// Reference twin of [`BinPacker::nfd`].
    #[must_use]
    pub fn nfd() -> Self {
        Self { placement: Placement::NextFit, fit: FitTest::default(), name: "NFD(ref)" }
    }

    /// Override the fit test.
    #[must_use]
    pub fn with_fit(mut self, fit: FitTest) -> Self {
        self.fit = fit;
        self
    }
}

impl Partitioner for ReferenceBinPacker {
    fn name(&self) -> &'static str {
        self.name
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        let order = BinPacker::decreasing_max_util_order(ts);
        let mut state = ref_cores(ts.num_levels(), cores);
        let mut partition = Partition::empty(cores, ts.len());
        let mut cursor = 0usize;
        for (placed, task) in order.iter().enumerate() {
            match ref_choose_core(self.placement, self.fit, &state, task, &mut cursor) {
                Some(m) => {
                    state[m].table.add(task);
                    state[m].load += task.util_own();
                    partition.assign(task.id(), CoreId(u16::try_from(m).expect("core fits u16")));
                }
                None => return Err(PartitionFailure { task: task.id(), placed }),
            }
        }
        Ok(partition)
    }
}

/// The original Hybrid (WFD-then-FFD) loop.
#[derive(Clone, Debug)]
pub struct ReferenceHybrid {
    split: u8,
    fit: FitTest,
}

impl Default for ReferenceHybrid {
    fn default() -> Self {
        Self { split: 2, fit: FitTest::default() }
    }
}

impl ReferenceHybrid {
    /// Override the fit test.
    #[must_use]
    pub fn with_fit(mut self, fit: FitTest) -> Self {
        self.fit = fit;
        self
    }
}

impl Partitioner for ReferenceHybrid {
    fn name(&self) -> &'static str {
        "Hybrid(ref)"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        let order = BinPacker::decreasing_max_util_order(ts);
        let (high, low): (Vec<&McTask>, Vec<&McTask>) =
            order.into_iter().partition(|t| t.level().get() >= self.split);

        let mut state = ref_cores(ts.num_levels(), cores);
        let mut partition = Partition::empty(cores, ts.len());
        let mut placed = 0usize;
        let mut cursor = 0usize;

        for (phase_placement, tasks) in [(Placement::WorstFit, &high), (Placement::FirstFit, &low)]
        {
            for task in tasks.iter() {
                match ref_choose_core(phase_placement, self.fit, &state, task, &mut cursor) {
                    Some(m) => {
                        state[m].table.add(task);
                        state[m].load += task.util_own();
                        partition
                            .assign(task.id(), CoreId(u16::try_from(m).expect("core fits u16")));
                        placed += 1;
                    }
                    None => return Err(PartitionFailure { task: task.id(), placed }),
                }
            }
        }
        Ok(partition)
    }
}

/// The five paper schemes in their pre-optimization form, in plot order —
/// the baseline fleet of `mcs-exp perf`.
#[must_use]
pub fn reference_paper_schemes() -> Vec<Box<dyn Partitioner + Send + Sync>> {
    vec![
        Box::new(ReferenceBinPacker::wfd()),
        Box::new(ReferenceBinPacker::ffd()),
        Box::new(ReferenceBinPacker::bfd()),
        Box::new(ReferenceHybrid::default()),
        Box::new(ReferenceCatpa::default()),
    ]
}
