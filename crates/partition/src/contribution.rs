//! Utilization contribution (Eq. (12)–(13)) and the paper's ordering rules.
//!
//! The *utilization contribution* of task `τ_i` at level `k ≤ l_i` is its
//! share of the system-wide level-`k` utilization:
//!
//! ```text
//! C_i(k) = u_i(k) / U(k),      U(k) = Σ_{l_j ≥ k} u_j(k)
//! ```
//!
//! and `C_i = max_k C_i(k)` — the task's largest weight among its valid
//! levels. CA-TPA sorts tasks by decreasing `C_i`; ties go to the higher
//! criticality level, then to the smaller task index.

use std::cmp::Ordering;

use mcs_model::{CritLevel, McTask, TaskId, TaskSet};

/// Per-level and aggregate utilization contribution of one task.
#[derive(Clone, Debug, PartialEq)]
pub struct Contribution {
    /// `C_i(k)` for `k = 1..=l_i`.
    pub per_level: Vec<f64>,
    /// `C_i = max_k C_i(k)`.
    pub max: f64,
}

/// Compute the contribution of `task` given the system-wide totals
/// `U(1)..U(K)` (as returned by [`system_totals`]).
#[must_use]
pub fn contribution(task: &McTask, totals: &[f64]) -> Contribution {
    let mut per_level = Vec::with_capacity(usize::from(task.level().get()));
    let mut max = 0.0f64;
    for k in CritLevel::up_to(task.level().get()) {
        let total = totals[k.index()];
        // U(k) ≥ u_i(k) > 0 whenever the task itself reaches level k, so a
        // zero total can only pair with a zero utilization; define C = 0.
        let c = if total > 0.0 { task.util(k) / total } else { 0.0 };
        per_level.push(c);
        max = max.max(c);
    }
    Contribution { per_level, max }
}

/// `C_i = max_k C_i(k)` without materializing the per-level vector — the
/// allocation-free fold the placement hot path uses. Performs the same
/// operations in the same order as [`contribution`], so the value is
/// bit-identical to `contribution(task, totals).max`.
#[must_use]
pub fn contribution_max(task: &McTask, totals: &[f64]) -> f64 {
    let mut max = 0.0f64;
    for k in CritLevel::up_to(task.level().get()) {
        let total = totals[k.index()];
        let c = if total > 0.0 { task.util(k) / total } else { 0.0 };
        max = max.max(c);
    }
    max
}

/// System-wide level totals `U(1)..U(K)` (Eq. (2)) for a task set.
#[must_use]
pub fn system_totals(ts: &TaskSet) -> Vec<f64> {
    CritLevel::up_to(ts.num_levels()).map(|k| ts.total_util_at(k)).collect()
}

/// [`system_totals`] into a reused buffer.
pub fn system_totals_into(ts: &TaskSet, totals: &mut Vec<f64>) {
    totals.clear();
    totals.extend(CritLevel::up_to(ts.num_levels()).map(|k| ts.total_util_at(k)));
}

/// The paper's ordering-priority relation: returns `Ordering::Less` when
/// `a` should be *placed before* `b` (i.e. `a ≻ b`):
///
/// 1. larger contribution first;
/// 2. tie → higher criticality level first;
/// 3. tie → smaller task index first.
#[must_use]
pub fn ordering_priority((a, ca): (&McTask, f64), (b, cb): (&McTask, f64)) -> Ordering {
    cb.partial_cmp(&ca)
        .expect("contributions are finite")
        .then_with(|| b.level().cmp(&a.level()))
        .then_with(|| a.id().cmp(&b.id()))
}

/// Sort the tasks of `ts` by the paper's ordering priority, returning ids.
#[must_use]
pub fn order_by_contribution(ts: &TaskSet) -> Vec<TaskId> {
    let mut totals = Vec::new();
    let mut keyed = Vec::new();
    let mut out = Vec::new();
    order_by_contribution_into(ts, &mut totals, &mut keyed, &mut out);
    out
}

/// [`order_by_contribution`] over caller-provided buffers (the placement
/// scratch), so repeated runs allocate nothing once warm. Same keys, same
/// stable sort, same comparator — the resulting order is identical.
pub fn order_by_contribution_into(
    ts: &TaskSet,
    totals: &mut Vec<f64>,
    keyed: &mut Vec<(TaskId, f64, CritLevel)>,
    out: &mut Vec<TaskId>,
) {
    let _timer = mcs_obs::span(mcs_obs::Phase::ContributionSort);
    system_totals_into(ts, totals);
    keyed.clear();
    keyed.extend(ts.tasks().iter().map(|t| (t.id(), contribution_max(t, totals), t.level())));
    keyed.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("contributions are finite")
            .then_with(|| b.2.cmp(&a.2))
            .then_with(|| a.0.cmp(&b.0))
    });
    out.clear();
    out.extend(keyed.iter().map(|(id, _, _)| *id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{TaskBuilder, TaskSet};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    #[test]
    fn contribution_is_share_of_level_total() {
        // U(1) = 0.2 + 0.3 = 0.5; U(2) = 0.6.
        let ts = set(vec![task(0, 10, 1, &[2]), task(1, 10, 2, &[3, 6])], 2);
        let totals = system_totals(&ts);
        assert!((totals[0] - 0.5).abs() < 1e-12);
        assert!((totals[1] - 0.6).abs() < 1e-12);
        let c0 = contribution(&ts.tasks()[0], &totals);
        assert!((c0.max - 0.4).abs() < 1e-12); // 0.2/0.5
        let c1 = contribution(&ts.tasks()[1], &totals);
        // C_1(1) = 0.3/0.5 = 0.6; C_1(2) = 0.6/0.6 = 1.0 → max 1.0.
        assert!((c1.per_level[0] - 0.6).abs() < 1e-12);
        assert!((c1.max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_task_contributes_everything() {
        let ts = set(vec![task(0, 10, 2, &[1, 5])], 2);
        let totals = system_totals(&ts);
        let c = contribution(&ts.tasks()[0], &totals);
        assert!((c.per_level[0] - 1.0).abs() < 1e-12);
        assert!((c.per_level[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn order_is_by_decreasing_contribution() {
        // τ1 dominates level 2; τ0 small everywhere.
        let ts = set(vec![task(0, 100, 1, &[5]), task(1, 10, 2, &[3, 6])], 2);
        assert_eq!(order_by_contribution(&ts), vec![TaskId(1), TaskId(0)]);
    }

    #[test]
    fn tie_breaks_by_level_then_index() {
        // Construct equal contributions: two tasks alone at their levels.
        // τ0 (L1): C = u0(1)/U(1); τ1 (L2): C(2) = 1 … need care. Instead
        // use two same-level same-utilization tasks for the index tie, and
        // a mixed pair for the level tie.
        let a = task(0, 10, 1, &[2]);
        let b = task(1, 10, 1, &[2]);
        let ts = set(vec![a, b], 1);
        assert_eq!(order_by_contribution(&ts), vec![TaskId(0), TaskId(1)]);

        // Level tie: τ0 at L1 and τ1 at L2 each hold 50% of U(1), and τ1 is
        // alone at level 2 — C_1 = 1.0 beats C_0 = 0.5, so instead craft
        // C_1(2) = 0.5 too by adding τ2 sharing level 2 equally.
        let ts = set(
            vec![
                task(0, 10, 1, &[2]), // u(1)=0.2
                task(1, 10, 2, &[1, 3]),
                task(2, 10, 2, &[1, 3]),
            ],
            2,
        );
        // U(1) = 0.4, U(2) = 0.6. C_0 = 0.2/0.4 = 0.5;
        // C_1 = max(0.25, 0.5) = 0.5 = C_2. Priorities: equal contribution
        // 0.5 for all three → τ1, τ2 (higher level, index order) before τ0.
        assert_eq!(order_by_contribution(&ts), vec![TaskId(1), TaskId(2), TaskId(0)]);
    }

    #[test]
    fn buffer_reusing_paths_match_the_allocating_ones() {
        let ts =
            set(vec![task(0, 10, 1, &[2]), task(1, 10, 2, &[3, 6]), task(2, 7, 2, &[1, 2])], 2);
        let totals = system_totals(&ts);
        for t in ts.tasks() {
            assert_eq!(
                contribution_max(t, &totals).to_bits(),
                contribution(t, &totals).max.to_bits()
            );
        }
        // Dirty buffers must not leak into the result.
        let mut totals2 = vec![9.0; 5];
        let mut keyed = vec![(TaskId(9), 0.25, CritLevel::new(1))];
        let mut out = vec![TaskId(9)];
        order_by_contribution_into(&ts, &mut totals2, &mut keyed, &mut out);
        assert_eq!(out, order_by_contribution(&ts));
        assert_eq!(totals2, totals);
    }

    #[test]
    fn ordering_priority_relation_is_consistent() {
        let a = task(0, 10, 2, &[1, 5]);
        let b = task(1, 10, 1, &[5]);
        assert_eq!(ordering_priority((&a, 0.9), (&b, 0.3)), Ordering::Less);
        assert_eq!(ordering_priority((&b, 0.3), (&a, 0.9)), Ordering::Greater);
        // Equal contribution: higher level wins.
        assert_eq!(ordering_priority((&a, 0.5), (&b, 0.5)), Ordering::Less);
        // Same task compares equal to itself.
        assert_eq!(ordering_priority((&a, 0.5), (&a, 0.5)), Ordering::Equal);
    }
}
