//! Exact (branch-and-bound) partitioning for small instances.
//!
//! `MC_K(N, M)` is NP-hard (§III of the paper), so heuristics are the
//! practical answer — but for small `N` an exhaustive search with pruning is
//! tractable and gives the *ground truth* against which every heuristic's
//! optimality gap can be measured (`mcs-exp` ablation territory; used by the
//! `optimality_gap` tests and bench).
//!
//! Search: tasks in decreasing-contribution order (big items first prune
//! best), assign each to one of the cores; prune by
//!
//! * per-core Theorem-1 feasibility after every placement (feasibility is
//!   anti-monotone in the subset, so an infeasible prefix can never become
//!   feasible again);
//! * core symmetry: a task may open at most one *empty* core (empty cores
//!   are interchangeable).
//!
//! No utilization-style bound is applied: Theorem-1-feasible cores can hold
//! *more* than 1.0 of own-level utilization (the min-term fraction trick),
//! so any Eq.-(4)-flavoured headroom bound would wrongly prune feasible
//! branches — a bug the optimality-gap experiment caught in an earlier
//! version of this search.

use mcs_analysis::Theorem1;
use mcs_model::{CoreId, McTask, Partition, TaskSet, UtilTable, WithTask};

use crate::contribution::order_by_contribution;
use crate::{PartitionFailure, Partitioner};

/// Tri-state outcome of the exact search.
#[derive(Clone, Debug, PartialEq)]
pub enum ExactOutcome {
    /// A feasible partition exists; witness attached.
    Feasible(Partition),
    /// Exhaustively proven infeasible.
    Infeasible,
    /// Node budget exhausted before a decision.
    Unknown,
}

/// Exhaustive partitioner with pruning. Practical for `N ≲ 24, M ≲ 4`; the
/// node budget caps runaway instances (exceeding it yields
/// [`ExactOutcome::Unknown`]).
#[derive(Clone, Copy, Debug)]
pub struct ExactBnb {
    /// Maximum search nodes before giving up.
    pub node_budget: u64,
}

impl Default for ExactBnb {
    fn default() -> Self {
        Self { node_budget: 2_000_000 }
    }
}

struct SearchState<'a> {
    ts: &'a TaskSet,
    order: Vec<&'a McTask>,
    tables: Vec<UtilTable>,
    assignment: Vec<Option<CoreId>>,
    nodes: u64,
    budget: u64,
}

impl SearchState<'_> {
    fn search(&mut self, depth: usize) -> Option<bool> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return None; // budget exhausted
        }
        let Some(task) = self.order.get(depth).copied() else {
            return Some(true); // all placed
        };
        let mut opened_empty = false;
        for m in 0..self.tables.len() {
            let empty = self.tables[m].task_count() == 0;
            if empty {
                if opened_empty {
                    continue; // symmetric to a previously tried empty core
                }
                opened_empty = true;
            }
            let feasible = Theorem1::compute(&WithTask::new(&self.tables[m], task)).feasible();
            if !feasible {
                continue;
            }
            self.tables[m].add(task);
            self.assignment[task.id().index()] =
                Some(CoreId(u16::try_from(m).expect("core fits u16")));
            match self.search(depth + 1) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            self.tables[m].remove(task);
            self.assignment[task.id().index()] = None;
        }
        Some(false)
    }
}

impl ExactBnb {
    /// Decide feasibility exactly (within the node budget).
    #[must_use]
    pub fn decide(&self, ts: &TaskSet, cores: usize) -> ExactOutcome {
        assert!(cores >= 1, "need at least one core");
        let order: Vec<&McTask> = order_by_contribution(ts).iter().map(|id| ts.task(*id)).collect();
        let mut state = SearchState {
            ts,
            order,
            tables: (0..cores).map(|_| UtilTable::new(ts.num_levels())).collect(),
            assignment: vec![None; ts.len()],
            nodes: 0,
            budget: self.node_budget,
        };
        match state.search(0) {
            Some(true) => {
                let mut partition = Partition::empty(cores, ts.len());
                for (i, a) in state.assignment.iter().enumerate() {
                    let core = a.expect("complete witness");
                    partition.assign(state.ts.tasks()[i].id(), core);
                }
                ExactOutcome::Feasible(partition)
            }
            Some(false) => ExactOutcome::Infeasible,
            None => ExactOutcome::Unknown,
        }
    }

    /// Convenience: witness or failure (merges `Infeasible`/`Unknown`).
    pub fn solve(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        match self.decide(ts, cores) {
            ExactOutcome::Feasible(p) => Ok(p),
            _ => Err(PartitionFailure {
                task: ts.tasks().first().map_or(mcs_model::TaskId(0), mcs_model::McTask::id),
                placed: 0,
            }),
        }
    }
}

impl Partitioner for ExactBnb {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        let partition = self.solve(ts, cores)?;
        mcs_audit::debug_audit(ts, &partition, self.name(), true, None);
        Ok(partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::BinPacker;
    use crate::catpa::Catpa;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    #[test]
    fn finds_witness_for_trivial_sets() {
        let ts = set((0..4).map(|i| task(i, 10, 1, &[4])).collect(), 1);
        let p = ExactBnb::default().solve(&ts, 2).unwrap();
        assert!(p.require_complete(&ts).is_ok());
        for t in p.core_tables(&ts) {
            assert!(Theorem1::compute(&t).feasible());
        }
    }

    #[test]
    fn proves_infeasibility() {
        // Three 0.6 tasks, two cores: no assignment works.
        let ts = set((0..3).map(|i| task(i, 10, 1, &[6])).collect(), 1);
        assert!(ExactBnb::default().solve(&ts, 2).is_err());
    }

    #[test]
    fn beats_greedy_heuristics_on_adversarial_instance() {
        // Classic bin-packing trap on two unit cores: the only packing is
        // {0.50, 0.25, 0.25} | {0.34, 0.33, 0.33}. FFD greedily builds
        // {0.50, 0.34} and {0.33, 0.33, 0.25}, stranding the last 0.25
        // (0.84 + 0.25 and 0.91 + 0.25 both exceed 1); the exact search
        // recovers the unique packing.
        let utils = [50u64, 34, 33, 33, 25, 25];
        let ts = set(
            utils
                .iter()
                .enumerate()
                .map(|(i, &c)| task(u32::try_from(i).unwrap(), 100, 1, &[c]))
                .collect(),
            1,
        );
        assert!(BinPacker::ffd().partition(&ts, 2).is_err(), "trap must defeat FFD");
        let p = ExactBnb::default().solve(&ts, 2).expect("exact finds the packing");
        assert!(p.require_complete(&ts).is_ok());
        // (CA-TPA happens to escape this particular trap through float
        // tie-breaking of equal increments, so no assertion on it here —
        // the optimality-gap measurement lives in the integration tests.)
    }

    #[test]
    fn mixed_criticality_witnesses_are_feasible() {
        let ts = set(
            vec![
                task(0, 1000, 2, &[339, 633]),
                task(1, 1000, 2, &[175, 326]),
                task(2, 1000, 1, &[450]),
                task(3, 1000, 1, &[280]),
                task(4, 1000, 1, &[300]),
            ],
            2,
        );
        let p = ExactBnb::default().solve(&ts, 2).unwrap();
        for t in p.core_tables(&ts) {
            assert!(Theorem1::compute(&t).feasible());
        }
    }

    #[test]
    fn exact_accepts_everything_catpa_accepts() {
        // Spot-check with generated workloads: heuristic-feasible ⇒
        // exact-feasible (the exact search must never be *worse*).
        use mcs_gen::{generate_task_set, GenParams};
        let params = GenParams::default().with_n_range(8, 14).with_cores(3).with_nsu(0.55);
        for seed in 0..15 {
            let ts = generate_task_set(&params, seed);
            if Catpa::default().partition(&ts, 3).is_ok() {
                assert!(
                    ExactBnb::default().solve(&ts, 3).is_ok(),
                    "exact missed a feasible instance at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn tiny_budget_gives_up_gracefully() {
        let ts = set((0..12).map(|i| task(i, 10, 1, &[3])).collect(), 1);
        let constrained = ExactBnb { node_budget: 3 };
        // Either finds something within 3 nodes (unlikely) or errs; no panic.
        let _ = constrained.solve(&ts, 4);
    }

    #[test]
    fn empty_set_is_trivially_feasible() {
        let ts = set(vec![], 2);
        assert!(ExactBnb::default().solve(&ts, 2).unwrap().is_complete());
    }
}
