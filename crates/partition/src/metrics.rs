//! Partition quality metrics: `U_sys` (Eq. (10)), `U_avg` (Eq. (11)) and
//! the workload imbalance factor `Λ` (Eq. (16)), computed from the per-core
//! Theorem-1 core utilizations (Eq. (9)).

use mcs_analysis::{CoreSums, TaskRow, Theorem1};
use mcs_model::{Partition, TaskSet};

use crate::catpa::imbalance;

/// Quality report for a *complete, feasible* partition.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Core utilization `U^{Ψ_m}` per core.
    pub per_core: Vec<f64>,
    /// `U_sys = max_m U^{Ψ_m}`.
    pub u_sys: f64,
    /// `U_avg = Σ_m U^{Ψ_m} / M`.
    pub u_avg: f64,
    /// `Λ = (U_sys − min_m U^{Ψ_m}) / U_sys`.
    pub imbalance: f64,
}

impl PartitionQuality {
    /// Evaluate a partition. Returns `None` when the partition is incomplete
    /// or some core fails the Theorem-1 test (infinite core utilization) —
    /// the paper computes these metrics over schedulable task sets only.
    #[must_use]
    pub fn evaluate(ts: &TaskSet, partition: &Partition) -> Option<Self> {
        if partition.require_complete(ts).is_err() {
            return None;
        }
        let tables = partition.core_tables(ts);
        let mut per_core = Vec::with_capacity(tables.len());
        for table in &tables {
            per_core.push(Theorem1::compute(table).core_utilization()?);
        }
        let u_sys = per_core.iter().copied().fold(0.0f64, f64::max);
        let u_avg = per_core.iter().sum::<f64>() / per_core.len() as f64;
        let lambda = imbalance(&per_core);
        Some(Self { per_core, u_sys, u_avg, imbalance: lambda })
    }

    /// Allocation-free variant of [`Self::evaluate`] over a reusable
    /// [`QualityScratch`]: same core tables (built in task-id order, like
    /// `Partition::core_tables`), same Theorem-1 evaluation through the
    /// bit-identical probe kernel, same aggregation folds — so the summary
    /// matches `evaluate` bit for bit. This is the sweep hot path.
    #[must_use]
    pub fn summarize(
        ts: &TaskSet,
        partition: &Partition,
        scratch: &mut QualityScratch,
    ) -> Option<QualitySummary> {
        if partition.require_complete(ts).is_err() {
            return None;
        }
        let k = ts.num_levels();
        let cores = partition.num_cores();
        scratch.sums.truncate(cores);
        for s in &mut scratch.sums {
            s.reset(k);
        }
        while scratch.sums.len() < cores {
            scratch.sums.push(CoreSums::new(k));
        }
        // Tasks enter their core's sums in id order — the same order
        // `Partition::core_tables` adds them, so the sums are bit-identical.
        for task in ts.tasks() {
            let core = partition.core_of(task.id()).expect("checked complete");
            scratch.sums[core.index()].add(&TaskRow::new(task));
        }
        scratch.per_core.clear();
        for sums in &scratch.sums {
            scratch.per_core.push(sums.evaluate_verdict().core_utilization?);
        }
        let u_sys = scratch.per_core.iter().copied().fold(0.0f64, f64::max);
        let u_avg = scratch.per_core.iter().sum::<f64>() / scratch.per_core.len() as f64;
        let lambda = imbalance(&scratch.per_core);
        Some(QualitySummary { u_sys, u_avg, imbalance: lambda })
    }
}

/// The three scalar quality metrics, without the per-core vector — what the
/// sweep accumulators actually consume.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualitySummary {
    /// `U_sys = max_m U^{Ψ_m}`.
    pub u_sys: f64,
    /// `U_avg = Σ_m U^{Ψ_m} / M`.
    pub u_avg: f64,
    /// `Λ = (U_sys − min_m U^{Ψ_m}) / U_sys`.
    pub imbalance: f64,
}

/// Reusable buffers for [`PartitionQuality::summarize`] — one per sweep
/// worker, warm across that worker's whole trial chunk.
#[derive(Debug, Default)]
pub struct QualityScratch {
    sums: Vec<CoreSums>,
    per_core: Vec<f64>,
}

impl QualityScratch {
    /// Fresh scratch with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{CoreId, McTask, TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    #[test]
    fn metrics_for_balanced_partition() {
        let ts = set(vec![task(0, 10, 1, &[4]), task(1, 10, 1, &[4])], 1);
        let mut p = Partition::empty(2, 2);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        let q = PartitionQuality::evaluate(&ts, &p).unwrap();
        assert!((q.u_sys - 0.4).abs() < 1e-12);
        assert!((q.u_avg - 0.4).abs() < 1e-12);
        assert!(q.imbalance.abs() < 1e-12);
    }

    #[test]
    fn metrics_for_skewed_partition() {
        let ts = set(vec![task(0, 10, 1, &[8]), task(1, 10, 1, &[2])], 1);
        let mut p = Partition::empty(2, 2);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        let q = PartitionQuality::evaluate(&ts, &p).unwrap();
        assert!((q.u_sys - 0.8).abs() < 1e-12);
        assert!((q.u_avg - 0.5).abs() < 1e-12);
        assert!((q.imbalance - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summarize_matches_evaluate_bitwise() {
        let ts = set(
            vec![
                task(0, 1000, 2, &[339, 633]),
                task(1, 1000, 2, &[175, 326]),
                task(2, 500, 1, &[200]),
                task(3, 100, 1, &[25]),
            ],
            2,
        );
        let mut p = Partition::empty(3, 4);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        p.assign(TaskId(2), CoreId(1));
        p.assign(TaskId(3), CoreId(2));
        let q = PartitionQuality::evaluate(&ts, &p).unwrap();
        let mut scratch = QualityScratch::new();
        // Twice through the same scratch: the second run must not be
        // polluted by the first.
        for _ in 0..2 {
            let s = PartitionQuality::summarize(&ts, &p, &mut scratch).unwrap();
            assert_eq!(s.u_sys.to_bits(), q.u_sys.to_bits());
            assert_eq!(s.u_avg.to_bits(), q.u_avg.to_bits());
            assert_eq!(s.imbalance.to_bits(), q.imbalance.to_bits());
        }
    }

    #[test]
    fn summarize_rejects_what_evaluate_rejects() {
        let ts = set(vec![task(0, 10, 1, &[7]), task(1, 10, 1, &[7])], 1);
        let mut scratch = QualityScratch::new();
        let mut incomplete = Partition::empty(2, 2);
        incomplete.assign(TaskId(0), CoreId(0));
        assert_eq!(PartitionQuality::summarize(&ts, &incomplete, &mut scratch), None);
        let mut overloaded = Partition::empty(2, 2);
        overloaded.assign(TaskId(0), CoreId(0));
        overloaded.assign(TaskId(1), CoreId(0));
        assert_eq!(PartitionQuality::summarize(&ts, &overloaded, &mut scratch), None);
    }

    #[test]
    fn incomplete_partition_yields_none() {
        let ts = set(vec![task(0, 10, 1, &[1]), task(1, 10, 1, &[1])], 1);
        let mut p = Partition::empty(2, 2);
        p.assign(TaskId(0), CoreId(0));
        assert_eq!(PartitionQuality::evaluate(&ts, &p), None);
    }

    #[test]
    fn infeasible_core_yields_none() {
        let ts = set(vec![task(0, 10, 1, &[7]), task(1, 10, 1, &[7])], 1);
        let mut p = Partition::empty(2, 2);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(0)); // 1.4 on one core
        assert_eq!(PartitionQuality::evaluate(&ts, &p), None);
    }

    #[test]
    fn empty_cores_count_as_zero_utilization() {
        let ts = set(vec![task(0, 10, 1, &[5])], 1);
        let mut p = Partition::empty(4, 1);
        p.assign(TaskId(0), CoreId(2));
        let q = PartitionQuality::evaluate(&ts, &p).unwrap();
        assert_eq!(q.per_core.len(), 4);
        assert!((q.u_sys - 0.5).abs() < 1e-12);
        assert!((q.u_avg - 0.125).abs() < 1e-12);
        assert!((q.imbalance - 1.0).abs() < 1e-12);
    }
}
