//! Partitioned fixed-priority mixed-criticality allocation — the setting of
//! Kelly, Aydin & Zhao \[22\], which the paper's related work contrasts with
//! partitioned EDF-VD. Dual-criticality only (the AMC-rtb analysis it uses
//! is dual-criticality).
//!
//! Tasks are sorted by one of the orderings studied in \[22\] (decreasing
//! utilization, or decreasing criticality with utilization as tie-break)
//! and placed by first-fit or worst-fit; a core admits a task iff the
//! subset remains AMC-rtb schedulable under deadline-monotonic priorities
//! (optionally Audsley's assignment).

use mcs_analysis::amc::{amc_rtb_audsley, amc_rtb_dm, deadline_monotonic_order};
use mcs_model::{CoreId, McTask, Partition, TaskSet};

use crate::binpack::BinPacker;
use crate::{PartitionFailure, Partitioner};

/// Task ordering for the FP partitioner (\[22\] studies both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpOrdering {
    /// Decreasing maximum utilization.
    DecreasingUtilization,
    /// Decreasing criticality, then decreasing utilization.
    DecreasingCriticality,
}

/// Priority-assignment policy used by the admission test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpPriorities {
    /// Deadline-monotonic (rate-monotonic for implicit deadlines).
    DeadlineMonotonic,
    /// Audsley's optimal priority assignment driven by AMC-rtb.
    Audsley,
}

/// Partitioned FP + AMC-rtb.
#[derive(Clone, Copy, Debug)]
pub struct FpAmc {
    ordering: FpOrdering,
    priorities: FpPriorities,
    name: &'static str,
}

impl FpAmc {
    /// \[22\]'s best simple configuration: decreasing-utilization first-fit
    /// with DM priorities.
    #[must_use]
    pub fn dm_du() -> Self {
        Self {
            ordering: FpOrdering::DecreasingUtilization,
            priorities: FpPriorities::DeadlineMonotonic,
            name: "FP-DM",
        }
    }

    /// Criticality-first ordering with DM priorities.
    #[must_use]
    pub fn dm_dc() -> Self {
        Self {
            ordering: FpOrdering::DecreasingCriticality,
            priorities: FpPriorities::DeadlineMonotonic,
            name: "FP-DM-DC",
        }
    }

    /// Audsley priority assignment (strictly dominates DM in acceptance).
    #[must_use]
    pub fn audsley() -> Self {
        Self {
            ordering: FpOrdering::DecreasingUtilization,
            priorities: FpPriorities::Audsley,
            name: "FP-OPA",
        }
    }

    fn admits(&self, subset: &[&McTask]) -> bool {
        match self.priorities {
            FpPriorities::DeadlineMonotonic => amc_rtb_dm(subset),
            FpPriorities::Audsley => amc_rtb_audsley(subset).is_some(),
        }
    }
}

impl Partitioner for FpAmc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        assert!(
            ts.num_levels() <= 2,
            "FP-AMC partitioning is dual-criticality only (K = {})",
            ts.num_levels()
        );
        let mut order = BinPacker::decreasing_max_util_order(ts);
        if self.ordering == FpOrdering::DecreasingCriticality {
            // Stable sort: keeps the utilization order within each level.
            order.sort_by_key(|t| std::cmp::Reverse(t.level()));
        }
        let mut subsets: Vec<Vec<&McTask>> = vec![Vec::new(); cores];
        let mut partition = Partition::empty(cores, ts.len());
        for (placed, task) in order.iter().enumerate() {
            let mut chosen = None;
            for (m, subset) in subsets.iter().enumerate() {
                let mut candidate = subset.clone();
                candidate.push(task);
                // Analysis wants priority order; sort per candidate.
                let candidate = deadline_monotonic_order(&candidate);
                let ok = match self.priorities {
                    FpPriorities::DeadlineMonotonic => self.admits(&candidate),
                    FpPriorities::Audsley => {
                        // Audsley ignores the input order entirely.
                        self.admits(&candidate)
                    }
                };
                if ok {
                    chosen = Some(m);
                    break;
                }
            }
            match chosen {
                Some(m) => {
                    subsets[m].push(task);
                    partition.assign(task.id(), CoreId(u16::try_from(m).expect("fits")));
                }
                None => return Err(PartitionFailure { task: task.id(), placed }),
            }
        }
        // AMC-rtb admission is not Theorem 1: audit structure only.
        mcs_audit::debug_audit(ts, &partition, self.name(), false, None);
        Ok(partition)
    }

    fn certifies_theorem1(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>) -> TaskSet {
        TaskSet::new(2, tasks).unwrap()
    }

    #[test]
    fn packs_feasible_sets() {
        let ts = set(vec![
            task(0, 10, 1, &[2]),
            task(1, 40, 2, &[6, 12]),
            task(2, 20, 1, &[5]),
            task(3, 80, 2, &[10, 20]),
        ]);
        for scheme in [FpAmc::dm_du(), FpAmc::dm_dc(), FpAmc::audsley()] {
            let p = scheme.partition(&ts, 2).unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert!(p.is_complete());
        }
    }

    #[test]
    fn rejects_overload() {
        let ts = set((0..3).map(|i| task(i, 10, 2, &[7, 9])).collect());
        assert!(FpAmc::dm_du().partition(&ts, 2).is_err());
    }

    #[test]
    fn audsley_accepts_at_least_what_dm_accepts() {
        // OPA dominance on a handful of concrete sets.
        let sets = vec![
            set(vec![task(0, 10, 1, &[4]), task(1, 12, 2, &[2, 9])]),
            set(vec![task(0, 10, 1, &[2]), task(1, 40, 2, &[6, 12]), task(2, 20, 1, &[5])]),
        ];
        for ts in &sets {
            if FpAmc::dm_du().partition(ts, 1).is_ok() {
                assert!(FpAmc::audsley().partition(ts, 1).is_ok());
            }
        }
        // And the classic inversion case only OPA accepts on one core.
        let inversion = set(vec![task(0, 10, 1, &[4]), task(1, 12, 2, &[2, 9])]);
        assert!(FpAmc::dm_du().partition(&inversion, 1).is_err());
        assert!(FpAmc::audsley().partition(&inversion, 1).is_ok());
    }

    #[test]
    fn criticality_ordering_places_hi_first() {
        let ts = set(vec![
            task(0, 10, 1, &[9]), // biggest utilization, LO
            task(1, 100, 2, &[10, 20]),
        ]);
        // DC ordering puts τ1 (HI) first despite smaller utilization; both
        // must still end complete on 2 cores.
        let p = FpAmc::dm_dc().partition(&ts, 2).unwrap();
        assert!(p.is_complete());
    }

    #[test]
    #[should_panic(expected = "dual-criticality")]
    fn rejects_k3_systems() {
        let ts = TaskSet::new(3, vec![task(0, 10, 3, &[1, 2, 3])]).unwrap();
        let _ = FpAmc::dm_du().partition(&ts, 1);
    }
}
