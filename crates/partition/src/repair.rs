//! CA-TPA with first-order repair (local search) — an extension beyond the
//! paper: when the greedy pass strands a task, try to *relocate one already
//! placed task* to make room instead of failing outright. This recovers a
//! slice of the optimality gap the exact search exposes (see
//! `mcs-exp gap`) at a small polynomial cost.
//!
//! Repair step for an unplaceable task `τ`: for every core `m` and every
//! task `τ'` currently on `m`, check whether (a) `τ` fits on `m` once `τ'`
//! is removed and (b) `τ'` fits on some other core. The first such move is
//! applied. Each repair consumes one unit of the move budget; placement
//! then continues greedily.

use mcs_model::{CoreId, Partition, TaskId, TaskSet};

use crate::catpa::{select_core, DEFAULT_ALPHA};
use crate::contribution::order_by_contribution_into;
use crate::engine::{with_scratch, ProbeEngine};
use crate::{PartitionFailure, Partitioner};

/// CA-TPA + local-search repair.
#[derive(Clone, Copy, Debug)]
pub struct CatpaLs {
    /// Imbalance threshold (as in plain CA-TPA); `None` disables.
    pub alpha: Option<f64>,
    /// Maximum relocation moves per partitioning run.
    pub move_budget: usize,
}

impl Default for CatpaLs {
    fn default() -> Self {
        Self { alpha: Some(DEFAULT_ALPHA), move_budget: 64 }
    }
}

struct LsState<'a, 'e> {
    ts: &'a TaskSet,
    engine: &'e mut ProbeEngine,
    members: Vec<Vec<TaskId>>,
    partition: Partition,
}

impl LsState<'_, '_> {
    /// Commit with an already probed utilization (the greedy path).
    fn commit_with(&mut self, id: TaskId, m: usize, util: f64) {
        self.engine.commit(id, m, util);
        self.members[m].push(id);
        self.partition.assign(id, CoreId(u16::try_from(m).expect("core fits u16")));
    }

    /// Commit a placement known feasible but not yet valued (repair moves):
    /// probe once for the utilization, then commit.
    fn commit(&mut self, id: TaskId, m: usize) {
        let util = self
            .engine
            .probe_verdict(m, id)
            .core_utilization
            .expect("committed placements are probed feasible");
        self.commit_with(id, m, util);
    }

    fn evict(&mut self, id: TaskId, m: usize) {
        self.engine.evict(id, m);
        self.members[m].retain(|t| *t != id);
        self.partition.unassign(id);
    }

    /// Try one relocation that makes room for `stuck`. Returns true if a
    /// move was applied (the stuck task is then placed too).
    fn repair(&mut self, stuck: TaskId) -> bool {
        for m in 0..self.engine.num_cores() {
            // Candidates currently on m, smallest first: cheap moves first.
            let mut candidates = self.members[m].clone();
            candidates.sort_by(|a, b| {
                self.ts
                    .task(*a)
                    .util_own()
                    .partial_cmp(&self.ts.task(*b).util_own())
                    .expect("finite")
            });
            for cand in candidates {
                // (a) Would `stuck` fit on m without `cand`?
                if !self.engine.probe_swap_verdict(m, cand, stuck).feasible() {
                    continue;
                }
                // (b) Does `cand` fit elsewhere?
                let target = (0..self.engine.num_cores())
                    .find(|&m2| m2 != m && self.engine.probe_verdict(m2, cand).feasible());
                let Some(m2) = target else { continue };
                self.engine.note_repair_move();
                self.evict(cand, m);
                self.commit(cand, m2);
                self.commit(stuck, m);
                return true;
            }
        }
        false
    }
}

impl Partitioner for CatpaLs {
    fn name(&self) -> &'static str {
        "CA-TPA+LS"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        with_scratch(|scratch| {
            order_by_contribution_into(
                ts,
                &mut scratch.totals,
                &mut scratch.keyed,
                &mut scratch.order,
            );
            scratch.engine.reset(ts, cores);
            let mut state = LsState {
                ts,
                engine: &mut scratch.engine,
                members: vec![Vec::new(); cores],
                partition: Partition::empty(cores, ts.len()),
            };
            let mut moves_left = self.move_budget;
            for (placed, &id) in scratch.order.iter().enumerate() {
                if let Some((m, new_u)) = select_core(state.engine, id, self.alpha) {
                    state.commit_with(id, m, new_u);
                    continue;
                }
                if moves_left > 0 && state.repair(id) {
                    moves_left -= 1;
                    continue;
                }
                return Err(PartitionFailure { task: id, placed });
            }
            mcs_audit::debug_audit(ts, &state.partition, self.name(), true, self.alpha);
            Ok(state.partition)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::BinPacker;
    use crate::catpa::Catpa;
    use mcs_analysis::Theorem1;
    use mcs_model::{McTask, TaskBuilder};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    #[test]
    fn matches_catpa_when_no_repair_needed() {
        let ts = set((0..6).map(|i| task(i, 10, 1, &[3])).collect(), 1);
        let a = Catpa::default().partition(&ts, 2).unwrap();
        let b = CatpaLs::default().partition(&ts, 2).unwrap();
        for t in ts.tasks() {
            assert_eq!(a.core_of(t.id()), b.core_of(t.id()));
        }
    }

    #[test]
    fn repair_recovers_a_strandable_instance() {
        // The bin-packing trap from the exact tests, reordered so greedy
        // strands the final item but a single move fixes it.
        // Items: 0.50, 0.34, 0.33, 0.33, 0.25, 0.25 (unique packing
        // {0.50, 0.25, 0.25} | {0.34, 0.33, 0.33}); FFD fails.
        let utils = [50u64, 34, 33, 33, 25, 25];
        let ts = set(
            utils
                .iter()
                .enumerate()
                .map(|(i, &c)| task(u32::try_from(i).unwrap(), 100, 1, &[c]))
                .collect(),
            1,
        );
        assert!(BinPacker::ffd().partition(&ts, 2).is_err());
        let p = CatpaLs::default().partition(&ts, 2).expect("repair must succeed");
        assert!(p.require_complete(&ts).is_ok());
        for t in p.core_tables(&ts) {
            assert!(Theorem1::compute(&t).feasible());
        }
    }

    #[test]
    fn output_always_satisfies_the_contract() {
        use mcs_gen::{generate_task_set, GenParams};
        let params = GenParams::default().with_n_range(10, 18).with_cores(3).with_nsu(0.62);
        for seed in 0..25 {
            let ts = generate_task_set(&params, seed);
            if let Ok(p) = CatpaLs::default().partition(&ts, 3) {
                p.require_complete(&ts).unwrap();
                for t in p.core_tables(&ts) {
                    assert!(Theorem1::compute(&t).feasible(), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn ls_accepts_at_least_what_catpa_accepts() {
        // Regime calibrated so one-move repair actually fires (N ∈ [8, 14],
        // M = 4, NSU = 0.66 recovers a few instances per 400 seeds).
        use mcs_gen::{generate_task_set, GenParams};
        let params = GenParams::default().with_n_range(8, 14).with_cores(4).with_nsu(0.66);
        let mut recovered = 0;
        for seed in 0..400 {
            let ts = generate_task_set(&params, seed);
            let base = Catpa::default().partition(&ts, 4).is_ok();
            let ls = CatpaLs::default().partition(&ts, 4).is_ok();
            if base {
                assert!(ls, "LS lost a greedy-feasible instance at seed {seed}");
            }
            if ls && !base {
                recovered += 1;
            }
        }
        // The repair should rescue at least one instance in this range.
        assert!(recovered > 0, "repair never helped — suspicious");
    }

    #[test]
    fn zero_budget_degenerates_to_catpa() {
        let ls = CatpaLs { move_budget: 0, ..Default::default() };
        use mcs_gen::{generate_task_set, GenParams};
        let params = GenParams::default().with_n_range(10, 16).with_cores(3).with_nsu(0.6);
        for seed in 0..15 {
            let ts = generate_task_set(&params, seed);
            assert_eq!(
                Catpa::default().partition(&ts, 3).is_ok(),
                ls.partition(&ts, 3).is_ok(),
                "seed {seed}"
            );
        }
    }
}
