//! The [`SchemeRegistry`] — the single catalogue of every partitioning
//! scheme the experiment harness can run.
//!
//! Before this registry existed the repo built its scheme line-ups in four
//! separate places (`paper_schemes*()`, the dual-criticality extension
//! list, the optimality-gap list, and the audit roster), each hand-copying
//! constructors and per-scheme metadata. Adding a scheme meant editing all
//! of them. Now a scheme is **one registration**: a stable name, a
//! constructor closed over the [`SchemeFlags`] (strong/weak baseline fit,
//! α override, SA iteration budget), and the audit-relevant facts
//! (whether it sorts by utilization contribution, its default α, whether
//! its analysis is dual-criticality only).
//!
//! The canonical experiment line-ups ([`PAPER_SET`], [`DUAL_SET`],
//! [`GAP_SET`], [`SchemeRegistry::audit_roster`]) are name lists resolved
//! through the registry, so their construction is shared and their order —
//! which fixes table/figure row order in every recorded result — is
//! defined in exactly one place.

use crate::fit::FitTest;
use crate::{
    BinPacker, Catpa, CatpaLs, DbfFirstFit, FpAmc, Hybrid, Partitioner, SimAnneal, DEFAULT_ALPHA,
};

/// Which reading of the baselines' fit test to construct (see
/// [`crate::paper_schemes_weak`] for the experimental rationale).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BaselineFit {
    /// Eq. (4) then Theorem 1 — the paper-text reading.
    #[default]
    Strong,
    /// Eq. (4) only — the classical-literature reading.
    Weak,
}

/// Construction-time knobs shared by every registry build. The flags cover
/// every variation the experiments need; schemes ignore flags that do not
/// concern them (CA-TPA ignores the baseline fit, FFD ignores α).
#[derive(Clone, Copy, Debug, Default)]
pub struct SchemeFlags {
    /// Fit-test reading for the bin-packing family and Hybrid.
    pub baseline_fit: BaselineFit,
    /// Override of the CA-TPA-family imbalance threshold α (used by the
    /// Fig. 3 sweep); `None` keeps [`DEFAULT_ALPHA`].
    pub alpha: Option<f64>,
    /// Override of the simulated-annealing iteration budget (the
    /// optimality-gap experiment uses a smaller budget than the default).
    pub sa_iterations: Option<u32>,
}

impl SchemeFlags {
    /// Flags selecting the weak (Eq. (4)-only) baselines.
    #[must_use]
    pub fn weak() -> Self {
        Self { baseline_fit: BaselineFit::Weak, ..Self::default() }
    }

    /// Set the CA-TPA α override.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Set the SA iteration budget.
    #[must_use]
    pub fn with_sa_iterations(mut self, iterations: u32) -> Self {
        self.sa_iterations = Some(iterations);
        self
    }

    fn fit(&self) -> FitTest {
        match self.baseline_fit {
            BaselineFit::Strong => FitTest::default(),
            BaselineFit::Weak => FitTest::Simple,
        }
    }
}

/// One registered scheme: stable name, constructor, and the metadata the
/// audit sweep attaches to its partitions.
pub struct SchemeInfo {
    /// Stable display name — the same string the built partitioner's
    /// `Partitioner::name` returns (asserted by the registry tests).
    pub name: &'static str,
    /// Whether the scheme places tasks in utilization-contribution order
    /// (the audit's `contribution-order` rule re-derives and checks it).
    pub uses_contribution_order: bool,
    /// The α threshold the scheme runs with by default, if it uses one.
    pub default_alpha: Option<f64>,
    /// Whether the scheme's admission analysis is dual-criticality (K = 2)
    /// only (DBF, FP-AMC).
    pub dual_only: bool,
    ctor: fn(&SchemeFlags) -> Box<dyn Partitioner + Send + Sync>,
}

impl SchemeInfo {
    /// Construct the scheme with the given flags.
    #[must_use]
    pub fn build(&self, flags: &SchemeFlags) -> Box<dyn Partitioner + Send + Sync> {
        (self.ctor)(flags)
    }

    /// The α the scheme would run with under `flags` (audit context input).
    #[must_use]
    pub fn effective_alpha(&self, flags: &SchemeFlags) -> Option<f64> {
        self.default_alpha.map(|d| flags.alpha.unwrap_or(d))
    }
}

/// The paper's figure line-up, in plot order (fixes table column order).
pub const PAPER_SET: [&str; 5] = ["WFD", "FFD", "BFD", "Hybrid", "CA-TPA"];

/// The dual-criticality scheduler-family comparison line-up.
pub const DUAL_SET: [&str; 5] = ["CA-TPA", "FFD", "FP-DM", "FP-OPA", "DBF-FFD"];

/// The optimality-gap line-up: the paper set plus the repair and annealing
/// extensions (which show how much of the gap local search recovers).
pub const GAP_SET: [&str; 7] = ["WFD", "FFD", "BFD", "Hybrid", "CA-TPA", "CA-TPA+LS", "SA"];

/// The audit-sweep roster, in report order.
pub const AUDIT_SET: [&str; 10] =
    ["CA-TPA", "FFD", "BFD", "WFD", "NFD", "Hybrid", "CA-TPA+LS", "SA", "DBF-FFD", "FP-DM"];

/// Name → constructor/metadata catalogue of every scheme.
pub struct SchemeRegistry {
    entries: Vec<SchemeInfo>,
}

impl Default for SchemeRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl SchemeRegistry {
    /// The standard registry: every scheme the repo implements.
    #[must_use]
    pub fn standard() -> Self {
        let catpa = |flags: &SchemeFlags| -> Box<dyn Partitioner + Send + Sync> {
            match flags.alpha {
                Some(a) => Box::new(Catpa::with_alpha(a)),
                None => Box::new(Catpa::default()),
            }
        };
        let entries = vec![
            SchemeInfo {
                name: "CA-TPA",
                uses_contribution_order: true,
                default_alpha: Some(DEFAULT_ALPHA),
                dual_only: false,
                ctor: catpa,
            },
            SchemeInfo {
                name: "FFD",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: false,
                ctor: |f| Box::new(BinPacker::ffd().with_fit(f.fit())),
            },
            SchemeInfo {
                name: "BFD",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: false,
                ctor: |f| Box::new(BinPacker::bfd().with_fit(f.fit())),
            },
            SchemeInfo {
                name: "WFD",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: false,
                ctor: |f| Box::new(BinPacker::wfd().with_fit(f.fit())),
            },
            SchemeInfo {
                name: "NFD",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: false,
                ctor: |f| Box::new(BinPacker::nfd().with_fit(f.fit())),
            },
            SchemeInfo {
                name: "Hybrid",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: false,
                ctor: |f| Box::new(Hybrid::default().with_fit(f.fit())),
            },
            SchemeInfo {
                name: "CA-TPA+LS",
                uses_contribution_order: true,
                default_alpha: Some(DEFAULT_ALPHA),
                dual_only: false,
                ctor: |f| {
                    let mut ls = CatpaLs::default();
                    if let Some(a) = f.alpha {
                        ls.alpha = Some(a);
                    }
                    Box::new(ls)
                },
            },
            SchemeInfo {
                name: "SA",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: false,
                ctor: |f| {
                    let mut sa = SimAnneal::default();
                    if let Some(n) = f.sa_iterations {
                        sa.iterations = n;
                    }
                    Box::new(sa)
                },
            },
            SchemeInfo {
                name: "DBF-FFD",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: true,
                ctor: |_| Box::new(DbfFirstFit),
            },
            SchemeInfo {
                name: "FP-DM",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: true,
                ctor: |_| Box::new(FpAmc::dm_du()),
            },
            SchemeInfo {
                name: "FP-DM-DC",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: true,
                ctor: |_| Box::new(FpAmc::dm_dc()),
            },
            SchemeInfo {
                name: "FP-OPA",
                uses_contribution_order: false,
                default_alpha: None,
                dual_only: true,
                ctor: |_| Box::new(FpAmc::audsley()),
            },
        ];
        Self { entries }
    }

    /// All registered schemes, in registration order.
    #[must_use]
    pub fn entries(&self) -> &[SchemeInfo] {
        &self.entries
    }

    /// Look up a scheme by its stable name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&SchemeInfo> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Construct one scheme by name.
    ///
    /// # Panics
    /// Panics when `name` is not registered — experiment line-ups are
    /// static, so an unknown name is a programming error, not an input
    /// error.
    #[must_use]
    pub fn build(&self, name: &str, flags: &SchemeFlags) -> Box<dyn Partitioner + Send + Sync> {
        // lint: allow(panic-policy, documented contract — experiment line-ups are static, an unknown name is a programming error)
        self.get(name).unwrap_or_else(|| panic!("unregistered scheme: {name}")).build(flags)
    }

    /// Construct a named line-up in order.
    #[must_use]
    pub fn build_set(
        &self,
        names: &[&str],
        flags: &SchemeFlags,
    ) -> Vec<Box<dyn Partitioner + Send + Sync>> {
        names.iter().map(|n| self.build(n, flags)).collect()
    }

    /// The audit-sweep roster: `(info, scheme)` pairs in report order, so
    /// the audit can attach each scheme's metadata to its context.
    #[must_use]
    pub fn audit_roster(
        &self,
        flags: &SchemeFlags,
    ) -> Vec<(&SchemeInfo, Box<dyn Partitioner + Send + Sync>)> {
        AUDIT_SET
            .iter()
            .map(|n| {
                // lint: allow(panic-policy, documented contract — AUDIT_SET names are static and registered)
                let info = self.get(n).unwrap_or_else(|| panic!("unregistered scheme: {n}"));
                (info, info.build(flags))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_name_matches_its_partitioner() {
        let reg = SchemeRegistry::standard();
        let flags = SchemeFlags::default();
        for e in reg.entries() {
            assert_eq!(e.name, e.build(&flags).name(), "registry name drifted");
        }
    }

    #[test]
    fn names_are_unique() {
        let reg = SchemeRegistry::standard();
        let mut names: Vec<&str> = reg.entries().iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn named_sets_resolve() {
        let reg = SchemeRegistry::standard();
        let flags = SchemeFlags::default();
        assert_eq!(reg.build_set(&PAPER_SET, &flags).len(), 5);
        assert_eq!(reg.build_set(&DUAL_SET, &flags).len(), 5);
        assert_eq!(reg.build_set(&GAP_SET, &flags).len(), 7);
        assert_eq!(reg.audit_roster(&flags).len(), 10);
    }

    #[test]
    fn alpha_flag_reaches_catpa() {
        let reg = SchemeRegistry::standard();
        let info = reg.get("CA-TPA").unwrap();
        assert_eq!(info.effective_alpha(&SchemeFlags::default()), Some(DEFAULT_ALPHA));
        assert_eq!(info.effective_alpha(&SchemeFlags::default().with_alpha(0.3)), Some(0.3));
        // Schemes without α ignore the override.
        assert_eq!(
            reg.get("FFD").unwrap().effective_alpha(&SchemeFlags::default().with_alpha(0.3)),
            None
        );
    }

    #[test]
    fn dual_only_flags_match_analysis_scope() {
        let reg = SchemeRegistry::standard();
        for name in ["DBF-FFD", "FP-DM", "FP-DM-DC", "FP-OPA"] {
            assert!(reg.get(name).unwrap().dual_only, "{name} must be dual-only");
        }
        for name in ["CA-TPA", "FFD", "Hybrid", "SA"] {
            assert!(!reg.get(name).unwrap().dual_only, "{name} is not dual-only");
        }
    }

    #[test]
    #[should_panic(expected = "unregistered scheme")]
    fn unknown_name_panics() {
        let _ = SchemeRegistry::standard().build("BOGUS", &SchemeFlags::default());
    }
}
