//! **CA-TPA** — the Criticality-Aware Task Partitioning Algorithm
//! (Algorithm 1 of the paper).
//!
//! 1. Sort tasks by decreasing *utilization contribution* (Eq. (12)–(13)),
//!    ties broken by higher criticality, then smaller index.
//! 2. For each task, *probe* every core: compute the core utilization
//!    `U^{Ψ_m ∪ {τ_i}}` (Eq. (15)) the core would have with the task added,
//!    and the increment `Δ = U^{Ψ_m ∪ {τ_i}} − U^{Ψ_m}` (Eq. (14)).
//!    Allocate to the feasible core with the smallest increment (ties →
//!    smaller core index). If no core is feasible, fail.
//! 3. *Workload-imbalance fallback*: when the imbalance factor
//!    `Λ = (U_sys − min_m U^{Ψ_m}) / U_sys` (Eq. (16)) exceeds the
//!    threshold α, the task is instead assigned to the feasible core with
//!    the minimum current core utilization, re-balancing the partition.

use mcs_analysis::Theorem1;
use mcs_model::{CoreId, McTask, Partition, TaskSet, UtilTable, WithTask};

use crate::contribution::order_by_contribution_into;
use crate::engine::{with_scratch, ProbeEngine};
use crate::{PartitionFailure, Partitioner};

/// The paper's default imbalance threshold (§IV-A: "the default values for
/// the parameters are … α = 0.7").
pub const DEFAULT_ALPHA: f64 = 0.7;

/// The CA-TPA partitioner.
///
/// ```
/// use mcs_partition::{Catpa, Partitioner, PartitionQuality};
/// use mcs_model::{TaskBuilder, TaskId, TaskSet};
///
/// let task = |id, p, l: u8, w: &[u64]| {
///     TaskBuilder::new(TaskId(id)).period(p).level(l).wcet(w).build().unwrap()
/// };
/// // The paper's §III worked example (FFD fails on this set; CA-TPA fits).
/// let ts = TaskSet::new(2, vec![
///     task(0, 1000, 1, &[450]),
///     task(1, 1000, 2, &[175, 326]),
///     task(2, 1000, 1, &[280]),
///     task(3, 1000, 2, &[339, 633]),
///     task(4, 1000, 1, &[300]),
/// ]).unwrap();
///
/// let partition = Catpa::default().partition(&ts, 2).expect("schedulable");
/// let quality = PartitionQuality::evaluate(&ts, &partition).unwrap();
/// assert!(quality.u_sys <= 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Catpa {
    /// Imbalance threshold α; `None` disables the fallback entirely.
    alpha: Option<f64>,
}

impl Default for Catpa {
    fn default() -> Self {
        Self { alpha: Some(DEFAULT_ALPHA) }
    }
}

impl Catpa {
    /// CA-TPA with a custom imbalance threshold.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "α must be in [0, 1]");
        Self { alpha: Some(alpha) }
    }

    /// CA-TPA without the imbalance fallback (pure minimum-increment).
    #[must_use]
    pub fn without_imbalance_fallback() -> Self {
        Self { alpha: None }
    }

    /// The configured threshold, if enabled.
    #[must_use]
    pub fn alpha(&self) -> Option<f64> {
        self.alpha
    }
}

/// Reference probe: core utilization `U^{Ψ ∪ {τ}}` (Eq. (15)) of `table`
/// with `task` hypothetically added, through the generic `Theorem1` path.
/// `None` means the assignment would be infeasible.
///
/// The placement hot path no longer calls this — it runs the bit-identical
/// zero-allocation kernel via [`ProbeEngine`] — but the function remains the
/// specification the engine is tested against (and the probe the
/// [`crate::reference`] baselines use).
#[must_use]
pub fn probe(table: &UtilTable, task: &McTask) -> Option<f64> {
    Theorem1::compute(&WithTask::new(table, task)).core_utilization()
}

/// Current workload imbalance factor `Λ` (Eq. (16)) of a vector of core
/// utilizations. Zero when the system is idle.
#[must_use]
pub fn imbalance(core_utils: &[f64]) -> f64 {
    let u_sys = core_utils.iter().copied().fold(0.0f64, f64::max);
    if u_sys <= 0.0 {
        return 0.0;
    }
    let u_min = core_utils.iter().copied().fold(f64::INFINITY, f64::min);
    (u_sys - u_min) / u_sys
}

/// One placement step over the engine: batch-probe every core, pick the
/// target for `task`, returning `(core, probed utilization)` or `None`.
/// Shared with the repair scheme ([`crate::repair::CatpaLs`]), whose greedy
/// phase is exactly this selection.
pub(crate) fn select_core(
    engine: &mut ProbeEngine,
    id: mcs_model::TaskId,
    alpha: Option<f64>,
) -> Option<(usize, f64)> {
    engine.note_attempt();
    // Imbalance is O(1): the engine tracks the running min/max utilization.
    let rebalance = alpha.is_some_and(|alpha| engine.imbalance() > alpha);
    if rebalance {
        engine.note_alpha_fallback();
    }
    let _timer = rebalance.then(|| mcs_obs::span(mcs_obs::Phase::AlphaFallback));
    let (probes, utils) = engine.probe_all_cores(id);
    let mut best: Option<(usize, f64, f64)> = None;
    for (m, p) in probes.iter().enumerate() {
        let Some(new_u) = p.core_utilization else { continue };
        // Rebalancing key: current core utilization.
        // Normal key: utilization increment Δ_{Ψ_m ∪ {τ}}.
        let key = if rebalance { utils[m] } else { new_u - utils[m] };
        if best.is_none_or(|(_, bk, _)| key < bk) {
            best = Some((m, key, new_u));
        }
    }
    best.map(|(m, _, new_u)| (m, new_u))
}

impl Partitioner for Catpa {
    fn name(&self) -> &'static str {
        "CA-TPA"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        with_scratch(|scratch| {
            order_by_contribution_into(
                ts,
                &mut scratch.totals,
                &mut scratch.keyed,
                &mut scratch.order,
            );
            let engine = &mut scratch.engine;
            engine.reset(ts, cores);
            let mut partition = Partition::empty(cores, ts.len());

            for (placed, &id) in scratch.order.iter().enumerate() {
                let Some((m, new_u)) = select_core(engine, id, self.alpha) else {
                    return Err(PartitionFailure { task: id, placed });
                };
                // Commit reuses the probed value — no second Theorem-1 pass.
                engine.commit(id, m, new_u);
                partition.assign(id, CoreId(u16::try_from(m).expect("core fits u16")));
            }
            mcs_audit::debug_audit(ts, &partition, self.name(), true, self.alpha);
            Ok(partition)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    #[test]
    fn imbalance_factor_definition() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
        assert!((imbalance(&[0.8, 0.4]) - 0.5).abs() < 1e-12);
        assert!((imbalance(&[0.6, 0.6]) - 0.0).abs() < 1e-12);
        assert!((imbalance(&[0.9, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probe_matches_committed_utilization() {
        let a = task(0, 10, 2, &[2, 5]);
        let b = task(1, 10, 1, &[3]);
        let mut table = UtilTable::new(2);
        table.add(&a);
        let probed = probe(&table, &b).unwrap();
        table.add(&b);
        let committed = Theorem1::compute(&table).core_utilization().unwrap();
        assert!((probed - committed).abs() < 1e-12);
    }

    #[test]
    fn probe_reports_infeasible() {
        let a = task(0, 10, 2, &[6, 9]);
        let b = task(1, 10, 2, &[6, 9]);
        let mut table = UtilTable::new(2);
        table.add(&a);
        assert_eq!(probe(&table, &b), None);
    }

    #[test]
    fn partitions_trivial_sets() {
        let ts = set((0..4).map(|i| task(i, 10, 1, &[4])).collect(), 2);
        let p = Catpa::default().partition(&ts, 2).unwrap();
        assert!(p.is_complete());
        assert_eq!(p.load_counts(), vec![2, 2]);
    }

    #[test]
    fn min_increment_beats_naive_packing() {
        // The example class from §III: a HI task whose LO utilization is
        // tiny lands on the core where it costs least overall.
        let ts = set(
            vec![
                task(0, 1000, 2, &[339, 633]), // dominant HI
                task(1, 1000, 2, &[175, 326]), // second HI
                task(2, 1000, 1, &[500]),      // LO
            ],
            2,
        );
        let p = Catpa::without_imbalance_fallback().partition(&ts, 2).unwrap();
        assert!(p.is_complete());
        // τ0 and τ1 should not be colocated with each other if splitting is
        // cheaper in utilization increment — verify partition feasibility
        // and that quality metrics are computable.
        let q = crate::metrics::PartitionQuality::evaluate(&ts, &p).unwrap();
        assert!(q.u_sys <= 1.0 + 1e-9);
    }

    #[test]
    fn fails_cleanly_when_infeasible() {
        let ts = set((0..3).map(|i| task(i, 10, 2, &[6, 9])).collect(), 2);
        let err = Catpa::default().partition(&ts, 2).unwrap_err();
        assert!(err.placed < 3);
    }

    #[test]
    fn alpha_zero_forces_balancing() {
        // α = 0 ⇒ any imbalance triggers the min-utilization fallback ⇒
        // behaves like worst-fit on core utilization.
        let ts = set(
            vec![
                task(0, 10, 1, &[4]),
                task(1, 10, 1, &[3]),
                task(2, 10, 1, &[2]),
                task(3, 10, 1, &[1]),
            ],
            1,
        );
        let p = Catpa::with_alpha(0.0).partition(&ts, 2).unwrap();
        // τ0→P1; Λ=1>0 ⇒ τ1→P2 (min util); Λ=0.25>0 ⇒ τ2→P2? No: min util
        // core is P2 (0.3) vs P1 (0.4) ⇒ τ2→P2 (0.5); then τ3→P1.
        assert_eq!(p.core_of(TaskId(0)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(1)), Some(CoreId(1)));
        assert_eq!(p.core_of(TaskId(2)), Some(CoreId(1)));
        assert_eq!(p.core_of(TaskId(3)), Some(CoreId(0)));
    }

    #[test]
    #[should_panic(expected = "α must be in")]
    fn rejects_out_of_range_alpha() {
        let _ = Catpa::with_alpha(1.5);
    }

    #[test]
    fn empty_set_is_trivially_partitioned() {
        let ts = set(vec![], 3);
        assert!(Catpa::default().partition(&ts, 4).unwrap().is_complete());
    }
}
