//! DBF-based partitioning for dual-criticality systems — the
//! higher-precision, higher-cost alternative the paper attributes to Gu et
//! al. \[20\] ("a partitioning scheme that exploits the DBF-based
//! schedulability test (with a much higher complexity)").
//!
//! Tasks are ordered by decreasing maximum utilization and placed first-fit,
//! but a core accepts a task iff the demand-bound-function analysis
//! (`mcs_analysis::dbf`) admits the resulting subset. Only defined for
//! `K = 2`, like the analyses of \[20\] and Ekberg & Yi.

use mcs_model::{CoreId, McTask, Partition, TaskSet};

use mcs_analysis::dbf::dbf_schedulable;

use crate::binpack::BinPacker;
use crate::{PartitionFailure, Partitioner};

/// First-fit-decreasing with the DBF admission test (dual-criticality only).
#[derive(Clone, Copy, Debug, Default)]
pub struct DbfFirstFit;

impl Partitioner for DbfFirstFit {
    fn name(&self) -> &'static str {
        "DBF-FFD"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        assert!(
            ts.num_levels() <= 2,
            "DBF-FFD is a dual-criticality partitioner (K = {})",
            ts.num_levels()
        );
        let order = BinPacker::decreasing_max_util_order(ts);
        let mut subsets: Vec<Vec<&McTask>> = vec![Vec::new(); cores];
        let mut partition = Partition::empty(cores, ts.len());
        for (placed, task) in order.iter().enumerate() {
            let mut chosen = None;
            for (m, subset) in subsets.iter().enumerate() {
                let mut candidate: Vec<&McTask> = subset.clone();
                candidate.push(task);
                if dbf_schedulable(&candidate).schedulable() {
                    chosen = Some(m);
                    break;
                }
            }
            match chosen {
                Some(m) => {
                    subsets[m].push(task);
                    partition.assign(task.id(), CoreId(u16::try_from(m).expect("fits")));
                }
                None => return Err(PartitionFailure { task: task.id(), placed }),
            }
        }
        // DBF admission is not Theorem 1: audit structure only.
        mcs_audit::debug_audit(ts, &partition, self.name(), false, None);
        Ok(partition)
    }

    fn certifies_theorem1(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::BinPacker;
    use crate::fit::FitTest;
    use mcs_model::{TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>) -> TaskSet {
        TaskSet::new(2, tasks).unwrap()
    }

    #[test]
    fn packs_easy_sets() {
        let ts = set(vec![
            task(0, 100, 1, &[30]),
            task(1, 100, 2, &[10, 25]),
            task(2, 200, 1, &[60]),
            task(3, 200, 2, &[20, 50]),
        ]);
        let p = DbfFirstFit.partition(&ts, 2).unwrap();
        assert!(p.is_complete());
    }

    #[test]
    fn rejects_overload() {
        let ts = set((0..3).map(|i| task(i, 10, 1, &[8])).collect());
        assert!(DbfFirstFit.partition(&ts, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "dual-criticality")]
    fn rejects_k3_systems() {
        let ts = TaskSet::new(3, vec![task(0, 10, 3, &[1, 2, 3])]).unwrap();
        let _ = DbfFirstFit.partition(&ts, 1);
    }

    /// The concrete case from the analysis tests where the utilization test
    /// is pessimistic: DBF-FFD packs it on one core while Eq.-(4)-or-Thm.-1
    /// FFD needs the improved condition or fails.
    #[test]
    fn dbf_precision_can_beat_eq4() {
        let ts = set(vec![task(0, 10, 1, &[7]), task(1, 30, 2, &[6, 12])]);
        // Eq. (4): 0.7 + 0.4 = 1.1 fails; Eq. (7): 0.7 + 1/3 = 1.033 fails.
        assert!(BinPacker::ffd().with_fit(FitTest::SimpleThenImproved).partition(&ts, 1).is_err());
        // DBF admits it.
        assert!(DbfFirstFit.partition(&ts, 1).is_ok());
    }
}
