//! The Hybrid partitioning scheme of Rodriguez et al. \[28\]: allocate
//! high-criticality tasks with WFD (spreading the critical workload), then
//! low-criticality tasks with FFD (packing the rest tightly).
//!
//! The original scheme is dual-criticality. For `K > 2` we treat every task
//! with `l_i ≥ split` as high-criticality; the split defaults to 2, the
//! natural reading of "high-criticality tasks using WFD and low-criticality
//! tasks using FFD". The split is configurable for sensitivity studies.

use mcs_model::{CoreId, Partition, TaskSet};

use crate::binpack::{choose_core, BinPacker, Placement};
use crate::engine::with_scratch;
use crate::fit::FitTest;
use crate::{PartitionFailure, Partitioner};

/// The Hybrid WFD/FFD partitioner.
#[derive(Clone, Debug)]
pub struct Hybrid {
    /// Tasks with level ≥ `split` go through the WFD phase.
    split: u8,
    fit: FitTest,
}

impl Default for Hybrid {
    fn default() -> Self {
        Self { split: 2, fit: FitTest::default() }
    }
}

impl Hybrid {
    /// Hybrid with a custom high/low criticality split level.
    #[must_use]
    pub fn with_split(split: u8) -> Self {
        assert!(split >= 1, "split level must be >= 1");
        Self { split, ..Self::default() }
    }

    /// Override the fit test (used by ablations).
    #[must_use]
    pub fn with_fit(mut self, fit: FitTest) -> Self {
        self.fit = fit;
        self
    }
}

impl Partitioner for Hybrid {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn partition(&self, ts: &TaskSet, cores: usize) -> Result<Partition, PartitionFailure> {
        assert!(cores >= 1, "need at least one core");
        with_scratch(|scratch| {
            BinPacker::decreasing_max_util_order_into(ts, &mut scratch.order);
            let engine = &mut scratch.engine;
            engine.reset(ts, cores);
            let loads = &mut scratch.loads;
            loads.clear();
            loads.resize(cores, 0.0);
            let mut partition = Partition::empty(cores, ts.len());
            let mut placed = 0usize;
            let mut cursor = 0usize;

            // Two filtered passes over the same decreasing order: WFD for
            // the high-criticality tasks, then FFD for the rest — the same
            // sequences the old high/low `Vec::partition` produced, without
            // materializing them.
            for (phase_placement, want_high) in
                [(Placement::WorstFit, true), (Placement::FirstFit, false)]
            {
                for &id in scratch
                    .order
                    .iter()
                    .filter(|&&id| (ts.task(id).level().get() >= self.split) == want_high)
                {
                    match choose_core(
                        phase_placement,
                        self.fit,
                        engine,
                        loads,
                        &mut scratch.rank,
                        id,
                        &mut cursor,
                    ) {
                        Some(m) => {
                            loads[m] += engine.util_own(id);
                            engine.place_untracked(id, m);
                            partition.assign(id, CoreId(u16::try_from(m).expect("core fits u16")));
                            placed += 1;
                        }
                        None => return Err(PartitionFailure { task: id, placed }),
                    }
                }
            }
            mcs_audit::debug_audit(ts, &partition, self.name(), true, None);
            Ok(partition)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{McTask, TaskBuilder, TaskId};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn set(tasks: Vec<McTask>, k: u8) -> TaskSet {
        TaskSet::new(k, tasks).unwrap()
    }

    #[test]
    fn high_tasks_are_spread_low_tasks_packed() {
        // Two HI tasks of 0.4 each spread over two cores (WFD), then two LO
        // tasks of 0.2 pack first-fit onto core 0.
        let ts = set(
            vec![
                task(0, 10, 2, &[2, 4]),
                task(1, 10, 2, &[2, 4]),
                task(2, 10, 1, &[2]),
                task(3, 10, 1, &[2]),
            ],
            2,
        );
        let p = Hybrid::default().partition(&ts, 2).unwrap();
        assert_ne!(p.core_of(TaskId(0)), p.core_of(TaskId(1)), "HI tasks must spread");
        assert_eq!(p.core_of(TaskId(2)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(3)), Some(CoreId(0)));
    }

    #[test]
    fn split_level_controls_phases() {
        // With split = 3, level-2 tasks are "low" and go FFD.
        let ts = set(vec![task(0, 10, 2, &[2, 4]), task(1, 10, 2, &[2, 4])], 3);
        let p = Hybrid::with_split(3).partition(&ts, 2).unwrap();
        // FFD packs both on core 0 (0.8 ≤ 1).
        assert_eq!(p.core_of(TaskId(0)), Some(CoreId(0)));
        assert_eq!(p.core_of(TaskId(1)), Some(CoreId(0)));
    }

    #[test]
    fn reports_failure_on_overload() {
        let ts = set((0..3).map(|i| task(i, 10, 2, &[6, 6])).collect(), 2);
        assert!(Hybrid::default().partition(&ts, 2).is_err());
    }

    #[test]
    fn all_low_set_degenerates_to_ffd() {
        let ts = set((0..4).map(|i| task(i, 10, 1, &[5])).collect(), 2);
        let h = Hybrid::default().partition(&ts, 2).unwrap();
        let f = BinPacker::ffd().partition(&ts, 2).unwrap();
        for i in 0..4 {
            assert_eq!(h.core_of(TaskId(i)), f.core_of(TaskId(i)));
        }
    }

    #[test]
    fn all_high_set_degenerates_to_wfd() {
        let ts = set((0..4).map(|i| task(i, 10, 2, &[2, 5])).collect(), 2);
        let h = Hybrid::default().partition(&ts, 2).unwrap();
        let w = BinPacker::wfd().partition(&ts, 2).unwrap();
        for i in 0..4 {
            assert_eq!(h.core_of(TaskId(i)), w.core_of(TaskId(i)));
        }
    }
}
