//! The [`Invariant`] rule trait, the audit context, and the rule registry.

use mcs_model::{Partition, TaskId, TaskSet};

use crate::diagnostic::{AuditReport, Diagnostic};
use crate::rules;

/// The contribution ordering a scheme used (CA-TPA's Eq. (12)–(13) sort),
/// supplied by the caller so the `contribution-order` rule can re-derive
/// and cross-check it. `keys[i]` is the contribution `C` of `order[i]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ContributionOrdering {
    /// Task ids in placement order (must be a permutation of the task set).
    pub order: Vec<TaskId>,
    /// Contribution key of each ordered task (non-increasing).
    pub keys: Vec<f64>,
}

/// Deterministic re-run of the scheme under audit: given the task set and
/// core count, produce the scheme's partition (`None` = the scheme reports
/// the instance infeasible). Supplied by the caller as a closure so this
/// crate stays independent of `mcs-partition` (which depends on us).
pub type Repartition<'a> = dyn Fn(&TaskSet, usize) -> Option<Partition> + 'a;

/// Everything a rule may inspect: the task set, the partition under audit,
/// and scheme-supplied facts. Rules must treat the scheme-supplied parts as
/// claims to verify, never as ground truth.
#[derive(Clone, Copy)]
pub struct AuditContext<'a> {
    /// The task set that was partitioned.
    pub ts: &'a TaskSet,
    /// The partition under audit.
    pub partition: &'a Partition,
    /// Display name of the scheme that produced the partition.
    pub scheme: &'a str,
    /// Whether the scheme claims every core passes the EDF-VD Theorem-1
    /// test (true for CA-TPA and the bin-packing baselines; false for
    /// DBF- and AMC-based schemes, whose admission tests differ).
    pub claims_theorem1: bool,
    /// The contribution ordering the scheme used, if it used one.
    pub ordering: Option<&'a ContributionOrdering>,
    /// The imbalance threshold α the scheme used, if it used one.
    pub alpha: Option<f64>,
    /// Closure re-running the scheme on the same inputs, if the caller can
    /// provide one; enables the `harness-determinism` rule.
    pub repartition: Option<&'a Repartition<'a>>,
    /// A quiescent telemetry counter observation, if the caller captured
    /// one; enables the `telemetry-consistency` rule.
    pub telemetry: Option<&'a rules::telemetry::TelemetryCounters>,
}

impl<'a> AuditContext<'a> {
    /// Context with default claims: Theorem-1 feasibility claimed, no
    /// ordering, no α.
    #[must_use]
    pub fn new(ts: &'a TaskSet, partition: &'a Partition, scheme: &'a str) -> Self {
        Self {
            ts,
            partition,
            scheme,
            claims_theorem1: true,
            ordering: None,
            alpha: None,
            repartition: None,
            telemetry: None,
        }
    }

    /// Set whether the scheme claims per-core Theorem-1 feasibility.
    #[must_use]
    pub fn with_theorem1_claim(mut self, claims: bool) -> Self {
        self.claims_theorem1 = claims;
        self
    }

    /// Attach the contribution ordering the scheme used.
    #[must_use]
    pub fn with_ordering(mut self, ordering: &'a ContributionOrdering) -> Self {
        self.ordering = Some(ordering);
        self
    }

    /// Attach the α threshold the scheme used.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Attach a closure re-running the scheme on the same inputs, enabling
    /// the `harness-determinism` rule.
    #[must_use]
    pub fn with_repartition(mut self, repartition: &'a Repartition<'a>) -> Self {
        self.repartition = Some(repartition);
        self
    }

    /// Attach a quiescent telemetry counter observation, enabling the
    /// `telemetry-consistency` rule.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &'a rules::telemetry::TelemetryCounters) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// One audit rule: re-derives an invariant from scratch and reports
/// violations.
pub trait Invariant {
    /// Stable kebab-case identifier (used in reports and rule tallies).
    fn id(&self) -> &'static str;

    /// One-line description of what the rule checks.
    fn description(&self) -> &'static str;

    /// Run the rule, appending findings to `out`.
    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of rules.
#[derive(Default)]
pub struct Registry {
    rules: Vec<Box<dyn Invariant>>,
}

impl Registry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard rule set, in evaluation order.
    #[must_use]
    pub fn standard() -> Self {
        let mut r = Self::new();
        r.push(Box::new(rules::well_formed::PartitionWellFormed));
        r.push(Box::new(rules::theorem1::ClaimFeasible));
        r.push(Box::new(rules::theorem1::ExactAgreement));
        r.push(Box::new(rules::util_cache::UtilCacheConsistency));
        r.push(Box::new(rules::probe_cache::ProbeEngineConsistency));
        r.push(Box::new(rules::batch_kernel::BatchKernelConsistency));
        r.push(Box::new(rules::admission::AdmissionStateConsistency));
        r.push(Box::new(rules::ordering::ContributionOrderRule));
        r.push(Box::new(rules::ordering::AlphaDomain));
        r.push(Box::new(rules::harness::HarnessDeterminism));
        r.push(Box::new(rules::telemetry::TelemetryConsistency));
        r
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Box<dyn Invariant>) {
        self.rules.push(rule);
    }

    /// Iterate over the registered rules.
    pub fn rules(&self) -> impl Iterator<Item = &dyn Invariant> {
        self.rules.iter().map(Box::as_ref)
    }

    /// Run every rule over one context.
    #[must_use]
    pub fn run(&self, ctx: &AuditContext<'_>) -> AuditReport {
        let mut report = AuditReport::new(ctx.scheme);
        for rule in &self.rules {
            rule.check(ctx, &mut report.diagnostics);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Severity, Subject};
    use mcs_model::{CoreId, TaskBuilder};

    #[test]
    fn standard_registry_has_unique_ids() {
        let r = Registry::standard();
        let ids: Vec<&str> = r.rules().map(Invariant::id).collect();
        assert!(ids.len() >= 10, "expected at least ten standard rules, got {ids:?}");
        assert!(ids.contains(&"harness-determinism"), "missing harness rule in {ids:?}");
        assert!(ids.contains(&"batch-kernel-consistency"), "missing batch rule in {ids:?}");
        assert!(ids.contains(&"telemetry-consistency"), "missing telemetry rule in {ids:?}");
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate rule ids in {ids:?}");
        for (id, desc) in r.rules().map(|rule| (rule.id(), rule.description())) {
            assert!(!desc.is_empty(), "rule {id} has no description");
        }
    }

    #[test]
    fn custom_registry_runs_in_order() {
        struct Stamp(&'static str);
        impl Invariant for Stamp {
            fn id(&self) -> &'static str {
                self.0
            }
            fn description(&self) -> &'static str {
                "test stamp"
            }
            fn check(&self, _ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
                out.push(Diagnostic::info(self.0, Subject::System, "ran"));
            }
        }
        let t = TaskBuilder::new(TaskId(0)).period(10).level(1).wcet(&[1]).build().unwrap();
        let ts = TaskSet::new(1, vec![t]).unwrap();
        let mut p = Partition::empty(1, 1);
        p.assign(TaskId(0), CoreId(0));
        let mut reg = Registry::new();
        reg.push(Box::new(Stamp("first")));
        reg.push(Box::new(Stamp("second")));
        let report = reg.run(&AuditContext::new(&ts, &p, "X"));
        let ids: Vec<&str> = report.diagnostics.iter().map(|d| d.rule_id).collect();
        assert_eq!(ids, vec!["first", "second"]);
        assert_eq!(report.count(Severity::Info), 2);
    }
}
