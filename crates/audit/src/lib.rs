//! # mcs-audit
//!
//! Static-analysis audit pass over partitioning results.
//!
//! The partitioning heuristics and the schedulability analysis each carry
//! internal invariants that are easy to violate silently — a task dropped
//! from the assignment vector, a cached utilization sum drifting from the
//! tasks it summarizes, an `f64` verdict that the exact rational oracle
//! contradicts. This crate re-derives those invariants *from scratch* and
//! reports violations as structured [`Diagnostic`]s, so regressions surface
//! as audit findings instead of subtly wrong experiment numbers.
//!
//! * [`invariant`] — the [`Invariant`] rule trait, the [`AuditContext`]
//!   carrying everything a rule may inspect, and the [`Registry`] that runs
//!   a rule set;
//! * [`rules`] — the standard rules: partition well-formedness, per-core
//!   Theorem-1 re-verification, `f64`-vs-exact verdict agreement,
//!   [`mcs_model::UtilTable`] cache consistency, probe-engine-vs-scratch
//!   bit equality, batch-kernel lane agreement, admission-lifecycle state
//!   reconstruction (`admission-state-consistency`), contribution-order
//!   and α-domain checks, re-run placement determinism
//!   (`harness-determinism`), and telemetry counter algebra
//!   (`telemetry-consistency`);
//! * [`diagnostic`] — severities, subjects, and text/JSON rendering.
//!
//! The crate deliberately depends only on `mcs-model` and `mcs-analysis`:
//! scheme-specific facts (whether the scheme claims Theorem-1 feasibility,
//! the contribution ordering it used, its α threshold) are *inputs* to the
//! audit, supplied by the caller through the [`AuditContext`], and the rules
//! recompute every reference value independently of the code under audit.

#![forbid(unsafe_code)]

pub mod diagnostic;
pub mod invariant;
pub mod rules;

pub use diagnostic::{AuditReport, Diagnostic, Severity, Subject};
pub use invariant::{AuditContext, ContributionOrdering, Invariant, Registry, Repartition};
pub use rules::telemetry::{check_counters, TelemetryCounters, TELEMETRY_ID};
pub use rules::theorem1::EXACT_BAND;

use mcs_model::{Partition, TaskSet};

/// Run the standard rule set over one partitioning result.
#[must_use]
pub fn audit_partition(ctx: &AuditContext<'_>) -> AuditReport {
    Registry::standard().run(ctx)
}

/// Debug-build self-check for partitioner success paths.
///
/// In builds with `debug_assertions` this runs the standard audit and
/// panics on any `Error`-severity finding, so fuzzing and the test suite
/// catch invariant violations at the point of production. In release
/// builds it compiles to nothing.
///
/// # Panics
/// Panics (debug builds only) when the audit reports an error.
#[inline]
pub fn debug_audit(
    ts: &TaskSet,
    partition: &Partition,
    scheme: &str,
    claims_theorem1: bool,
    alpha: Option<f64>,
) {
    #[cfg(debug_assertions)]
    {
        let mut ctx = AuditContext::new(ts, partition, scheme).with_theorem1_claim(claims_theorem1);
        if let Some(a) = alpha {
            ctx = ctx.with_alpha(a);
        }
        let report = audit_partition(&ctx);
        assert!(
            report.is_clean(),
            "partitioner `{scheme}` produced a partition that fails its own audit:\n{}",
            report.render_text()
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (ts, partition, scheme, claims_theorem1, alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{CoreId, Partition, TaskBuilder, TaskId, TaskSet};

    fn ts2() -> TaskSet {
        let t = |id: u32, p: u64, l: u8, w: &[u64]| {
            TaskBuilder::new(TaskId(id)).period(p).level(l).wcet(w).build().unwrap()
        };
        TaskSet::new(2, vec![t(0, 100, 1, &[20]), t(1, 100, 2, &[10, 30])]).unwrap()
    }

    #[test]
    fn clean_partition_audits_clean() {
        let ts = ts2();
        let mut p = Partition::empty(2, 2);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        let report = audit_partition(&AuditContext::new(&ts, &p, "test"));
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.diagnostics.len(), 0);
    }

    #[test]
    fn incomplete_partition_is_flagged() {
        let ts = ts2();
        let mut p = Partition::empty(2, 2);
        p.assign(TaskId(0), CoreId(0));
        let report = audit_partition(&AuditContext::new(&ts, &p, "test"));
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule_id == "partition-well-formed" && d.severity == Severity::Error));
    }

    #[test]
    fn debug_audit_accepts_clean_partition() {
        let ts = ts2();
        let mut p = Partition::empty(2, 2);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        debug_audit(&ts, &p, "test", true, Some(0.7));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "fails its own audit")]
    fn debug_audit_panics_on_violation() {
        let ts = ts2();
        let p = Partition::empty(2, 2);
        debug_audit(&ts, &p, "test", true, None);
    }
}
