//! Rule `batch-kernel-consistency`: the struct-of-arrays batch probe
//! kernel ([`batch_probe_verdicts`] over a [`CoreBank`]) must agree *bit
//! for bit* with the scalar per-core probe path ([`CoreView::probe_verdict`]
//! and the [`CoreSums`] oracle) on live partitions. The placement loops
//! consume the batch verdicts directly, so any lane-wise divergence —
//! masking bugs, reassociated sums, padding leaking into real lanes —
//! silently changes experiment figures.

use mcs_analysis::{batch_probe_verdicts, CoreBank, CoreSums, TaskRow, TaskTable, Verdict};
use mcs_model::CoreId;

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};
use crate::rules::shapes_match;

/// Stable id of this rule.
pub const ID: &str = "batch-kernel-consistency";

/// Rebuilds the [`TaskTable`] + [`CoreBank`] pair from the partition under
/// audit (task-id order per core, the same order every other rebuild in
/// this crate uses), then cross-checks a stride-sampled subset of candidate
/// tasks: one batch sweep per candidate, every lane compared bitwise
/// against both the strided [`CoreView`] scalar verdict and an independent
/// contiguous [`CoreSums`] verdict for the same core.
///
/// [`CoreView`]: mcs_analysis::CoreView
pub struct BatchKernelConsistency;

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

/// Bitwise comparison of two fused verdicts on every observable the
/// placement loops consume.
fn verdicts_bit_equal(a: &Verdict, b: &Verdict) -> bool {
    a.feasible() == b.feasible()
        && a.own_level_total.to_bits() == b.own_level_total.to_bits()
        && opt_bits(a.core_utilization) == opt_bits(b.core_utilization)
        && opt_bits(a.core_utilization_slack) == opt_bits(b.core_utilization_slack)
}

fn report_mismatch(
    core: CoreId,
    label: &str,
    oracle: &str,
    batch: &Verdict,
    reference: &Verdict,
    out: &mut Vec<Diagnostic>,
) {
    out.push(Diagnostic::error(
        ID,
        Subject::Core(core),
        format!(
            "{label}: batch lane verdict (feasible={}, own={:.17e}, util={:?}, slack={:?}) \
             is not bit-equal to the {oracle} verdict (feasible={}, own={:.17e}, \
             util={:?}, slack={:?})",
            batch.feasible(),
            batch.own_level_total,
            batch.core_utilization,
            batch.core_utilization_slack,
            reference.feasible(),
            reference.own_level_total,
            reference.core_utilization,
            reference.core_utilization_slack,
        ),
    ));
}

impl Invariant for BatchKernelConsistency {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "SoA batch probe kernel is bit-identical to the scalar probe path per lane"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        if !shapes_match(ctx) {
            return;
        }
        let cores = ctx.partition.num_cores();
        if cores == 0 || ctx.ts.is_empty() {
            return;
        }

        // Rebuild the SoA state from the partition in task-id order and a
        // contiguous CoreSums oracle in the *same* order, so bit equality
        // is the correct expectation, not a tolerance.
        let mut tasks = TaskTable::new();
        tasks.reset(ctx.ts);
        let mut bank = CoreBank::new();
        bank.reset(ctx.ts.num_levels(), cores);
        let mut oracle: Vec<CoreSums> =
            (0..cores).map(|_| CoreSums::new(ctx.ts.num_levels())).collect();
        for (i, t) in ctx.ts.tasks().iter().enumerate() {
            if let Some(core) = ctx.partition.core_of(t.id()) {
                let row = tasks.row(i);
                bank.add(core.0 as usize, &row);
                oracle[core.0 as usize].add(&TaskRow::new(t));
            }
        }

        // Resident-state cross-check: every strided view must match its
        // contiguous oracle before any probing starts.
        for (m, sums) in oracle.iter().enumerate() {
            let core = CoreId(u16::try_from(m).expect("core index fits u16"));
            let view = bank.view(m);
            if view.task_count() != sums.task_count() {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "CoreBank counts {} tasks on the core, CoreSums counts {}",
                        view.task_count(),
                        sums.task_count()
                    ),
                ));
            }
            let strided = view.evaluate_verdict();
            let contiguous = sums.evaluate_verdict();
            if !verdicts_bit_equal(&strided, &contiguous) {
                report_mismatch(core, "resident set", "CoreSums", &strided, &contiguous, out);
            }
        }

        // Stride-sample candidate tasks (deterministically, spread over the
        // id space) and compare every lane of one batch sweep against both
        // scalar paths. Probing every task over every core costs O(N·M)
        // kernel evaluations per audited partition; the proptest
        // differential suite carries the exhaustive version of this claim.
        const MAX_BATCH_CANDIDATES: usize = 16;
        let n = ctx.ts.len();
        let stride = (n / MAX_BATCH_CANDIDATES).max(1);
        let mut batch: Vec<Verdict> = Vec::new();
        for i in (0..n).step_by(stride).take(MAX_BATCH_CANDIDATES) {
            let row = tasks.row(i);
            batch_probe_verdicts(&bank, &row, &mut batch);
            if batch.len() != cores {
                out.push(Diagnostic::error(
                    ID,
                    Subject::System,
                    format!(
                        "batch kernel emitted {} verdicts for {} cores probing task {}",
                        batch.len(),
                        cores,
                        ctx.ts.tasks()[i].id()
                    ),
                ));
                continue;
            }
            for (m, lane) in batch.iter().enumerate() {
                let core = CoreId(u16::try_from(m).expect("core index fits u16"));
                let label = format!("batch probe of task {}", ctx.ts.tasks()[i].id());
                let scalar = bank.view(m).probe_verdict(&row);
                if !verdicts_bit_equal(lane, &scalar) {
                    report_mismatch(core, &label, "CoreView", lane, &scalar, out);
                }
                let reference = oracle[m].probe_verdict(&TaskRow::new(&ctx.ts.tasks()[i]));
                if !verdicts_bit_equal(lane, &reference) {
                    report_mismatch(core, &label, "CoreSums", lane, &reference, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{Partition, TaskBuilder, TaskId, TaskSet};

    fn ts() -> TaskSet {
        let t = |id: u32, p: u64, l: u8, w: &[u64]| {
            TaskBuilder::new(TaskId(id)).period(p).level(l).wcet(w).build().unwrap()
        };
        TaskSet::new(
            3,
            vec![
                t(0, 100, 1, &[20]),
                t(1, 100, 2, &[10, 30]),
                t(2, 50, 3, &[5, 10, 20]),
                t(3, 200, 2, &[40, 80]),
                t(4, 400, 3, &[30, 60, 90]),
                t(5, 80, 1, &[8]),
                t(6, 160, 2, &[16, 24]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn consistent_partition_is_clean() {
        let ts = ts();
        let mut p = Partition::empty(3, 7);
        for i in 0..7u32 {
            p.assign(TaskId(i), CoreId((i % 3) as u16));
        }
        let mut out = Vec::new();
        BatchKernelConsistency.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn partial_partition_is_clean() {
        let ts = ts();
        let mut p = Partition::empty(2, 7);
        p.assign(TaskId(1), CoreId(0));
        p.assign(TaskId(4), CoreId(1));
        let mut out = Vec::new();
        BatchKernelConsistency.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn more_cores_than_lanes_is_clean() {
        // Cross the LANES boundary so masked tail lanes are exercised.
        let ts = ts();
        let mut p = Partition::empty(11, 7);
        for i in 0..7u32 {
            p.assign(TaskId(i), CoreId((i % 11) as u16));
        }
        let mut out = Vec::new();
        BatchKernelConsistency.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn mismatched_verdicts_are_reported() {
        let ts = ts();
        let empty = CoreSums::new(3);
        let mut loaded = CoreSums::new(3);
        for t in ts.tasks() {
            loaded.add(&TaskRow::new(t));
        }
        let a = empty.evaluate_verdict();
        let b = loaded.evaluate_verdict();
        assert!(!verdicts_bit_equal(&a, &b));
        let mut out = Vec::new();
        report_mismatch(CoreId(0), "test", "CoreSums", &a, &b, &mut out);
        assert_eq!(out.len(), 1);
    }
}
