//! Rule `utiltable-cache-consistency`: the incrementally maintained
//! [`UtilTable`] sums must match a from-scratch recomputation.

use mcs_model::{CoreId, CritLevel, LevelUtils, McTask, UtilTable};

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};
use crate::rules::shapes_match;

/// Absolute tolerance on cached-vs-recomputed sums. The cache accumulates
/// one `f64` addition per task; with at most a few hundred tasks per core
/// the drift stays far below this.
pub const CACHE_TOL: f64 = 1e-9;

/// Stable id of this rule.
pub const ID: &str = "utiltable-cache-consistency";

/// Cross-checks, per core: the incremental table against an independent
/// per-entry summation, the `task_count` against the membership iterator,
/// non-negativity of every entry, and — to exercise the `remove` path —
/// that draining and refilling the table returns it to the same state.
pub struct UtilCacheConsistency;

fn scratch_sum(members: &[&McTask], j: CritLevel, k: CritLevel) -> f64 {
    members.iter().filter(|t| t.level() == j).map(|t| t.util(k)).sum()
}

fn compare_tables(
    core: CoreId,
    label: &str,
    table: &UtilTable,
    members: &[&McTask],
    levels: u8,
    out: &mut Vec<Diagnostic>,
) {
    for j in CritLevel::up_to(levels) {
        for k in CritLevel::up_to(j.get()) {
            let cached = table.util_jk(j, k);
            if cached < 0.0 {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!("{label}: U_{j}({k}) = {cached} is negative"),
                ));
                continue;
            }
            let scratch = scratch_sum(members, j, k);
            if (cached - scratch).abs() > CACHE_TOL {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "{label}: cached U_{j}({k}) = {cached:.12} differs from \
                         recomputed {scratch:.12} by more than {CACHE_TOL:e}"
                    ),
                ));
            }
        }
    }
}

impl Invariant for UtilCacheConsistency {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "incremental UtilTable sums match from-scratch recomputation"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        if !shapes_match(ctx) {
            return;
        }
        let levels = ctx.ts.num_levels();
        let tables = ctx.partition.core_tables(ctx.ts);
        for (m, table) in tables.iter().enumerate() {
            let core = CoreId(u16::try_from(m).expect("core index fits u16"));
            let members: Vec<&McTask> =
                ctx.partition.tasks_on(core).map(|t| ctx.ts.task(t)).collect();

            if table.task_count() != members.len() {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "table counts {} tasks, membership iterator yields {}",
                        table.task_count(),
                        members.len()
                    ),
                ));
            }

            // Incremental (built by `add`) vs independent summation.
            compare_tables(core, "incremental", table, &members, levels, out);

            // Churn the remove/add paths: drain to empty, then refill.
            let mut churned = table.clone();
            for t in &members {
                churned.remove(t);
            }
            if churned.task_count() != 0 {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!("{} tasks left after removing every member", churned.task_count()),
                ));
            }
            compare_tables(core, "drained", &churned, &[], levels, out);
            for t in &members {
                churned.add(t);
            }
            compare_tables(core, "refilled", &churned, &members, levels, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use mcs_model::{Partition, TaskBuilder, TaskId, TaskSet};

    fn ts() -> TaskSet {
        let t = |id: u32, p: u64, l: u8, w: &[u64]| {
            TaskBuilder::new(TaskId(id)).period(p).level(l).wcet(w).build().unwrap()
        };
        TaskSet::new(
            3,
            vec![
                t(0, 100, 1, &[20]),
                t(1, 100, 2, &[10, 30]),
                t(2, 50, 3, &[5, 10, 20]),
                t(3, 200, 2, &[40, 80]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn consistent_partition_is_clean() {
        let ts = ts();
        let mut p = Partition::empty(2, 4);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        p.assign(TaskId(2), CoreId(0));
        p.assign(TaskId(3), CoreId(1));
        let mut out = Vec::new();
        UtilCacheConsistency.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn partial_partition_is_still_consistent() {
        // Unassigned tasks simply don't appear in any core table.
        let ts = ts();
        let mut p = Partition::empty(2, 4);
        p.assign(TaskId(0), CoreId(0));
        let mut out = Vec::new();
        UtilCacheConsistency.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn scratch_sum_matches_hand_computation() {
        let ts = ts();
        let members: Vec<&McTask> = ts.tasks().iter().collect();
        let l2 = CritLevel::new(2);
        // Level-2 tasks: τ1 (u(1)=0.1, u(2)=0.3) and τ3 (u(1)=0.2, u(2)=0.4).
        assert!((scratch_sum(&members, l2, CritLevel::LO) - 0.3).abs() < 1e-12);
        assert!((scratch_sum(&members, l2, l2) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn compare_tables_reports_drift() {
        let ts = ts();
        let members: Vec<&McTask> = ts.tasks().iter().collect();
        // A table summarizing *different* tasks than claimed.
        let wrong = UtilTable::from_tasks(3, [members[0]]);
        let mut out = Vec::new();
        compare_tables(CoreId(0), "test", &wrong, &members, 3, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|d| d.severity == Severity::Error));
    }
}
