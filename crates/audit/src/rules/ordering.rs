//! Rules `contribution-order` and `alpha-domain`: CA-TPA inputs.

use mcs_model::CritLevel;

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};

/// Tolerance when comparing a supplied contribution key against the
/// independently recomputed value (both are short `f64` quotient/max
/// chains, so they agree far tighter than this).
pub const KEY_TOL: f64 = 1e-9;

/// Slack allowed in the non-increasing check: keys that differ by less
/// than this are treated as ties.
pub const MONOTONE_TOL: f64 = 1e-12;

/// Stable id of the contribution-order rule.
pub const ORDER_ID: &str = "contribution-order";
/// Stable id of the α-domain rule.
pub const ALPHA_ID: &str = "alpha-domain";

/// The supplied placement order must be a permutation of the task set,
/// its keys non-increasing and in `[0, 1]`, and each key must equal the
/// independently recomputed contribution `C_i = max_k u_i(k) / U(k)`
/// (Eq. (12)–(13)).
pub struct ContributionOrderRule;

impl Invariant for ContributionOrderRule {
    fn id(&self) -> &'static str {
        ORDER_ID
    }

    fn description(&self) -> &'static str {
        "contribution ordering is a permutation with non-increasing, correct keys"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(ord) = ctx.ordering else { return };
        let n = ctx.ts.len();
        if ord.order.len() != n {
            out.push(Diagnostic::error(
                ORDER_ID,
                Subject::System,
                format!("ordering lists {} tasks, task set has {n}", ord.order.len()),
            ));
            return;
        }
        if ord.keys.len() != n {
            out.push(Diagnostic::error(
                ORDER_ID,
                Subject::System,
                format!("{} keys for {n} ordered tasks", ord.keys.len()),
            ));
            return;
        }

        // Permutation check.
        let mut seen = vec![false; n];
        for &id in &ord.order {
            if id.index() >= n {
                out.push(Diagnostic::error(
                    ORDER_ID,
                    Subject::Task(id),
                    format!("ordered task id out of range (task set has {n} tasks)"),
                ));
            } else if seen[id.index()] {
                out.push(Diagnostic::error(
                    ORDER_ID,
                    Subject::Task(id),
                    "task appears more than once in the ordering",
                ));
            } else {
                seen[id.index()] = true;
            }
        }

        // Key domain and monotonicity.
        for (pos, &key) in ord.keys.iter().enumerate() {
            if !key.is_finite() || !(-MONOTONE_TOL..=1.0 + KEY_TOL).contains(&key) {
                out.push(Diagnostic::error(
                    ORDER_ID,
                    Subject::Task(ord.order[pos]),
                    format!("contribution key {key} outside [0, 1]"),
                ));
            }
        }
        for w in ord.keys.windows(2) {
            if w[1] > w[0] + MONOTONE_TOL {
                out.push(Diagnostic::error(
                    ORDER_ID,
                    Subject::System,
                    format!("keys increase along the order: {} then {}", w[0], w[1]),
                ));
                break;
            }
        }

        // Independent recomputation of each key (Eq. (12)-(13)).
        let totals: Vec<f64> =
            CritLevel::up_to(ctx.ts.num_levels()).map(|k| ctx.ts.total_util_at(k)).collect();
        for (pos, &id) in ord.order.iter().enumerate() {
            if id.index() >= n {
                continue; // already reported above
            }
            let task = ctx.ts.task(id);
            let mut expected = 0.0f64;
            for k in CritLevel::up_to(task.level().get()) {
                let total = totals[k.index()];
                if total > 0.0 {
                    expected = expected.max(task.util(k) / total);
                }
            }
            let got = ord.keys[pos];
            if (got - expected).abs() > KEY_TOL {
                out.push(Diagnostic::error(
                    ORDER_ID,
                    Subject::Task(id),
                    format!(
                        "supplied contribution {got:.12} differs from recomputed \
                         {expected:.12}"
                    ),
                ));
            }
        }
    }
}

/// The imbalance threshold α must be a finite value in `[0, 1]` (the
/// paper's Λ comparison domain); α = 0 is flagged as degenerate because it
/// forces the rebalancing fallback on every placement.
pub struct AlphaDomain;

impl Invariant for AlphaDomain {
    fn id(&self) -> &'static str {
        ALPHA_ID
    }

    fn description(&self) -> &'static str {
        "imbalance threshold α lies in [0, 1]"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(alpha) = ctx.alpha else { return };
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
            out.push(Diagnostic::error(
                ALPHA_ID,
                Subject::System,
                format!("α = {alpha} is outside [0, 1]"),
            ));
        } else if alpha == 0.0 {
            out.push(Diagnostic::warning(
                ALPHA_ID,
                Subject::System,
                "α = 0 triggers the rebalancing fallback on every placement",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use crate::invariant::ContributionOrdering;
    use mcs_model::{Partition, TaskBuilder, TaskId, TaskSet};

    fn ts() -> TaskSet {
        let t = |id: u32, p: u64, l: u8, w: &[u64]| {
            TaskBuilder::new(TaskId(id)).period(p).level(l).wcet(w).build().unwrap()
        };
        // U(1) = 0.5, U(2) = 0.6: contributions 0.4 (τ0) and 1.0 (τ1).
        TaskSet::new(2, vec![t(0, 10, 1, &[2]), t(1, 10, 2, &[3, 6])]).unwrap()
    }

    fn run_order(ts: &TaskSet, ord: &ContributionOrdering) -> Vec<Diagnostic> {
        let p = Partition::empty(1, ts.len());
        let ctx = AuditContext::new(ts, &p, "t").with_ordering(ord);
        let mut out = Vec::new();
        ContributionOrderRule.check(&ctx, &mut out);
        out
    }

    #[test]
    fn correct_ordering_is_clean() {
        let ts = ts();
        let ord = ContributionOrdering { order: vec![TaskId(1), TaskId(0)], keys: vec![1.0, 0.4] };
        assert!(run_order(&ts, &ord).is_empty());
    }

    #[test]
    fn duplicate_and_missing_tasks_are_errors() {
        let ts = ts();
        let ord = ContributionOrdering { order: vec![TaskId(1), TaskId(1)], keys: vec![1.0, 1.0] };
        let out = run_order(&ts, &ord);
        assert!(out.iter().any(|d| d.message.contains("more than once")), "{out:?}");
    }

    #[test]
    fn increasing_keys_are_an_error() {
        let ts = ts();
        let ord = ContributionOrdering { order: vec![TaskId(0), TaskId(1)], keys: vec![0.4, 1.0] };
        let out = run_order(&ts, &ord);
        assert!(out.iter().any(|d| d.message.contains("increase")), "{out:?}");
    }

    #[test]
    fn wrong_key_value_is_an_error() {
        let ts = ts();
        let ord = ContributionOrdering {
            order: vec![TaskId(1), TaskId(0)],
            keys: vec![1.0, 0.25], // τ0's real contribution is 0.4
        };
        let out = run_order(&ts, &ord);
        assert!(out.iter().any(|d| d.message.contains("recomputed")), "{out:?}");
        assert!(out.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn alpha_domain_accepts_paper_default_and_rejects_garbage() {
        let ts = ts();
        let p = Partition::empty(1, 2);
        let mut out = Vec::new();
        AlphaDomain.check(&AuditContext::new(&ts, &p, "t").with_alpha(0.7), &mut out);
        assert!(out.is_empty());
        AlphaDomain.check(&AuditContext::new(&ts, &p, "t").with_alpha(1.5), &mut out);
        AlphaDomain.check(&AuditContext::new(&ts, &p, "t").with_alpha(f64::NAN), &mut out);
        assert_eq!(out.iter().filter(|d| d.severity == Severity::Error).count(), 2);
        out.clear();
        AlphaDomain.check(&AuditContext::new(&ts, &p, "t").with_alpha(0.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warning);
        // No α supplied: rule is silent.
        out.clear();
        AlphaDomain.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty());
    }
}
