//! Rule `probe-engine-consistency`: the incremental probe kernel
//! ([`CoreSums`] / `Probe` in `mcs-analysis`) must agree *bit for bit* with
//! the generic [`UtilTable`] + [`Theorem1`] path the partitioners used to
//! run on. The optimized placement loops reuse probed values at commit time,
//! so any divergence here silently changes experiment figures.

use mcs_analysis::{CoreSums, TaskRow, Theorem1, Verdict};
use mcs_model::{CoreId, CritLevel, LevelUtils, UtilTable, WithTask};

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};
use crate::rules::shapes_match;

/// Stable id of this rule.
pub const ID: &str = "probe-engine-consistency";

/// Cross-checks, per core: the [`CoreSums`] rebuilt from the membership
/// against the [`UtilTable`] from `core_tables` (exact, bitwise — both add
/// the same values in the same task-id order); the probe-kernel evaluation
/// (both the full `Probe` and the fused `Verdict` paths) against
/// `Theorem1::compute`; every hypothetical single-task probe against the
/// `WithTask` reference composite; and a full remove/re-add churn mirrored
/// on both structures.
pub struct ProbeEngineConsistency;

fn bits(v: f64) -> u64 {
    v.to_bits()
}

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

/// Compare the two incremental structures entry by entry, bitwise.
fn compare_entries(
    core: CoreId,
    label: &str,
    sums: &CoreSums,
    table: &UtilTable,
    levels: u8,
    out: &mut Vec<Diagnostic>,
) {
    for j in CritLevel::up_to(levels) {
        for k in CritLevel::up_to(j.get()) {
            let probe = sums.util_jk(j, k);
            let reference = table.util_jk(j, k);
            if bits(probe) != bits(reference) {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "{label}: CoreSums U_{j}({k}) = {probe:.17e} is not bit-equal \
                         to UtilTable's {reference:.17e}"
                    ),
                ));
            }
        }
    }
}

/// Compare the probe-kernel view of a subset against the Theorem-1 report
/// for the same subset on all four observables the partitioners consume.
fn compare_evaluation(
    core: CoreId,
    label: &str,
    probe: &mcs_analysis::Probe,
    reference: &Theorem1,
    own_reference: f64,
    out: &mut Vec<Diagnostic>,
) {
    if probe.feasible() != reference.feasible() {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: probe kernel says feasible = {}, Theorem 1 says {}",
                probe.feasible(),
                reference.feasible()
            ),
        ));
    }
    if opt_bits(probe.core_utilization()) != opt_bits(reference.core_utilization()) {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: probe core utilization {:?} is not bit-equal to \
                 Theorem 1's {:?}",
                probe.core_utilization(),
                reference.core_utilization()
            ),
        ));
    }
    if opt_bits(probe.core_utilization_slack()) != opt_bits(reference.core_utilization_slack()) {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: probe slack utilization {:?} is not bit-equal to \
                 Theorem 1's {:?}",
                probe.core_utilization_slack(),
                reference.core_utilization_slack()
            ),
        ));
    }
    if bits(probe.own_level_total()) != bits(own_reference) {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: probe own-level total {:.17e} is not bit-equal to \
                 the reference {own_reference:.17e}",
                probe.own_level_total()
            ),
        ));
    }
}

/// Compare the fused [`Verdict`] path — what the placement loops actually
/// consume — against the same Theorem-1 report, bitwise.
fn compare_verdict(
    core: CoreId,
    label: &str,
    verdict: &Verdict,
    reference: &Theorem1,
    own_reference: f64,
    out: &mut Vec<Diagnostic>,
) {
    if verdict.feasible() != reference.feasible() {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: fused verdict says feasible = {}, Theorem 1 says {}",
                verdict.feasible(),
                reference.feasible()
            ),
        ));
    }
    if opt_bits(verdict.core_utilization) != opt_bits(reference.core_utilization()) {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: fused verdict core utilization {:?} is not bit-equal \
                 to Theorem 1's {:?}",
                verdict.core_utilization,
                reference.core_utilization()
            ),
        ));
    }
    if opt_bits(verdict.core_utilization_slack) != opt_bits(reference.core_utilization_slack()) {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: fused verdict slack utilization {:?} is not bit-equal \
                 to Theorem 1's {:?}",
                verdict.core_utilization_slack,
                reference.core_utilization_slack()
            ),
        ));
    }
    if bits(verdict.own_level_total) != bits(own_reference) {
        out.push(Diagnostic::error(
            ID,
            Subject::Core(core),
            format!(
                "{label}: fused verdict own-level total {:.17e} is not bit-equal \
                 to the reference {own_reference:.17e}",
                verdict.own_level_total
            ),
        ));
    }
}

impl Invariant for ProbeEngineConsistency {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "incremental probe kernel is bit-identical to the UtilTable + Theorem-1 path"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        if !shapes_match(ctx) {
            return;
        }
        let levels = ctx.ts.num_levels();
        let tables = ctx.partition.core_tables(ctx.ts);
        for (m, table) in tables.iter().enumerate() {
            let core = CoreId(u16::try_from(m).expect("core index fits u16"));

            // Rebuild the probe-engine sums in task-id order — the same
            // order `core_tables` added the tasks, so bit equality is the
            // correct expectation, not a tolerance.
            let mut sums = CoreSums::new(levels);
            let members: Vec<&mcs_model::McTask> = ctx
                .ts
                .tasks()
                .iter()
                .filter(|t| ctx.partition.core_of(t.id()) == Some(core))
                .collect();
            for t in &members {
                sums.add(&TaskRow::new(t));
            }
            if sums.task_count() != table.task_count() {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "CoreSums counts {} tasks, UtilTable counts {}",
                        sums.task_count(),
                        table.task_count()
                    ),
                ));
            }
            compare_entries(core, "incremental", &sums, table, levels, out);
            let resident_reference = Theorem1::compute(table);
            compare_evaluation(
                core,
                "resident set",
                &sums.evaluate(),
                &resident_reference,
                table.own_level_total(),
                out,
            );
            compare_verdict(
                core,
                "resident set",
                &sums.evaluate_verdict(),
                &resident_reference,
                table.own_level_total(),
                out,
            );

            // Hypothetical placements the engine could be asked about:
            // probe(τ) must match the WithTask reference composite. The
            // cross-check is stride-sampled (deterministically, spread over
            // the id space) — probing every non-member of every core costs
            // O(N·M) Theorem-1 recomputations per audited partition and
            // dominates sweep time at N = 200; the proptest differential
            // suite (`tests/probe_engine_differential.rs`) carries the
            // exhaustive version of this claim.
            const MAX_PROBED_PER_CORE: usize = 24;
            let non_members: Vec<&mcs_model::McTask> = ctx
                .ts
                .tasks()
                .iter()
                .filter(|t| ctx.partition.core_of(t.id()) != Some(core))
                .collect();
            let stride = (non_members.len() / MAX_PROBED_PER_CORE).max(1);
            for &t in non_members.iter().step_by(stride).take(MAX_PROBED_PER_CORE) {
                let composite = WithTask::new(table, t);
                let probe_reference = Theorem1::compute(&composite);
                let row = TaskRow::new(t);
                compare_evaluation(
                    core,
                    &format!("probe of task {}", t.id()),
                    &sums.probe(&row),
                    &probe_reference,
                    composite.own_level_total(),
                    out,
                );
                compare_verdict(
                    core,
                    &format!("fused probe of task {}", t.id()),
                    &sums.probe_verdict(&row),
                    &probe_reference,
                    composite.own_level_total(),
                    out,
                );
            }

            // Churn the remove path on both structures in lockstep: the
            // clamped subtraction must leave them bit-identical at every
            // stage, including after re-adding everything.
            let mut churned_sums = sums.clone();
            let mut churned_table = table.clone();
            for t in &members {
                churned_sums.remove(&TaskRow::new(t));
                churned_table.remove(t);
            }
            if churned_sums.task_count() != 0 {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "{} tasks left in CoreSums after removing every member",
                        churned_sums.task_count()
                    ),
                ));
            }
            compare_entries(core, "drained", &churned_sums, &churned_table, levels, out);
            for t in &members {
                churned_sums.add(&TaskRow::new(t));
                churned_table.add(t);
            }
            compare_entries(core, "refilled", &churned_sums, &churned_table, levels, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{Partition, TaskBuilder, TaskId, TaskSet};

    fn ts() -> TaskSet {
        let t = |id: u32, p: u64, l: u8, w: &[u64]| {
            TaskBuilder::new(TaskId(id)).period(p).level(l).wcet(w).build().unwrap()
        };
        TaskSet::new(
            3,
            vec![
                t(0, 100, 1, &[20]),
                t(1, 100, 2, &[10, 30]),
                t(2, 50, 3, &[5, 10, 20]),
                t(3, 200, 2, &[40, 80]),
                t(4, 400, 3, &[30, 60, 90]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn consistent_partition_is_clean() {
        let ts = ts();
        let mut p = Partition::empty(2, 5);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        p.assign(TaskId(2), CoreId(0));
        p.assign(TaskId(3), CoreId(1));
        p.assign(TaskId(4), CoreId(0));
        let mut out = Vec::new();
        ProbeEngineConsistency.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn partial_partition_probes_unassigned_tasks_too() {
        let ts = ts();
        let mut p = Partition::empty(2, 5);
        p.assign(TaskId(1), CoreId(0));
        let mut out = Vec::new();
        ProbeEngineConsistency.check(&AuditContext::new(&ts, &p, "t"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn mismatched_evaluation_is_reported() {
        // Feed compare_evaluation a deliberately wrong reference: an empty
        // core's probe against a loaded table's Theorem 1.
        let ts = ts();
        let empty = CoreSums::new(3);
        let table = UtilTable::from_tasks(3, ts.tasks());
        let mut out = Vec::new();
        compare_evaluation(
            CoreId(0),
            "test",
            &empty.evaluate(),
            &Theorem1::compute(&table),
            table.own_level_total(),
            &mut out,
        );
        assert!(!out.is_empty());
    }
}
