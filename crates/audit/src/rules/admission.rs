//! Rule `admission-state-consistency`: the task-lifecycle state kept by an
//! online admission engine must be *exactly* reconstructible. The rule
//! replays a deterministic admit/depart churn sequence over the audited
//! partition using the same analysis-layer operations the
//! `mcs-partition` `AdmissionEngine` performs (per-core member lists,
//! departure by `clear_core` + refold of the survivors in arrival order,
//! re-admission by `add`), then demands that the churned live state —
//! both the SoA [`CoreBank`] planes and the scalar [`CoreSums`] running
//! sums — is bit-identical to a from-scratch rebuild of the surviving
//! set, and that every churned core still certifies Theorem 1 when the
//! scheme claims it (a subset of a feasible core stays feasible).
//!
//! The churn here is deterministic (a fixed stride over the resident
//! tasks) so audit output is reproducible; the randomized-interleaving
//! version of the same claim lives in the `probe_engine_differential`
//! proptest suite.

use mcs_analysis::{CoreBank, CoreSums, TaskRow, TaskTable, Verdict};
use mcs_model::CoreId;

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};
use crate::rules::shapes_match;

/// Stable id of this rule.
pub const ID: &str = "admission-state-consistency";

/// Every third resident task departs; every second departed task is then
/// re-admitted to its original core. Both strides are coprime to typical
/// core counts, so the churn touches most cores.
const DEPART_STRIDE: usize = 3;
const READMIT_STRIDE: usize = 2;

/// See the module docs.
pub struct AdmissionStateConsistency;

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

/// Bitwise comparison of two fused verdicts on every observable the
/// admission loops consume.
fn verdicts_bit_equal(a: &Verdict, b: &Verdict) -> bool {
    a.feasible() == b.feasible()
        && a.own_level_total.to_bits() == b.own_level_total.to_bits()
        && opt_bits(a.core_utilization) == opt_bits(b.core_utilization)
        && opt_bits(a.core_utilization_slack) == opt_bits(b.core_utilization_slack)
}

impl Invariant for AdmissionStateConsistency {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "churned admission lifecycle state is bit-identical to a fresh rebuild of the survivors"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        if !shapes_match(ctx) {
            return;
        }
        let cores = ctx.partition.num_cores();
        if cores == 0 || ctx.ts.is_empty() {
            return;
        }
        let k = ctx.ts.num_levels();

        // Initial residency: the audited partition, folded per core in
        // task-id order (the arrival order every rebuild in this crate
        // uses). `members[m]` lists task indices in arrival order — the
        // exact bookkeeping the admission engine keeps.
        let mut tasks = TaskTable::new();
        tasks.reset(ctx.ts);
        let mut bank = CoreBank::new();
        bank.reset(k, cores);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); cores];
        let mut assigned: Vec<(usize, usize)> = Vec::new();
        for (i, t) in ctx.ts.tasks().iter().enumerate() {
            if let Some(core) = ctx.partition.core_of(t.id()) {
                let m = core.0 as usize;
                bank.add(m, &tasks.row(i));
                members[m].push(i);
                assigned.push((i, m));
            }
        }
        if assigned.is_empty() {
            return;
        }

        // Churn: depart every DEPART_STRIDE-th resident (departure = drop
        // from the member list, clear the core, refold the survivors in
        // retained arrival order), then re-admit every READMIT_STRIDE-th
        // departed task to its original core (arrival order: end of list).
        let refold = |bank: &mut CoreBank, tasks: &TaskTable, m: usize, members: &[usize]| {
            bank.clear_core(m);
            for &i in members {
                bank.add(m, &tasks.row(i));
            }
        };
        let departed: Vec<(usize, usize)> =
            assigned.iter().copied().step_by(DEPART_STRIDE).collect();
        for &(i, m) in &departed {
            members[m].retain(|t| *t != i);
            refold(&mut bank, &tasks, m, &members[m]);
        }
        for &(i, m) in departed.iter().step_by(READMIT_STRIDE) {
            bank.add(m, &tasks.row(i));
            members[m].push(i);
        }

        // The gate: per core, the churned live state must be bit-identical
        // to a from-scratch rebuild of the surviving member list — SoA
        // planes (via the strided view's verdict) and independent scalar
        // running sums alike.
        for (m, survivors) in members.iter().enumerate() {
            let core = CoreId(u16::try_from(m).expect("core index fits u16"));
            let mut fresh = CoreSums::new(k);
            for &i in survivors {
                fresh.add(&TaskRow::new(&ctx.ts.tasks()[i]));
            }
            let view = bank.view(m);
            if view.task_count() != fresh.task_count() {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "after churn the live bank counts {} tasks, the surviving set has {}",
                        view.task_count(),
                        fresh.task_count()
                    ),
                ));
                continue;
            }
            let live = view.evaluate_verdict();
            let rebuilt = fresh.evaluate_verdict();
            if !verdicts_bit_equal(&live, &rebuilt) {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "churned live sums (feasible={}, util={:?}) are not bit-identical \
                         to the fresh rebuild of the survivors (feasible={}, util={:?})",
                        live.feasible(),
                        live.core_utilization,
                        rebuilt.feasible(),
                        rebuilt.core_utilization,
                    ),
                ));
            }
            // Re-certification: the final resident set of each core is a
            // subset of the audited core's tasks, so a scheme that claims
            // Theorem 1 must still pass it after the churn.
            if ctx.claims_theorem1 && !survivors.is_empty() && !rebuilt.feasible() {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Core(core),
                    format!(
                        "a subset of the audited core fails Theorem 1 after churn \
                         ({} of {} tasks remain)",
                        survivors.len(),
                        ctx.partition.tasks_on(core).count(),
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{Partition, TaskBuilder, TaskId, TaskSet};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> mcs_model::McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    /// The §III worked example split the way CA-TPA does (feasible).
    fn worked_example() -> (TaskSet, Partition) {
        let ts = TaskSet::new(
            2,
            vec![
                task(0, 1000, 1, &[450]),
                task(1, 1000, 2, &[175, 326]),
                task(2, 1000, 1, &[280]),
                task(3, 1000, 2, &[339, 633]),
                task(4, 1000, 1, &[300]),
            ],
        )
        .unwrap();
        let mut p = Partition::empty(2, 5);
        p.assign(TaskId(3), CoreId(0));
        p.assign(TaskId(4), CoreId(0));
        p.assign(TaskId(0), CoreId(1));
        p.assign(TaskId(1), CoreId(1));
        p.assign(TaskId(2), CoreId(1));
        (ts, p)
    }

    #[test]
    fn feasible_partition_survives_the_churn_bit_exactly() {
        let (ts, p) = worked_example();
        let ctx = AuditContext::new(&ts, &p, "CA-TPA");
        let mut out = Vec::new();
        AdmissionStateConsistency.check(&ctx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn infeasible_claiming_partition_fails_recertification() {
        let (ts, mut p) = worked_example();
        // Pile everything on core 0: infeasible, and still infeasible
        // after the churn departs tasks 0 and 3 (indices 0, 3).
        for i in 0..5 {
            p.assign(TaskId(i), CoreId(0));
        }
        let ctx = AuditContext::new(&ts, &p, "X");
        let mut out = Vec::new();
        AdmissionStateConsistency.check(&ctx, &mut out);
        assert!(
            out.iter()
                .any(|d| d.subject == Subject::Core(CoreId(0)) && d.message.contains("Theorem 1")),
            "{out:?}"
        );
    }

    #[test]
    fn non_claiming_schemes_skip_recertification_but_keep_the_state_gate() {
        let (ts, mut p) = worked_example();
        for i in 0..5 {
            p.assign(TaskId(i), CoreId(0));
        }
        let ctx = AuditContext::new(&ts, &p, "DBF-FFD").with_theorem1_claim(false);
        let mut out = Vec::new();
        AdmissionStateConsistency.check(&ctx, &mut out);
        assert!(out.is_empty(), "state gate must still hold without the claim: {out:?}");
    }
}
