//! The standard audit rules.
//!
//! Each rule re-derives its reference values from scratch (independent of
//! the incremental code paths used during partitioning) so that a bug in
//! the production path cannot hide itself from the audit.

pub mod admission;
pub mod batch_kernel;
pub mod harness;
pub mod ordering;
pub mod probe_cache;
pub mod telemetry;
pub mod theorem1;
pub mod util_cache;
pub mod well_formed;

use crate::invariant::AuditContext;

/// Shared guard: rules that walk the partition need the assignment vector
/// to match the task set; the shape mismatch itself is reported by
/// `partition-well-formed`, so other rules silently skip.
pub(crate) fn shapes_match(ctx: &AuditContext<'_>) -> bool {
    ctx.partition.num_tasks() == ctx.ts.len()
}
