//! `telemetry-consistency` — counter algebra over a quiescent telemetry
//! snapshot.
//!
//! The `mcs-obs` instrumentation discipline implies exact arithmetic
//! relations between counters: every probe that is issued is decided
//! exactly one way (`issued == rejected + feasible`), every commit or
//! untracked placement was preceded by a counted feasible probe, the
//! α-fallback can fire at most once per placement attempt, and the
//! per-worker trial counts must sum to the trials the harness computed.
//! A broken relation means an instrumentation point was dropped, doubled,
//! or moved — exactly the silent drift this audit layer exists to catch.
//!
//! The rule is claim-gated like the ordering rules: it only runs when the
//! caller attaches a [`TelemetryCounters`] observation to the context
//! (counters must be read at a quiescent point — all workers joined —
//! which only the caller can know). `mcs-exp audit` snapshots the global
//! registry around its sweep and feeds the delta in; this crate itself
//! stays free of the `mcs-obs` dependency, receiving plain integers.

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};

/// Rule id of [`TelemetryConsistency`].
pub const TELEMETRY_ID: &str = "telemetry-consistency";

/// A quiescent reading of the telemetry counters relevant to the algebra,
/// supplied by the caller (typically a before/after snapshot delta over
/// one audited sweep).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// Probes issued by the probe engine.
    pub probes_issued: u64,
    /// Probes decided infeasible.
    pub probes_rejected: u64,
    /// Probes decided feasible.
    pub probes_feasible: u64,
    /// Tracked commits.
    pub commits: u64,
    /// Untracked (bin-packing) placements.
    pub placements_untracked: u64,
    /// Placement attempts (one per task a scheme tried to place).
    pub placement_attempts: u64,
    /// α-threshold fallback activations.
    pub alpha_fallbacks: u64,
    /// Sum of per-worker trial counts.
    pub worker_trials_sum: u64,
    /// Trials the harness computed this window.
    pub trials_computed: u64,
    /// Trials reloaded from checkpoints this window.
    pub trials_resumed: u64,
    /// Trials the window was expected to produce (computed + resumed),
    /// when the caller knows it; `None` skips that check.
    pub expected_trials: Option<u64>,
}

/// Check the counter algebra directly (the rule delegates here; callers
/// holding a [`TelemetryCounters`] without a partition context — e.g. the
/// audit command's final quiescent pass — can too).
#[must_use]
pub fn check_counters(t: &TelemetryCounters) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut err = |msg: String| out.push(Diagnostic::error(TELEMETRY_ID, Subject::System, msg));

    if t.probes_issued != t.probes_rejected + t.probes_feasible {
        err(format!(
            "probe decisions do not cover issuance: issued {} != rejected {} + feasible {}",
            t.probes_issued, t.probes_rejected, t.probes_feasible
        ));
    }
    if t.commits + t.placements_untracked > t.probes_feasible {
        err(format!(
            "more placements than feasible probes: commits {} + untracked {} > feasible {}",
            t.commits, t.placements_untracked, t.probes_feasible
        ));
    }
    if t.alpha_fallbacks > t.placement_attempts {
        err(format!(
            "α fallback fired more often than placement was attempted: {} > {}",
            t.alpha_fallbacks, t.placement_attempts
        ));
    }
    if t.worker_trials_sum != t.trials_computed {
        err(format!(
            "per-worker trial counts sum to {} but the harness computed {}",
            t.worker_trials_sum, t.trials_computed
        ));
    }
    if let Some(expected) = t.expected_trials {
        if t.trials_computed + t.trials_resumed != expected {
            err(format!(
                "trials computed {} + resumed {} != expected {}",
                t.trials_computed, t.trials_resumed, expected
            ));
        }
    }
    out
}

/// The `telemetry-consistency` rule. No-op unless the context carries a
/// [`TelemetryCounters`] observation.
pub struct TelemetryConsistency;

impl Invariant for TelemetryConsistency {
    fn id(&self) -> &'static str {
        TELEMETRY_ID
    }

    fn description(&self) -> &'static str {
        "telemetry counter algebra: probe decisions cover issuance, placements are backed by \
         feasible probes, worker trial counts sum to the harness total"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(telemetry) = ctx.telemetry else { return };
        out.extend(check_counters(telemetry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{CoreId, Partition, TaskBuilder, TaskId, TaskSet};

    fn consistent() -> TelemetryCounters {
        TelemetryCounters {
            probes_issued: 100,
            probes_rejected: 40,
            probes_feasible: 60,
            commits: 30,
            placements_untracked: 10,
            placement_attempts: 45,
            alpha_fallbacks: 5,
            worker_trials_sum: 500,
            trials_computed: 500,
            trials_resumed: 20,
            expected_trials: Some(520),
        }
    }

    #[test]
    fn consistent_counters_pass() {
        assert!(check_counters(&consistent()).is_empty());
    }

    #[test]
    fn each_broken_relation_is_reported() {
        let breaks: [(&str, fn(&mut TelemetryCounters)); 5] = [
            ("issuance", |t| t.probes_issued += 1),
            ("placements", |t| t.commits = t.probes_feasible + 1),
            ("alpha", |t| t.alpha_fallbacks = t.placement_attempts + 1),
            ("workers", |t| t.worker_trials_sum += 1),
            ("expected", |t| t.expected_trials = Some(1)),
        ];
        for (label, tweak) in breaks {
            let mut t = consistent();
            tweak(&mut t);
            let findings = check_counters(&t);
            assert!(!findings.is_empty(), "{label}: violation not caught");
            assert!(findings.iter().all(|d| d.rule_id == TELEMETRY_ID));
        }
    }

    #[test]
    fn expected_trials_none_skips_that_check() {
        let mut t = consistent();
        t.expected_trials = None;
        t.trials_resumed = 999; // would fail the expected check if it ran
        assert!(check_counters(&t).is_empty());
    }

    #[test]
    fn rule_is_inert_without_an_observation() {
        let task = TaskBuilder::new(TaskId(0)).period(10).level(1).wcet(&[1]).build().unwrap();
        let ts = TaskSet::new(1, vec![task]).unwrap();
        let mut p = Partition::empty(1, 1);
        p.assign(TaskId(0), CoreId(0));
        let ctx = AuditContext::new(&ts, &p, "X");
        let mut out = Vec::new();
        TelemetryConsistency.check(&ctx, &mut out);
        assert!(out.is_empty());

        let mut bad = consistent();
        bad.probes_issued += 1;
        let ctx = ctx.with_telemetry(&bad);
        TelemetryConsistency.check(&ctx, &mut out);
        assert_eq!(out.len(), 1);
    }
}
