//! Rule `harness-determinism`: placement is a pure function of its inputs.
//!
//! The experiment harness reorders, parallelizes, checkpoints and resumes
//! trials on the assumption that every scheme is deterministic: re-running
//! a scheme on the same task set and core count must reproduce the audited
//! partition exactly. Hidden state, iteration-order dependence on a shared
//! cache, or an unseeded RNG would all break resume (a resumed sweep would
//! diverge from an uninterrupted one) — this rule catches them at the
//! source by re-running the scheme and diffing the assignment.

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};

/// Re-running the scheme reproduces the audited assignment exactly.
///
/// Only active when the caller supplies a
/// [`repartition`](AuditContext::with_repartition) closure; contexts
/// without one (structural audits of a bare partition) skip silently.
pub struct HarnessDeterminism;

/// Stable id of this rule.
pub const ID: &str = "harness-determinism";

impl Invariant for HarnessDeterminism {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "re-running the scheme reproduces the audited partition bit-for-bit"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(repartition) = ctx.repartition else { return };
        if !super::shapes_match(ctx) {
            return; // reported by partition-well-formed
        }
        let Some(rerun) = repartition(ctx.ts, ctx.partition.num_cores()) else {
            out.push(Diagnostic::error(
                ID,
                Subject::System,
                format!(
                    "re-running {} declared the instance infeasible, \
                     but a partition of it is under audit",
                    ctx.scheme
                ),
            ));
            return;
        };
        if rerun.num_cores() != ctx.partition.num_cores()
            || rerun.num_tasks() != ctx.partition.num_tasks()
        {
            out.push(Diagnostic::error(
                ID,
                Subject::System,
                format!(
                    "re-run shape {}x{} differs from the audited {}x{}",
                    rerun.num_cores(),
                    rerun.num_tasks(),
                    ctx.partition.num_cores(),
                    ctx.partition.num_tasks()
                ),
            ));
            return;
        }
        for task in ctx.ts.tasks() {
            let original = ctx.partition.core_of(task.id());
            let again = rerun.core_of(task.id());
            if original != again {
                out.push(Diagnostic::error(
                    ID,
                    Subject::Task(task.id()),
                    format!(
                        "nondeterministic placement: audited run put it on {original:?}, \
                         re-run on {again:?}"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use mcs_model::{CoreId, Partition, TaskBuilder, TaskId, TaskSet};

    fn fixture() -> (TaskSet, Partition) {
        let tasks = (0..4)
            .map(|id| {
                TaskBuilder::new(TaskId(id)).period(100).level(1).wcet(&[10]).build().unwrap()
            })
            .collect();
        let ts = TaskSet::new(1, tasks).unwrap();
        let mut p = Partition::empty(2, 4);
        for i in 0..4u32 {
            p.assign(TaskId(i), CoreId(u16::try_from(i % 2).unwrap()));
        }
        (ts, p)
    }

    fn run(ctx: &AuditContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        HarnessDeterminism.check(ctx, &mut out);
        out
    }

    #[test]
    fn deterministic_scheme_is_clean() {
        let (ts, p) = fixture();
        let same = p.clone();
        let rerun = move |_: &TaskSet, _: usize| Some(same.clone());
        let ctx = AuditContext::new(&ts, &p, "t").with_repartition(&rerun);
        assert!(run(&ctx).is_empty());
    }

    #[test]
    fn divergent_rerun_reports_each_moved_task() {
        let (ts, p) = fixture();
        let mut moved = p.clone();
        moved.assign(TaskId(0), CoreId(1));
        moved.assign(TaskId(3), CoreId(0));
        let rerun = move |_: &TaskSet, _: usize| Some(moved.clone());
        let ctx = AuditContext::new(&ts, &p, "t").with_repartition(&rerun);
        let out = run(&ctx);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.severity == Severity::Error));
        assert!(out.iter().any(|d| d.subject == Subject::Task(TaskId(0))));
        assert!(out.iter().any(|d| d.subject == Subject::Task(TaskId(3))));
    }

    #[test]
    fn infeasible_rerun_is_a_system_error() {
        let (ts, p) = fixture();
        let rerun = |_: &TaskSet, _: usize| None;
        let ctx = AuditContext::new(&ts, &p, "t").with_repartition(&rerun);
        let out = run(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].subject, Subject::System);
    }

    #[test]
    fn without_a_repartition_closure_the_rule_skips() {
        let (ts, p) = fixture();
        assert!(run(&AuditContext::new(&ts, &p, "t")).is_empty());
    }
}
