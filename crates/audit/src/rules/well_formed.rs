//! Rule `partition-well-formed`: structural sanity of the assignment.

use mcs_model::CoreId;

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};

/// Every task is assigned exactly once and every core id is in range.
///
/// The `Partition` representation makes double assignment impossible, but
/// this rule still cross-checks the per-core membership iterators against
/// the assignment vector so a representation bug cannot silently desync
/// the two views.
pub struct PartitionWellFormed;

/// Stable id of this rule.
pub const ID: &str = "partition-well-formed";

impl Invariant for PartitionWellFormed {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "every task assigned exactly once, all core ids in range"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = ctx.partition;
        let n = ctx.ts.len();
        if p.num_tasks() != n {
            out.push(Diagnostic::error(
                ID,
                Subject::System,
                format!("assignment vector covers {} tasks, task set has {n}", p.num_tasks()),
            ));
            return;
        }
        if p.num_cores() == 0 {
            out.push(Diagnostic::error(ID, Subject::System, "partition has zero cores"));
            return;
        }

        let mut assigned = 0usize;
        for task in ctx.ts.tasks() {
            match p.core_of(task.id()) {
                None => out.push(Diagnostic::error(
                    ID,
                    Subject::Task(task.id()),
                    "task is unassigned in a claimed-complete partition",
                )),
                Some(c) if c.index() >= p.num_cores() => out.push(Diagnostic::error(
                    ID,
                    Subject::Task(task.id()),
                    format!("assigned to {c} but the system has {} cores", p.num_cores()),
                )),
                Some(_) => assigned += 1,
            }
        }

        // Cross-check: the per-core membership view must account for every
        // assigned task exactly once.
        let counted: usize = CoreId::all(p.num_cores()).map(|c| p.tasks_on(c).count()).sum();
        if counted != assigned {
            out.push(Diagnostic::error(
                ID,
                Subject::System,
                format!(
                    "per-core membership lists {counted} tasks, assignment vector has {assigned}"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use mcs_model::{Partition, TaskBuilder, TaskId, TaskSet};

    fn ts(n: u32) -> TaskSet {
        let tasks = (0..n)
            .map(|id| {
                TaskBuilder::new(TaskId(id)).period(100).level(1).wcet(&[10]).build().unwrap()
            })
            .collect();
        TaskSet::new(1, tasks).unwrap()
    }

    fn run(ts: &TaskSet, p: &Partition) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        PartitionWellFormed.check(&AuditContext::new(ts, p, "t"), &mut out);
        out
    }

    #[test]
    fn complete_partition_is_clean() {
        let ts = ts(3);
        let mut p = Partition::empty(2, 3);
        for i in 0..3 {
            p.assign(TaskId(i), mcs_model::CoreId(u16::try_from(i % 2).unwrap()));
        }
        assert!(run(&ts, &p).is_empty());
    }

    #[test]
    fn unassigned_tasks_are_each_reported() {
        let ts = ts(3);
        let mut p = Partition::empty(2, 3);
        p.assign(TaskId(1), mcs_model::CoreId(0));
        let out = run(&ts, &p);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.severity == Severity::Error));
        assert!(out.iter().any(|d| d.subject == Subject::Task(TaskId(0))));
        assert!(out.iter().any(|d| d.subject == Subject::Task(TaskId(2))));
    }

    #[test]
    fn length_mismatch_is_a_single_system_error() {
        let ts = ts(3);
        let p = Partition::empty(2, 2);
        let out = run(&ts, &p);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].subject, Subject::System);
        assert_eq!(out[0].severity, Severity::Error);
    }
}
