//! Rules `core-claim-feasible` and `theorem1-exact-agreement`: per-core
//! re-verification of the EDF-VD schedulability claim, in `f64` and against
//! the exact rational oracle.

use mcs_analysis::exact_arith::{min_abs_slack_exact, theorem1_feasible_exact};
use mcs_analysis::{simple_condition, Theorem1, EPS};
use mcs_model::{CoreId, McTask, UtilTable};

use crate::diagnostic::{Diagnostic, Subject};
use crate::invariant::{AuditContext, Invariant};
use crate::rules::shapes_match;

/// Width of the boundary band in which the `f64` analysis is allowed to
/// disagree with the exact rational oracle: when the smallest exact
/// condition slack `|µ(k) − θ(k)|` is within this neighbourhood of zero, a
/// verdict flip is an expected consequence of the `EPS` tolerance; outside
/// it, a flip is an `Error`. A handful of `EPS`-sized rounding steps
/// accumulate across the λ-recursion, hence the factor.
pub const EXACT_BAND: f64 = 8.0 * EPS;

/// Stable id of the claim re-verification rule.
pub const CLAIM_ID: &str = "core-claim-feasible";
/// Stable id of the exact-agreement rule.
pub const EXACT_ID: &str = "theorem1-exact-agreement";

fn core_members<'a>(ctx: &AuditContext<'a>, core: CoreId) -> Vec<&'a McTask> {
    ctx.partition.tasks_on(core).map(|t| ctx.ts.task(t)).collect()
}

/// When the scheme claims per-core Theorem-1 feasibility, every core of a
/// complete partition must actually pass the test (Eq. (4) or Theorem 1 —
/// the paper's two-stage acceptance).
pub struct ClaimFeasible;

impl Invariant for ClaimFeasible {
    fn id(&self) -> &'static str {
        CLAIM_ID
    }

    fn description(&self) -> &'static str {
        "every core of a claimed-feasible partition passes Theorem 1"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        if !ctx.claims_theorem1 || !shapes_match(ctx) || !ctx.partition.is_complete() {
            return;
        }
        let k = ctx.ts.num_levels();
        for core in CoreId::all(ctx.partition.num_cores()) {
            let members = core_members(ctx, core);
            let table = UtilTable::from_tasks(k, members);
            if !simple_condition(&table) && !Theorem1::compute(&table).feasible() {
                out.push(Diagnostic::error(
                    CLAIM_ID,
                    Subject::Core(core),
                    format!(
                        "scheme `{}` claims feasibility but the core fails both Eq. (4) \
                         and Theorem 1",
                        ctx.scheme
                    ),
                ));
            }
        }
    }
}

/// The `f64` Theorem-1 verdict must agree with the exact rational oracle on
/// every core, except within the [`EXACT_BAND`] boundary neighbourhood of a
/// condition threshold (the documented tolerance contract of `EPS`).
pub struct ExactAgreement;

impl Invariant for ExactAgreement {
    fn id(&self) -> &'static str {
        EXACT_ID
    }

    fn description(&self) -> &'static str {
        "f64 Theorem-1 verdict agrees with the exact oracle outside the EPS band"
    }

    fn check(&self, ctx: &AuditContext<'_>, out: &mut Vec<Diagnostic>) {
        if !shapes_match(ctx) {
            return;
        }
        let k = ctx.ts.num_levels();
        for core in CoreId::all(ctx.partition.num_cores()) {
            let members = core_members(ctx, core);
            let table = UtilTable::from_tasks(k, members.iter().copied());
            let approx = Theorem1::compute(&table).feasible();
            match theorem1_feasible_exact(&members, k) {
                None => out.push(Diagnostic::info(
                    EXACT_ID,
                    Subject::Core(core),
                    "exact oracle overflowed i128; core skipped",
                )),
                Some(exact) if exact != approx => match min_abs_slack_exact(&members, k) {
                    Some(slack) if slack > EXACT_BAND => out.push(Diagnostic::error(
                        EXACT_ID,
                        Subject::Core(core),
                        format!(
                            "verdict flip outside the tolerance band: f64 says \
                                 {approx}, exact says {exact}, min |slack| = {slack:.3e} \
                                 > band {EXACT_BAND:.1e}"
                        ),
                    )),
                    Some(slack) => out.push(Diagnostic::info(
                        EXACT_ID,
                        Subject::Core(core),
                        format!(
                            "boundary-band disagreement (min |slack| = {slack:.3e} \
                                 ≤ band {EXACT_BAND:.1e}); tolerated"
                        ),
                    )),
                    None => out.push(Diagnostic::warning(
                        EXACT_ID,
                        Subject::Core(core),
                        format!(
                            "f64 says {approx}, exact says {exact}, and the exact \
                                 slack overflowed — cannot attribute the flip to the band"
                        ),
                    )),
                },
                Some(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use mcs_model::{Partition, TaskBuilder, TaskId, TaskSet};

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> mcs_model::McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    /// The §III worked example split the way CA-TPA does (feasible).
    fn worked_example() -> (TaskSet, Partition) {
        let ts = TaskSet::new(
            2,
            vec![
                task(0, 1000, 1, &[450]),
                task(1, 1000, 2, &[175, 326]),
                task(2, 1000, 1, &[280]),
                task(3, 1000, 2, &[339, 633]),
                task(4, 1000, 1, &[300]),
            ],
        )
        .unwrap();
        let mut p = Partition::empty(2, 5);
        p.assign(TaskId(3), CoreId(0));
        p.assign(TaskId(4), CoreId(0));
        p.assign(TaskId(0), CoreId(1));
        p.assign(TaskId(1), CoreId(1));
        p.assign(TaskId(2), CoreId(1));
        (ts, p)
    }

    #[test]
    fn feasible_partition_passes_both_rules() {
        let (ts, p) = worked_example();
        let ctx = AuditContext::new(&ts, &p, "CA-TPA");
        let mut out = Vec::new();
        ClaimFeasible.check(&ctx, &mut out);
        ExactAgreement.check(&ctx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn overloaded_core_violates_the_claim() {
        let (ts, mut p) = worked_example();
        // Pile everything on core 0: infeasible.
        for i in 0..5 {
            p.assign(TaskId(i), CoreId(0));
        }
        let ctx = AuditContext::new(&ts, &p, "X");
        let mut out = Vec::new();
        ClaimFeasible.check(&ctx, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].subject, Subject::Core(CoreId(0)));
    }

    #[test]
    fn claim_rule_skips_non_claiming_schemes() {
        let (ts, mut p) = worked_example();
        for i in 0..5 {
            p.assign(TaskId(i), CoreId(0));
        }
        let ctx = AuditContext::new(&ts, &p, "DBF").with_theorem1_claim(false);
        let mut out = Vec::new();
        ClaimFeasible.check(&ctx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn exact_agreement_holds_on_an_infeasible_core_too() {
        // The agreement rule audits the analysis, not the scheme: an
        // infeasible core must be infeasible in both arithmetics.
        let (ts, mut p) = worked_example();
        for i in 0..5 {
            p.assign(TaskId(i), CoreId(0));
        }
        let ctx = AuditContext::new(&ts, &p, "X").with_theorem1_claim(false);
        let mut out = Vec::new();
        ExactAgreement.check(&ctx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn boundary_case_does_not_error() {
        // θ(1) lands exactly on the threshold (slack 0): whatever the f64
        // verdict, the rule must not report an Error.
        let ts = TaskSet::new(2, vec![task(0, 10, 2, &[1, 10])]).unwrap();
        let mut p = Partition::empty(1, 1);
        p.assign(TaskId(0), CoreId(0));
        let ctx = AuditContext::new(&ts, &p, "X");
        let mut out = Vec::new();
        ExactAgreement.check(&ctx, &mut out);
        assert!(out.iter().all(|d| d.severity != Severity::Error), "{out:?}");
    }
}
