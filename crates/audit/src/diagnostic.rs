//! Structured audit findings and their text / JSON rendering.

use std::fmt;

use mcs_model::{CoreId, TaskId};

/// How serious a finding is.
///
/// `Error` means an invariant is violated (the audit exit code is
/// non-zero); `Warning` flags suspicious-but-tolerated states; `Info`
/// records conditions a rule could not fully decide (e.g. the exact oracle
/// overflowed `i128`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: the rule could not decide, or the state is expected.
    Info,
    /// Suspicious but within the documented tolerance contract.
    Warning,
    /// An invariant is violated.
    Error,
}

impl Severity {
    /// Lower-case label used in both text and JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a finding is about.
///
/// Runtime audit rules report on tasks, cores, or the system; the
/// source-level `mcs-lint` pass reports on source locations. Both share
/// this type (and [`Diagnostic`]) so text and JSON findings render the
/// same everywhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Subject {
    /// The task set / partition as a whole.
    System,
    /// One task.
    Task(TaskId),
    /// One core.
    Core(CoreId),
    /// A source location (workspace-relative path and 1-based line).
    Source {
        /// Workspace-relative path, `/`-separated.
        file: String,
        /// 1-based line number (0 when the finding is file-scoped).
        line: u32,
    },
}

impl Subject {
    /// Source-location subject (the `mcs-lint` constructor).
    #[must_use]
    pub fn source(file: impl Into<String>, line: u32) -> Self {
        Subject::Source { file: file.into(), line }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::System => f.write_str("system"),
            Subject::Task(t) => write!(f, "task τ{t}"),
            Subject::Core(c) => write!(f, "core {c}"),
            Subject::Source { file, line } if *line == 0 => f.write_str(file),
            Subject::Source { file, line } => write!(f, "{file}:{line}"),
        }
    }
}

impl Subject {
    fn to_json(&self) -> String {
        match self {
            Subject::System => r#"{"kind":"system"}"#.to_string(),
            Subject::Task(t) => format!(r#"{{"kind":"task","id":{}}}"#, t.0),
            Subject::Core(c) => format!(r#"{{"kind":"core","index":{}}}"#, c.0),
            Subject::Source { file, line } => {
                format!(r#"{{"kind":"source","file":"{}","line":{line}}}"#, json_escape(file))
            }
        }
    }
}

/// One audit finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable identifier of the rule that produced the finding.
    pub rule_id: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// What the finding is about.
    pub subject: Subject,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Construct a finding.
    pub fn new(
        rule_id: &'static str,
        severity: Severity,
        subject: Subject,
        message: impl Into<String>,
    ) -> Self {
        Self { rule_id, severity, subject, message: message.into() }
    }

    /// Shorthand for an `Error`-severity finding.
    pub fn error(rule_id: &'static str, subject: Subject, message: impl Into<String>) -> Self {
        Self::new(rule_id, Severity::Error, subject, message)
    }

    /// Shorthand for a `Warning`-severity finding.
    pub fn warning(rule_id: &'static str, subject: Subject, message: impl Into<String>) -> Self {
        Self::new(rule_id, Severity::Warning, subject, message)
    }

    /// Shorthand for an `Info`-severity finding.
    pub fn info(rule_id: &'static str, subject: Subject, message: impl Into<String>) -> Self {
        Self::new(rule_id, Severity::Info, subject, message)
    }

    /// JSON object for this finding (hand-rolled; no serde in the tree).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","severity":"{}","subject":{},"message":"{}"}}"#,
            json_escape(self.rule_id),
            self.severity.label(),
            self.subject.to_json(),
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.rule_id, self.subject, self.message)
    }
}

/// All findings of one audit run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditReport {
    /// Name of the scheme whose output was audited.
    pub scheme: String,
    /// Findings, in rule-registration order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Empty report for a scheme.
    #[must_use]
    pub fn new(scheme: &str) -> Self {
        Self { scheme: scheme.to_string(), diagnostics: Vec::new() }
    }

    /// Whether the report contains no `Error`-severity finding.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Number of findings at exactly the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// The most severe finding level present, if any.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Plain-text rendering, one finding per line.
    #[must_use]
    pub fn render_text(&self) -> String {
        if self.diagnostics.is_empty() {
            return format!("{}: clean\n", self.scheme);
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}: {d}\n", self.scheme));
        }
        out
    }

    /// JSON object: `{"scheme": …, "diagnostics": […]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            r#"{{"scheme":"{}","diagnostics":[{}]}}"#,
            json_escape(&self.scheme),
            items.join(",")
        )
    }
}

/// Escape a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = AuditReport::new("X");
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.diagnostics.push(Diagnostic::info("a", Subject::System, "note"));
        r.diagnostics.push(Diagnostic::warning("a", Subject::Task(TaskId(3)), "hmm"));
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        r.diagnostics.push(Diagnostic::error("b", Subject::Core(CoreId(1)), "bad"));
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn text_rendering_mentions_rule_and_subject() {
        let mut r = AuditReport::new("CA-TPA");
        r.diagnostics.push(Diagnostic::error("rule-x", Subject::Core(CoreId(0)), "boom"));
        let text = r.render_text();
        assert!(text.contains("CA-TPA"), "{text}");
        assert!(text.contains("error[rule-x]"), "{text}");
        assert!(text.contains("P1"), "{text}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let d = Diagnostic::error("r", Subject::Task(TaskId(7)), "say \"hi\"\nline");
        let j = d.to_json();
        assert_eq!(
            j,
            r#"{"rule":"r","severity":"error","subject":{"kind":"task","id":7},"message":"say \"hi\"\nline"}"#
        );
        let mut r = AuditReport::new("FFD");
        r.diagnostics.push(d);
        let j = r.to_json();
        assert!(j.starts_with(r#"{"scheme":"FFD","diagnostics":["#), "{j}");
        assert!(j.ends_with("]}"), "{j}");
    }

    #[test]
    fn source_subject_renders_and_serializes() {
        let d = Diagnostic::warning(
            "stdout-purity",
            Subject::source("crates/sim/src/core.rs", 42),
            "println! outside the command allowlist",
        );
        assert_eq!(format!("{}", d.subject), "crates/sim/src/core.rs:42");
        assert!(d
            .to_json()
            .contains(r#""subject":{"kind":"source","file":"crates/sim/src/core.rs","line":42}"#));
        let file_scoped = Subject::source("a/b.rs", 0);
        assert_eq!(format!("{file_scoped}"), "a/b.rs");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("t\tn"), "t\\tn");
    }
}
