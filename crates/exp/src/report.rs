//! Plain-text and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A rendered table: a header row plus data rows of equal arity.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build from string-convertible headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; arity must match the header.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }
}

/// Render a table as aligned plain text.
#[must_use]
pub fn render_table(table: &Table) -> String {
    let cols = table.header.len();
    let mut widths: Vec<usize> = table.header.iter().map(String::len).collect();
    for row in &table.rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = w.saturating_sub(cell.chars().count());
            // Right-align numeric-looking cells, left-align the rest.
            let numeric = cell.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-')
                && cell.parse::<f64>().is_ok();
            if numeric {
                for _ in 0..pad {
                    out.push(' ');
                }
                out.push_str(cell);
            } else {
                out.push_str(cell);
                if i + 1 < cells.len() {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                }
            }
        }
        out.push('\n');
    };
    write_row(&mut out, &table.header);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in &table.rows {
        write_row(&mut out, row);
    }
    out
}

/// Render a table as RFC-4180-ish CSV (quotes only where needed).
#[must_use]
pub fn render_csv(table: &Table) -> String {
    let mut out = String::new();
    let esc = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut write_row = |cells: &[String]| {
        let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    };
    write_row(&table.header);
    for row in &table.rows {
        write_row(row);
    }
    out
}

/// Format a ratio/utilization with 3 decimals; NaN renders as "-".
#[must_use]
pub fn fmt3(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        let mut t = Table::new(["x", "ratio"]);
        t.push_row(["0.4".to_string(), fmt3(0.98765)]);
        t.push_row(["0.8".to_string(), fmt3(f64::NAN)]);
        t
    }

    #[test]
    fn table_renders_aligned() {
        let s = render_table(&demo());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("ratio"));
        assert!(lines[2].contains("0.988"));
        assert!(lines[3].contains('-'));
    }

    #[test]
    fn csv_renders_plain_cells() {
        let s = render_csv(&demo());
        assert_eq!(s.lines().next(), Some("x,ratio"));
        assert!(s.contains("0.4,0.988"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a"]);
        t.push_row([r#"x,y "z""#]);
        let s = render_csv(&t);
        assert!(s.contains(r#""x,y ""z""""#), "{s}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn fmt3_handles_nan() {
        assert_eq!(fmt3(f64::NAN), "-");
        assert_eq!(fmt3(0.5), "0.500");
    }
}
