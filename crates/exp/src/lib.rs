//! # mcs-exp
//!
//! Experiment harness reproducing every table and figure of the ICPP'16
//! CA-TPA paper, plus soundness and ablation experiments.
//!
//! * [`sweep`] — parallel Monte-Carlo engine: generate task sets, run every
//!   partitioning scheme on each (paired comparison), aggregate the paper's
//!   four metrics (schedulability ratio, `U_sys`, `U_avg`, `Λ`);
//! * [`figures`] — the five parameter sweeps (Fig. 1: NSU, Fig. 2: IFC,
//!   Fig. 3: α, Fig. 4: M, Fig. 5: K);
//! * [`tables`] — the §III worked example (Tables I–III) and the parameter
//!   table (Table IV);
//! * [`soundness`] — simulation-backed validation: partitions accepted by
//!   the analysis must exhibit zero mandatory deadline misses;
//! * [`ablation`] — CA-TPA variant comparison;
//! * [`admit`] — online admission-control streams: deterministic
//!   arrival/departure traces replayed through per-shard [`mcs_partition`]
//!   `AdmissionEngine`s, with the bit-exact rebuild-identity gate;
//! * [`audit_cmd`] — invariant-audit sweep over every scheme (`mcs-audit`);
//! * [`perf`] — probe-path throughput benchmark (reference loops vs the
//!   incremental `ProbeEngine`), recorded to `BENCH_partition.json`;
//! * [`telemetry`] — `--telemetry` sidecar plumbing and the quiescent
//!   counter-algebra check (`mcs-obs` ↔ `mcs-audit` bridge);
//! * [`report`] — plain-text/CSV rendering.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod admit;
pub mod audit_cmd;
pub mod chart;
pub mod describe;
pub mod elastic_exp;
pub mod example;
pub mod extension;
pub mod figures;
pub mod globalcmp;
pub mod optgap;
pub mod overhead;
pub mod partition_cmd;
pub mod perf;
pub mod report;
pub mod soundness;
pub mod stats;
pub mod sweep;
pub mod tables;
pub mod telemetry;

pub use example::paper_example_task_set;
pub use figures::{figure, FigureId, FigureResult};
pub use report::{render_csv, render_table};
pub use sweep::{run_point, PointResult, SweepConfig};
