//! `mcs-exp perf` — probe-path throughput benchmark.
//!
//! Times the *reference* placement loops (fresh `WithTask` composite per
//! probe, full `Theorem1::compute` recomputation at commit — see
//! `mcs_partition::reference`) against the optimized `ProbeEngine` path on
//! the same batch of generated task sets, in the same process, in the same
//! run. Before timing, every pair is checked to produce the *identical*
//! outcome (same core per task, or the same failing task), so the speedup
//! number is for bit-equal work.
//!
//! The headline `probe path` row times the raw admission probe — the
//! operation placement loops perform `N·M` times per run — on identical
//! mid-placement core states: reference composite vs the fused verdict
//! kernel. The per-scheme rows time whole `partition()` calls, where the
//! cheap Eq. (4) pre-test caps how often the bin-packing family reaches the
//! probe at all (so their end-to-end speedups are structurally smaller
//! than CA-TPA's).
//!
//! A second section times the end-to-end sweep hot path (`run_point` over
//! the paper schemes) in trials/second — the quantity that bounds figure
//! turnaround — and isolates the harness dispatch overhead two ways: the
//! identical per-trial work as a bare inline loop (the pre-harness shape)
//! against `run_point` at one thread, and the *pure* dispatch cost over a
//! large no-op trial batch (reported in fractional nanoseconds, or JSON
//! `null` with `runner_overhead_below_resolution` when unmeasurable). A
//! third section bounds the `mcs-obs` telemetry cost on the batch probe
//! hot path (raw kernel loop vs the instrumented
//! `ProbeEngine::probe_all_cores`).
//!
//! Results render as a table, as JSON (`--json`), and are recorded to
//! `BENCH_partition.json` in the working directory so the repository keeps
//! a checked-in snapshot of the measured speedup.

// lint: allow-file(determinism, wall-clock benchmark module; timings go to stderr and BENCH sidecars, never into published stdout records)

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use mcs_analysis::{batch_probe_verdicts, CoreBank, CoreSums, TaskRow, Theorem1, Verdict};
use mcs_gen::{generate_task_set, generate_trace, trial_seed, GenParams, TraceOp, TraceParams};
use mcs_harness::RunSession;
use mcs_model::{TaskSet, UtilTable, WithTask};
use mcs_partition::{
    paper_schemes, reference_paper_schemes, AdmissionEngine, AdmissionPolicy, PartitionFailure,
    PartitionQuality, Partitioner, ProbeEngine, QualityScratch,
};

use crate::report::Table;
use crate::sweep::{run_point, SweepConfig};

/// Minimum wall-clock spent per timed scheme (reference and engine each):
/// whole passes over the batch are repeated until this elapses, so the
/// rates are averaged over at least this long.
const MIN_TIMED: Duration = Duration::from_millis(300);

/// One reference-vs-engine pairing.
#[derive(Clone, Debug)]
pub struct SchemePerf {
    /// Display name of the optimized scheme.
    pub scheme: &'static str,
    /// Reference-path partition calls per second.
    pub reference_per_sec: f64,
    /// Engine-path partition calls per second.
    pub engine_per_sec: f64,
}

impl SchemePerf {
    /// Engine throughput over reference throughput.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.engine_per_sec / self.reference_per_sec
    }
}

/// Raw probe-path throughput: single Theorem-1 admission probes per second
/// against mid-placement core states — the inner operation every placement
/// loop performs `N·M` times per run.
#[derive(Clone, Debug)]
pub struct ProbePerf {
    /// Reference path: fresh `WithTask` composite + full `Theorem1::compute`
    /// + the Eq. (9) accessor, per probe.
    pub reference_per_sec: f64,
    /// Scalar engine path: precomputed `TaskRow` + the fused verdict kernel,
    /// one core per call.
    pub scalar_per_sec: f64,
    /// Batch engine path: one SoA sweep ([`batch_probe_verdicts`]) answers
    /// all `M` cores per call — the headline probe rate.
    pub batch_per_sec: f64,
    /// Whether every batch lane verdict was bit-identical to the scalar
    /// verdict for the same (candidate, core) pair across the whole batch.
    pub batch_matches_scalar: bool,
}

impl ProbePerf {
    /// Batch probe throughput over reference probe throughput (headline).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.batch_per_sec / self.reference_per_sec
    }

    /// Scalar probe throughput over reference probe throughput.
    #[must_use]
    pub fn scalar_speedup(&self) -> f64 {
        self.scalar_per_sec / self.reference_per_sec
    }
}

/// One cell of the batch-kernel scaling table: batch probes per second at a
/// given core count and criticality-level count, on a task set sized
/// proportionally to the machine (16 tasks per core, so the 1024-core cell
/// probes a set in the tens of thousands of tasks).
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Cores per batch sweep.
    pub cores: usize,
    /// System criticality levels `K`.
    pub levels: u8,
    /// Tasks in the generated set.
    pub tasks: usize,
    /// Batch probes per second (each sweep counts `cores` probes).
    pub batch_per_sec: f64,
}

/// Telemetry cost on the batch probe hot path: the instrumented
/// [`ProbeEngine::probe_all_cores`] (tally cells + the span-timing gate)
/// vs the equivalent raw batch-kernel loop over identical core states.
/// The difference *upper-bounds* the telemetry overhead — it also includes
/// the engine's own batch bookkeeping.
#[derive(Clone, Debug)]
pub struct TelemetryPerf {
    /// Raw kernel batch probes per second (no instrumentation — the
    /// `telemetry-off` proxy).
    pub raw_per_sec: f64,
    /// Instrumented engine batch probes per second (counters compiled in,
    /// timing off).
    pub engine_per_sec: f64,
}

impl TelemetryPerf {
    /// Percent slowdown of the instrumented path (clamped at 0).
    #[must_use]
    pub fn overhead_pct(&self) -> f64 {
        (self.engine_per_sec.recip() / self.raw_per_sec.recip() - 1.0).max(0.0) * 100.0
    }
}

/// Online admission throughput: arrival decisions per second through the
/// [`AdmissionEngine`] under the CA-TPA policy, replaying deterministic
/// lifecycle traces (the `mcs-exp admit` hot path). A decision is one
/// `admit()` call — probe every core, select, commit (or repair/reject);
/// departures ride along in the same stream but are not counted as
/// decisions.
#[derive(Clone, Debug)]
pub struct AdmissionPerf {
    /// Admission decisions per second over the timed stream.
    pub admissions_per_sec: f64,
    /// Admitted fraction of all arrival decisions.
    pub accept_ratio: f64,
    /// Whether the churned live state was bit-identical to a fresh rebuild
    /// of the surviving set after every replayed trace.
    pub state_identical: bool,
}

/// Harness dispatch overhead: the same per-trial work (generate + all
/// paper schemes + quality summaries) as a bare inline loop vs the
/// [`run_point`] trial runner at one thread, plus a direct measurement of
/// the pure dispatch cost over a large no-op batch.
#[derive(Clone, Debug)]
pub struct RunnerPerf {
    /// Inline-loop trials per second (the pre-harness sweep shape).
    pub inline_per_sec: f64,
    /// `run_point` (single-threaded) trials per second.
    pub runner_per_sec: f64,
    /// Pure per-trial dispatch cost in nanoseconds, measured over a no-op
    /// trial batch of [`DISPATCH_TRIALS`] (where real per-trial work can't
    /// drown it). `None` when the difference is below the measurement
    /// resolution — reported as JSON `null`, never a fabricated `0.0`.
    pub dispatch_ns_per_trial: Option<f64>,
}

/// Full benchmark report.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Task sets in the timed batch.
    pub sets: usize,
    /// Cores per partitioning call.
    pub cores: usize,
    /// Total tasks across the batch (context for the rates).
    pub tasks: usize,
    /// Whether every reference/engine pair agreed on every task set.
    pub identical: bool,
    /// Raw probe-path rates (single admission probes per second).
    pub probe: ProbePerf,
    /// Batch-kernel scaling table over (cores, K) cells up to 1024 cores.
    pub scaling: Vec<ScalingPoint>,
    /// Telemetry overhead on the batch probe path (raw kernel vs
    /// instrumented engine).
    pub telemetry: TelemetryPerf,
    /// Per-scheme timing pairs, in the paper's plot order.
    pub schemes: Vec<SchemePerf>,
    /// Aggregate reference partition calls per second (all schemes).
    pub reference_per_sec: f64,
    /// Aggregate engine partition calls per second (all schemes).
    pub engine_per_sec: f64,
    /// Harness dispatch overhead measurement (inline loop vs runner).
    pub runner: RunnerPerf,
    /// Online admission-stream throughput (the `mcs-exp admit` hot path).
    pub admission: AdmissionPerf,
    /// End-to-end sweep throughput, trials per second (`run_point` over the
    /// paper schemes, all worker threads).
    pub sweep_trials_per_sec: f64,
    /// Trials used for the sweep timing.
    pub sweep_trials: usize,
    /// Threads used for the sweep timing.
    pub sweep_threads: usize,
}

impl PerfReport {
    /// Aggregate engine-over-reference speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.engine_per_sec / self.reference_per_sec
    }

    /// Render as a report table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["scheme", "ref part/s", "engine part/s", "speedup"]);
        t.push_row([
            "probe path batch (probes/s)".into(),
            format!("{:.0}", self.probe.reference_per_sec),
            format!("{:.0}", self.probe.batch_per_sec),
            format!("{:.2}x", self.probe.speedup()),
        ]);
        t.push_row([
            "probe path scalar (probes/s)".into(),
            format!("{:.0}", self.probe.reference_per_sec),
            format!("{:.0}", self.probe.scalar_per_sec),
            format!("{:.2}x", self.probe.scalar_speedup()),
        ]);
        for p in &self.scaling {
            t.push_row([
                format!("batch M={} K={} N={} (probes/s)", p.cores, p.levels, p.tasks),
                "-".into(),
                format!("{:.0}", p.batch_per_sec),
                "-".into(),
            ]);
        }
        for s in &self.schemes {
            t.push_row([
                s.scheme.to_string(),
                format!("{:.0}", s.reference_per_sec),
                format!("{:.0}", s.engine_per_sec),
                format!("{:.2}x", s.speedup()),
            ]);
        }
        t.push_row([
            "TOTAL".into(),
            format!("{:.0}", self.reference_per_sec),
            format!("{:.0}", self.engine_per_sec),
            format!("{:.2}x", self.speedup()),
        ]);
        t.push_row([
            "telemetry batch probe (probes/s)".into(),
            format!("{:.0}", self.telemetry.raw_per_sec),
            format!("{:.0}", self.telemetry.engine_per_sec),
            format!("+{:.2}%", self.telemetry.overhead_pct()),
        ]);
        t.push_row([
            "harness dispatch (trials/s)".into(),
            format!("{:.0}", self.runner.inline_per_sec),
            format!("{:.0}", self.runner.runner_per_sec),
            match self.runner.dispatch_ns_per_trial {
                Some(ns) => format!("+{ns:.1}ns/trial"),
                None => "below resolution".to_string(),
            },
        ]);
        t.push_row([
            "admission stream (decisions/s)".into(),
            "-".into(),
            format!("{:.0}", self.admission.admissions_per_sec),
            format!("accept {:.3}", self.admission.accept_ratio),
        ]);
        t
    }

    /// Hand-rolled JSON encoding (the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"mcs-exp perf\",");
        let _ = writeln!(out, "  \"task_sets\": {},", self.sets);
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(out, "  \"tasks_total\": {},", self.tasks);
        let _ = writeln!(out, "  \"partitions_identical\": {},", self.identical);
        let _ = writeln!(
            out,
            "  \"probe_path_reference_per_sec\": {:.1},",
            self.probe.reference_per_sec
        );
        let _ = writeln!(out, "  \"probe_path_engine_per_sec\": {:.1},", self.probe.batch_per_sec);
        let _ = writeln!(out, "  \"probe_path_scalar_per_sec\": {:.1},", self.probe.scalar_per_sec);
        let _ = writeln!(out, "  \"probe_path_speedup\": {:.3},", self.probe.speedup());
        let _ =
            writeln!(out, "  \"probe_path_scalar_speedup\": {:.3},", self.probe.scalar_speedup());
        let _ = writeln!(
            out,
            "  \"probe_path_batch_matches_scalar\": {},",
            self.probe.batch_matches_scalar
        );
        out.push_str("  \"probe_scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"cores\": {}, \"levels\": {}, \"tasks\": {}, \
                 \"batch_probes_per_sec\": {:.1}}}",
                p.cores, p.levels, p.tasks, p.batch_per_sec
            );
            out.push_str(if i + 1 < self.scaling.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"telemetry_compiled\": {},", mcs_obs::compiled());
        let _ =
            writeln!(out, "  \"telemetry_probe_raw_per_sec\": {:.1},", self.telemetry.raw_per_sec);
        let _ = writeln!(
            out,
            "  \"telemetry_probe_engine_per_sec\": {:.1},",
            self.telemetry.engine_per_sec
        );
        let _ = writeln!(
            out,
            "  \"telemetry_probe_overhead_pct\": {:.2},",
            self.telemetry.overhead_pct()
        );
        out.push_str("  \"schemes\": [\n");
        for (i, s) in self.schemes.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"scheme\": \"{}\", \"reference_per_sec\": {:.1}, \
                 \"engine_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                s.scheme,
                s.reference_per_sec,
                s.engine_per_sec,
                s.speedup()
            );
            out.push_str(if i + 1 < self.schemes.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"reference_partitions_per_sec\": {:.1},", self.reference_per_sec);
        let _ = writeln!(out, "  \"engine_partitions_per_sec\": {:.1},", self.engine_per_sec);
        let _ = writeln!(out, "  \"speedup\": {:.3},", self.speedup());
        let _ =
            writeln!(out, "  \"inline_loop_trials_per_sec\": {:.1},", self.runner.inline_per_sec);
        let _ = writeln!(out, "  \"runner_trials_per_sec\": {:.1},", self.runner.runner_per_sec);
        match self.runner.dispatch_ns_per_trial {
            Some(ns) => {
                let _ = writeln!(out, "  \"runner_overhead_ns_per_trial\": {ns:.1},");
            }
            None => {
                let _ = writeln!(out, "  \"runner_overhead_ns_per_trial\": null,");
            }
        }
        let _ = writeln!(
            out,
            "  \"runner_overhead_below_resolution\": {},",
            self.runner.dispatch_ns_per_trial.is_none()
        );
        let _ = writeln!(out, "  \"sweep_trials\": {},", self.sweep_trials);
        let _ = writeln!(out, "  \"sweep_threads\": {},", self.sweep_threads);
        let _ = writeln!(out, "  \"sweep_trials_per_sec\": {:.1},", self.sweep_trials_per_sec);
        let _ =
            writeln!(out, "  \"admissions_per_sec\": {:.1},", self.admission.admissions_per_sec);
        let _ = writeln!(out, "  \"admission_accept_ratio\": {:.4},", self.admission.accept_ratio);
        let _ =
            writeln!(out, "  \"admission_state_identical\": {}", self.admission.state_identical);
        out.push_str("}\n");
        out
    }
}

/// Same placement decision? Both scheme families certify Theorem 1, so
/// equality of the assignment map (or of the first stuck task) is the whole
/// observable outcome.
fn same_outcome(
    ts: &TaskSet,
    a: &Result<mcs_model::Partition, PartitionFailure>,
    b: &Result<mcs_model::Partition, PartitionFailure>,
) -> bool {
    match (a, b) {
        (Ok(pa), Ok(pb)) => ts.tasks().iter().all(|t| pa.core_of(t.id()) == pb.core_of(t.id())),
        (Err(ea), Err(eb)) => ea == eb,
        _ => false,
    }
}

/// Time one partitioner over the whole batch, repeating full passes until
/// [`MIN_TIMED`] elapses. Returns partition calls per second.
fn rate(scheme: &dyn Partitioner, sets: &[TaskSet], cores: usize) -> f64 {
    // One untimed warm-up pass (fills the thread-local scratch, faults in
    // the batch).
    for ts in sets {
        black_box(scheme.partition(ts, cores).is_ok());
    }
    let mut calls = 0u64;
    let start = Instant::now();
    loop {
        for ts in sets {
            black_box(scheme.partition(ts, cores).is_ok());
        }
        calls += sets.len() as u64;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    calls as f64 / start.elapsed().as_secs_f64()
}

/// Bitwise equality of two fused verdicts on every observable the
/// placement loops consume.
fn verdict_bits_match(a: &Verdict, b: &Verdict) -> bool {
    let ob = |v: Option<f64>| v.map(f64::to_bits);
    a.feasible() == b.feasible()
        && a.own_level_total.to_bits() == b.own_level_total.to_bits()
        && ob(a.core_utilization) == ob(b.core_utilization)
        && ob(a.core_utilization_slack) == ob(b.core_utilization_slack)
}

/// Time the raw probe path — reference vs scalar engine vs the SoA batch
/// kernel — over mid-placement core states: each set's tasks are dealt
/// round-robin across `cores` cores, then every task is probed against
/// every core — the admission question the placement loops ask `N·M` times
/// per run. All three sides are timed over at least [`MIN_TIMED`] on the
/// identical states; before timing, every batch lane is checked bit-equal
/// to the scalar verdict for the same (candidate, core) pair.
fn probe_rates(sets: &[TaskSet], cores: usize) -> ProbePerf {
    let mut tables: Vec<Vec<UtilTable>> = Vec::with_capacity(sets.len());
    let mut sums: Vec<Vec<CoreSums>> = Vec::with_capacity(sets.len());
    let mut banks: Vec<CoreBank> = Vec::with_capacity(sets.len());
    let mut rows: Vec<Vec<TaskRow>> = Vec::with_capacity(sets.len());
    for ts in sets {
        let k = ts.num_levels();
        let mut t = vec![UtilTable::new(k); cores];
        let mut s = vec![CoreSums::new(k); cores];
        let mut bank = CoreBank::new();
        bank.reset(k, cores);
        for (i, task) in ts.tasks().iter().enumerate() {
            t[i % cores].add(task);
            let row = TaskRow::new(task);
            s[i % cores].add(&row);
            bank.add(i % cores, &row);
        }
        rows.push(ts.tasks().iter().map(TaskRow::new).collect());
        tables.push(t);
        sums.push(s);
        banks.push(bank);
    }
    let per_pass: u64 = sets.iter().map(|ts| (ts.len() * cores) as u64).sum();

    // Reference: fresh `WithTask` composite + full `Theorem1::compute` per
    // probe (one untimed warm-up pass first, as in `rate`).
    for (ts, t) in sets.iter().zip(&tables) {
        for task in ts.tasks() {
            for table in t {
                black_box(Theorem1::compute(&WithTask::new(table, task)).core_utilization());
            }
        }
    }
    let mut probes = 0u64;
    let start = Instant::now();
    loop {
        for (ts, t) in sets.iter().zip(&tables) {
            for task in ts.tasks() {
                for table in t {
                    black_box(Theorem1::compute(&WithTask::new(table, task)).core_utilization());
                }
            }
        }
        probes += per_pass;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let reference_per_sec = probes as f64 / start.elapsed().as_secs_f64();

    // Scalar engine: precomputed rows + the fused verdict kernel, one core
    // per call.
    for (r, s) in rows.iter().zip(&sums) {
        for row in r {
            for core in s {
                black_box(core.probe_verdict(row).core_utilization);
            }
        }
    }
    let mut probes = 0u64;
    let start = Instant::now();
    loop {
        for (r, s) in rows.iter().zip(&sums) {
            for row in r {
                for core in s {
                    black_box(core.probe_verdict(row).core_utilization);
                }
            }
        }
        probes += per_pass;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let scalar_per_sec = probes as f64 / start.elapsed().as_secs_f64();

    // Batch: one SoA sweep answers every core. The bit-equality pass
    // doubles as the warm-up.
    let mut out: Vec<Verdict> = Vec::new();
    let mut batch_matches_scalar = true;
    for ((r, s), bank) in rows.iter().zip(&sums).zip(&banks) {
        for row in r {
            batch_probe_verdicts(bank, row, &mut out);
            for (core, lane) in s.iter().zip(&out) {
                if !verdict_bits_match(lane, &core.probe_verdict(row)) {
                    batch_matches_scalar = false;
                }
            }
        }
    }
    let mut probes = 0u64;
    let start = Instant::now();
    loop {
        for (r, bank) in rows.iter().zip(&banks) {
            for row in r {
                batch_probe_verdicts(bank, row, &mut out);
                black_box(out.len());
            }
        }
        probes += per_pass;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let batch_per_sec = probes as f64 / start.elapsed().as_secs_f64();

    ProbePerf { reference_per_sec, scalar_per_sec, batch_per_sec, batch_matches_scalar }
}

/// Minimum wall-clock per scaling-table cell: large machines finish a
/// whole pass in this budget; small ones repeat passes.
const MIN_SCALED: Duration = Duration::from_millis(60);

/// Batch-kernel throughput across (cores, K) cells up to 1024 cores. Task
/// sets are sized at 16 tasks per core — per-core load stays at the default
/// NSU while the 1024-core cells probe sets in the tens of thousands of
/// tasks — and dealt round-robin, as in [`probe_rates`].
fn scaling_rates(seed: u64) -> Vec<ScalingPoint> {
    const GRID: &[(usize, u8)] =
        &[(8, 2), (8, 4), (8, 8), (128, 2), (128, 4), (128, 8), (1024, 2), (1024, 4), (1024, 8)];
    let mut points = Vec::with_capacity(GRID.len());
    for &(cores, levels) in GRID {
        let n = 16 * cores;
        let params = GenParams::default().with_cores(cores).with_levels(levels).with_n_range(n, n);
        let ts = generate_task_set(&params, seed);
        let rows: Vec<TaskRow> = ts.tasks().iter().map(TaskRow::new).collect();
        let mut bank = CoreBank::new();
        bank.reset(ts.num_levels(), cores);
        for (i, row) in rows.iter().enumerate() {
            bank.add(i % cores, row);
        }
        let per_pass = (ts.len() * cores) as u64;
        let mut out: Vec<Verdict> = Vec::new();
        let mut probes = 0u64;
        let start = Instant::now();
        loop {
            for row in &rows {
                batch_probe_verdicts(&bank, row, &mut out);
                black_box(out.len());
            }
            probes += per_pass;
            if start.elapsed() >= MIN_SCALED {
                break;
            }
        }
        points.push(ScalingPoint {
            cores,
            levels,
            tasks: ts.len(),
            batch_per_sec: probes as f64 / start.elapsed().as_secs_f64(),
        });
    }
    points
}

/// Time the telemetry cost on the batch probe path: identical
/// mid-placement core states probed through the raw batch kernel (no
/// instrumentation) and through [`ProbeEngine::probe_all_cores`] (tally
/// cells + the span-timing gate). Each set's tasks are dealt round-robin
/// and kept only where the engine admits them, so both sides hold the
/// same state.
fn telemetry_rates(sets: &[TaskSet], cores: usize) -> TelemetryPerf {
    let mut engines: Vec<ProbeEngine> = Vec::with_capacity(sets.len());
    let mut banks: Vec<CoreBank> = Vec::with_capacity(sets.len());
    let mut rows: Vec<Vec<TaskRow>> = Vec::with_capacity(sets.len());
    for ts in sets {
        let mut engine = ProbeEngine::new();
        engine.reset(ts, cores);
        let mut bank = CoreBank::new();
        bank.reset(ts.num_levels(), cores);
        for (i, task) in ts.tasks().iter().enumerate() {
            let m = i % cores;
            let v = engine.probe_verdict(m, task.id());
            if let (true, Some(util)) = (v.feasible(), v.core_utilization) {
                engine.commit(task.id(), m, util);
                bank.add(m, &TaskRow::new(task));
            }
        }
        rows.push(ts.tasks().iter().map(TaskRow::new).collect());
        engines.push(engine);
        banks.push(bank);
    }
    let per_pass: u64 = sets.iter().map(|ts| (ts.len() * cores) as u64).sum();

    // Raw batch-kernel loop — the `telemetry-off` proxy for what
    // `probe_all_cores` runs inside its spans (one warm-up pass first).
    let mut out: Vec<Verdict> = Vec::new();
    let mut raw_pass = |rows: &[Vec<TaskRow>], banks: &[CoreBank]| {
        for (r, bank) in rows.iter().zip(banks) {
            for row in r {
                batch_probe_verdicts(bank, row, &mut out);
                black_box(out.len());
            }
        }
    };
    raw_pass(&rows, &banks);
    let mut probes = 0u64;
    let start = Instant::now();
    loop {
        raw_pass(&rows, &banks);
        probes += per_pass;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let raw_per_sec = probes as f64 / start.elapsed().as_secs_f64();

    // Instrumented batch path (counters on, timing off by default).
    let engine_pass = |engines: &mut [ProbeEngine]| {
        for (engine, ts) in engines.iter_mut().zip(sets) {
            for task in ts.tasks() {
                let (verdicts, _) = engine.probe_all_cores(task.id());
                black_box(verdicts.len());
            }
        }
    };
    engine_pass(&mut engines);
    let mut probes = 0u64;
    let start = Instant::now();
    loop {
        engine_pass(&mut engines);
        probes += per_pass;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let engine_per_sec = probes as f64 / start.elapsed().as_secs_f64();

    TelemetryPerf { raw_per_sec, engine_per_sec }
}

/// Trials per no-op dispatch pass: large enough that the per-trial
/// dispatch cost (well under a microsecond) accumulates measurably.
const DISPATCH_TRIALS: usize = 1 << 16;

/// Marker record for the dispatch measurement — no payload, but the
/// runner still builds, slots, and returns one per trial.
#[derive(Clone)]
struct NoopTrial;

impl mcs_harness::TrialRecord for NoopTrial {
    fn to_json(&self) -> String {
        "\"noop\":true".into()
    }
    fn from_json(_v: &mcs_harness::JsonValue) -> Option<Self> {
        Some(Self)
    }
}

/// Measure the runner's *pure* dispatch cost: a no-op trial body over
/// [`DISPATCH_TRIALS`] single-threaded trials vs the same loop inline.
/// Returns `None` when the difference is below measurement resolution.
fn dispatch_overhead_ns(seed: u64) -> Option<f64> {
    let inline_pass = || {
        for i in 0..DISPATCH_TRIALS {
            black_box(trial_seed(seed, i));
        }
    };
    inline_pass();
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        inline_pass();
        done += DISPATCH_TRIALS as u64;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let inline_ns = start.elapsed().as_nanos() as f64 / done as f64;

    let config = SweepConfig { trials: DISPATCH_TRIALS, threads: 1, seed };
    let runner_pass = || {
        let mut session = RunSession::new(config.clone());
        let records = session.point("dispatch").run(
            || (),
            |_, trial| {
                black_box(trial.seed);
                NoopTrial
            },
        );
        black_box(records.len());
    };
    runner_pass();
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        runner_pass();
        done += DISPATCH_TRIALS as u64;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let runner_ns = start.elapsed().as_nanos() as f64 / done as f64;

    let overhead = runner_ns - inline_ns;
    (overhead > 0.0).then_some(overhead)
}

/// Time the harness dispatch overhead: the exact per-trial sweep work
/// (deterministic seed derivation, task-set generation, every scheme
/// partitioning, quality summaries) as a bare inline loop — the shape every
/// command used before the harness — against [`run_point`] at one thread.
/// Both sides repeat full `trials`-sized passes until [`MIN_TIMED`]
/// elapses; the difference of per-trial times is the runner's scheduling,
/// record-building, and fold cost.
fn runner_rates(
    params: &GenParams,
    schemes: &[Box<dyn Partitioner + Send + Sync>],
    trials: usize,
    seed: u64,
) -> RunnerPerf {
    let inline_pass = |quality: &mut QualityScratch| {
        for i in 0..trials {
            let ts = generate_task_set(params, trial_seed(seed, i));
            for scheme in schemes {
                if let Ok(partition) = scheme.partition(&ts, params.cores) {
                    black_box(PartitionQuality::summarize(&ts, &partition, quality).is_some());
                }
            }
        }
    };
    let mut quality = QualityScratch::new();
    inline_pass(&mut quality);
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        inline_pass(&mut quality);
        done += trials as u64;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let inline_per_sec = done as f64 / start.elapsed().as_secs_f64();

    let config = SweepConfig { trials, threads: 1, seed };
    black_box(run_point(params, schemes, &config));
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        black_box(run_point(params, schemes, &config));
        done += trials as u64;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let runner_per_sec = done as f64 / start.elapsed().as_secs_f64();

    RunnerPerf { inline_per_sec, runner_per_sec, dispatch_ns_per_trial: dispatch_overhead_ns(seed) }
}

/// Time the online admission hot path: one CA-TPA [`AdmissionEngine`]
/// replays a deterministic lifecycle trace per task set (the exact
/// `mcs-exp admit` per-trial work), repeated until [`MIN_TIMED`] elapses.
/// The warm-up pass also evaluates the rebuild-identity gate and the
/// accept ratio, so both are measured on the same streams the rate is.
fn admission_rates(sets: &[TaskSet], cores: usize, seed: u64) -> AdmissionPerf {
    let trace = TraceParams::default();
    let traces: Vec<Vec<TraceOp>> = sets
        .iter()
        .enumerate()
        .map(|(i, ts)| generate_trace(ts.len(), &trace, trial_seed(seed, i)))
        .collect();
    let decisions_per_pass: u64 = traces
        .iter()
        .map(|ops| ops.iter().filter(|op| matches!(op, TraceOp::Arrive(_))).count() as u64)
        .sum();

    let mut engine = AdmissionEngine::new(AdmissionPolicy::catpa());
    let replay = |engine: &mut AdmissionEngine, ts: &TaskSet, ops: &[TraceOp]| {
        engine.reset(ts, cores);
        for op in ops {
            match *op {
                TraceOp::Arrive(id) => {
                    black_box(engine.admit(id).admitted());
                }
                TraceOp::Depart(id) => {
                    black_box(engine.depart(id));
                }
            }
        }
    };

    // Warm-up pass doubles as the gate/ratio measurement.
    let (mut admits, mut rejects) = (0u64, 0u64);
    let mut state_identical = true;
    for (ts, ops) in sets.iter().zip(&traces) {
        replay(&mut engine, ts, ops);
        let stats = engine.stats();
        admits += stats.admits;
        rejects += stats.rejects;
        state_identical &= engine.state_identical_to_rebuild();
    }
    let accept_ratio = admits as f64 / (admits + rejects) as f64;

    let mut decisions = 0u64;
    let start = Instant::now();
    loop {
        for (ts, ops) in sets.iter().zip(&traces) {
            replay(&mut engine, ts, ops);
        }
        decisions += decisions_per_pass;
        if start.elapsed() >= MIN_TIMED {
            break;
        }
    }
    let admissions_per_sec = decisions as f64 / start.elapsed().as_secs_f64();

    AdmissionPerf { admissions_per_sec, accept_ratio, state_identical }
}

/// Run the benchmark: equivalence check, per-scheme reference/engine rates,
/// then the end-to-end sweep rate.
///
/// `config.trials` sizes both the timed batch (capped at 256 sets — the
/// per-call rates converge long before that) and the sweep timing.
#[must_use]
pub fn run(config: &SweepConfig) -> PerfReport {
    let params = GenParams::default();
    let batch = config.trials.clamp(1, 256);
    let sets: Vec<TaskSet> =
        (0..batch).map(|i| generate_task_set(&params, config.seed + i as u64)).collect();
    let tasks = sets.iter().map(TaskSet::len).sum();

    let reference = reference_paper_schemes();
    let engine = paper_schemes();
    assert_eq!(reference.len(), engine.len(), "scheme families must pair up");

    let mut identical = true;
    for ts in &sets {
        for (r, e) in reference.iter().zip(&engine) {
            let a = r.partition(ts, params.cores);
            let b = e.partition(ts, params.cores);
            if !same_outcome(ts, &a, &b) {
                identical = false;
            }
        }
    }

    let probe = probe_rates(&sets, params.cores);
    let scaling = scaling_rates(config.seed);
    let telemetry = telemetry_rates(&sets, params.cores);

    let mut schemes = Vec::with_capacity(engine.len());
    let (mut ref_total, mut eng_total) = (0.0f64, 0.0f64);
    for (r, e) in reference.iter().zip(&engine) {
        let reference_per_sec = rate(r.as_ref(), &sets, params.cores);
        let engine_per_sec = rate(e.as_ref(), &sets, params.cores);
        // Harmonic accumulation: total rate of running all schemes once is
        // 1 / Σ (1/rate_i), scaled by the number of schemes.
        ref_total += reference_per_sec.recip();
        eng_total += engine_per_sec.recip();
        schemes.push(SchemePerf { scheme: e.name(), reference_per_sec, engine_per_sec });
    }
    let n = schemes.len() as f64;
    let reference_per_sec = n / ref_total;
    let engine_per_sec = n / eng_total;

    let runner = runner_rates(&params, &engine, batch, config.seed);
    let admission = admission_rates(&sets, params.cores, config.seed);

    let sweep_start = Instant::now();
    let point = run_point(&params, &engine, config);
    black_box(&point);
    let sweep_trials_per_sec = config.trials as f64 / sweep_start.elapsed().as_secs_f64();

    PerfReport {
        sets: batch,
        cores: params.cores,
        tasks,
        identical,
        probe,
        scaling,
        telemetry,
        schemes,
        reference_per_sec,
        engine_per_sec,
        runner,
        admission,
        sweep_trials_per_sec,
        sweep_trials: config.trials,
        sweep_threads: config.effective_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_runs_and_agrees_on_a_small_batch() {
        let config = SweepConfig { trials: 6, threads: 1, seed: 11 };
        let r = run(&config);
        assert_eq!(r.sets, 6);
        assert!(r.identical, "reference and engine paths diverged");
        assert!(r.reference_per_sec > 0.0 && r.engine_per_sec > 0.0);
        assert!(r.probe.reference_per_sec > 0.0 && r.probe.scalar_per_sec > 0.0);
        assert!(r.probe.batch_per_sec > 0.0);
        assert!(r.probe.batch_matches_scalar, "batch kernel diverged from scalar verdicts");
        assert_eq!(r.scaling.len(), 9);
        assert!(r.scaling.iter().all(|p| p.batch_per_sec > 0.0 && p.tasks == 16 * p.cores));
        assert!(r.sweep_trials_per_sec > 0.0);
        assert!(r.runner.inline_per_sec > 0.0 && r.runner.runner_per_sec > 0.0);
        if let Some(ns) = r.runner.dispatch_ns_per_trial {
            assert!(ns.is_finite() && ns > 0.0, "dispatch overhead must be positive: {ns}");
        }
        assert!(r.telemetry.raw_per_sec > 0.0 && r.telemetry.engine_per_sec > 0.0);
        assert!(r.telemetry.overhead_pct().is_finite());
        assert!(r.admission.admissions_per_sec > 0.0);
        assert!(r.admission.accept_ratio > 0.0 && r.admission.accept_ratio <= 1.0);
        assert!(r.admission.state_identical, "admission state drifted from the rebuild");
        let json = r.to_json();
        assert!(json.contains("\"partitions_identical\": true"));
        assert!(json.contains("\"probe_path_speedup\""));
        assert!(json.contains("\"probe_path_batch_matches_scalar\": true"));
        assert!(json.contains("\"probe_path_scalar_per_sec\""));
        assert!(json.contains("\"probe_scaling\""));
        assert!(json.contains("\"runner_overhead_ns_per_trial\""));
        assert!(json.contains("\"runner_overhead_below_resolution\""));
        assert!(json.contains("\"telemetry_probe_overhead_pct\""));
        assert!(json.contains("\"admissions_per_sec\""));
        assert!(json.contains("\"admission_accept_ratio\""));
        assert!(json.contains("\"admission_state_identical\": true"));
        assert!(json.ends_with("}\n"));
    }
}
