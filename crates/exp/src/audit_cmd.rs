//! The `mcs-exp audit` subcommand: sweep generated task sets through every
//! partitioning scheme and run the `mcs-audit` invariant rules over each
//! successful partition.
//!
//! Two generator points are swept: the default multi-level parameters for
//! the Theorem-1 family (CA-TPA, FFD/BFD/WFD/NFD, Hybrid, CA-TPA+LS, SA)
//! and a dual-criticality point that additionally exercises the DBF and
//! FP-AMC baselines (their analyses are K = 2 only). The roster comes from
//! [`SchemeRegistry::audit_roster`]; each scheme's context facts (Theorem-1
//! claim, contribution ordering, α, and a re-run closure for the
//! `harness-determinism` rule) are attached from its [`SchemeInfo`]
//! metadata. Every audit `Error` makes the command exit non-zero. The
//! `telemetry-consistency` rule is not part of the per-partition pass: it
//! needs a quiescent counter snapshot, so the binary runs it once after
//! the sweep (reporting via stderr and the exit code only).

use mcs_audit::{AuditContext, ContributionOrdering, Invariant, Registry, Severity};
use mcs_gen::{generate_task_set, GenParams};
use mcs_harness::{JsonValue, RunSession, SchemeFlags, SchemeInfo, SchemeRegistry, TrialRecord};
use mcs_partition::contribution::{contribution, system_totals};
use mcs_partition::Partitioner;

use crate::report::{render_table, Table};
use crate::sweep::SweepConfig;

/// Per-rule finding counts for one scheme.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleTally {
    /// Stable rule id.
    pub rule_id: &'static str,
    /// `Info`-severity findings.
    pub info: usize,
    /// `Warning`-severity findings.
    pub warning: usize,
    /// `Error`-severity findings.
    pub error: usize,
}

/// Audit aggregate for one scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemeAudit {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Task sets attempted.
    pub trials: usize,
    /// Task sets the scheme partitioned (and that were therefore audited).
    pub partitioned: usize,
    /// One tally per standard rule, in registry order.
    pub rules: Vec<RuleTally>,
}

/// Result of the whole audit sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Task sets generated per scheme.
    pub trials: usize,
    /// Per-scheme aggregates.
    pub schemes: Vec<SchemeAudit>,
}

impl AuditOutcome {
    /// Total `Error`-severity findings across all schemes and rules.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.schemes.iter().flat_map(|s| &s.rules).map(|r| r.error).sum()
    }

    /// Total `Warning`-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.schemes.iter().flat_map(|s| &s.rules).map(|r| r.warning).sum()
    }

    /// Per-scheme × per-rule table of violation counts.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["scheme", "partitioned", "rule", "info", "warning", "error"]);
        for s in &self.schemes {
            for r in &s.rules {
                t.push_row([
                    s.scheme.to_string(),
                    format!("{}/{}", s.partitioned, s.trials),
                    r.rule_id.to_string(),
                    r.info.to_string(),
                    r.warning.to_string(),
                    r.error.to_string(),
                ]);
            }
        }
        t
    }

    /// JSON rendering of the sweep aggregate.
    #[must_use]
    pub fn to_json(&self) -> String {
        let schemes: Vec<String> = self
            .schemes
            .iter()
            .map(|s| {
                let rules: Vec<String> = s
                    .rules
                    .iter()
                    .map(|r| {
                        format!(
                            r#"{{"rule":"{}","info":{},"warning":{},"error":{}}}"#,
                            r.rule_id, r.info, r.warning, r.error
                        )
                    })
                    .collect();
                format!(
                    r#"{{"scheme":"{}","trials":{},"partitioned":{},"rules":[{}]}}"#,
                    mcs_audit::diagnostic::json_escape(s.scheme),
                    s.trials,
                    s.partitioned,
                    rules.join(",")
                )
            })
            .collect();
        format!(
            r#"{{"trials":{},"errors":{},"warnings":{},"schemes":[{}]}}"#,
            self.trials,
            self.errors(),
            self.warnings(),
            schemes.join(",")
        )
    }
}

/// The contribution ordering CA-TPA uses, recomputed for the audit context
/// (the `contribution-order` rule re-derives it again, independently).
fn contribution_ordering(ts: &mcs_model::TaskSet) -> ContributionOrdering {
    let totals = system_totals(ts);
    let order = mcs_partition::order_by_contribution(ts);
    let keys = order.iter().map(|&id| contribution(ts.task(id), &totals).max).collect();
    ContributionOrdering { order, keys }
}

/// Per-trial record: for each roster scheme, `None` when it could not
/// partition its task set, otherwise `[info, warning, error]` finding
/// counts per rule, in registry rule order.
#[derive(Clone, Debug, PartialEq, Eq)]
struct AuditTrial {
    per_scheme: Vec<Option<Vec<[usize; 3]>>>,
}

impl TrialRecord for AuditTrial {
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("\"res\":[");
        for (i, s) in self.per_scheme.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match s {
                None => out.push_str("null"),
                Some(tallies) => {
                    out.push('[');
                    for (j, t) in tallies.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{},{},{}]", t[0], t[1], t[2]);
                    }
                    out.push(']');
                }
            }
        }
        out.push(']');
        out
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        let arr = v.get("res")?.as_arr()?;
        let mut per_scheme = Vec::with_capacity(arr.len());
        for s in arr {
            if *s == JsonValue::Null {
                per_scheme.push(None);
                continue;
            }
            let tallies = s
                .as_arr()?
                .iter()
                .map(|t| {
                    let t = t.as_arr()?;
                    if t.len() != 3 {
                        return None;
                    }
                    Some([t[0].as_usize()?, t[1].as_usize()?, t[2].as_usize()?])
                })
                .collect::<Option<Vec<_>>>()?;
            per_scheme.push(Some(tallies));
        }
        Some(Self { per_scheme })
    }
}

/// Audit one partitioning result under every standard rule; returns the
/// per-rule `[info, warning, error]` counts.
fn audit_one(
    registry: &Registry,
    rule_ids: &[&'static str],
    info: &SchemeInfo,
    scheme: &(dyn Partitioner + Send + Sync),
    ts: &mcs_model::TaskSet,
    partition: &mcs_model::Partition,
    flags: &SchemeFlags,
) -> Vec<[usize; 3]> {
    let ordering;
    let rerun = |ts: &mcs_model::TaskSet, cores: usize| scheme.partition(ts, cores).ok();
    let mut ctx = AuditContext::new(ts, partition, info.name)
        .with_theorem1_claim(scheme.certifies_theorem1())
        .with_repartition(&rerun);
    if info.uses_contribution_order {
        ordering = contribution_ordering(ts);
        ctx = ctx.with_ordering(&ordering);
    }
    if let Some(a) = info.effective_alpha(flags) {
        ctx = ctx.with_alpha(a);
    }
    let report = registry.run(&ctx);
    let mut tallies = vec![[0usize; 3]; rule_ids.len()];
    for d in &report.diagnostics {
        let slot = rule_ids
            .iter()
            .position(|&id| id == d.rule_id)
            .expect("diagnostic from an unregistered rule");
        match d.severity {
            Severity::Info => tallies[slot][0] += 1,
            Severity::Warning => tallies[slot][1] += 1,
            Severity::Error => tallies[slot][2] += 1,
        }
    }
    tallies
}

/// Run the audit sweep: `config.trials` task sets per generator point, all
/// schemes, all standard rules, on the harness trial runner (the audit
/// `Registry` is not `Sync`, so each worker builds its own).
#[must_use]
pub fn run(config: &SweepConfig) -> AuditOutcome {
    run_session(&mut RunSession::new(config.clone()))
}

/// The audit sweep on an existing session (enables `--jsonl`/`--resume`).
#[must_use]
pub fn run_session(session: &mut RunSession) -> AuditOutcome {
    // The telemetry rule needs a quiescent global counter snapshot, which
    // only the single-command binary can supply; it runs after the sweep
    // (see `telemetry::quiescent_check` and main.rs) and is kept out of the
    // per-scheme table so the published output and the checkpoint record
    // shape stay stable.
    let rule_ids: Vec<&'static str> = Registry::standard()
        .rules()
        .map(Invariant::id)
        .filter(|&id| id != mcs_audit::TELEMETRY_ID)
        .collect();
    let multi = GenParams::default();
    let dual = GenParams::default().with_levels(2);
    let flags = SchemeFlags::default();
    let scheme_registry = SchemeRegistry::standard();
    let roster = scheme_registry.audit_roster(&flags);

    let records = session.point("audit").run(Registry::standard, |registry, trial| {
        let ts_multi = generate_task_set(&multi, trial.seed);
        let ts_dual = generate_task_set(&dual, trial.seed);
        let per_scheme = roster
            .iter()
            .map(|(info, scheme)| {
                let (ts, params) =
                    if info.dual_only { (&ts_dual, &dual) } else { (&ts_multi, &multi) };
                let partition = scheme.partition(ts, params.cores).ok()?;
                Some(audit_one(registry, &rule_ids, info, scheme.as_ref(), ts, &partition, &flags))
            })
            .collect();
        AuditTrial { per_scheme }
    });

    let trials = records.len();
    let mut partitioned = vec![0usize; roster.len()];
    let mut tallies: Vec<Vec<RuleTally>> = roster
        .iter()
        .map(|_| {
            rule_ids.iter().map(|&rule_id| RuleTally { rule_id, ..Default::default() }).collect()
        })
        .collect();
    for rec in &records {
        assert_eq!(rec.per_scheme.len(), roster.len(), "checkpoint shape mismatch");
        for ((counts, scheme_tallies), done) in
            rec.per_scheme.iter().zip(tallies.iter_mut()).zip(partitioned.iter_mut())
        {
            let Some(counts) = counts else { continue };
            *done += 1;
            assert_eq!(counts.len(), scheme_tallies.len(), "checkpoint rule-count mismatch");
            for (t, c) in scheme_tallies.iter_mut().zip(counts) {
                t.info += c[0];
                t.warning += c[1];
                t.error += c[2];
            }
        }
    }

    let schemes = roster
        .iter()
        .zip(tallies)
        .zip(partitioned)
        .map(|(((info, _), rules), partitioned)| SchemeAudit {
            scheme: info.name,
            trials,
            partitioned,
            rules,
        })
        .collect();
    AuditOutcome { trials, schemes }
}

/// Render the outcome (text or JSON) and report whether any rule errored.
#[must_use]
pub fn render(outcome: &AuditOutcome, json: bool) -> String {
    if json {
        return outcome.to_json();
    }
    let mut out = render_table(&outcome.table());
    out.push_str(&format!(
        "audited {} schemes x {} task sets: {} error(s), {} warning(s)\n",
        outcome.schemes.len(),
        outcome.trials,
        outcome.errors(),
        outcome.warnings()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean_and_covers_all_schemes() {
        let outcome = run(&SweepConfig { trials: 12, threads: 1, seed: 0xA0D17 });
        assert_eq!(outcome.schemes.len(), 10);
        assert_eq!(outcome.errors(), 0, "{}", render(&outcome, false));
        // Every scheme partitioned at least one set at these defaults.
        for s in &outcome.schemes {
            assert!(s.partitioned > 0, "{} never partitioned", s.scheme);
            assert_eq!(s.rules.len(), 8);
            assert!(s.rules.iter().any(|r| r.rule_id == "harness-determinism"));
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let outcome = run(&SweepConfig { trials: 2, threads: 1, seed: 1 });
        let j = outcome.to_json();
        assert!(j.starts_with(r#"{"trials":2,"errors":"#), "{j}");
        assert!(j.contains(r#""scheme":"CA-TPA""#), "{j}");
        assert!(j.contains(r#""rule":"partition-well-formed""#), "{j}");
        assert!(j.ends_with("]}"), "{j}");
    }

    #[test]
    fn table_lists_every_scheme_rule_pair() {
        let outcome = run(&SweepConfig { trials: 1, threads: 1, seed: 2 });
        let table = outcome.table();
        let text = render_table(&table);
        for name in ["CA-TPA", "FFD", "NFD", "Hybrid", "SA", "DBF-FFD"] {
            assert!(text.contains(name), "missing {name} in\n{text}");
        }
    }

    #[test]
    fn audit_trial_record_round_trips() {
        let rec = AuditTrial {
            per_scheme: vec![Some(vec![[0, 0, 0], [1, 2, 3]]), None, Some(vec![[0, 1, 0]])],
        };
        let line = format!("{{{}}}", rec.to_json());
        let back = AuditTrial::from_json(&mcs_harness::json::parse(&line).unwrap()).unwrap();
        assert_eq!(rec, back);
    }
}
