//! The `mcs-exp audit` subcommand: sweep generated task sets through every
//! partitioning scheme and run the `mcs-audit` invariant rules over each
//! successful partition.
//!
//! Two generator points are swept: the default multi-level parameters for
//! the Theorem-1 family (CA-TPA, FFD/BFD/WFD/NFD, Hybrid, CA-TPA+LS, SA)
//! and a dual-criticality point that additionally exercises the DBF and
//! FP-AMC baselines (their analyses are K = 2 only). Every audit `Error`
//! makes the command exit non-zero.

use crossbeam::thread;
use mcs_audit::{AuditContext, ContributionOrdering, Invariant, Registry, Severity};
use mcs_gen::{generate_task_set, GenParams};
use mcs_partition::contribution::{contribution, system_totals};
use mcs_partition::{
    BinPacker, Catpa, CatpaLs, DbfFirstFit, FpAmc, Hybrid, Partitioner, SimAnneal, DEFAULT_ALPHA,
};

use crate::report::{render_table, Table};
use crate::sweep::SweepConfig;

/// Per-rule finding counts for one scheme.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleTally {
    /// Stable rule id.
    pub rule_id: &'static str,
    /// `Info`-severity findings.
    pub info: usize,
    /// `Warning`-severity findings.
    pub warning: usize,
    /// `Error`-severity findings.
    pub error: usize,
}

/// Audit aggregate for one scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemeAudit {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Task sets attempted.
    pub trials: usize,
    /// Task sets the scheme partitioned (and that were therefore audited).
    pub partitioned: usize,
    /// One tally per standard rule, in registry order.
    pub rules: Vec<RuleTally>,
}

/// Result of the whole audit sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Task sets generated per scheme.
    pub trials: usize,
    /// Per-scheme aggregates.
    pub schemes: Vec<SchemeAudit>,
}

impl AuditOutcome {
    /// Total `Error`-severity findings across all schemes and rules.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.schemes.iter().flat_map(|s| &s.rules).map(|r| r.error).sum()
    }

    /// Total `Warning`-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.schemes.iter().flat_map(|s| &s.rules).map(|r| r.warning).sum()
    }

    /// Per-scheme × per-rule table of violation counts.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["scheme", "partitioned", "rule", "info", "warning", "error"]);
        for s in &self.schemes {
            for r in &s.rules {
                t.push_row([
                    s.scheme.to_string(),
                    format!("{}/{}", s.partitioned, s.trials),
                    r.rule_id.to_string(),
                    r.info.to_string(),
                    r.warning.to_string(),
                    r.error.to_string(),
                ]);
            }
        }
        t
    }

    /// JSON rendering of the sweep aggregate.
    #[must_use]
    pub fn to_json(&self) -> String {
        let schemes: Vec<String> = self
            .schemes
            .iter()
            .map(|s| {
                let rules: Vec<String> = s
                    .rules
                    .iter()
                    .map(|r| {
                        format!(
                            r#"{{"rule":"{}","info":{},"warning":{},"error":{}}}"#,
                            r.rule_id, r.info, r.warning, r.error
                        )
                    })
                    .collect();
                format!(
                    r#"{{"scheme":"{}","trials":{},"partitioned":{},"rules":[{}]}}"#,
                    mcs_audit::diagnostic::json_escape(s.scheme),
                    s.trials,
                    s.partitioned,
                    rules.join(",")
                )
            })
            .collect();
        format!(
            r#"{{"trials":{},"errors":{},"warnings":{},"schemes":[{}]}}"#,
            self.trials,
            self.errors(),
            self.warnings(),
            schemes.join(",")
        )
    }
}

/// One roster entry: a scheme plus the context facts the audit should
/// verify about it.
struct Entry {
    scheme: Box<dyn Partitioner + Send + Sync>,
    /// Attach the recomputed contribution ordering (CA-TPA family).
    uses_contribution_order: bool,
    /// The α threshold the scheme runs with, if any.
    alpha: Option<f64>,
    /// Generator point the scheme is swept at.
    dual_only: bool,
}

fn roster() -> Vec<Entry> {
    let e = |scheme: Box<dyn Partitioner + Send + Sync>| Entry {
        scheme,
        uses_contribution_order: false,
        alpha: None,
        dual_only: false,
    };
    vec![
        Entry {
            scheme: Box::new(Catpa::default()),
            uses_contribution_order: true,
            alpha: Some(DEFAULT_ALPHA),
            dual_only: false,
        },
        e(Box::new(BinPacker::ffd())),
        e(Box::new(BinPacker::bfd())),
        e(Box::new(BinPacker::wfd())),
        e(Box::new(BinPacker::nfd())),
        e(Box::<Hybrid>::default()),
        Entry {
            scheme: Box::new(CatpaLs::default()),
            uses_contribution_order: true,
            alpha: Some(DEFAULT_ALPHA),
            dual_only: false,
        },
        e(Box::<SimAnneal>::default()),
        Entry { dual_only: true, ..e(Box::new(DbfFirstFit)) },
        Entry { dual_only: true, ..e(Box::new(FpAmc::dm_du())) },
    ]
}

/// The contribution ordering CA-TPA uses, recomputed for the audit context
/// (the `contribution-order` rule re-derives it again, independently).
fn contribution_ordering(ts: &mcs_model::TaskSet) -> ContributionOrdering {
    let totals = system_totals(ts);
    let order = mcs_partition::order_by_contribution(ts);
    let keys = order.iter().map(|&id| contribution(ts.task(id), &totals).max).collect();
    ContributionOrdering { order, keys }
}

/// Run the audit sweep: `config.trials` task sets per generator point, all
/// schemes, all standard rules. Trials are split across
/// `config.effective_threads()` scoped worker threads (as in
/// [`crate::sweep`]); per-trial seeds make the tallies independent of the
/// thread count.
#[must_use]
pub fn run(config: &SweepConfig) -> AuditOutcome {
    let rule_ids: Vec<&'static str> = Registry::standard().rules().map(Invariant::id).collect();
    let multi = GenParams::default();
    let dual = GenParams::default().with_levels(2);
    let entries = roster();

    let threads = config.effective_threads().max(1).min(config.trials.max(1));
    let chunk = config.trials.div_ceil(threads);
    let blank: Vec<RuleTally> =
        rule_ids.iter().map(|&rule_id| RuleTally { rule_id, ..RuleTally::default() }).collect();

    // Per-worker partial: (partitioned count, per-rule tallies) per scheme.
    let merged: Vec<(usize, Vec<RuleTally>)> = thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(config.trials);
            if lo >= hi {
                break;
            }
            let (entries, multi, dual, blank) = (&entries, &multi, &dual, &blank);
            handles.push(s.spawn(move |_| {
                // `Registry` rules are not `Sync`; each worker builds its own.
                let registry = Registry::standard();
                let mut accs: Vec<(usize, Vec<RuleTally>)> =
                    entries.iter().map(|_| (0, blank.clone())).collect();
                for trial in lo..hi {
                    let seed = config.seed + trial as u64;
                    let ts_multi = generate_task_set(multi, seed);
                    let ts_dual = generate_task_set(dual, seed);
                    for (entry, acc) in entries.iter().zip(&mut accs) {
                        let (ts, params) =
                            if entry.dual_only { (&ts_dual, dual) } else { (&ts_multi, multi) };
                        let Ok(partition) = entry.scheme.partition(ts, params.cores) else {
                            continue;
                        };
                        acc.0 += 1;
                        let ordering;
                        let mut ctx = AuditContext::new(ts, &partition, entry.scheme.name())
                            .with_theorem1_claim(entry.scheme.certifies_theorem1());
                        if entry.uses_contribution_order {
                            ordering = contribution_ordering(ts);
                            ctx = ctx.with_ordering(&ordering);
                        }
                        if let Some(a) = entry.alpha {
                            ctx = ctx.with_alpha(a);
                        }
                        let report = registry.run(&ctx);
                        for d in &report.diagnostics {
                            let slot = acc
                                .1
                                .iter_mut()
                                .find(|r| r.rule_id == d.rule_id)
                                .expect("diagnostic from an unregistered rule");
                            match d.severity {
                                Severity::Info => slot.info += 1,
                                Severity::Warning => slot.warning += 1,
                                Severity::Error => slot.error += 1,
                            }
                        }
                    }
                }
                accs
            }));
        }
        let mut merged: Vec<(usize, Vec<RuleTally>)> =
            entries.iter().map(|_| (0, blank.clone())).collect();
        for h in handles {
            let partial = h.join().expect("audit worker panicked");
            for (m, p) in merged.iter_mut().zip(&partial) {
                m.0 += p.0;
                for (mr, pr) in m.1.iter_mut().zip(&p.1) {
                    mr.info += pr.info;
                    mr.warning += pr.warning;
                    mr.error += pr.error;
                }
            }
        }
        merged
    })
    .expect("audit scope panicked");

    let schemes = entries
        .iter()
        .zip(merged)
        .map(|(e, (partitioned, rules))| SchemeAudit {
            scheme: e.scheme.name(),
            trials: config.trials,
            partitioned,
            rules,
        })
        .collect();
    AuditOutcome { trials: config.trials, schemes }
}

/// Render the outcome (text or JSON) and report whether any rule errored.
#[must_use]
pub fn render(outcome: &AuditOutcome, json: bool) -> String {
    if json {
        return outcome.to_json();
    }
    let mut out = render_table(&outcome.table());
    out.push_str(&format!(
        "audited {} schemes x {} task sets: {} error(s), {} warning(s)\n",
        outcome.schemes.len(),
        outcome.trials,
        outcome.errors(),
        outcome.warnings()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean_and_covers_all_schemes() {
        let outcome = run(&SweepConfig { trials: 12, threads: 1, seed: 0xA0D17 });
        assert_eq!(outcome.schemes.len(), 10);
        assert_eq!(outcome.errors(), 0, "{}", render(&outcome, false));
        // Every scheme partitioned at least one set at these defaults.
        for s in &outcome.schemes {
            assert!(s.partitioned > 0, "{} never partitioned", s.scheme);
            assert_eq!(s.rules.len(), 7);
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let outcome = run(&SweepConfig { trials: 2, threads: 1, seed: 1 });
        let j = outcome.to_json();
        assert!(j.starts_with(r#"{"trials":2,"errors":"#), "{j}");
        assert!(j.contains(r#""scheme":"CA-TPA""#), "{j}");
        assert!(j.contains(r#""rule":"partition-well-formed""#), "{j}");
        assert!(j.ends_with("]}"), "{j}");
    }

    #[test]
    fn table_lists_every_scheme_rule_pair() {
        let outcome = run(&SweepConfig { trials: 1, threads: 1, seed: 2 });
        let table = outcome.table();
        let text = render_table(&table);
        for name in ["CA-TPA", "FFD", "NFD", "Hybrid", "SA", "DBF-FFD"] {
            assert!(text.contains(name), "missing {name} in\n{text}");
        }
    }
}
