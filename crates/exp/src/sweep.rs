//! Parallel Monte-Carlo sweep engine.
//!
//! One *point* = one generator parameterization. For each of `trials` task
//! sets (deterministically seeded), every scheme partitions the same set —
//! the paired design the paper uses — and the four §IV metrics are
//! aggregated: schedulability ratio over all trials; `U_sys`, `U_avg`, `Λ`
//! averaged over the *schedulable* trials of that scheme only.
//!
//! Trials are split across threads with crossbeam scoped threads; per-thread
//! partial sums are merged at the end, so results are independent of the
//! thread count.

use crossbeam::thread;

use mcs_gen::{generate_task_set, GenParams};
use mcs_partition::{PartitionQuality, Partitioner, QualityScratch};

/// Sweep execution knobs.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Task sets per data point (the paper uses 50,000; the default trades
    /// precision for turnaround and is overridable via `--trials`).
    pub trials: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { trials: 2_000, threads: 0, seed: 0x5EED }
    }
}

impl SweepConfig {
    /// Resolved worker-thread count.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

/// Aggregated metrics of one scheme at one sweep point.
#[derive(Clone, Debug, PartialEq)]
pub struct PointResult {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Total trials.
    pub trials: usize,
    /// Trials the scheme found a feasible partition for.
    pub schedulable: usize,
    /// Mean `U_sys` over schedulable trials (NaN if none).
    pub u_sys: f64,
    /// Mean `U_avg` over schedulable trials (NaN if none).
    pub u_avg: f64,
    /// Mean `Λ` over schedulable trials (NaN if none).
    pub imbalance: f64,
}

impl PointResult {
    /// Schedulability ratio in `[0, 1]`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.schedulable as f64 / self.trials as f64
        }
    }

    /// 95 % Wilson interval of the schedulability ratio.
    #[must_use]
    pub fn ratio_interval(&self) -> (f64, f64) {
        crate::stats::wilson_interval(self.schedulable, self.trials)
    }

    /// Whether this scheme's ratio is statistically distinguishable from
    /// another's at this point (non-overlapping 95 % intervals).
    #[must_use]
    pub fn resolved_against(&self, other: &PointResult) -> bool {
        crate::stats::proportions_resolved(
            (self.schedulable, self.trials),
            (other.schedulable, other.trials),
        )
    }
}

#[derive(Clone, Default)]
struct Acc {
    schedulable: usize,
    /// Trials with an evaluable Theorem-1 quality report (schemes whose
    /// admission test is not Theorem 1 — FP-AMC, DBF — may produce
    /// partitions without one).
    with_quality: usize,
    u_sys: f64,
    u_avg: f64,
    imbalance: f64,
}

impl Acc {
    fn merge(&mut self, other: &Acc) {
        self.schedulable += other.schedulable;
        self.with_quality += other.with_quality;
        self.u_sys += other.u_sys;
        self.u_avg += other.u_avg;
        self.imbalance += other.imbalance;
    }
}

/// Run all `schemes` over `trials` generated task sets at one parameter
/// point.
#[must_use]
pub fn run_point(
    params: &GenParams,
    schemes: &[Box<dyn Partitioner + Send + Sync>],
    config: &SweepConfig,
) -> Vec<PointResult> {
    let threads = config.effective_threads().max(1).min(config.trials.max(1));
    let chunk = config.trials.div_ceil(threads);

    let merged: Vec<Acc> = thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(config.trials);
            if lo >= hi {
                break;
            }
            handles.push(s.spawn(move |_| {
                let mut accs = vec![Acc::default(); schemes.len()];
                // Warm per-worker scratch: quality evaluation across the
                // whole chunk runs without a single heap allocation.
                let mut quality = QualityScratch::new();
                for trial in lo..hi {
                    let ts = generate_task_set(params, config.seed + trial as u64);
                    for (i, scheme) in schemes.iter().enumerate() {
                        if let Ok(partition) = scheme.partition(&ts, params.cores) {
                            let a = &mut accs[i];
                            a.schedulable += 1;
                            // Quality is defined via the Theorem-1 core
                            // utilization; schemes with other admission
                            // tests (FP-AMC, DBF) may yield partitions it
                            // cannot rate — count them as schedulable only.
                            if let Some(q) =
                                PartitionQuality::summarize(&ts, &partition, &mut quality)
                            {
                                a.with_quality += 1;
                                a.u_sys += q.u_sys;
                                a.u_avg += q.u_avg;
                                a.imbalance += q.imbalance;
                            }
                        }
                    }
                }
                accs
            }));
        }
        let mut merged = vec![Acc::default(); schemes.len()];
        for h in handles {
            let partial = h.join().expect("sweep worker panicked");
            for (m, p) in merged.iter_mut().zip(&partial) {
                m.merge(p);
            }
        }
        merged
    })
    .expect("sweep scope panicked");

    schemes
        .iter()
        .zip(merged)
        .map(|(scheme, acc)| {
            let n = acc.with_quality as f64;
            PointResult {
                scheme: scheme.name(),
                trials: config.trials,
                schedulable: acc.schedulable,
                u_sys: acc.u_sys / n,
                u_avg: acc.u_avg / n,
                imbalance: acc.imbalance / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_partition::paper_schemes;

    fn small_config(trials: usize) -> SweepConfig {
        SweepConfig { trials, threads: 2, seed: 7 }
    }

    fn small_params() -> GenParams {
        // Small N keeps the test fast.
        GenParams::default().with_n_range(10, 20).with_cores(4)
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let params = small_params();
        let schemes = paper_schemes();
        let a = run_point(&params, &schemes, &SweepConfig { threads: 1, ..small_config(40) });
        let b = run_point(&params, &schemes, &SweepConfig { threads: 4, ..small_config(40) });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.schedulable, y.schedulable);
            assert!((x.u_sys - y.u_sys).abs() < 1e-9 || x.schedulable == 0);
        }
    }

    #[test]
    fn catpa_at_least_matches_wfd() {
        // At moderate load CA-TPA should not be worse than WFD.
        let params = small_params().with_nsu(0.7);
        let schemes = paper_schemes();
        let results = run_point(&params, &schemes, &small_config(60));
        let wfd = results.iter().find(|r| r.scheme == "WFD").unwrap();
        let catpa = results.iter().find(|r| r.scheme == "CA-TPA").unwrap();
        assert!(
            catpa.schedulable >= wfd.schedulable,
            "CA-TPA {} < WFD {}",
            catpa.schedulable,
            wfd.schedulable
        );
    }

    #[test]
    fn ratio_bounds() {
        let params = small_params();
        let schemes = paper_schemes();
        for r in run_point(&params, &schemes, &small_config(20)) {
            assert!(r.ratio() >= 0.0 && r.ratio() <= 1.0);
            if r.schedulable > 0 {
                assert!(r.u_sys > 0.0 && r.u_sys <= 1.0 + 1e-9);
                assert!(r.u_avg > 0.0 && r.u_avg <= r.u_sys + 1e-9);
                assert!(r.imbalance >= 0.0 && r.imbalance <= 1.0);
            }
        }
    }
}

#[cfg(test)]
mod ci_tests {
    use super::*;

    #[test]
    fn intervals_cover_the_point_estimate() {
        let r = PointResult {
            scheme: "X",
            trials: 400,
            schedulable: 100,
            u_sys: 0.9,
            u_avg: 0.8,
            imbalance: 0.1,
        };
        let (lo, hi) = r.ratio_interval();
        assert!(lo < r.ratio() && r.ratio() < hi);
        let other = PointResult { schedulable: 300, ..r.clone() };
        assert!(r.resolved_against(&other));
        let close = PointResult { schedulable: 104, ..r.clone() };
        assert!(!r.resolved_against(&close));
    }
}
