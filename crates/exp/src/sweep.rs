//! Parallel Monte-Carlo sweep engine, on the `mcs-harness` trial runner.
//!
//! One *point* = one generator parameterization. For each of `trials` task
//! sets (deterministically seeded), every scheme partitions the same set —
//! the paired design the paper uses — and the four §IV metrics are
//! aggregated: schedulability ratio over all trials; `U_sys`, `U_avg`, `Λ`
//! averaged over the *schedulable* trials of that scheme only.
//!
//! Trials execute on [`mcs_harness::TrialRunner`]: per-trial records come
//! back indexed by trial and are folded sequentially in trial order, so the
//! aggregate is bit-identical at any `--threads` (and equal to the
//! pre-harness single-threaded loops). With a session checkpoint, each
//! trial's per-scheme outcome streams to JSONL and interrupted sweeps
//! resume without recomputation.

use mcs_gen::{generate_task_set, GenParams};
use mcs_harness::{JsonValue, RunSession, TrialRecord};
use mcs_partition::{PartitionQuality, Partitioner, QualityScratch};

pub use mcs_harness::RunConfig;

/// Sweep execution knobs (the harness [`RunConfig`], kept under the
/// historical name used throughout the experiment modules).
pub type SweepConfig = RunConfig;

/// Aggregated metrics of one scheme at one sweep point.
#[derive(Clone, Debug, PartialEq)]
pub struct PointResult {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Total trials.
    pub trials: usize,
    /// Trials the scheme found a feasible partition for.
    pub schedulable: usize,
    /// Mean `U_sys` over schedulable trials (NaN if none).
    pub u_sys: f64,
    /// Mean `U_avg` over schedulable trials (NaN if none).
    pub u_avg: f64,
    /// Mean `Λ` over schedulable trials (NaN if none).
    pub imbalance: f64,
}

impl PointResult {
    /// Schedulability ratio in `[0, 1]`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.schedulable as f64 / self.trials as f64
        }
    }

    /// 95 % Wilson interval of the schedulability ratio.
    #[must_use]
    pub fn ratio_interval(&self) -> (f64, f64) {
        crate::stats::wilson_interval(self.schedulable, self.trials)
    }

    /// Whether this scheme's ratio is statistically distinguishable from
    /// another's at this point (non-overlapping 95 % intervals).
    #[must_use]
    pub fn resolved_against(&self, other: &PointResult) -> bool {
        crate::stats::proportions_resolved(
            (self.schedulable, self.trials),
            (other.schedulable, other.trials),
        )
    }
}

#[derive(Clone, Default)]
struct Acc {
    schedulable: usize,
    /// Trials with an evaluable Theorem-1 quality report (schemes whose
    /// admission test is not Theorem 1 — FP-AMC, DBF — may produce
    /// partitions without one).
    with_quality: usize,
    u_sys: f64,
    u_avg: f64,
    imbalance: f64,
}

/// One scheme's outcome on one trial.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeTrial {
    /// Whether the scheme found a feasible partition.
    pub schedulable: bool,
    /// `(U_sys, U_avg, Λ)` when the partition has a Theorem-1 quality
    /// report.
    pub quality: Option<(f64, f64, f64)>,
}

/// The per-trial record of a sweep point: every scheme's outcome on the
/// same generated task set (the paired design).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepTrial {
    /// One outcome per scheme, in line-up order.
    pub schemes: Vec<SchemeTrial>,
}

impl TrialRecord for SweepTrial {
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("\"schemes\":[");
        for (i, s) in self.schemes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match s.quality {
                Some((u_sys, u_avg, imb)) => {
                    let _ = write!(
                        out,
                        "{{\"ok\":{},\"usys\":{},\"uavg\":{},\"imb\":{}}}",
                        s.schedulable,
                        mcs_harness::json::fmt_f64(u_sys),
                        mcs_harness::json::fmt_f64(u_avg),
                        mcs_harness::json::fmt_f64(imb)
                    );
                }
                None => {
                    let _ = write!(out, "{{\"ok\":{}}}", s.schedulable);
                }
            }
        }
        out.push(']');
        out
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        let arr = v.get("schemes")?.as_arr()?;
        let mut schemes = Vec::with_capacity(arr.len());
        for s in arr {
            let schedulable = s.get("ok")?.as_bool()?;
            let quality = match s.get("usys") {
                Some(u) => Some((u.as_f64()?, s.get("uavg")?.as_f64()?, s.get("imb")?.as_f64()?)),
                None => None,
            };
            schemes.push(SchemeTrial { schedulable, quality });
        }
        Some(Self { schemes })
    }
}

/// Run all `schemes` over the session's trials at one parameter point.
/// `label` names the point in the session's JSONL stream (unique per run).
#[must_use]
pub fn run_point_in(
    session: &mut RunSession,
    label: &str,
    params: &GenParams,
    schemes: &[Box<dyn Partitioner + Send + Sync>],
) -> Vec<PointResult> {
    let trials = session.config().trials;
    let records = session.point(label).run(QualityScratch::new, |quality, trial| {
        let ts = generate_task_set(params, trial.seed);
        let outcomes = schemes
            .iter()
            .map(|scheme| match scheme.partition(&ts, params.cores) {
                Ok(partition) => {
                    // Quality is defined via the Theorem-1 core utilization;
                    // schemes with other admission tests (FP-AMC, DBF) may
                    // yield partitions it cannot rate — schedulable only.
                    let quality = PartitionQuality::summarize(&ts, &partition, quality)
                        .map(|q| (q.u_sys, q.u_avg, q.imbalance));
                    SchemeTrial { schedulable: true, quality }
                }
                Err(_) => SchemeTrial { schedulable: false, quality: None },
            })
            .collect();
        SweepTrial { schemes: outcomes }
    });

    // Fold in trial order — this ordering is what makes the result
    // independent of the worker schedule.
    let mut accs = vec![Acc::default(); schemes.len()];
    for rec in &records {
        assert_eq!(
            rec.schemes.len(),
            schemes.len(),
            "checkpoint record shape does not match the scheme line-up \
             (resumed file from a different configuration?)"
        );
        for (a, s) in accs.iter_mut().zip(&rec.schemes) {
            if s.schedulable {
                a.schedulable += 1;
            }
            if let Some((u_sys, u_avg, imbalance)) = s.quality {
                a.with_quality += 1;
                a.u_sys += u_sys;
                a.u_avg += u_avg;
                a.imbalance += imbalance;
            }
        }
    }

    schemes
        .iter()
        .zip(accs)
        .map(|(scheme, acc)| {
            let n = acc.with_quality as f64;
            PointResult {
                scheme: scheme.name(),
                trials,
                schedulable: acc.schedulable,
                u_sys: acc.u_sys / n,
                u_avg: acc.u_avg / n,
                imbalance: acc.imbalance / n,
            }
        })
        .collect()
}

/// Run all `schemes` over `trials` generated task sets at one parameter
/// point (no streaming; see [`run_point_in`] for the session variant).
#[must_use]
pub fn run_point(
    params: &GenParams,
    schemes: &[Box<dyn Partitioner + Send + Sync>],
    config: &SweepConfig,
) -> Vec<PointResult> {
    run_point_in(&mut RunSession::new(config.clone()), "point", params, schemes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_partition::paper_schemes;

    fn small_config(trials: usize) -> SweepConfig {
        SweepConfig { trials, threads: 2, seed: 7 }
    }

    fn small_params() -> GenParams {
        // Small N keeps the test fast.
        GenParams::default().with_n_range(10, 20).with_cores(4)
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let params = small_params();
        let schemes = paper_schemes();
        let a = run_point(&params, &schemes, &SweepConfig { threads: 1, ..small_config(40) });
        let b = run_point(&params, &schemes, &SweepConfig { threads: 4, ..small_config(40) });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.schedulable, y.schedulable);
            // The harness folds in trial order, so the float aggregates are
            // bit-identical, not merely close.
            assert_eq!(x.u_sys.to_bits(), y.u_sys.to_bits());
            assert_eq!(x.u_avg.to_bits(), y.u_avg.to_bits());
            assert_eq!(x.imbalance.to_bits(), y.imbalance.to_bits());
        }
    }

    #[test]
    fn killed_sweep_resumes_to_the_uninterrupted_result() {
        let params = small_params();
        let schemes = paper_schemes();
        let config = SweepConfig { trials: 25, threads: 2, seed: 13 };
        let dir = std::env::temp_dir();
        let full_path = dir.join(format!("mcs-sweep-full-{}.jsonl", std::process::id()));
        let killed_path = dir.join(format!("mcs-sweep-killed-{}.jsonl", std::process::id()));

        // Uninterrupted run → reference JSONL + reference results.
        let full = {
            let mut session =
                RunSession::with_checkpoint(config.clone(), &full_path, false, "sweep", "t")
                    .unwrap();
            run_point_in(&mut session, "default", &params, &schemes)
        };
        let reference = std::fs::read_to_string(&full_path).unwrap();

        // Simulate a mid-run kill: header + 12 whole records + one torn
        // line the crash left behind.
        let lines: Vec<&str> = reference.lines().collect();
        let mut partial = lines[..13].join("\n");
        partial.push('\n');
        partial.push_str(&lines[13][..lines[13].len() / 2]);
        std::fs::write(&killed_path, partial).unwrap();

        let resumed = {
            let mut session =
                RunSession::with_checkpoint(config, &killed_path, true, "sweep", "t").unwrap();
            run_point_in(&mut session, "default", &params, &schemes)
        };
        assert_eq!(full.len(), resumed.len());
        for (a, b) in full.iter().zip(&resumed) {
            assert_eq!(a.schedulable, b.schedulable);
            assert_eq!(a.u_sys.to_bits(), b.u_sys.to_bits());
            assert_eq!(a.u_avg.to_bits(), b.u_avg.to_bits());
            assert_eq!(a.imbalance.to_bits(), b.imbalance.to_bits());
        }
        // The resumed stream is byte-identical to the uninterrupted one.
        assert_eq!(std::fs::read_to_string(&killed_path).unwrap(), reference);
        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&killed_path).ok();
    }

    #[test]
    fn catpa_at_least_matches_wfd() {
        // At moderate load CA-TPA should not be worse than WFD.
        let params = small_params().with_nsu(0.7);
        let schemes = paper_schemes();
        let results = run_point(&params, &schemes, &small_config(60));
        let wfd = results.iter().find(|r| r.scheme == "WFD").unwrap();
        let catpa = results.iter().find(|r| r.scheme == "CA-TPA").unwrap();
        assert!(
            catpa.schedulable >= wfd.schedulable,
            "CA-TPA {} < WFD {}",
            catpa.schedulable,
            wfd.schedulable
        );
    }

    #[test]
    fn ratio_bounds() {
        let params = small_params();
        let schemes = paper_schemes();
        for r in run_point(&params, &schemes, &small_config(20)) {
            assert!(r.ratio() >= 0.0 && r.ratio() <= 1.0);
            if r.schedulable > 0 {
                assert!(r.u_sys > 0.0 && r.u_sys <= 1.0 + 1e-9);
                assert!(r.u_avg > 0.0 && r.u_avg <= r.u_sys + 1e-9);
                assert!(r.imbalance >= 0.0 && r.imbalance <= 1.0);
            }
        }
    }

    #[test]
    fn sweep_trial_record_round_trips() {
        let rec = SweepTrial {
            schemes: vec![
                SchemeTrial { schedulable: true, quality: Some((0.91, 0.85, 0.07)) },
                SchemeTrial { schedulable: true, quality: None },
                SchemeTrial { schedulable: false, quality: None },
            ],
        };
        let line = format!("{{{}}}", rec.to_json());
        let back = SweepTrial::from_json(&mcs_harness::json::parse(&line).unwrap()).unwrap();
        assert_eq!(rec, back);
    }
}

#[cfg(test)]
mod ci_tests {
    use super::*;

    #[test]
    fn intervals_cover_the_point_estimate() {
        let r = PointResult {
            scheme: "X",
            trials: 400,
            schedulable: 100,
            u_sys: 0.9,
            u_avg: 0.8,
            imbalance: 0.1,
        };
        let (lo, hi) = r.ratio_interval();
        assert!(lo < r.ratio() && r.ratio() < hi);
        let other = PointResult { schedulable: 300, ..r.clone() };
        assert!(r.resolved_against(&other));
        let close = PointResult { schedulable: 104, ..r.clone() };
        assert!(!r.resolved_against(&close));
    }
}
