//! Extension experiment (beyond the paper's figures): on dual-criticality
//! workloads, compare partitioned **EDF-VD** (CA-TPA and FFD) against
//! partitioned **fixed-priority AMC** (the \[22\] setting, with
//! deadline-monotonic and Audsley priorities) and against the
//! **DBF-based** partitioner (the \[20\] approach) — the three families the
//! paper's related-work section positions CA-TPA among.

use mcs_gen::GenParams;
use mcs_harness::{RunSession, SchemeFlags, SchemeRegistry, DUAL_SET};
use mcs_partition::Partitioner;

use crate::report::{fmt3, Table};
use crate::sweep::{run_point_in, PointResult, SweepConfig};

/// The scheme line-up of the extension comparison ([`DUAL_SET`], resolved
/// through the registry).
#[must_use]
pub fn dual_schemes() -> Vec<Box<dyn Partitioner + Send + Sync>> {
    SchemeRegistry::standard().build_set(&DUAL_SET, &SchemeFlags::default())
}

/// Results of the dual-criticality scheduler-family comparison.
#[derive(Clone, Debug)]
pub struct DualComparison {
    /// Swept NSU values.
    pub xs: Vec<f64>,
    /// `points[i][s]` = scheme `s` at `xs[i]`.
    pub points: Vec<Vec<PointResult>>,
}

/// Sweep NSU ∈ 0.55..0.90 on dual-criticality workloads (K = 2, M = 4,
/// N ∈ [16, 48]; smaller than the paper's default N because the FP-AMC and
/// DBF admission tests are orders of magnitude more expensive than the
/// utilization tests — the "much higher complexity" the paper attributes
/// to \[20\], measured directly by the `analysis` benchmarks).
#[must_use]
pub fn dual_comparison(config: &SweepConfig) -> DualComparison {
    dual_comparison_session(&mut RunSession::new(config.clone()))
}

/// The comparison on an existing session (enables `--jsonl`/`--resume`).
#[must_use]
pub fn dual_comparison_session(session: &mut RunSession) -> DualComparison {
    let xs: Vec<f64> = (0..=7).map(|i| 0.55 + 0.05 * f64::from(i)).collect();
    let points = xs
        .iter()
        .map(|&nsu| {
            let params = GenParams::default()
                .with_levels(2)
                .with_cores(4)
                .with_n_range(16, 48)
                .with_nsu(nsu);
            run_point_in(session, &format!("NSU={nsu}"), &params, &dual_schemes())
        })
        .collect();
    DualComparison { xs, points }
}

impl DualComparison {
    /// Schedulability-ratio table.
    #[must_use]
    pub fn table(&self) -> Table {
        let names: Vec<&'static str> =
            self.points.first().map(|p| p.iter().map(|r| r.scheme).collect()).unwrap_or_default();
        let mut header = vec!["NSU".to_string()];
        header.extend(names.iter().map(ToString::to_string));
        let mut t = Table::new(header);
        for (x, row) in self.xs.iter().zip(&self.points) {
            let mut cells = vec![fmt3(*x)];
            cells.extend(row.iter().map(|r| fmt3(r.ratio())));
            t.push_row(cells);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_point;

    #[test]
    fn tiny_comparison_runs() {
        let config = SweepConfig { trials: 4, threads: 1, seed: 2 };
        let params = GenParams::default().with_levels(2).with_nsu(0.6).with_n_range(10, 16);
        let r = run_point(&params, &dual_schemes(), &config);
        assert_eq!(r.len(), 5);
        for p in &r {
            assert!(p.ratio() >= 0.0 && p.ratio() <= 1.0);
        }
    }

    #[test]
    fn table_has_all_schemes() {
        let config = SweepConfig { trials: 2, threads: 1, seed: 2 };
        // Shrink the sweep by calling run_point directly at two xs.
        let mut cmp = DualComparison { xs: vec![0.6, 0.7], points: Vec::new() };
        for &nsu in &cmp.xs {
            let params = GenParams::default().with_levels(2).with_nsu(nsu).with_n_range(8, 12);
            cmp.points.push(run_point(&params, &dual_schemes(), &config));
        }
        let t = cmp.table();
        assert_eq!(t.header.len(), 6);
        assert_eq!(t.rows.len(), 2);
    }
}
