//! The §III worked example of the paper (Tables I–III).
//!
//! The scraped paper text lost Table I's numeric columns; this instance was
//! reconstructed to be consistent with every value that survived in the
//! prose — τ4 is a level-2 task with `u(1) = 0.339, u(2) = 0.633`
//! (`U^{Ψ1}` after placing it is `0 + min{0.633, 0.339/0.367} = 0.633`),
//! τ2 is a level-2 task with `u(2) = 0.326` whose placement on the empty
//! P2 yields `U^{Ψ2}` = 0.26 (`u(1)/(1 − u(2)) = 0.26 ⇒ u(1) = 0.175`) —
//! and to reproduce the paper's exact behaviour:
//!
//! * the FFD order is τ4, τ1, τ2, τ5, τ3 and FFD fails to place τ3;
//! * the CA-TPA contribution order is τ4, τ2, τ1, τ5, τ3, and CA-TPA maps
//!   τ4→P1, τ2→P2, τ1→P2, τ5→P1, τ3→P2, succeeding on both cores.

use mcs_model::{CritLevel, McTask, TaskBuilder, TaskId, TaskSet};

/// Periods of the example are 1000 ticks so utilizations read as
/// milli-units.
pub const EXAMPLE_PERIOD: u64 = 1_000;

/// Build the 5-task dual-criticality example of §III.
///
/// Display ids follow the paper (τ1..τ5); internally they are `TaskId(0..5)`
/// in the same order.
#[must_use]
pub fn paper_example_task_set() -> TaskSet {
    let spec: [(u8, &[u64]); 5] = [
        (1, &[450]),      // τ1: u(1) = 0.450
        (2, &[175, 326]), // τ2: u(1) = 0.175, u(2) = 0.326
        (1, &[280]),      // τ3: u(1) = 0.280
        (2, &[339, 633]), // τ4: u(1) = 0.339, u(2) = 0.633
        (1, &[300]),      // τ5: u(1) = 0.300
    ];
    let tasks: Vec<McTask> = spec
        .iter()
        .enumerate()
        .map(|(i, (level, wcet))| {
            TaskBuilder::new(TaskId(u32::try_from(i).expect("fits")))
                .period(EXAMPLE_PERIOD)
                .level(*level)
                .wcet(wcet)
                .build()
                .expect("example tasks are valid")
        })
        .collect();
    TaskSet::new(2, tasks).expect("example task set is valid")
}

/// Paper-style display name ("τ1".."τ5") for an example task id.
#[must_use]
pub fn display_name(id: TaskId) -> String {
    format!("τ{}", id.0 + 1)
}

/// Convenience: the example's level-2 criticality.
#[must_use]
pub fn hi() -> CritLevel {
    CritLevel::new(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_partition::{order_by_contribution, BinPacker, Catpa, Partitioner};

    #[test]
    fn ffd_order_matches_paper() {
        let ts = paper_example_task_set();
        let order: Vec<String> = BinPacker::decreasing_max_util_order(&ts)
            .iter()
            .map(|t| display_name(t.id()))
            .collect();
        assert_eq!(order, ["τ4", "τ1", "τ2", "τ5", "τ3"]);
    }

    #[test]
    fn catpa_order_matches_paper() {
        let ts = paper_example_task_set();
        let order: Vec<String> =
            order_by_contribution(&ts).iter().map(|id| display_name(*id)).collect();
        assert_eq!(order, ["τ4", "τ2", "τ1", "τ5", "τ3"]);
    }

    #[test]
    fn ffd_fails_on_two_cores() {
        let ts = paper_example_task_set();
        let err = BinPacker::ffd().partition(&ts, 2).unwrap_err();
        assert_eq!(display_name(err.task), "τ3");
        assert_eq!(err.placed, 4);
    }

    #[test]
    fn catpa_succeeds_with_paper_mapping() {
        use mcs_model::CoreId;
        let ts = paper_example_task_set();
        let p = Catpa::default().partition(&ts, 2).unwrap();
        // Paper's Table III: P1 = {τ4, τ5}, P2 = {τ2, τ1, τ3}.
        assert_eq!(p.core_of(TaskId(3)), Some(CoreId(0))); // τ4
        assert_eq!(p.core_of(TaskId(4)), Some(CoreId(0))); // τ5
        assert_eq!(p.core_of(TaskId(1)), Some(CoreId(1))); // τ2
        assert_eq!(p.core_of(TaskId(0)), Some(CoreId(1))); // τ1
        assert_eq!(p.core_of(TaskId(2)), Some(CoreId(1))); // τ3
    }

    #[test]
    fn intermediate_utilizations_match_paper_prose() {
        use mcs_analysis::Theorem1;
        use mcs_model::UtilTable;
        let ts = paper_example_task_set();
        // After τ4 on an empty core: U = 0.633.
        let t4 = ts.task(TaskId(3));
        let table = UtilTable::from_tasks(2, [t4]);
        let u = Theorem1::compute(&table).core_utilization().unwrap();
        assert!((u - 0.633).abs() < 1e-9, "got {u}");
        // τ2 alone on the other core: U = 0.175/(1-0.326) … wait — the
        // min-term: min{0.326, 0.175/0.674} = 0.2596 ≈ 0.26.
        let t2 = ts.task(TaskId(1));
        let table = UtilTable::from_tasks(2, [t2]);
        let u = Theorem1::compute(&table).core_utilization().unwrap();
        assert!((u - 0.2596).abs() < 1e-3, "got {u}");
    }
}
