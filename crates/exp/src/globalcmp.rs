//! Partitioned-vs-global experiment — the §I premise check. The paper
//! chooses partitioning because "partitioned scheduling generally
//! outperforms global scheduling in terms of the feasibility performance"
//! (Bastoni et al. \[9\]). This experiment puts that premise to the test on
//! the paper's own workload model:
//!
//! * **partitioned**: CA-TPA acceptance (an *analytical* guarantee — the
//!   conservative side);
//! * **global**: global EDF + AMC on `m` cores with free migration,
//!   accepted iff *simulation* shows zero mandatory misses under the
//!   worst-case behaviour of every level (an *empirical upper bound* — the
//!   optimistic side).
//!
//! The comparison is deliberately biased in favour of global scheduling;
//! partitioned CA-TPA holding its own against it is therefore meaningful.
//!
//! Each trial runs a full global-EDF simulation, so this is the
//! wall-clock-heaviest sweep in the suite — and the one that profits most
//! from the harness's `--threads` parallelism.

use mcs_gen::{generate_task_set, GenParams};
use mcs_harness::{JsonValue, RunSession, TrialRecord};
use mcs_model::{CritLevel, McTask};
use mcs_partition::{Catpa, Partitioner};
use mcs_sim::{GlobalSim, LevelCap, SchedulerKind, SimConfig, Trace};

use crate::report::{fmt3, Table};
use crate::sweep::SweepConfig;

/// Results of one NSU point.
#[derive(Clone, Debug, Default)]
pub struct GlobalCmpPoint {
    /// Swept NSU.
    pub nsu: f64,
    /// Trials.
    pub trials: usize,
    /// Task sets CA-TPA accepts analytically.
    pub partitioned: usize,
    /// Task sets surviving global EDF + AMC empirically.
    pub global_ok: usize,
}

/// Full sweep result.
#[derive(Clone, Debug, Default)]
pub struct GlobalCmpResult {
    /// Points.
    pub points: Vec<GlobalCmpPoint>,
}

impl GlobalCmpResult {
    /// Render as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t =
            Table::new(["NSU", "partitioned CA-TPA (analytical)", "global EDF+AMC (empirical)"]);
        for p in &self.points {
            let n = p.trials.max(1) as f64;
            t.push_row([fmt3(p.nsu), fmt3(p.partitioned as f64 / n), fmt3(p.global_ok as f64 / n)]);
        }
        t
    }
}

/// Per-trial record: both sides' verdicts on the same task set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CmpTrial {
    partitioned: bool,
    global_ok: bool,
}

impl TrialRecord for CmpTrial {
    fn to_json(&self) -> String {
        format!("\"part\":{},\"glob\":{}", self.partitioned, self.global_ok)
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        Some(Self { partitioned: v.get("part")?.as_bool()?, global_ok: v.get("glob")?.as_bool()? })
    }
}

/// Run the sweep (K = 2, M = 4, smallish N so the simulations stay cheap).
#[must_use]
pub fn global_comparison(config: &SweepConfig, horizon_periods: u32) -> GlobalCmpResult {
    global_comparison_session(&mut RunSession::new(config.clone()), horizon_periods)
}

/// The sweep on an existing session (enables `--jsonl`/`--resume`).
#[must_use]
pub fn global_comparison_session(
    session: &mut RunSession,
    horizon_periods: u32,
) -> GlobalCmpResult {
    let sim_config = SimConfig { horizon_periods, ..Default::default() };
    let mut result = GlobalCmpResult::default();
    for nsu in [0.55, 0.65, 0.75, 0.85] {
        let params =
            GenParams::default().with_levels(2).with_cores(4).with_n_range(12, 32).with_nsu(nsu);
        let records =
            session.point(&format!("NSU={nsu}")).run(Catpa::default, |catpa, trial| {
                let ts = generate_task_set(&params, trial.seed);
                let partitioned = catpa.partition(&ts, params.cores).is_ok();
                let refs: Vec<&McTask> = ts.tasks().iter().collect();
                let horizon = sim_config.horizon_for(&refs);
                let mut global_ok = true;
                for b in 1..=2u8 {
                    let r = GlobalSim::new(refs.clone(), params.cores, SchedulerKind::PlainEdf)
                        .run(&mut LevelCap::new(b), horizon, &mut Trace::disabled());
                    if r.mandatory_misses(CritLevel::new(b)) > 0 {
                        global_ok = false;
                        break;
                    }
                }
                CmpTrial { partitioned, global_ok }
            });
        let mut point = GlobalCmpPoint { nsu, trials: records.len(), ..Default::default() };
        for rec in &records {
            point.partitioned += usize::from(rec.partitioned);
            point.global_ok += usize::from(rec.global_ok);
        }
        result.points.push(point);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_counts_are_bounded() {
        let config = SweepConfig { trials: 6, threads: 1, seed: 31 };
        let r = global_comparison(&config, 3);
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            assert!(p.partitioned <= p.trials);
            assert!(p.global_ok <= p.trials);
        }
        // At the lightest point both approaches accept nearly everything.
        let light = &r.points[0];
        assert!(light.partitioned >= light.trials - 1);
        assert_eq!(r.table().rows.len(), 4);
    }

    #[test]
    fn counts_are_thread_invariant() {
        let one = global_comparison(&SweepConfig { trials: 8, threads: 1, seed: 5 }, 2);
        let four = global_comparison(&SweepConfig { trials: 8, threads: 4, seed: 5 }, 2);
        for (a, b) in one.points.iter().zip(&four.points) {
            assert_eq!(a.partitioned, b.partitioned);
            assert_eq!(a.global_ok, b.global_ok);
        }
    }
}
