//! Elastic-degradation experiment (beyond the paper): AMC drops every task
//! below the operation mode; the elastic policy serves them from the
//! analysis' *proven* slack instead. This experiment measures, under
//! sustained worst-case behaviour, (a) that the mandatory guarantee holds
//! under both policies and (b) how much low-criticality service each policy
//! delivers.
//!
//! **Finding** (see EXPERIMENTS.md): under *sustained* overruns the elastic
//! policy actually completes ~25 % fewer jobs than plain AMC dropping. The
//! mechanism is AMC's idle-reset rule: dropping lets the core go idle and
//! snap back to level-1 operation almost immediately, restoring full-rate
//! service, while elastic background service keeps the core busy at the
//! elevated mode, pinning every below-mode task at its stretched rate (and
//! wasting budget on degraded jobs that are killed at their level-1 cap).
//! Elastic degradation only pays off when idle resets are rare — exactly
//! the regime its literature assumes.

use mcs_analysis::{elastic_stretch_factors, Theorem1, VdAssignment};
use mcs_gen::{generate_task_set, GenParams};
use mcs_harness::{JsonValue, RunSession, TrialRecord};
use mcs_model::{CoreId, CritLevel, McTask, UtilTable};
use mcs_partition::{Catpa, Partitioner};
use mcs_sim::{CoreSim, DegradationPolicy, LevelCap, SchedulerKind, SimConfig, Trace};

use crate::report::{fmt3, Table};
use crate::sweep::SweepConfig;

/// Aggregate outcome of the elastic experiment.
#[derive(Clone, Debug, Default)]
pub struct ElasticResult {
    /// Partitions simulated.
    pub runs: usize,
    /// Completed jobs under the Drop policy.
    pub drop_completed: u64,
    /// Completed jobs under the Elastic policy.
    pub elastic_completed: u64,
    /// Jobs killed mid-service by the elastic budget cap.
    pub elastic_killed: u64,
    /// Mandatory-guarantee violations (must be zero for both).
    pub violations: usize,
}

impl ElasticResult {
    /// Render as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["policy", "jobs completed", "relative"]);
        let rel = if self.drop_completed == 0 {
            f64::NAN
        } else {
            self.elastic_completed as f64 / self.drop_completed as f64
        };
        t.push_row(["AMC drop".to_string(), self.drop_completed.to_string(), fmt3(1.0)]);
        t.push_row(["elastic".to_string(), self.elastic_completed.to_string(), fmt3(rel)]);
        t
    }
}

/// Per-trial record: `None` when CA-TPA rejected the set; otherwise both
/// policies' service counters summed over the partition's cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct ElasticTrial {
    partitioned: bool,
    drop_completed: u64,
    elastic_completed: u64,
    elastic_killed: u64,
    violations: usize,
}

impl TrialRecord for ElasticTrial {
    fn to_json(&self) -> String {
        if !self.partitioned {
            return "\"ok\":false".to_string();
        }
        format!(
            "\"ok\":true,\"drop\":{},\"elastic\":{},\"killed\":{},\"viol\":{}",
            self.drop_completed, self.elastic_completed, self.elastic_killed, self.violations
        )
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        if !v.get("ok")?.as_bool()? {
            return Some(Self::default());
        }
        Some(Self {
            partitioned: true,
            drop_completed: v.get("drop")?.as_u64()?,
            elastic_completed: v.get("elastic")?.as_u64()?,
            elastic_killed: v.get("killed")?.as_u64()?,
            violations: v.get("viol")?.as_usize()?,
        })
    }
}

/// Run the experiment at a loaded point (NSU = 0.6) under sustained
/// worst-case behaviour, where modes stay elevated for long stretches.
#[must_use]
pub fn elastic_experiment(config: &SweepConfig, horizon_periods: u32) -> ElasticResult {
    elastic_experiment_session(&mut RunSession::new(config.clone()), horizon_periods)
}

/// The experiment on an existing session (enables `--jsonl`/`--resume`).
#[must_use]
pub fn elastic_experiment_session(session: &mut RunSession, horizon_periods: u32) -> ElasticResult {
    let params = GenParams::default().with_n_range(16, 32).with_cores(4).with_nsu(0.6);
    let sim_config = SimConfig { horizon_periods, ..Default::default() };

    let records = session.point("elastic").run(Catpa::default, |catpa, trial| {
        let ts = generate_task_set(&params, trial.seed);
        let Ok(partition) = catpa.partition(&ts, params.cores) else {
            return ElasticTrial::default();
        };
        let mut rec = ElasticTrial { partitioned: true, ..ElasticTrial::default() };
        for core in CoreId::all(params.cores) {
            let tasks: Vec<&McTask> = partition.tasks_on(core).map(|id| ts.task(id)).collect();
            let table = UtilTable::from_tasks(ts.num_levels(), tasks.iter().copied());
            let analysis = Theorem1::compute(&table);
            let vd = VdAssignment::compute(&table, &analysis).expect("CA-TPA output");
            let factors = elastic_stretch_factors(&table, &analysis).expect("feasible");
            let horizon = sim_config.horizon_for(&tasks);
            let top = ts.num_levels();

            let drop_run = CoreSim::new(tasks.clone(), SchedulerKind::EdfVd(vd.clone())).run(
                &mut LevelCap::new(top),
                horizon,
                &mut Trace::disabled(),
            );
            let elastic_run = CoreSim::new(tasks, SchedulerKind::EdfVd(vd))
                .with_degradation(DegradationPolicy::Elastic { factors })
                .run(&mut LevelCap::new(top), horizon, &mut Trace::disabled());

            rec.drop_completed += drop_run.completed;
            rec.elastic_completed += elastic_run.completed;
            rec.elastic_killed += elastic_run.dropped;
            if drop_run.mandatory_misses(CritLevel::new(top)) > 0
                || elastic_run.mandatory_misses(CritLevel::new(top)) > 0
            {
                rec.violations += 1;
            }
        }
        rec
    });

    let mut result = ElasticResult::default();
    for rec in &records {
        if !rec.partitioned {
            continue;
        }
        result.runs += 1;
        result.drop_completed += rec.drop_completed;
        result.elastic_completed += rec.elastic_completed;
        result.elastic_killed += rec.elastic_killed;
        result.violations += rec.violations;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_never_violates_the_guarantee() {
        let config = SweepConfig { trials: 10, threads: 1, seed: 21 };
        let r = elastic_experiment(&config, 4);
        assert!(r.runs > 0, "vacuous");
        assert_eq!(r.violations, 0, "{r:?}");
        // Both policies deliver substantial service; their relative order
        // is a measured finding (the idle-reset effect), not an invariant.
        assert!(r.drop_completed > 0 && r.elastic_completed > 0);
    }
}
