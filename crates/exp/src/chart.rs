//! Terminal line charts for the figure sweeps — a dependency-free stand-in
//! for the paper's plots (`mcs-exp figN --chart`).

use std::fmt::Write as _;

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points; NaN y values are skipped.
    pub points: Vec<(f64, f64)>,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['o', '*', '+', 'x', '#', '@', '%', '&'];

/// Render a multi-series scatter/line chart into a `width × height`
/// character grid with a y-axis and x-axis ticks.
///
/// Ranges are derived from the data; a degenerate y range is padded. Points
/// from later series overwrite earlier ones on collisions (legend order =
/// draw order).
#[must_use]
pub fn render_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let pts = series.iter().flat_map(|s| s.points.iter()).filter(|(_, y)| y.is_finite());
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut any = false;
    for (x, y) in pts {
        any = true;
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if !any {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
        y_min -= 1e-9;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            if !y.is_finite() {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    // Y axis: top, middle, bottom labels.
    for (r, row) in grid.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height / 2 || r == height - 1 {
            format!("{y_here:7.3} |")
        } else {
            "        |".to_string()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label}{}", line.trim_end());
    }
    let _ = writeln!(out, "        +{}", "-".repeat(width));
    let _ = writeln!(out, "         {x_min:<10.3}{:>w$.3}", x_max, w = width.saturating_sub(10));
    // Legend.
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.label))
        .collect();
    let _ = writeln!(out, "         {}", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<Series> {
        vec![
            Series {
                label: "A".into(),
                points: (0..=10).map(|i| (f64::from(i), f64::from(i) / 10.0)).collect(),
            },
            Series {
                label: "B".into(),
                points: (0..=10).map(|i| (f64::from(i), 1.0 - f64::from(i) / 10.0)).collect(),
            },
        ]
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let s = render_chart("demo", &demo(), 40, 10);
        assert!(s.starts_with("demo\n"));
        assert!(s.contains("o A"), "{s}");
        assert!(s.contains("* B"), "{s}");
        assert!(s.contains('|'));
        assert!(s.contains('+'));
        // Extremes appear as axis labels.
        assert!(s.contains("1.000"), "{s}");
        assert!(s.contains("0.000"), "{s}");
    }

    #[test]
    fn increasing_series_slopes_up() {
        let only_a = vec![demo().remove(0)];
        let s = render_chart("t", &only_a, 40, 8);
        let rows: Vec<&str> = s.lines().skip(1).take(8).collect();
        // Topmost glyph must be right of the bottom-most glyph.
        let top_col = rows.first().and_then(|r| r.find('o'));
        let bottom_col = rows.last().and_then(|r| r.find('o'));
        match (top_col, bottom_col) {
            (Some(t), Some(b)) => assert!(t > b, "{s}"),
            other => panic!("missing glyphs {other:?} in\n{s}"),
        }
    }

    #[test]
    fn nan_points_are_skipped() {
        let s = render_chart(
            "t",
            &[Series { label: "A".into(), points: vec![(0.0, f64::NAN), (1.0, 0.5)] }],
            30,
            6,
        );
        assert_eq!(s.matches('o').count(), 2, "{s}"); // 1 point + legend glyph
    }

    #[test]
    fn empty_series_render_placeholder() {
        let s = render_chart("t", &[], 30, 6);
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn constant_series_do_not_divide_by_zero() {
        let s = render_chart(
            "t",
            &[Series { label: "flat".into(), points: vec![(0.0, 0.5), (1.0, 0.5)] }],
            30,
            6,
        );
        assert!(s.contains('o'), "{s}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_canvas() {
        let _ = render_chart("t", &[], 5, 2);
    }
}
