//! The `mcs-exp describe` subcommand: a full schedulability report for a
//! single-core task subset from a file — per-level utilizations, every
//! Theorem-1 condition with its slack, λ factors, virtual-deadline factors,
//! critical scaling headroom, and (for dual-criticality inputs) the DBF and
//! FP-AMC verdicts.

use mcs_analysis::amc::{amc_rtb_audsley, amc_rtb_dm};
use mcs_analysis::{
    critical_scaling, dbf::dbf_schedulable, simple_condition, Theorem1, VdAssignment,
};
use mcs_model::{parse_task_set, CritLevel, LevelUtils, McTask, TaskSet};

use crate::report::{fmt3, render_table, Table};

/// Analyse the input and render the report, or return an error string.
pub fn run(input: &str) -> Result<String, String> {
    let ts: TaskSet = parse_task_set(input).map_err(|e| format!("parse error: {e}"))?;
    Ok(describe(&ts))
}

/// Render the full single-core schedulability report for a task set.
#[must_use]
pub fn describe(ts: &TaskSet) -> String {
    let k = ts.num_levels();
    let table = ts.util_table();
    let analysis = Theorem1::compute(&table);
    let mut out = String::new();

    out.push_str(&format!(
        "task set: N = {}, K = {k}, hyperperiod = {}\n\n",
        ts.len(),
        ts.hyperperiod()
    ));

    // Per-level utilization triangle U_j(k).
    let mut header = vec!["level j".to_string()];
    header.extend(CritLevel::up_to(k).map(|l| format!("U_j({l})")));
    let mut t = Table::new(header);
    for j in CritLevel::up_to(k) {
        let mut row = vec![j.to_string()];
        for kk in CritLevel::up_to(k) {
            row.push(if kk <= j { fmt3(table.util_jk(j, kk)) } else { "-".into() });
        }
        t.push_row(row);
    }
    out.push_str(&render_table(&t));

    out.push_str(&format!(
        "\nEq. (4) own-level total: {} ({})\n",
        fmt3(table.own_level_total()),
        if simple_condition(&table) { "plain EDF sufficient" } else { "exceeds 1" }
    ));

    // Theorem-1 conditions.
    if k >= 2 {
        let mut t = Table::new(["k", "θ(k)", "µ(k)", "A(k)", "holds"]);
        for kk in 1..k {
            t.push_row([
                kk.to_string(),
                analysis.theta(kk).map_or("-".into(), fmt3),
                analysis.mu(kk).map_or("-".into(), fmt3),
                analysis.available(kk).map_or("-".into(), fmt3),
                analysis.condition_holds(kk).to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&render_table(&t));
        let lambdas: Vec<String> = (1..=k)
            .map(|j| analysis.lambda(j).map_or("-".into(), |l| format!("λ{j}={l:.3}")))
            .collect();
        out.push_str(&format!("\n{}\n", lambdas.join("  ")));
    }

    match analysis.core_utilization() {
        Some(u) => out.push_str(&format!(
            "Theorem 1: FEASIBLE (k* = {}, core utilization U = {})\n",
            analysis.smallest_passing().expect("feasible"),
            fmt3(u)
        )),
        None => out.push_str("Theorem 1: INFEASIBLE on one core\n"),
    }

    if let Some(vd) = VdAssignment::compute(&table, &analysis) {
        if (vd.level_k_factor() - 1.0).abs() > 1e-12 {
            out.push_str(&format!(
                "virtual deadlines: level-{k} tasks shrink by x = {:.4} below mode {k}\n",
                vd.level_k_factor()
            ));
        } else {
            out.push_str("virtual deadlines: none needed\n");
        }
    }

    if let Some(s) = critical_scaling(&table) {
        out.push_str(&format!("critical scaling factor: {s:.4} (load headroom ×{s:.2})\n"));
    }

    if k == 2 {
        let refs: Vec<&McTask> = ts.tasks().iter().collect();
        out.push_str(&format!(
            "dual-criticality extras: DBF {}, FP-AMC (DM) {}, FP-AMC (Audsley) {}\n",
            verdict(dbf_schedulable(&refs).schedulable()),
            verdict(amc_rtb_dm(&refs)),
            verdict(amc_rtb_audsley(&refs).is_some()),
        ));
    }
    out
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "feasible"
    } else {
        "infeasible"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describes_a_dual_criticality_set() {
        let input = "K=2\n100,1,50\n1000,2,100,600\n";
        let out = run(input).unwrap();
        assert!(out.contains("Eq. (4) own-level total: 1.100"), "{out}");
        assert!(out.contains("Theorem 1: FEASIBLE"), "{out}");
        assert!(out.contains("x = 0.2000"), "{out}");
        assert!(out.contains("DBF"), "{out}");
        assert!(out.contains("critical scaling factor"), "{out}");
    }

    #[test]
    fn describes_infeasible_sets() {
        let input = "K=1\n10,1,8\n10,1,8\n";
        let out = run(input).unwrap();
        assert!(out.contains("INFEASIBLE"), "{out}");
    }

    #[test]
    fn describes_multi_level_sets() {
        let input = "K=3\n10,1,6\n100,2,5,30\n100,3,5,10,40\n";
        let out = run(input).unwrap();
        // The k = 2 condition carries this set (see the theorem1 tests).
        assert!(out.contains("k* = 2"), "{out}");
        assert!(out.contains("λ2=0.250"), "{out}");
    }

    #[test]
    fn propagates_parse_errors() {
        assert!(run("nonsense").unwrap_err().contains("parse error"));
    }
}
