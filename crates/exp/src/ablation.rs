//! CA-TPA ablation: run the variant battery (each variant disables or swaps
//! one design choice) over a common workload and compare schedulability.

use mcs_gen::{GenParams, WcetGrowth};
use mcs_harness::RunSession;
use mcs_partition::{CatpaVariant, Partitioner};

use crate::report::{fmt3, Table};
use crate::sweep::{run_point_in, PointResult, SweepConfig};

/// Results of the ablation battery at a range of NSU points.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Swept NSU values.
    pub xs: Vec<f64>,
    /// `points[i][v]` = variant `v` at `xs[i]`.
    pub points: Vec<Vec<PointResult>>,
}

/// Run the ablation battery over NSU ∈ {0.5, 0.6, 0.7}.
#[must_use]
pub fn ablation(config: &SweepConfig) -> AblationResult {
    ablation_with(config, WcetGrowth::default())
}

/// Ablation with an explicit WCET-growth reading.
#[must_use]
pub fn ablation_with(config: &SweepConfig, growth: WcetGrowth) -> AblationResult {
    ablation_session(&mut RunSession::new(config.clone()), growth)
}

/// Ablation on an existing session (enables `--jsonl`/`--resume`).
#[must_use]
pub fn ablation_session(session: &mut RunSession, growth: WcetGrowth) -> AblationResult {
    let xs = vec![0.5, 0.6, 0.7];
    let points = xs
        .iter()
        .map(|&nsu| {
            let params = GenParams::default().with_growth(growth).with_nsu(nsu);
            let schemes: Vec<Box<dyn Partitioner + Send + Sync>> = CatpaVariant::battery()
                .into_iter()
                .map(|v| Box::new(v) as Box<dyn Partitioner + Send + Sync>)
                .collect();
            run_point_in(session, &format!("NSU={nsu}"), &params, &schemes)
        })
        .collect();
    AblationResult { xs, points }
}

impl AblationResult {
    /// Schedulability-ratio table: one row per variant, one column per NSU.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut header = vec!["variant".to_string()];
        header.extend(self.xs.iter().map(|x| format!("NSU={x:.1}")));
        let mut t = Table::new(header);
        if let Some(first) = self.points.first() {
            for (v, r0) in first.iter().enumerate() {
                let mut row = vec![r0.scheme.to_string()];
                for point in &self.points {
                    row.push(fmt3(point[v].ratio()));
                }
                t.push_row(row);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ablation_runs() {
        let config = SweepConfig { trials: 4, threads: 2, seed: 9 };
        let r = ablation(&config);
        assert_eq!(r.xs.len(), 3);
        let t = r.table();
        assert_eq!(t.rows.len(), CatpaVariant::battery().len());
        // The full CA-TPA variant is listed first.
        assert_eq!(t.rows[0][0], "CA-TPA(var)");
    }
}
