//! Optimality-gap experiment (beyond the paper): on small instances the
//! branch-and-bound search decides feasibility *exactly*, so each
//! heuristic's acceptance can be compared against the ground truth — how
//! many genuinely-feasible instances does each heuristic miss?

use mcs_gen::GenParams;
use mcs_harness::{JsonValue, RunSession, SchemeFlags, SchemeRegistry, TrialRecord, GAP_SET};
use mcs_partition::{ExactBnb, ExactOutcome, Partitioner};

use crate::report::{fmt3, Table};
use crate::sweep::SweepConfig;

/// Per-scheme acceptance against exact ground truth.
#[derive(Clone, Debug, Default)]
pub struct GapRow {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Instances the scheme accepted.
    pub accepted: usize,
    /// Feasible instances (per exact search) the scheme rejected.
    pub missed: usize,
}

/// Results of the optimality-gap experiment.
#[derive(Clone, Debug, Default)]
pub struct GapResult {
    /// Total instances examined.
    pub trials: usize,
    /// Instances proven feasible by the exact search.
    pub feasible: usize,
    /// Instances where the exact search exhausted its node budget
    /// (excluded from the gap accounting).
    pub undecided: usize,
    /// Per-scheme rows, paper plot order.
    pub rows: Vec<GapRow>,
}

impl GapResult {
    /// Render as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["scheme", "accepted", "missed (of feasible)", "coverage"]);
        for r in &self.rows {
            let coverage =
                if self.feasible == 0 { 1.0 } else { r.accepted as f64 / self.feasible as f64 };
            t.push_row([
                r.scheme.to_string(),
                r.accepted.to_string(),
                r.missed.to_string(),
                fmt3(coverage),
            ]);
        }
        t
    }
}

/// Exact verdict of one instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Truth {
    Feasible,
    Infeasible,
    Undecided,
}

/// Per-trial record: the exact verdict plus each scheme's acceptance, in
/// [`GAP_SET`] order.
#[derive(Clone, Debug, PartialEq)]
struct GapTrial {
    truth: Truth,
    accepted: Vec<bool>,
}

impl TrialRecord for GapTrial {
    fn to_json(&self) -> String {
        let truth = match self.truth {
            Truth::Feasible => "feasible",
            Truth::Infeasible => "infeasible",
            Truth::Undecided => "undecided",
        };
        let acc: Vec<&str> =
            self.accepted.iter().map(|&a| if a { "true" } else { "false" }).collect();
        format!("\"truth\":\"{truth}\",\"acc\":[{}]", acc.join(","))
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        let truth = match v.get("truth")?.as_str()? {
            "feasible" => Truth::Feasible,
            "infeasible" => Truth::Infeasible,
            "undecided" => Truth::Undecided,
            _ => return None,
        };
        let accepted =
            v.get("acc")?.as_arr()?.iter().map(JsonValue::as_bool).collect::<Option<Vec<_>>>()?;
        Some(Self { truth, accepted })
    }
}

/// The experiment's scheme line-up: [`GAP_SET`] with the smaller SA budget
/// (8 000 iterations) the gap experiment has always used.
fn gap_schemes() -> Vec<Box<dyn Partitioner + Send + Sync>> {
    SchemeRegistry::standard()
        .build_set(&GAP_SET, &SchemeFlags::default().with_sa_iterations(8_000))
}

/// Run the gap experiment: small instances (N ∈ [8, 14], M = 3) at a load
/// near the transition so both outcomes are common.
#[must_use]
pub fn optimality_gap(config: &SweepConfig) -> GapResult {
    optimality_gap_session(&mut RunSession::new(config.clone()))
}

/// The gap experiment on an existing session (enables `--jsonl`/`--resume`).
///
/// # Panics
/// Panics if any heuristic accepts an instance the exact search proved
/// infeasible — that would falsify the heuristics' soundness claim.
#[must_use]
pub fn optimality_gap_session(session: &mut RunSession) -> GapResult {
    let params = GenParams::default().with_n_range(8, 14).with_cores(3).with_nsu(0.68);
    let base_seed = session.config().seed;
    let schemes = gap_schemes();
    let mut result = GapResult {
        trials: session.config().trials,
        rows: schemes.iter().map(|s| GapRow { scheme: s.name(), ..Default::default() }).collect(),
        ..Default::default()
    };

    let records = session.point("gap").run(ExactBnb::default, |exact, trial| {
        let ts = mcs_gen::generate_task_set(&params, trial.seed);
        let truth = match exact.decide(&ts, params.cores) {
            ExactOutcome::Unknown => Truth::Undecided,
            ExactOutcome::Feasible(_) => Truth::Feasible,
            ExactOutcome::Infeasible => Truth::Infeasible,
        };
        let accepted = schemes
            .iter()
            .map(|scheme| {
                if truth == Truth::Undecided {
                    return false; // excluded from the accounting anyway
                }
                let ok = scheme.partition(&ts, params.cores).is_ok();
                assert!(
                    !(ok && truth == Truth::Infeasible),
                    "{} accepted an instance the exact search proved infeasible \
                     (seed {}): exactness violated",
                    scheme.name(),
                    trial.seed
                );
                ok
            })
            .collect();
        GapTrial { truth, accepted }
    });

    for (i, rec) in records.iter().enumerate() {
        match rec.truth {
            Truth::Undecided => {
                result.undecided += 1;
                continue;
            }
            Truth::Feasible => result.feasible += 1,
            Truth::Infeasible => {}
        }
        assert_eq!(rec.accepted.len(), result.rows.len(), "checkpoint shape mismatch");
        for (row, &accepted) in result.rows.iter_mut().zip(&rec.accepted) {
            if accepted {
                row.accepted += 1;
                // Re-assert on reloaded records too: a resumed file must
                // satisfy the same exactness invariant as a fresh run.
                assert!(
                    rec.truth == Truth::Feasible,
                    "{} accepted an infeasible instance (seed {})",
                    row.scheme,
                    mcs_gen::trial_seed(base_seed, i)
                );
            } else if rec.truth == Truth::Feasible {
                row.missed += 1;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_experiment_runs_and_is_consistent() {
        let config = SweepConfig { trials: 30, threads: 1, seed: 77 };
        let r = optimality_gap(&config);
        assert_eq!(r.trials, 30);
        assert!(r.feasible <= r.trials);
        for row in &r.rows {
            assert!(row.accepted + row.missed <= r.trials);
            assert!(row.accepted <= r.feasible, "{row:?}");
        }
        // The table renders one row per scheme (5 paper schemes + LS + SA).
        assert_eq!(r.table().rows.len(), 7);
    }

    #[test]
    fn heuristics_never_beat_exact() {
        // Implicitly asserted inside optimality_gap (panic on violation);
        // run a few more trials at a harder point to exercise it.
        let config = SweepConfig { trials: 20, threads: 1, seed: 123 };
        let _ = optimality_gap(&config);
    }
}
