//! Optimality-gap experiment (beyond the paper): on small instances the
//! branch-and-bound search decides feasibility *exactly*, so each
//! heuristic's acceptance can be compared against the ground truth — how
//! many genuinely-feasible instances does each heuristic miss?

use mcs_gen::GenParams;
use mcs_partition::{paper_schemes, CatpaLs, ExactBnb, ExactOutcome, Partitioner, SimAnneal};

use crate::report::{fmt3, Table};
use crate::sweep::SweepConfig;

/// Per-scheme acceptance against exact ground truth.
#[derive(Clone, Debug, Default)]
pub struct GapRow {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Instances the scheme accepted.
    pub accepted: usize,
    /// Feasible instances (per exact search) the scheme rejected.
    pub missed: usize,
}

/// Results of the optimality-gap experiment.
#[derive(Clone, Debug, Default)]
pub struct GapResult {
    /// Total instances examined.
    pub trials: usize,
    /// Instances proven feasible by the exact search.
    pub feasible: usize,
    /// Instances where the exact search exhausted its node budget
    /// (excluded from the gap accounting).
    pub undecided: usize,
    /// Per-scheme rows, paper plot order.
    pub rows: Vec<GapRow>,
}

impl GapResult {
    /// Render as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["scheme", "accepted", "missed (of feasible)", "coverage"]);
        for r in &self.rows {
            let coverage =
                if self.feasible == 0 { 1.0 } else { r.accepted as f64 / self.feasible as f64 };
            t.push_row([
                r.scheme.to_string(),
                r.accepted.to_string(),
                r.missed.to_string(),
                fmt3(coverage),
            ]);
        }
        t
    }
}

/// Run the gap experiment: small instances (N ∈ [8, 14], M = 3) at a load
/// near the transition so both outcomes are common.
#[must_use]
pub fn optimality_gap(config: &SweepConfig) -> GapResult {
    let params = GenParams::default().with_n_range(8, 14).with_cores(3).with_nsu(0.68);
    let exact = ExactBnb::default();
    let mut schemes = paper_schemes();
    // The extension partitioners ride along to show how much of the gap
    // one-move repair and annealing recover.
    schemes.push(Box::new(CatpaLs::default()));
    schemes.push(Box::new(SimAnneal { iterations: 8_000, ..Default::default() }));
    let mut result = GapResult {
        trials: config.trials,
        rows: schemes.iter().map(|s| GapRow { scheme: s.name(), ..Default::default() }).collect(),
        ..Default::default()
    };
    for trial in 0..config.trials {
        let ts = mcs_gen::generate_task_set(&params, config.seed + trial as u64);
        let truth = exact.decide(&ts, params.cores);
        if truth == ExactOutcome::Unknown {
            result.undecided += 1;
            continue;
        }
        let feasible = matches!(truth, ExactOutcome::Feasible(_));
        if feasible {
            result.feasible += 1;
        }
        for (row, scheme) in result.rows.iter_mut().zip(&schemes) {
            let accepted = scheme.partition(&ts, params.cores).is_ok();
            if accepted {
                row.accepted += 1;
                assert!(
                    feasible,
                    "{} accepted an instance the exact search proved infeasible \
                     (seed {}): exactness violated",
                    scheme.name(),
                    config.seed + trial as u64
                );
            } else if feasible {
                row.missed += 1;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_experiment_runs_and_is_consistent() {
        let config = SweepConfig { trials: 30, threads: 1, seed: 77 };
        let r = optimality_gap(&config);
        assert_eq!(r.trials, 30);
        assert!(r.feasible <= r.trials);
        for row in &r.rows {
            assert!(row.accepted + row.missed <= r.trials);
            assert!(row.accepted <= r.feasible, "{row:?}");
        }
        // The table renders one row per scheme (5 paper schemes + LS + SA).
        assert_eq!(r.table().rows.len(), 7);
    }

    #[test]
    fn heuristics_never_beat_exact() {
        // Implicitly asserted inside optimality_gap (panic on violation);
        // run a few more trials at a harder point to exercise it.
        let config = SweepConfig { trials: 20, threads: 1, seed: 123 };
        let _ = optimality_gap(&config);
    }
}
