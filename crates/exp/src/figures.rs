//! The five figures of the paper's evaluation (§IV-B), each a sweep of one
//! parameter with four metric panels:
//!
//! | Figure | swept parameter | values |
//! |---|---|---|
//! | 1 | normalized system utilization (NSU) | 0.40 … 0.80 step 0.05 |
//! | 2 | WCET increment factor (IFC) | 0.30 … 0.70 step 0.10 |
//! | 3 | imbalance threshold α (CA-TPA only) | 0.10 … 0.50 step 0.10 |
//! | 4 | number of cores M | 2, 4, 8, 16, 32 |
//! | 5 | criticality levels K | 2 … 6 |
//!
//! Panels: (a) schedulability ratio, (b) `U_sys`, (c) `U_avg`, (d) `Λ` —
//! (b)–(d) over schedulable task sets only. Everything else uses the paper's
//! defaults `M = 8, K = 4, NSU = 0.6, IFC = 0.4, α = 0.7`.

use mcs_gen::{GenParams, WcetGrowth};
use mcs_harness::{RunSession, SchemeFlags, SchemeRegistry, PAPER_SET};
use mcs_partition::Partitioner;

use crate::report::{fmt3, Table};
use crate::sweep::{run_point_in, PointResult, SweepConfig};

/// Which reading of the baselines' fit test to use (see
/// `mcs_partition::paper_schemes_weak` for the rationale).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Baselines {
    /// Baselines use Eq. (4) then Theorem 1 — the paper-text reading.
    #[default]
    Strong,
    /// Baselines use Eq. (4) only — the classical-literature reading that
    /// reproduces the paper's reported CA-TPA advantage.
    Weak,
}

/// Knobs shared by every figure sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct FigureOptions {
    /// Baseline fit-test reading.
    pub baselines: Baselines,
    /// WCET growth reading.
    pub growth: WcetGrowth,
    /// Draw `K` uniformly from `[2, 6]` per task set (§IV-A's literal
    /// protocol) instead of fixing it at the Table-IV default. Ignored by
    /// Fig. 5, which sweeps `K` explicitly.
    pub random_k: bool,
    /// Override the core count `M` (large-scale sweeps; ignored by Fig. 4,
    /// which sweeps `M` itself).
    pub cores: Option<usize>,
    /// Override the criticality-level count `K` (ignored by Fig. 5, which
    /// sweeps `K` itself).
    pub levels: Option<u8>,
    /// Override the inclusive task-count range `N`.
    pub n_range: Option<(usize, usize)>,
}

/// Which figure to reproduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureId {
    /// Fig. 1: varying NSU.
    Nsu,
    /// Fig. 2: varying IFC.
    Ifc,
    /// Fig. 3: varying α.
    Alpha,
    /// Fig. 4: varying M.
    Cores,
    /// Fig. 5: varying K.
    Levels,
}

impl FigureId {
    /// Parse "fig1".."fig5" / "nsu".."levels".
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fig1" | "nsu" => Some(Self::Nsu),
            "fig2" | "ifc" => Some(Self::Ifc),
            "fig3" | "alpha" => Some(Self::Alpha),
            "fig4" | "cores" | "m" => Some(Self::Cores),
            "fig5" | "levels" | "k" => Some(Self::Levels),
            _ => None,
        }
    }

    /// Paper figure number.
    #[must_use]
    pub fn number(self) -> u8 {
        match self {
            Self::Nsu => 1,
            Self::Ifc => 2,
            Self::Alpha => 3,
            Self::Cores => 4,
            Self::Levels => 5,
        }
    }

    /// X-axis label.
    #[must_use]
    pub fn x_label(self) -> &'static str {
        match self {
            Self::Nsu => "NSU",
            Self::Ifc => "IFC",
            Self::Alpha => "alpha",
            Self::Cores => "M",
            Self::Levels => "K",
        }
    }

    /// Swept x values.
    #[must_use]
    pub fn xs(self) -> Vec<f64> {
        match self {
            Self::Nsu => (0..=8).map(|i| 0.40 + 0.05 * f64::from(i)).collect(),
            Self::Ifc => (0..=4).map(|i| 0.30 + 0.10 * f64::from(i)).collect(),
            Self::Alpha => (1..=5).map(|i| 0.10 * f64::from(i)).collect(),
            Self::Cores => vec![2.0, 4.0, 8.0, 16.0, 32.0],
            Self::Levels => (2..=6).map(f64::from).collect(),
        }
    }

    /// Generator parameters and scheme list at one x value.
    fn point(
        self,
        x: f64,
        options: FigureOptions,
    ) -> (GenParams, Vec<Box<dyn Partitioner + Send + Sync>>) {
        let mut params = GenParams::default().with_growth(options.growth);
        if let Some(m) = options.cores {
            if self != Self::Cores {
                params = params.with_cores(m);
            }
        }
        if let Some(k) = options.levels {
            if self != Self::Levels {
                params = params.with_levels(k);
            }
        }
        if let Some((lo, hi)) = options.n_range {
            params = params.with_n_range(lo, hi);
        }
        // After the explicit K override: `with_level_range` raises `levels`
        // to the range maximum, so the combination stays valid.
        if options.random_k && self != Self::Levels {
            params = params.with_level_range(2, 6);
        }
        let mut flags = match options.baselines {
            Baselines::Strong => SchemeFlags::default(),
            Baselines::Weak => SchemeFlags::weak(),
        };
        if self == Self::Alpha {
            // Only CA-TPA consumes α; the other schemes are flat in x (the
            // paper still plots them as horizontal references).
            flags = flags.with_alpha(x);
        }
        let schemes = SchemeRegistry::standard().build_set(&PAPER_SET, &flags);
        match self {
            Self::Nsu => (params.with_nsu(x), schemes),
            Self::Ifc => (params.with_ifc(x), schemes),
            Self::Alpha => (params, schemes),
            Self::Cores =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                (params.with_cores(x as usize), schemes)
            }
            Self::Levels =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                (params.with_levels(x as u8), schemes)
            }
        }
    }
}

/// All data of one reproduced figure.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Which figure.
    pub id: FigureId,
    /// Swept x values.
    pub xs: Vec<f64>,
    /// `points[i][s]` = scheme `s` at `xs[i]`.
    pub points: Vec<Vec<PointResult>>,
}

/// Run a figure's full sweep (strong baselines, default growth model).
#[must_use]
pub fn figure(id: FigureId, config: &SweepConfig) -> FigureResult {
    figure_with(id, config, Baselines::Strong)
}

/// Run a figure's full sweep with an explicit baseline reading.
#[must_use]
pub fn figure_with(id: FigureId, config: &SweepConfig, baselines: Baselines) -> FigureResult {
    figure_full(id, config, FigureOptions { baselines, ..Default::default() })
}

/// Run a figure's full sweep with explicit readings for every ambiguity
/// (EXPERIMENTS.md maps the combinations).
#[must_use]
pub fn figure_full(id: FigureId, config: &SweepConfig, options: FigureOptions) -> FigureResult {
    figure_session(id, &mut RunSession::new(config.clone()), options)
}

/// Run a figure's full sweep on an existing session (enables `--jsonl`
/// streaming and `--resume`); point labels are `"<x_label>=<x>"`.
#[must_use]
pub fn figure_session(
    id: FigureId,
    session: &mut RunSession,
    options: FigureOptions,
) -> FigureResult {
    let xs = id.xs();
    let points = xs
        .iter()
        .map(|&x| {
            let (params, schemes) = id.point(x, options);
            run_point_in(session, &format!("{}={x}", id.x_label()), &params, &schemes)
        })
        .collect();
    FigureResult { id, xs, points }
}

impl FigureResult {
    /// Scheme names in plot order.
    #[must_use]
    pub fn schemes(&self) -> Vec<&'static str> {
        self.points.first().map(|p| p.iter().map(|r| r.scheme).collect()).unwrap_or_default()
    }

    /// The four metric panels as terminal line charts.
    #[must_use]
    pub fn chart_panels(&self) -> Vec<String> {
        use crate::chart::{render_chart, Series};
        let schemes = self.schemes();
        let metric = |name: &str, f: &dyn Fn(&PointResult) -> f64| -> String {
            let series: Vec<Series> = schemes
                .iter()
                .enumerate()
                .map(|(s, label)| Series {
                    label: (*label).to_string(),
                    points: self
                        .xs
                        .iter()
                        .zip(&self.points)
                        .map(|(x, row)| (*x, f(&row[s])))
                        .collect(),
                })
                .collect();
            render_chart(
                &format!("Figure {}({name}) — vs {}", self.id.number(), self.id.x_label()),
                &series,
                64,
                16,
            )
        };
        vec![
            metric("a: schedulability ratio", &PointResult::ratio),
            metric("b: U_sys", &|r| r.u_sys),
            metric("c: U_avg", &|r| r.u_avg),
            metric("d: imbalance Λ", &|r| r.imbalance),
        ]
    }

    /// The four metric panels as tables: (a) ratio, (b) `U_sys`,
    /// (c) `U_avg`, (d) `Λ`.
    #[must_use]
    pub fn panels(&self) -> Vec<(String, Table)> {
        let schemes = self.schemes();
        let metric = |name: &str, f: &dyn Fn(&PointResult) -> f64| -> (String, Table) {
            let mut header = vec![self.id.x_label().to_string()];
            header.extend(schemes.iter().map(ToString::to_string));
            let mut table = Table::new(header);
            for (x, row) in self.xs.iter().zip(&self.points) {
                let mut cells = vec![fmt3(*x)];
                cells.extend(row.iter().map(|r| fmt3(f(r))));
                table.push_row(cells);
            }
            (format!("Figure {}({name}) — vs {}", self.id.number(), self.id.x_label()), table)
        };
        vec![
            metric("a: schedulability ratio", &PointResult::ratio),
            metric("b: U_sys", &|r| r.u_sys),
            metric("c: U_avg", &|r| r.u_avg),
            metric("d: imbalance Λ", &|r| r.imbalance),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(FigureId::parse("fig1"), Some(FigureId::Nsu));
        assert_eq!(FigureId::parse("alpha"), Some(FigureId::Alpha));
        assert_eq!(FigureId::parse("m"), Some(FigureId::Cores));
        assert_eq!(FigureId::parse("bogus"), None);
    }

    #[test]
    fn xs_match_table_iv_ranges() {
        assert_eq!(FigureId::Nsu.xs().len(), 9);
        assert!((FigureId::Nsu.xs()[0] - 0.4).abs() < 1e-12);
        assert!((FigureId::Nsu.xs()[8] - 0.8).abs() < 1e-12);
        assert_eq!(FigureId::Cores.xs(), vec![2.0, 4.0, 8.0, 16.0, 32.0]);
        assert_eq!(FigureId::Levels.xs(), vec![2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(FigureId::Alpha.xs().len(), 5);
        assert_eq!(FigureId::Ifc.xs().len(), 5);
    }

    #[test]
    fn tiny_figure_runs_end_to_end() {
        // Shrink everything so the test stays fast: 2 x-values via a custom
        // check on the smallest figure (IFC) with few trials.
        let config = SweepConfig { trials: 6, threads: 2, seed: 3 };
        let result = figure(FigureId::Ifc, &config);
        assert_eq!(result.xs.len(), 5);
        assert_eq!(result.points.len(), 5);
        assert_eq!(result.schemes().len(), 5);
        let panels = result.panels();
        assert_eq!(panels.len(), 4);
        for (_, t) in panels {
            assert_eq!(t.rows.len(), 5);
            assert_eq!(t.header.len(), 6);
        }
    }

    #[test]
    fn shape_overrides_apply_to_non_swept_figures() {
        let options = FigureOptions {
            cores: Some(128),
            levels: Some(6),
            n_range: Some((1000, 2000)),
            ..Default::default()
        };
        let (params, _) = FigureId::Nsu.point(0.6, options);
        assert_eq!(params.cores, 128);
        assert_eq!(params.levels, 6);
        assert_eq!(params.n_range, (1000, 2000));
        assert!(params.validate().is_ok());
        // The swept parameter wins over its own override.
        let (params, _) = FigureId::Cores.point(16.0, options);
        assert_eq!(params.cores, 16);
        let (params, _) = FigureId::Levels.point(3.0, options);
        assert_eq!(params.levels, 3);
        // random_k stays valid under a small K override.
        let options = FigureOptions { levels: Some(2), random_k: true, ..Default::default() };
        let (params, _) = FigureId::Nsu.point(0.6, options);
        assert!(params.validate().is_ok());
    }

    #[test]
    fn alpha_figure_swaps_catpa_threshold() {
        let (params, schemes) = FigureId::Alpha.point(0.3, FigureOptions::default());
        assert_eq!(params.cores, 8);
        assert_eq!(schemes.len(), 5);
        assert!(schemes.iter().any(|s| s.name() == "CA-TPA"));
    }
}
