//! The `mcs-exp admit` command: batched online admission-control streams.
//!
//! One *point* replays `trials` deterministic arrival/departure traces
//! (from [`mcs_gen::generate_trace`]) against one [`AdmissionEngine`] per
//! admission policy. Engines are *per-shard*: each harness worker builds
//! its own engine set in the per-worker `init` hook and resets it for every
//! trial, so workers never share mutable state and the folded result is
//! bit-identical at any `--threads` (the stdout of `mcs-exp admit` is
//! byte-identical across shard counts).
//!
//! Every trial also evaluates the admission state gate: after the full
//! churn sequence, the engine's live per-core sums must be bit-identical to
//! a fresh fold over the surviving resident set
//! ([`AdmissionEngine::state_identical_to_rebuild`]). The aggregate flag is
//! the conjunction over all trials and policies — `mcs-exp admit` exits
//! nonzero when it fails.

use mcs_gen::{generate_task_set, generate_trace, GenParams, TraceOp, TraceParams};
use mcs_harness::{JsonValue, RunSession, TrialRecord};
use mcs_partition::{AdmissionEngine, AdmissionPolicy};

/// One policy's outcome over one replayed trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyTrial {
    /// Arrivals the engine admitted (possibly after repair).
    pub admits: u64,
    /// Arrivals no core (and no repair move) could accommodate.
    pub rejects: u64,
    /// Departures of resident tasks (rejected arrivals' later departures
    /// are no-ops and not counted).
    pub departs: u64,
    /// Relocations applied by repair-on-reject.
    pub repair_moves: u64,
    /// Tasks still resident after the last op.
    pub resident: u64,
    /// Whether the live sums were bit-identical to a fresh rebuild of the
    /// surviving set after the full churn sequence.
    pub state_ok: bool,
}

/// The per-trial record of an admission point: every policy's outcome on
/// the same generated task universe and trace (the paired design).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmitTrial {
    /// One outcome per policy, in line-up order.
    pub policies: Vec<PolicyTrial>,
}

impl TrialRecord for AdmitTrial {
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("\"policies\":[");
        for (i, p) in self.policies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"a\":{},\"r\":{},\"d\":{},\"mv\":{},\"res\":{},\"ok\":{}}}",
                p.admits, p.rejects, p.departs, p.repair_moves, p.resident, p.state_ok
            );
        }
        out.push(']');
        out
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        let arr = v.get("policies")?.as_arr()?;
        let mut policies = Vec::with_capacity(arr.len());
        for p in arr {
            policies.push(PolicyTrial {
                admits: p.get("a")?.as_u64()?,
                rejects: p.get("r")?.as_u64()?,
                departs: p.get("d")?.as_u64()?,
                repair_moves: p.get("mv")?.as_u64()?,
                resident: p.get("res")?.as_u64()?,
                state_ok: p.get("ok")?.as_bool()?,
            });
        }
        Some(Self { policies })
    }
}

/// Aggregated admission outcomes of one policy at one point.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmitPointResult {
    /// Policy display name (registry scheme name).
    pub policy: &'static str,
    /// Total trials (traces) replayed.
    pub trials: usize,
    /// Total admitted arrivals over all trials.
    pub admits: u64,
    /// Total rejected arrivals over all trials.
    pub rejects: u64,
    /// Total effective departures over all trials.
    pub departs: u64,
    /// Total repair relocations over all trials.
    pub repair_moves: u64,
    /// Total tasks resident at trace end, summed over trials.
    pub resident: u64,
    /// Whether every trial's final state was bit-identical to a fresh
    /// rebuild of its surviving set.
    pub state_identical: bool,
}

impl AdmitPointResult {
    /// Admitted fraction of all arrivals, in `[0, 1]` (NaN with no
    /// arrivals).
    #[must_use]
    pub fn accept_ratio(&self) -> f64 {
        self.admits as f64 / (self.admits + self.rejects) as f64
    }

    /// Mean number of tasks resident at trace end.
    #[must_use]
    pub fn mean_resident(&self) -> f64 {
        self.resident as f64 / self.trials as f64
    }
}

/// Replay one trace against one (already reset) engine and record the
/// outcome. The caller owns engine lifecycle; the engine's live state is
/// left as of the last op so the rebuild gate sees the churned sums.
fn replay(engine: &mut AdmissionEngine, ops: &[TraceOp]) -> PolicyTrial {
    for op in ops {
        match *op {
            TraceOp::Arrive(id) => {
                // A re-arrival of a task whose earlier admission was
                // rejected is a fresh attempt; the trace guarantees the
                // task is not intended-resident, and the engine asserts it
                // is not actually resident.
                let _ = engine.admit(id);
            }
            TraceOp::Depart(id) => {
                // No-op (false) when the matching arrival was rejected.
                let _ = engine.depart(id);
            }
        }
    }
    let stats = engine.stats();
    PolicyTrial {
        admits: stats.admits,
        rejects: stats.rejects,
        departs: stats.departs,
        repair_moves: stats.repair_moves,
        resident: engine.resident_count() as u64,
        state_ok: engine.state_identical_to_rebuild(),
    }
}

/// Run every `policies` entry over the session's trials at one parameter
/// point. Each trial generates the task universe from `params` and the
/// lifecycle trace from `trace` (both seeded by the trial), then replays
/// the same trace through each policy's per-shard engine.
#[must_use]
pub fn run_point_in(
    session: &mut RunSession,
    label: &str,
    params: &GenParams,
    trace: &TraceParams,
    policies: &[AdmissionPolicy],
) -> Vec<AdmitPointResult> {
    let trials = session.config().trials;
    let records = session.point(label).run(
        // The per-shard engine bank: one engine per policy per worker,
        // reused (via `reset`) across all trials that worker executes.
        || policies.iter().map(|p| AdmissionEngine::new(*p)).collect::<Vec<_>>(),
        |engines, trial| {
            let ts = generate_task_set(params, trial.seed);
            let ops = generate_trace(ts.len(), trace, trial.seed);
            let outcomes = engines
                .iter_mut()
                .map(|engine| {
                    engine.reset(&ts, params.cores);
                    let rec = replay(engine, &ops);
                    engine.flush_telemetry();
                    rec
                })
                .collect();
            AdmitTrial { policies: outcomes }
        },
    );

    // Fold in trial order — this ordering is what makes the result
    // independent of the worker schedule.
    let mut accs = vec![
        AdmitPointResult {
            policy: "",
            trials,
            admits: 0,
            rejects: 0,
            departs: 0,
            repair_moves: 0,
            resident: 0,
            state_identical: true,
        };
        policies.len()
    ];
    for rec in &records {
        assert_eq!(
            rec.policies.len(),
            policies.len(),
            "checkpoint record shape does not match the policy line-up \
             (resumed file from a different configuration?)"
        );
        for (a, p) in accs.iter_mut().zip(&rec.policies) {
            a.admits += p.admits;
            a.rejects += p.rejects;
            a.departs += p.departs;
            a.repair_moves += p.repair_moves;
            a.resident += p.resident;
            a.state_identical &= p.state_ok;
        }
    }
    for (a, p) in accs.iter_mut().zip(policies) {
        a.policy = p.name();
    }
    accs
}

/// Run every policy over `trials` traces at one point (no streaming; see
/// [`run_point_in`] for the session variant).
#[must_use]
pub fn run_point(
    params: &GenParams,
    trace: &TraceParams,
    policies: &[AdmissionPolicy],
    config: &crate::sweep::SweepConfig,
) -> Vec<AdmitPointResult> {
    run_point_in(&mut RunSession::new(config.clone()), "point", params, trace, policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepConfig;

    fn small_params() -> GenParams {
        GenParams::default().with_n_range(10, 20).with_cores(4)
    }

    fn small_trace() -> TraceParams {
        TraceParams::default().with_ops(60)
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let params = small_params();
        let trace = small_trace();
        let policies = AdmissionPolicy::all();
        let base = SweepConfig { trials: 30, threads: 1, seed: 11 };
        let a = run_point(&params, &trace, &policies, &base);
        let b = run_point(&params, &trace, &policies, &SweepConfig { threads: 4, ..base });
        assert_eq!(a, b, "per-shard engines must not leak state across workers");
    }

    #[test]
    fn every_policy_holds_the_rebuild_identity_gate() {
        let params = small_params();
        let trace = TraceParams::default();
        let policies = AdmissionPolicy::all();
        let config = SweepConfig { trials: 10, threads: 2, seed: 3 };
        for r in run_point(&params, &trace, &policies, &config) {
            assert!(r.state_identical, "{} drifted from the rebuild", r.policy);
            assert!(r.admits > 0, "{} admitted nothing", r.policy);
            assert!(r.accept_ratio() > 0.0 && r.accept_ratio() <= 1.0);
            // Conservation: every admitted task either departed or is
            // still resident at trace end.
            assert_eq!(r.admits, r.departs + r.resident, "{} lost tasks", r.policy);
        }
    }

    #[test]
    fn admit_trial_record_round_trips() {
        let rec = AdmitTrial {
            policies: vec![
                PolicyTrial {
                    admits: 40,
                    rejects: 2,
                    departs: 17,
                    repair_moves: 1,
                    resident: 23,
                    state_ok: true,
                },
                PolicyTrial {
                    admits: 0,
                    rejects: 9,
                    departs: 0,
                    repair_moves: 0,
                    resident: 0,
                    state_ok: false,
                },
            ],
        };
        let line = format!("{{{}}}", rec.to_json());
        let back = AdmitTrial::from_json(&mcs_harness::json::parse(&line).unwrap()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn killed_admit_run_resumes_to_the_uninterrupted_result() {
        let params = small_params();
        let trace = small_trace();
        let policies = AdmissionPolicy::all();
        let config = SweepConfig { trials: 20, threads: 2, seed: 29 };
        let dir = std::env::temp_dir();
        let full_path = dir.join(format!("mcs-admit-full-{}.jsonl", std::process::id()));
        let killed_path = dir.join(format!("mcs-admit-killed-{}.jsonl", std::process::id()));

        let full = {
            let mut session =
                RunSession::with_checkpoint(config.clone(), &full_path, false, "admit", "t")
                    .unwrap();
            run_point_in(&mut session, "default", &params, &trace, &policies)
        };
        let reference = std::fs::read_to_string(&full_path).unwrap();

        // Header + 9 whole records + one torn line the crash left behind.
        let lines: Vec<&str> = reference.lines().collect();
        let mut partial = lines[..10].join("\n");
        partial.push('\n');
        partial.push_str(&lines[10][..lines[10].len() / 2]);
        std::fs::write(&killed_path, partial).unwrap();

        let resumed = {
            let mut session =
                RunSession::with_checkpoint(config, &killed_path, true, "admit", "t").unwrap();
            run_point_in(&mut session, "default", &params, &trace, &policies)
        };
        assert_eq!(full, resumed);
        assert_eq!(std::fs::read_to_string(&killed_path).unwrap(), reference);
        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&killed_path).ok();
    }
}
