//! Simulation-backed soundness validation (an experiment the paper implies
//! but does not print): every partition the analysis accepts must, when
//! executed by the EDF-VD + AMC runtime, exhibit **zero** deadline misses of
//! tasks whose criticality is at least the behaviour level exercised.
//!
//! For each trial we generate a task set, partition it with CA-TPA, and —
//! when a feasible partition exists — simulate it under the worst-case
//! behaviour of every level `b = 1..=K`. A miss by a task with `l_i ≥ b`
//! counts as a violation. The expected output is a table of zeros.

use mcs_gen::{generate_task_set, GenParams};
use mcs_harness::{JsonValue, RunSession, TrialRecord};
use mcs_model::CritLevel;
use mcs_partition::{Catpa, Partitioner};
use mcs_sim::system::SystemScheduler;
use mcs_sim::{simulate_partition, LevelCap, SimConfig};

use crate::report::Table;
use crate::sweep::SweepConfig;

/// Outcome of the soundness experiment.
#[derive(Clone, Debug, Default)]
pub struct SoundnessResult {
    /// Trials attempted.
    pub trials: usize,
    /// Trials with a feasible CA-TPA partition (only those are simulated).
    pub partitioned: usize,
    /// Per behaviour level `b`: (simulations run, guarantee violations).
    pub per_level: Vec<(usize, usize)>,
    /// Total mode switches observed (sanity: > 0 for b ≥ 2 workloads).
    pub mode_switches: u64,
}

impl SoundnessResult {
    /// Whether the analysis/runtime pair is empirically sound.
    #[must_use]
    pub fn sound(&self) -> bool {
        self.per_level.iter().all(|&(_, v)| v == 0)
    }

    /// Render as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["behaviour level b", "simulations", "guarantee violations"]);
        for (i, (runs, violations)) in self.per_level.iter().enumerate() {
            t.push_row([(i + 1).to_string(), runs.to_string(), violations.to_string()]);
        }
        t
    }
}

/// Per-trial record: `None` when CA-TPA rejected the set; otherwise the
/// per-level violation verdicts plus the mode switches observed.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SoundnessTrial {
    /// Per behaviour level `b = 1..=K`: whether the guarantee was violated.
    per_level: Option<Vec<bool>>,
    mode_switches: u64,
}

impl TrialRecord for SoundnessTrial {
    fn to_json(&self) -> String {
        match &self.per_level {
            None => "\"ok\":false".to_string(),
            Some(v) => {
                let items: Vec<&str> =
                    v.iter().map(|&x| if x { "true" } else { "false" }).collect();
                format!("\"ok\":true,\"viol\":[{}],\"ms\":{}", items.join(","), self.mode_switches)
            }
        }
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        if !v.get("ok")?.as_bool()? {
            return Some(Self { per_level: None, mode_switches: 0 });
        }
        let per_level =
            v.get("viol")?.as_arr()?.iter().map(JsonValue::as_bool).collect::<Option<Vec<_>>>()?;
        Some(Self { per_level: Some(per_level), mode_switches: v.get("ms")?.as_u64()? })
    }
}

/// Run the soundness experiment.
///
/// `horizon_periods` bounds per-core simulation length (the horizon is
/// `min(hyperperiod, horizon_periods × max period)`).
#[must_use]
pub fn soundness(
    params: &GenParams,
    config: &SweepConfig,
    horizon_periods: u32,
) -> SoundnessResult {
    soundness_session(params, &mut RunSession::new(config.clone()), horizon_periods)
}

/// The experiment on an existing session (enables `--jsonl`/`--resume`).
#[must_use]
pub fn soundness_session(
    params: &GenParams,
    session: &mut RunSession,
    horizon_periods: u32,
) -> SoundnessResult {
    let sim_config = SimConfig { horizon_periods, ..Default::default() };

    let records = session.point("soundness").run(Catpa::default, |catpa, trial| {
        let ts = generate_task_set(params, trial.seed);
        let Ok(partition) = catpa.partition(&ts, params.cores) else {
            return SoundnessTrial { per_level: None, mode_switches: 0 };
        };
        let mut mode_switches = 0;
        let per_level = (1..=params.levels)
            .map(|b| {
                let (report, _) = simulate_partition(
                    &ts,
                    &partition,
                    SystemScheduler::EdfVd,
                    &sim_config,
                    |_| LevelCap::new(b),
                )
                .expect("CA-TPA partitions are feasible on every core");
                mode_switches += report.total().mode_switches;
                !report.guarantee_held(CritLevel::new(b))
            })
            .collect();
        SoundnessTrial { per_level: Some(per_level), mode_switches }
    });

    let mut result = SoundnessResult {
        trials: records.len(),
        per_level: vec![(0, 0); usize::from(params.levels)],
        ..Default::default()
    };
    for rec in &records {
        result.mode_switches += rec.mode_switches;
        let Some(per_level) = &rec.per_level else { continue };
        result.partitioned += 1;
        assert_eq!(per_level.len(), result.per_level.len(), "checkpoint shape mismatch");
        for (entry, &violated) in result.per_level.iter_mut().zip(per_level) {
            entry.0 += 1;
            entry.1 += usize::from(violated);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soundness_run_is_clean() {
        // Keep it small: tiny task sets, short horizons.
        let params = GenParams::default().with_n_range(8, 16).with_cores(4);
        let config = SweepConfig { trials: 10, threads: 1, seed: 42 };
        let r = soundness(&params, &config, 4);
        assert!(r.partitioned > 0, "no partitions formed — test is vacuous");
        assert!(r.sound(), "analysis accepted a partition that missed mandatory deadlines: {r:?}");
        // Worst-case behaviours above level 1 must actually exercise mode
        // switches, otherwise the experiment is not probing AMC at all.
        assert!(r.mode_switches > 0);
    }

    #[test]
    fn table_renders_per_level_rows() {
        let params = GenParams::default().with_n_range(8, 12).with_cores(4).with_levels(3);
        let config = SweepConfig { trials: 3, threads: 1, seed: 1 };
        let r = soundness(&params, &config, 2);
        assert_eq!(r.table().rows.len(), 3);
    }
}
