//! The `mcs-exp partition` subcommand: partition a user-provided task-set
//! file (see `mcs_model::io` for the format), print the mapping and quality
//! metrics, and optionally validate the result by simulation.

use mcs_model::{parse_task_set, CoreId, CritLevel, TaskSet};
use mcs_partition::{BinPacker, Catpa, CatpaLs, Hybrid, PartitionQuality, Partitioner, SimAnneal};
use mcs_sim::system::SystemScheduler;
use mcs_sim::{simulate_partition, LevelCap, SimConfig};

use crate::report::{fmt3, render_table, Table};

/// Look up a scheme by CLI name.
pub fn scheme_by_name(name: &str) -> Option<Box<dyn Partitioner + Send + Sync>> {
    match name.to_ascii_lowercase().as_str() {
        "catpa" | "ca-tpa" => Some(Box::new(Catpa::default())),
        "ffd" => Some(Box::new(BinPacker::ffd())),
        "bfd" => Some(Box::new(BinPacker::bfd())),
        "wfd" => Some(Box::new(BinPacker::wfd())),
        "nfd" => Some(Box::new(BinPacker::nfd())),
        "hybrid" => Some(Box::new(Hybrid::default())),
        "catpa-ls" | "ls" => Some(Box::new(CatpaLs::default())),
        "sa" | "anneal" => Some(Box::new(SimAnneal::default())),
        _ => None,
    }
}

/// Run the subcommand; returns the rendered report or an error string.
pub fn run(input: &str, cores: usize, scheme_name: &str, validate: bool) -> Result<String, String> {
    let ts: TaskSet = parse_task_set(input).map_err(|e| format!("parse error: {e}"))?;
    let scheme = scheme_by_name(scheme_name).ok_or_else(|| {
        format!("unknown scheme {scheme_name:?} (catpa|ffd|bfd|wfd|nfd|hybrid|catpa-ls|sa)")
    })?;

    let mut out = String::new();
    out.push_str(&format!(
        "task set: N = {}, K = {}, raw level-1 utilization = {:.3}\n\n",
        ts.len(),
        ts.num_levels(),
        ts.raw_util()
    ));

    let partition = match scheme.partition(&ts, cores) {
        Ok(p) => p,
        Err(f) => {
            return Err(format!(
                "{} found no feasible partition on {cores} cores: {f}",
                scheme.name()
            ))
        }
    };
    let quality =
        PartitionQuality::evaluate(&ts, &partition).expect("partitioner output passes Theorem 1");

    let mut table = Table::new(["core", "tasks", "U"]);
    for core in CoreId::all(cores) {
        let ids: Vec<String> = partition.tasks_on(core).map(|id| format!("τ{}", id.0)).collect();
        table.push_row([core.to_string(), ids.join(" "), fmt3(quality.per_core[core.index()])]);
    }
    out.push_str(&render_table(&table));
    out.push_str(&format!(
        "\nU_sys = {:.3}, U_avg = {:.3}, imbalance Λ = {:.3}\n",
        quality.u_sys, quality.u_avg, quality.imbalance
    ));

    if validate {
        let k = ts.num_levels();
        for b in 1..=k {
            let (report, _) = simulate_partition(
                &ts,
                &partition,
                SystemScheduler::EdfVd,
                &SimConfig { horizon_periods: 8, ..Default::default() },
                |_| LevelCap::new(b),
            )
            .map_err(|e| e.to_string())?;
            let ok = report.guarantee_held(CritLevel::new(b));
            out.push_str(&format!(
                "simulated worst-case behaviour level {b}: {}\n",
                if ok { "guarantee held" } else { "GUARANTEE VIOLATED" }
            ));
            if !ok {
                return Err(out);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "K=2\n100,1,30\n100,2,10,25\n200,1,60\n200,2,20,50\n";

    #[test]
    fn partitions_and_reports() {
        let out = run(DEMO, 2, "catpa", false).unwrap();
        assert!(out.contains("U_sys"), "{out}");
        assert!(out.contains("P1"), "{out}");
    }

    #[test]
    fn validation_passes_for_feasible_input() {
        let out = run(DEMO, 2, "ffd", true).unwrap();
        assert!(out.contains("guarantee held"), "{out}");
        assert!(!out.contains("VIOLATED"), "{out}");
    }

    #[test]
    fn all_scheme_names_resolve() {
        for n in ["catpa", "CA-TPA", "ffd", "bfd", "wfd", "nfd", "hybrid", "catpa-ls", "sa"] {
            assert!(scheme_by_name(n).is_some(), "{n}");
        }
        assert!(scheme_by_name("bogus").is_none());
    }

    #[test]
    fn infeasible_input_reports_cleanly() {
        let overload = "K=1\n10,1,8\n10,1,8\n10,1,8\n";
        let err = run(overload, 2, "catpa", false).unwrap_err();
        assert!(err.contains("no feasible partition"), "{err}");
    }

    #[test]
    fn parse_errors_propagate() {
        let err = run("garbage line\n", 2, "catpa", false).unwrap_err();
        assert!(err.contains("parse error"), "{err}");
    }
}
