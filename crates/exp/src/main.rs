//! `mcs-exp` — command-line experiment runner.
//!
//! ```text
//! mcs-exp <command> [--trials N] [--threads N] [--seed S] [--csv]
//!         [--horizon-periods H] [--jsonl PATH] [--resume]
//!
//! commands:
//!   fig1 | fig2 | fig3 | fig4 | fig5   reproduce one figure (4 panels each)
//!   figs                               all five figures
//!   table1 | table2 | table3 | table4  the paper's tables
//!   tables                             all four tables
//!   sweep                              one default-point paired sweep
//!   admit                              online admission-control streams
//!                                      (per-shard engines, rebuild gate)
//!   soundness                          simulation-backed validation
//!   ablation                           CA-TPA variant battery
//!   dualcmp                            EDF-VD vs FP-AMC vs DBF (K = 2)
//!   gap | optgap                       heuristics vs exact branch-and-bound
//!   partition --file F [--cores N] [--scheme S] [--validate]
//!                                      partition a task-set file
//!   audit [--json]                     invariant audit over all schemes
//!   perf [--json]                      probe-path throughput benchmark
//!                                      (also records BENCH_partition.json)
//!   profile                            phase-time breakdown + top counters
//!                                      for a default-point sweep
//!   all                                everything above
//! ```
//!
//! `--cores M`, `--levels K`, and `--tasks N` (or `--tasks LO:HI`)
//! override the generator shape for `sweep` and the figure commands —
//! large-scale runs (128–1024 cores, `K` up to 8, task sets in the tens of
//! thousands) ride the same SoA batch probe kernel as the defaults, and
//! stdout stays byte-identical across `--threads` settings. The swept
//! parameter of a figure always wins over its own override (`fig4` ignores
//! `--cores`; `fig5` ignores `--levels`).
//!
//! `--jsonl PATH` streams every trial record to a checkpointed JSONL file;
//! a later identical invocation with `--resume` picks up where an
//! interrupted sweep stopped. With an aggregate command (`figs`, `all`) or
//! several commands, each sub-command writes `PATH-<cmd>.jsonl` siblings.
//!
//! `--telemetry PATH` enables span timing and, after the run, writes the
//! `mcs-obs` JSONL sidecar (provenance header, counters, phase timings,
//! per-worker stats) to PATH (`-` = stderr) plus a human summary to
//! stderr. Telemetry never writes to stdout: published tables are
//! byte-identical with or without it.

#![forbid(unsafe_code)]

use std::env;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use mcs_exp::ablation::ablation_session;
use mcs_exp::audit_cmd;
use mcs_exp::describe;
use mcs_exp::elastic_exp::elastic_experiment_session;
use mcs_exp::extension::dual_comparison_session;
use mcs_exp::figures::{figure_session, Baselines, FigureId, FigureOptions};
use mcs_exp::globalcmp::global_comparison_session;
use mcs_exp::optgap::optimality_gap_session;
use mcs_exp::overhead::overhead_sweep_session;
use mcs_exp::partition_cmd;
use mcs_exp::report::{fmt3, render_csv, render_table, Table};
use mcs_exp::soundness::soundness_session;
use mcs_exp::sweep::{run_point_in, SweepConfig};
use mcs_exp::tables;
use mcs_gen::GenParams;
use mcs_gen::TraceParams;
use mcs_gen::WcetGrowth;
use mcs_harness::{RunSession, SchemeFlags, SchemeRegistry, PAPER_SET};
use mcs_partition::AdmissionPolicy;

struct Options {
    commands: Vec<String>,
    /// `partition` subcommand inputs: file, cores, scheme, validate.
    partition_file: Option<String>,
    partition_cores: usize,
    partition_scheme: String,
    partition_validate: bool,
    config: SweepConfig,
    csv: bool,
    json: bool,
    chart: bool,
    horizon_periods: u32,
    baselines: Baselines,
    growth: WcetGrowth,
    random_k: bool,
    /// Generator-shape overrides for sweeps and figures (`--cores`,
    /// `--levels`, `--tasks`): core counts up to 1024, `K` up to 8, task
    /// sets into the tens of thousands.
    gen_cores: Option<usize>,
    gen_levels: Option<u8>,
    gen_tasks: Option<(usize, usize)>,
    /// Stream trial records to this JSONL checkpoint file.
    jsonl: Option<String>,
    /// Resume from an existing compatible checkpoint instead of truncating.
    resume: bool,
    /// Write the telemetry JSONL sidecar here after the run (`-` = stderr).
    telemetry: Option<String>,
}

impl Options {
    /// Whether more than one leaf command will run (each then gets its own
    /// derived checkpoint file so streams don't clobber each other).
    fn multi_command(&self) -> bool {
        self.commands.len() > 1
            || self.commands.iter().any(|c| matches!(c.as_str(), "figs" | "all"))
    }

    /// Build the run session for one leaf command. `params` is the
    /// command's parameter fingerprint, checked on `--resume`.
    fn session(&self, cmd: &str, params: &str) -> Result<RunSession, String> {
        let Some(base) = &self.jsonl else {
            return Ok(RunSession::new(self.config.clone()));
        };
        let path = if self.multi_command() { derive_jsonl_path(base, cmd) } else { base.clone() };
        RunSession::with_checkpoint(self.config.clone(), Path::new(&path), self.resume, cmd, params)
    }
}

impl Options {
    /// Apply the generator-shape overrides to one parameter set.
    fn apply_shape(&self, mut params: GenParams) -> GenParams {
        if let Some(m) = self.gen_cores {
            params = params.with_cores(m);
        }
        if let Some(k) = self.gen_levels {
            params = params.with_levels(k);
        }
        if let Some((lo, hi)) = self.gen_tasks {
            params = params.with_n_range(lo, hi);
        }
        params
    }

    /// Checkpoint-fingerprint suffix for the overrides — empty when none
    /// are set, so default invocations keep their historical fingerprints.
    fn shape_fingerprint(&self) -> String {
        let mut s = String::new();
        if let Some(m) = self.gen_cores {
            let _ = write!(s, " cores={m}");
        }
        if let Some(k) = self.gen_levels {
            let _ = write!(s, " levels={k}");
        }
        if let Some((lo, hi)) = self.gen_tasks {
            let _ = write!(s, " tasks={lo}:{hi}");
        }
        s
    }
}

/// `results/run.jsonl` + `fig2` → `results/run-fig2.jsonl`.
fn derive_jsonl_path(base: &str, cmd: &str) -> String {
    match base.strip_suffix(".jsonl") {
        Some(stem) => format!("{stem}-{cmd}.jsonl"),
        None => format!("{base}-{cmd}"),
    }
}

fn usage() -> &'static str {
    "usage: mcs-exp <fig1|fig2|fig3|fig4|fig5|figs|table1|table2|table3|table4|tables|sweep|admit|soundness|ablation|dualcmp|gap|optgap|overhead|elastic|globalcmp|partition|describe|audit|perf|profile|all>\n       [--trials N] [--threads N] [--seed S] [--csv] [--json] [--horizon-periods H] [--weak-baselines] [--geometric] [--random-k] [--chart] [--jsonl PATH] [--resume] [--telemetry PATH]\n       [--cores M] [--levels K] [--tasks N|LO:HI]   generator-shape overrides for sweep/figures (M up to 1024, K up to 8, N into the tens of thousands)"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        commands: Vec::new(),
        partition_file: None,
        partition_cores: 4,
        partition_scheme: "catpa".to_string(),
        partition_validate: false,
        config: SweepConfig::default(),
        csv: false,
        json: false,
        chart: false,
        horizon_periods: 8,
        baselines: Baselines::Strong,
        growth: WcetGrowth::default(),
        random_k: false,
        gen_cores: None,
        gen_levels: None,
        gen_tasks: None,
        jsonl: None,
        resume: false,
        telemetry: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let v = args.next().ok_or("--trials needs a value")?;
                opts.config.trials = v.parse().map_err(|_| format!("bad --trials: {v}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.config.threads = v.parse().map_err(|_| format!("bad --threads: {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.config.seed = v.parse().map_err(|_| format!("bad --seed: {v}"))?;
            }
            "--horizon-periods" => {
                let v = args.next().ok_or("--horizon-periods needs a value")?;
                opts.horizon_periods =
                    v.parse().map_err(|_| format!("bad --horizon-periods: {v}"))?;
            }
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--chart" => opts.chart = true,
            "--weak-baselines" => opts.baselines = Baselines::Weak,
            "--geometric" => opts.growth = WcetGrowth::Geometric,
            "--random-k" => opts.random_k = true,
            "--jsonl" => opts.jsonl = Some(args.next().ok_or("--jsonl needs a path")?),
            "--resume" => opts.resume = true,
            "--telemetry" => {
                opts.telemetry = Some(args.next().ok_or("--telemetry needs a path (or -)")?);
            }
            "--file" => opts.partition_file = Some(args.next().ok_or("--file needs a path")?),
            "--cores" => {
                let v = args.next().ok_or("--cores needs a value")?;
                let m: usize = v.parse().map_err(|_| format!("bad --cores: {v}"))?;
                if m == 0 {
                    return Err("--cores must be >= 1".into());
                }
                opts.partition_cores = m;
                opts.gen_cores = Some(m);
            }
            "--levels" => {
                let v = args.next().ok_or("--levels needs a value")?;
                let k: u8 = v.parse().map_err(|_| format!("bad --levels: {v}"))?;
                if !(1..=8).contains(&k) {
                    return Err("--levels must be in 1..=8".into());
                }
                opts.gen_levels = Some(k);
            }
            "--tasks" => {
                let v = args.next().ok_or("--tasks needs N or LO:HI")?;
                let (lo, hi) = match v.split_once(':') {
                    Some((a, b)) => (
                        a.parse().map_err(|_| format!("bad --tasks: {v}"))?,
                        b.parse().map_err(|_| format!("bad --tasks: {v}"))?,
                    ),
                    None => {
                        let n: usize = v.parse().map_err(|_| format!("bad --tasks: {v}"))?;
                        (n, n)
                    }
                };
                if lo == 0 || lo > hi {
                    return Err("--tasks must satisfy 1 <= LO <= HI".into());
                }
                opts.gen_tasks = Some((lo, hi));
            }
            "--scheme" => {
                opts.partition_scheme = args.next().ok_or("--scheme needs a name")?;
            }
            "--validate" => opts.partition_validate = true,
            "--help" | "-h" => return Err(usage().to_string()),
            cmd if !cmd.starts_with('-') => opts.commands.push(cmd.to_string()),
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    if opts.commands.is_empty() {
        return Err(usage().to_string());
    }
    if opts.resume && opts.jsonl.is_none() {
        return Err(format!("--resume requires --jsonl PATH\n{}", usage()));
    }
    Ok(opts)
}

fn print_table(title: &str, table: &Table, csv: bool) {
    if csv {
        print!("# {title}\n{}", render_csv(table));
    } else {
        println!("== {title} ==");
        println!("{}", render_table(table));
    }
}

fn run_figure(id: FigureId, opts: &Options) -> Result<(), String> {
    eprintln!(
        "[mcs-exp] figure {}: {} trials/point, {} threads",
        id.number(),
        opts.config.trials,
        opts.config.effective_threads()
    );
    let options = FigureOptions {
        baselines: opts.baselines,
        growth: opts.growth,
        random_k: opts.random_k,
        cores: opts.gen_cores,
        levels: opts.gen_levels,
        n_range: opts.gen_tasks,
    };
    let params = format!(
        "baselines={:?} growth={:?} random_k={}{}",
        opts.baselines,
        opts.growth,
        opts.random_k,
        opts.shape_fingerprint()
    );
    let mut session = opts.session(&format!("fig{}", id.number()), &params)?;
    let result = figure_session(id, &mut session, options);
    if opts.chart {
        for chart in result.chart_panels() {
            println!("{chart}");
        }
    } else {
        for (title, table) in result.panels() {
            print_table(&title, &table, opts.csv);
        }
    }
    Ok(())
}

/// The `sweep` command: the paper's scheme line-up at the default
/// generator point — the smallest full pass through the harness (used by
/// the CI resume/determinism smoke tests).
fn run_sweep(opts: &Options) -> Result<(), String> {
    eprintln!(
        "[mcs-exp] sweep: {} trials at the default point, {} threads",
        opts.config.trials,
        opts.config.effective_threads()
    );
    let params = opts.apply_shape(GenParams::default().with_growth(opts.growth));
    params.validate()?;
    let schemes = SchemeRegistry::standard().build_set(&PAPER_SET, &SchemeFlags::default());
    let mut session =
        opts.session("sweep", &format!("growth={:?}{}", opts.growth, opts.shape_fingerprint()))?;
    let points = run_point_in(&mut session, "default", &params, &schemes);
    let mut t = Table::new(["scheme", "schedulable", "ratio", "U_sys", "U_avg", "imbalance"]);
    for p in &points {
        t.push_row([
            p.scheme.to_string(),
            format!("{}/{}", p.schedulable, p.trials),
            fmt3(p.ratio()),
            fmt3(p.u_sys),
            fmt3(p.u_avg),
            fmt3(p.imbalance),
        ]);
    }
    print_table("Sweep — paper line-up at the default generator point", &t, opts.csv);
    Ok(())
}

/// The `admit` command: the online admission-control service — each trial
/// replays one deterministic arrival/departure trace through a per-shard
/// `AdmissionEngine` per policy, then checks the live state against a
/// from-scratch rebuild of the survivors (bit-exact gate).
fn run_admit(opts: &Options) -> Result<(), String> {
    let trace = TraceParams::default();
    eprintln!(
        "[mcs-exp] admit: {} traces x {} lifecycle ops, {} threads",
        opts.config.trials,
        trace.ops,
        opts.config.effective_threads()
    );
    let params = opts.apply_shape(GenParams::default().with_growth(opts.growth));
    params.validate()?;
    let policies = AdmissionPolicy::all();
    let mut session =
        opts.session("admit", &format!("growth={:?}{}", opts.growth, opts.shape_fingerprint()))?;
    let points = mcs_exp::admit::run_point_in(&mut session, "default", &params, &trace, &policies);
    let mut t = Table::new([
        "policy", "admitted", "rejected", "accept", "departed", "repairs", "resident", "state",
    ]);
    for p in &points {
        t.push_row([
            p.policy.to_string(),
            p.admits.to_string(),
            p.rejects.to_string(),
            fmt3(p.accept_ratio()),
            p.departs.to_string(),
            p.repair_moves.to_string(),
            fmt3(p.mean_resident()),
            (if p.state_identical { "exact" } else { "DRIFT" }).to_string(),
        ]);
    }
    print_table("Admit — online admission streams (per-shard engines)", &t, opts.csv);
    let all_exact = points.iter().all(|p| p.state_identical);
    println!("admission state identical: {all_exact}");
    if !all_exact {
        return Err("admission engine state drifted from the from-scratch rebuild".into());
    }
    Ok(())
}

fn run_command(cmd: &str, opts: &Options) -> Result<(), String> {
    match cmd {
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" => {
            let id = FigureId::parse(cmd).expect("validated");
            run_figure(id, opts)?;
        }
        "figs" => {
            for f in ["fig1", "fig2", "fig3", "fig4", "fig5"] {
                run_command(f, opts)?;
            }
        }
        "table1" => print_table(
            "Table I — example task parameters and utilization contributions",
            &tables::table1(),
            opts.csv,
        ),
        "table2" => {
            let (t, ok) = tables::table2();
            print_table("Table II — task allocations under FFD", &t, opts.csv);
            println!("FFD result: {}\n", if ok { "feasible" } else { "FAILURE (as in the paper)" });
        }
        "table3" => {
            let (t, ok) = tables::table3();
            print_table("Table III — task allocations under CA-TPA", &t, opts.csv);
            println!(
                "CA-TPA result: {}\n",
                if ok { "feasible (as in the paper)" } else { "FAILURE" }
            );
        }
        "table4" => print_table("Table IV — system parameters", &tables::table4(), opts.csv),
        "tables" => {
            for t in ["table1", "table2", "table3", "table4"] {
                run_command(t, opts)?;
            }
        }
        "sweep" => run_sweep(opts)?,
        "admit" => run_admit(opts)?,
        "soundness" => {
            eprintln!(
                "[mcs-exp] soundness: {} trials, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let params = format!("growth={:?} horizon={}", opts.growth, opts.horizon_periods);
            let mut session = opts.session("soundness", &params)?;
            let r = soundness_session(
                &GenParams::default().with_growth(opts.growth),
                &mut session,
                opts.horizon_periods,
            );
            print_table(
                "Soundness — mandatory misses under worst-case behaviours",
                &r.table(),
                opts.csv,
            );
            println!(
                "partitioned {}/{} sets; {} mode switches observed; sound: {}",
                r.partitioned,
                r.trials,
                r.mode_switches,
                r.sound()
            );
            if !r.sound() {
                return Err("soundness violation detected".into());
            }
        }
        "ablation" => {
            eprintln!("[mcs-exp] ablation: {} trials/point", opts.config.trials);
            let mut session = opts.session("ablation", &format!("growth={:?}", opts.growth))?;
            let r = ablation_session(&mut session, opts.growth);
            print_table("Ablation — CA-TPA variant schedulability ratio", &r.table(), opts.csv);
        }
        "gap" | "optgap" => {
            eprintln!("[mcs-exp] optimality gap: {} small instances", opts.config.trials);
            let mut session = opts.session("optgap", "default")?;
            let r = optimality_gap_session(&mut session);
            print_table(
                "Optimality gap — heuristic acceptance vs exact branch-and-bound",
                &r.table(),
                opts.csv,
            );
            println!(
                "{} of {} instances feasible (exact); coverage = accepted/feasible",
                r.feasible, r.trials
            );
        }
        "globalcmp" => {
            eprintln!(
                "[mcs-exp] partitioned vs global: {} trials/point, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let mut session =
                opts.session("globalcmp", &format!("horizon={}", opts.horizon_periods))?;
            let r = global_comparison_session(&mut session, opts.horizon_periods);
            print_table(
                "Partitioned (CA-TPA, analytical) vs global EDF+AMC (empirical)",
                &r.table(),
                opts.csv,
            );
        }
        "elastic" => {
            eprintln!(
                "[mcs-exp] elastic degradation: {} trials, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let mut session =
                opts.session("elastic", &format!("horizon={}", opts.horizon_periods))?;
            let r = elastic_experiment_session(&mut session, opts.horizon_periods);
            print_table(
                "Elastic degradation — LO service retained vs AMC dropping",
                &r.table(),
                opts.csv,
            );
            println!(
                "{} partitions, {} elastic kills, guarantee violations: {}",
                r.runs, r.elastic_killed, r.violations
            );
            if r.violations > 0 {
                return Err("elastic policy broke the mandatory guarantee".into());
            }
        }
        "overhead" => {
            eprintln!(
                "[mcs-exp] overhead sensitivity: {} trials, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let mut session =
                opts.session("overhead", &format!("horizon={}", opts.horizon_periods))?;
            let r = overhead_sweep_session(&mut session, opts.horizon_periods);
            print_table(
                "Overhead sensitivity — guarantee violations vs kernel cost",
                &r.table(),
                opts.csv,
            );
        }
        "describe" => {
            let path =
                opts.partition_file.as_ref().ok_or("describe requires --file <task-set.csv>")?;
            let input =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            println!("{}", describe::run(&input)?);
        }
        "partition" => {
            let path =
                opts.partition_file.as_ref().ok_or("partition requires --file <task-set.csv>")?;
            let input =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let report = partition_cmd::run(
                &input,
                opts.partition_cores,
                &opts.partition_scheme,
                opts.partition_validate,
            )?;
            println!("{report}");
        }
        "audit" => {
            eprintln!(
                "[mcs-exp] audit: {} task sets x all schemes, all invariant rules, {} threads",
                opts.config.trials,
                opts.config.effective_threads()
            );
            let before = mcs_obs::Snapshot::capture();
            let mut session = opts.session("audit", "default")?;
            let outcome = audit_cmd::run_session(&mut session);
            // All workers have joined: the counter delta over the sweep is
            // quiescent, so the telemetry-consistency algebra applies.
            let delta = mcs_obs::Snapshot::capture().delta_since(&before);
            println!("{}", audit_cmd::render(&outcome, opts.json).trim_end());
            if outcome.errors() > 0 {
                return Err(format!("audit found {} invariant violation(s)", outcome.errors()));
            }
            let expected = mcs_obs::compiled().then(|| opts.config.trials as u64);
            let findings = mcs_exp::telemetry::quiescent_check(&delta, expected);
            if findings.is_empty() {
                eprintln!(
                    "[mcs-exp] telemetry-consistency: counter algebra holds over the audit sweep"
                );
            } else {
                for d in &findings {
                    eprintln!("[mcs-exp] telemetry-consistency: {}", d.message);
                }
                return Err(format!("telemetry-consistency found {} violation(s)", findings.len()));
            }
        }
        "perf" => {
            eprintln!(
                "[mcs-exp] perf: {} task sets (timed batch capped at 256), {} threads",
                opts.config.trials,
                opts.config.effective_threads()
            );
            let r = mcs_exp::perf::run(&opts.config);
            let json = r.to_json();
            if opts.json {
                print!("{json}");
            } else {
                print_table(
                    "Perf — probe-path throughput (reference vs engine)",
                    &r.table(),
                    opts.csv,
                );
                println!(
                    "partitions identical: {}; sweep: {:.0} trials/s ({} trials, {} threads)",
                    r.identical, r.sweep_trials_per_sec, r.sweep_trials, r.sweep_threads
                );
            }
            std::fs::write("BENCH_partition.json", &json)
                .map_err(|e| format!("cannot write BENCH_partition.json: {e}"))?;
            eprintln!(
                "[mcs-exp] wrote BENCH_partition.json (probe path {:.2}x, schemes {:.2}x)",
                r.probe.speedup(),
                r.speedup()
            );
            if !r.identical {
                return Err("reference and engine paths disagreed on some partition".into());
            }
            if !r.probe.batch_matches_scalar {
                return Err("batch kernel and scalar probe verdicts disagreed".into());
            }
            if !r.admission.state_identical {
                return Err("admission engine state drifted from the from-scratch rebuild".into());
            }
        }
        "profile" => {
            mcs_obs::set_timing(true);
            eprintln!(
                "[mcs-exp] profile: {} trials at the default point, {} threads, span timing on",
                opts.config.trials,
                opts.config.effective_threads()
            );
            let before = mcs_obs::Snapshot::capture();
            let params = GenParams::default().with_growth(opts.growth);
            let schemes = SchemeRegistry::standard().build_set(&PAPER_SET, &SchemeFlags::default());
            let mut session = opts.session("profile", &format!("growth={:?}", opts.growth))?;
            let _points = run_point_in(&mut session, "default", &params, &schemes);
            let snap = mcs_obs::Snapshot::capture().delta_since(&before);
            print_table(
                "Profile — phase timing (default-point sweep)",
                &mcs_exp::telemetry::phase_table(&snap),
                opts.csv,
            );
            print_table(
                "Profile — top counters",
                &mcs_exp::telemetry::counter_table(&snap, 15),
                opts.csv,
            );
            // Without --telemetry the sidecar goes to stderr; with it, the
            // end-of-run writer in main() emits the file.
            if opts.telemetry.is_none() {
                let prov = mcs_exp::telemetry::provenance(
                    "profile",
                    &opts.config,
                    &format!("growth={:?}", opts.growth),
                );
                mcs_exp::telemetry::write_sidecar("-", &prov, &snap)?;
            }
        }
        "dualcmp" => {
            eprintln!(
                "[mcs-exp] dual-criticality family comparison: {} trials/point",
                opts.config.trials
            );
            let mut session = opts.session("dualcmp", "default")?;
            let r = dual_comparison_session(&mut session);
            print_table(
                "Extension — EDF-VD vs FP-AMC vs DBF partitioning (K = 2)",
                &r.table(),
                opts.csv,
            );
        }
        "all" => {
            for c in [
                "tables",
                "figs",
                "sweep",
                "soundness",
                "ablation",
                "dualcmp",
                "gap",
                "overhead",
                "elastic",
                "globalcmp",
                "audit",
            ] {
                run_command(c, opts)?;
            }
        }
        other => return Err(format!("unknown command: {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.telemetry.is_some() {
        mcs_obs::set_timing(true);
    }
    for cmd in opts.commands.clone() {
        if let Err(e) = run_command(&cmd, &opts) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.telemetry {
        let snap = mcs_obs::Snapshot::capture();
        let prov = mcs_exp::telemetry::provenance(
            &opts.commands.join("+"),
            &opts.config,
            &format!("growth={:?} horizon={}", opts.growth, opts.horizon_periods),
        );
        if let Err(e) = mcs_exp::telemetry::write_sidecar(path, &prov, &snap) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
