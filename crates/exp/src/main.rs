//! `mcs-exp` — command-line experiment runner.
//!
//! ```text
//! mcs-exp <command> [--trials N] [--threads N] [--seed S] [--csv]
//!         [--horizon-periods H]
//!
//! commands:
//!   fig1 | fig2 | fig3 | fig4 | fig5   reproduce one figure (4 panels each)
//!   figs                               all five figures
//!   table1 | table2 | table3 | table4  the paper's tables
//!   tables                             all four tables
//!   soundness                          simulation-backed validation
//!   ablation                           CA-TPA variant battery
//!   dualcmp                            EDF-VD vs FP-AMC vs DBF (K = 2)
//!   partition --file F [--cores N] [--scheme S] [--validate]
//!                                      partition a task-set file
//!   audit [--json]                     invariant audit over all schemes
//!   perf [--json]                      probe-path throughput benchmark
//!                                      (also records BENCH_partition.json)
//!   all                                everything above
//! ```

#![forbid(unsafe_code)]

use std::env;
use std::process::ExitCode;

use mcs_exp::ablation::ablation_with;
use mcs_exp::audit_cmd;
use mcs_exp::describe;
use mcs_exp::elastic_exp::elastic_experiment;
use mcs_exp::extension::dual_comparison;
use mcs_exp::figures::{figure_full, Baselines, FigureId, FigureOptions};
use mcs_exp::globalcmp::global_comparison;
use mcs_exp::optgap::optimality_gap;
use mcs_exp::overhead::overhead_sweep;
use mcs_exp::partition_cmd;
use mcs_exp::report::{render_csv, render_table, Table};
use mcs_exp::soundness::soundness;
use mcs_exp::sweep::SweepConfig;
use mcs_exp::tables;
use mcs_gen::GenParams;
use mcs_gen::WcetGrowth;

struct Options {
    commands: Vec<String>,
    /// `partition` subcommand inputs: file, cores, scheme, validate.
    partition_file: Option<String>,
    partition_cores: usize,
    partition_scheme: String,
    partition_validate: bool,
    config: SweepConfig,
    csv: bool,
    json: bool,
    chart: bool,
    horizon_periods: u32,
    baselines: Baselines,
    growth: WcetGrowth,
    random_k: bool,
}

fn usage() -> &'static str {
    "usage: mcs-exp <fig1|fig2|fig3|fig4|fig5|figs|table1|table2|table3|table4|tables|soundness|ablation|dualcmp|gap|overhead|elastic|globalcmp|partition|describe|audit|perf|all>\n       [--trials N] [--threads N] [--seed S] [--csv] [--json] [--horizon-periods H] [--weak-baselines] [--geometric] [--random-k] [--chart]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        commands: Vec::new(),
        partition_file: None,
        partition_cores: 4,
        partition_scheme: "catpa".to_string(),
        partition_validate: false,
        config: SweepConfig::default(),
        csv: false,
        json: false,
        chart: false,
        horizon_periods: 8,
        baselines: Baselines::Strong,
        growth: WcetGrowth::default(),
        random_k: false,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let v = args.next().ok_or("--trials needs a value")?;
                opts.config.trials = v.parse().map_err(|_| format!("bad --trials: {v}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.config.threads = v.parse().map_err(|_| format!("bad --threads: {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.config.seed = v.parse().map_err(|_| format!("bad --seed: {v}"))?;
            }
            "--horizon-periods" => {
                let v = args.next().ok_or("--horizon-periods needs a value")?;
                opts.horizon_periods =
                    v.parse().map_err(|_| format!("bad --horizon-periods: {v}"))?;
            }
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--chart" => opts.chart = true,
            "--weak-baselines" => opts.baselines = Baselines::Weak,
            "--geometric" => opts.growth = WcetGrowth::Geometric,
            "--random-k" => opts.random_k = true,
            "--file" => opts.partition_file = Some(args.next().ok_or("--file needs a path")?),
            "--cores" => {
                let v = args.next().ok_or("--cores needs a value")?;
                opts.partition_cores = v.parse().map_err(|_| format!("bad --cores: {v}"))?;
            }
            "--scheme" => {
                opts.partition_scheme = args.next().ok_or("--scheme needs a name")?;
            }
            "--validate" => opts.partition_validate = true,
            "--help" | "-h" => return Err(usage().to_string()),
            cmd if !cmd.starts_with('-') => opts.commands.push(cmd.to_string()),
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    if opts.commands.is_empty() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

fn print_table(title: &str, table: &Table, csv: bool) {
    if csv {
        print!("# {title}\n{}", render_csv(table));
    } else {
        println!("== {title} ==");
        println!("{}", render_table(table));
    }
}

fn run_figure(id: FigureId, opts: &Options) {
    eprintln!(
        "[mcs-exp] figure {}: {} trials/point, {} threads",
        id.number(),
        opts.config.trials,
        opts.config.effective_threads()
    );
    let result = figure_full(
        id,
        &opts.config,
        FigureOptions { baselines: opts.baselines, growth: opts.growth, random_k: opts.random_k },
    );
    if opts.chart {
        for chart in result.chart_panels() {
            println!("{chart}");
        }
    } else {
        for (title, table) in result.panels() {
            print_table(&title, &table, opts.csv);
        }
    }
}

fn run_command(cmd: &str, opts: &Options) -> Result<(), String> {
    match cmd {
        "fig1" | "fig2" | "fig3" | "fig4" | "fig5" => {
            let id = FigureId::parse(cmd).expect("validated");
            run_figure(id, opts);
        }
        "figs" => {
            for f in ["fig1", "fig2", "fig3", "fig4", "fig5"] {
                run_command(f, opts)?;
            }
        }
        "table1" => print_table(
            "Table I — example task parameters and utilization contributions",
            &tables::table1(),
            opts.csv,
        ),
        "table2" => {
            let (t, ok) = tables::table2();
            print_table("Table II — task allocations under FFD", &t, opts.csv);
            println!("FFD result: {}\n", if ok { "feasible" } else { "FAILURE (as in the paper)" });
        }
        "table3" => {
            let (t, ok) = tables::table3();
            print_table("Table III — task allocations under CA-TPA", &t, opts.csv);
            println!(
                "CA-TPA result: {}\n",
                if ok { "feasible (as in the paper)" } else { "FAILURE" }
            );
        }
        "table4" => print_table("Table IV — system parameters", &tables::table4(), opts.csv),
        "tables" => {
            for t in ["table1", "table2", "table3", "table4"] {
                run_command(t, opts)?;
            }
        }
        "soundness" => {
            eprintln!(
                "[mcs-exp] soundness: {} trials, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let r = soundness(
                &GenParams::default().with_growth(opts.growth),
                &opts.config,
                opts.horizon_periods,
            );
            print_table(
                "Soundness — mandatory misses under worst-case behaviours",
                &r.table(),
                opts.csv,
            );
            println!(
                "partitioned {}/{} sets; {} mode switches observed; sound: {}",
                r.partitioned,
                r.trials,
                r.mode_switches,
                r.sound()
            );
            if !r.sound() {
                return Err("soundness violation detected".into());
            }
        }
        "ablation" => {
            eprintln!("[mcs-exp] ablation: {} trials/point", opts.config.trials);
            let r = ablation_with(&opts.config, opts.growth);
            print_table("Ablation — CA-TPA variant schedulability ratio", &r.table(), opts.csv);
        }
        "gap" => {
            eprintln!("[mcs-exp] optimality gap: {} small instances", opts.config.trials);
            let r = optimality_gap(&opts.config);
            print_table(
                "Optimality gap — heuristic acceptance vs exact branch-and-bound",
                &r.table(),
                opts.csv,
            );
            println!(
                "{} of {} instances feasible (exact); coverage = accepted/feasible",
                r.feasible, r.trials
            );
        }
        "globalcmp" => {
            eprintln!(
                "[mcs-exp] partitioned vs global: {} trials/point, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let r = global_comparison(&opts.config, opts.horizon_periods);
            print_table(
                "Partitioned (CA-TPA, analytical) vs global EDF+AMC (empirical)",
                &r.table(),
                opts.csv,
            );
        }
        "elastic" => {
            eprintln!(
                "[mcs-exp] elastic degradation: {} trials, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let r = elastic_experiment(&opts.config, opts.horizon_periods);
            print_table(
                "Elastic degradation — LO service retained vs AMC dropping",
                &r.table(),
                opts.csv,
            );
            println!(
                "{} partitions, {} elastic kills, guarantee violations: {}",
                r.runs, r.elastic_killed, r.violations
            );
            if r.violations > 0 {
                return Err("elastic policy broke the mandatory guarantee".into());
            }
        }
        "overhead" => {
            eprintln!(
                "[mcs-exp] overhead sensitivity: {} trials, horizon {} periods",
                opts.config.trials, opts.horizon_periods
            );
            let r = overhead_sweep(&opts.config, opts.horizon_periods);
            print_table(
                "Overhead sensitivity — guarantee violations vs kernel cost",
                &r.table(),
                opts.csv,
            );
        }
        "describe" => {
            let path =
                opts.partition_file.as_ref().ok_or("describe requires --file <task-set.csv>")?;
            let input =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            println!("{}", describe::run(&input)?);
        }
        "partition" => {
            let path =
                opts.partition_file.as_ref().ok_or("partition requires --file <task-set.csv>")?;
            let input =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let report = partition_cmd::run(
                &input,
                opts.partition_cores,
                &opts.partition_scheme,
                opts.partition_validate,
            )?;
            println!("{report}");
        }
        "audit" => {
            eprintln!(
                "[mcs-exp] audit: {} task sets x all schemes, all invariant rules, {} threads",
                opts.config.trials,
                opts.config.effective_threads()
            );
            let outcome = audit_cmd::run(&opts.config);
            println!("{}", audit_cmd::render(&outcome, opts.json).trim_end());
            if outcome.errors() > 0 {
                return Err(format!("audit found {} invariant violation(s)", outcome.errors()));
            }
        }
        "perf" => {
            eprintln!(
                "[mcs-exp] perf: {} task sets (timed batch capped at 256), {} threads",
                opts.config.trials,
                opts.config.effective_threads()
            );
            let r = mcs_exp::perf::run(&opts.config);
            let json = r.to_json();
            if opts.json {
                print!("{json}");
            } else {
                print_table(
                    "Perf — probe-path throughput (reference vs engine)",
                    &r.table(),
                    opts.csv,
                );
                println!(
                    "partitions identical: {}; sweep: {:.0} trials/s ({} trials, {} threads)",
                    r.identical, r.sweep_trials_per_sec, r.sweep_trials, r.sweep_threads
                );
            }
            std::fs::write("BENCH_partition.json", &json)
                .map_err(|e| format!("cannot write BENCH_partition.json: {e}"))?;
            eprintln!(
                "[mcs-exp] wrote BENCH_partition.json (probe path {:.2}x, schemes {:.2}x)",
                r.probe.speedup(),
                r.speedup()
            );
            if !r.identical {
                return Err("reference and engine paths disagreed on some partition".into());
            }
        }
        "dualcmp" => {
            eprintln!(
                "[mcs-exp] dual-criticality family comparison: {} trials/point",
                opts.config.trials
            );
            let r = dual_comparison(&opts.config);
            print_table(
                "Extension — EDF-VD vs FP-AMC vs DBF partitioning (K = 2)",
                &r.table(),
                opts.csv,
            );
        }
        "all" => {
            for c in [
                "tables",
                "figs",
                "soundness",
                "ablation",
                "dualcmp",
                "gap",
                "overhead",
                "elastic",
                "globalcmp",
                "audit",
            ] {
                run_command(c, opts)?;
            }
        }
        other => return Err(format!("unknown command: {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for cmd in opts.commands.clone() {
        if let Err(e) = run_command(&cmd, &opts) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
