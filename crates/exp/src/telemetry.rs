//! `--telemetry` plumbing for the `mcs-exp` binary: provenance capture,
//! sidecar emission, the `profile` report tables, and the quiescent
//! counter-algebra check that backs `mcs-exp audit`.
//!
//! Telemetry output goes strictly to stderr or the `--telemetry <path>`
//! file — never stdout, which carries the published experiment tables and
//! must stay byte-identical with telemetry on or off.

use std::io::Write as _;

use mcs_audit::{check_counters, Diagnostic, TelemetryCounters};
use mcs_obs::{fmt_ns, Counter, Provenance, Snapshot};

use crate::report::Table;
use crate::sweep::SweepConfig;

/// Provenance for the current `mcs-exp` invocation: command list, sweep
/// knobs, the standard scheme line-up, and build/environment facts.
#[must_use]
pub fn provenance(command: &str, config: &SweepConfig, params: &str) -> Provenance {
    let schemes = mcs_harness::SchemeRegistry::standard()
        .entries()
        .iter()
        .map(|info| info.name.to_string())
        .collect();
    Provenance::capture(
        command.to_string(),
        config.seed,
        config.trials as u64,
        config.threads as u64,
        schemes,
        params.to_string(),
    )
}

/// Write the JSONL sidecar to `path` (`-` = stderr) and the human summary
/// to stderr.
pub fn write_sidecar(path: &str, prov: &Provenance, snap: &Snapshot) -> Result<(), String> {
    if path == "-" {
        let stderr = std::io::stderr();
        let mut lock = stderr.lock();
        mcs_obs::write_jsonl(&mut lock, prov, snap)
            .map_err(|e| format!("cannot write telemetry to stderr: {e}"))?;
    } else {
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        mcs_obs::write_jsonl(&mut w, prov, snap)
            .and_then(|()| w.flush())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("[mcs-exp] wrote telemetry sidecar to {path}");
    }
    eprint!("{}", mcs_obs::render_summary(snap));
    Ok(())
}

/// Map a telemetry snapshot delta onto the audit crate's plain-integer
/// counter view. `expected_trials` enables the computed+resumed coverage
/// check; pass `None` when telemetry is compiled out (all counters read
/// zero) or when the window spans an unknown number of trials.
#[must_use]
pub fn counters_from_delta(delta: &Snapshot, expected_trials: Option<u64>) -> TelemetryCounters {
    TelemetryCounters {
        probes_issued: delta.counter(Counter::EngineProbesIssued),
        probes_rejected: delta.counter(Counter::EngineProbesRejected),
        probes_feasible: delta.counter(Counter::EngineProbesFeasible),
        commits: delta.counter(Counter::EngineCommits),
        placements_untracked: delta.counter(Counter::EnginePlacementsUntracked),
        placement_attempts: delta.counter(Counter::PlacementAttempts),
        alpha_fallbacks: delta.counter(Counter::AlphaFallbacks),
        worker_trials_sum: delta.worker_trials_sum(),
        trials_computed: delta.counter(Counter::HarnessTrialsComputed),
        trials_resumed: delta.counter(Counter::HarnessTrialsResumed),
        expected_trials,
    }
}

/// Run the `telemetry-consistency` counter algebra over a quiescent delta
/// (all workers joined). Used by `mcs-exp audit` after its sweep; the
/// per-scheme rule table keeps the partition-level rules only, so this
/// check reports through stderr and the exit code without perturbing the
/// published stdout.
#[must_use]
pub fn quiescent_check(delta: &Snapshot, expected_trials: Option<u64>) -> Vec<Diagnostic> {
    check_counters(&counters_from_delta(delta, expected_trials))
}

/// `profile` table: one row per phase that recorded at least one span.
#[must_use]
pub fn phase_table(snap: &Snapshot) -> Table {
    let mut t = Table::new(["phase", "count", "total", "mean", "p50", "p90", "p99", "max"]);
    for stat in snap.phases().iter().filter(|p| p.count > 0) {
        t.push_row([
            stat.phase.name().to_string(),
            stat.count.to_string(),
            fmt_ns(stat.total_ns),
            fmt_ns(stat.mean_ns() as u64),
            fmt_ns(stat.quantile_ns(0.50)),
            fmt_ns(stat.quantile_ns(0.90)),
            fmt_ns(stat.quantile_ns(0.99)),
            fmt_ns(stat.max_ns),
        ]);
    }
    if snap.phases().iter().all(|p| p.count == 0) {
        t.push_row([
            "(no spans — timing off or telemetry compiled out)".to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    t
}

/// `profile` table: the `top` largest non-zero counters, descending.
#[must_use]
pub fn counter_table(snap: &Snapshot, top: usize) -> Table {
    let mut rows: Vec<(Counter, u64)> = snap.counters().filter(|&(_, v)| v > 0).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.name().cmp(b.0.name())));
    let mut t = Table::new(["counter", "value"]);
    for (counter, value) in rows.into_iter().take(top) {
        t.push_row([counter.name().to_string(), value.to_string()]);
    }
    if t.rows.is_empty() {
        t.push_row(["(no counts — telemetry compiled out)".to_string(), String::new()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_lists_the_standard_schemes() {
        let prov = provenance("sweep", &SweepConfig::default(), "growth=Fixed");
        assert!(prov.schemes.iter().any(|s| s == "CA-TPA"), "{:?}", prov.schemes);
        assert_eq!(prov.command, "sweep");
    }

    /// An earlier-minus-later delta saturates to all-zero regardless of
    /// concurrent test activity, giving a deterministic empty snapshot.
    fn zero_delta() -> Snapshot {
        let earlier = Snapshot::capture();
        earlier.delta_since(&Snapshot::capture())
    }

    #[test]
    fn zero_delta_is_consistent_without_expectations() {
        let snap = zero_delta();
        assert_eq!(snap.counter(Counter::EngineProbesIssued), 0);
        // No expected-trials claim: an all-zero window trivially satisfies
        // the algebra (0 == 0 + 0 everywhere).
        assert!(quiescent_check(&snap, None).is_empty());
    }

    #[test]
    fn tables_render_without_activity() {
        let snap = zero_delta();
        let phases = phase_table(&snap);
        let counters = counter_table(&snap, 10);
        assert!(!phases.rows.is_empty());
        assert!(!counters.rows.is_empty());
    }

    #[test]
    fn sidecar_path_errors_are_reported() {
        let snap = Snapshot::capture();
        let prov = provenance("sweep", &SweepConfig::default(), "p");
        let err = write_sidecar("/nonexistent-dir/t.jsonl", &prov, &snap);
        assert!(err.is_err());
    }
}
