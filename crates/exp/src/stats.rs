//! Statistical helpers for the Monte-Carlo harness: Wilson score intervals
//! for schedulability ratios (a binomial proportion) and running
//! mean/variance (Welford) for the quality metrics. The paper reports bare
//! means over 50,000 trials; at the reduced default trial counts the
//! intervals make it explicit which scheme differences are resolved.

/// Wilson score interval for a binomial proportion at ~95 % confidence.
///
/// Returns `(low, high)`; degenerate inputs (`n == 0`) give `(0, 1)`.
#[must_use]
pub fn wilson_interval(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_985; // 97.5th percentile of the normal distribution
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (((centre - margin) / denom).max(0.0), ((centre + margin) / denom).min(1.0))
}

/// Whether two binomial observations are resolved (their 95 % Wilson
/// intervals do not overlap).
#[must_use]
pub fn proportions_resolved(a: (usize, usize), b: (usize, usize)) -> bool {
    let (alo, ahi) = wilson_interval(a.0, a.1);
    let (blo, bhi) = wilson_interval(b.0, b.1);
    ahi < blo || bhi < alo
}

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (NaN when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (NaN for < 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean (NaN for < 2 observations).
    #[must_use]
    pub fn stderr(&self) -> f64 {
        (self.variance() / self.n as f64).sqrt()
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // Tighter with more data.
        let (lo2, hi2) = wilson_interval(5000, 10000);
        assert!(hi2 - lo2 < hi - lo);
        // Extremes stay in [0, 1] and exclude the impossible.
        let (lo, hi) = wilson_interval(0, 20);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.3);
        let (lo, hi) = wilson_interval(20, 20);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.7);
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
    }

    #[test]
    fn resolution_check() {
        assert!(proportions_resolved((10, 100), (90, 100)));
        assert!(!proportions_resolved((48, 100), (52, 100)));
    }

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 4.571428…
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37).collect();
        let mut whole = Welford::default();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::default();
        let mut b = Welford::default();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        // Merging an empty accumulator is the identity.
        let before = a;
        a.merge(&Welford::default());
        assert!((a.mean() - before.mean()).abs() < 1e-12);
    }

    #[test]
    fn empty_welford_is_nan() {
        let w = Welford::default();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
    }
}
