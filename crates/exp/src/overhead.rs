//! Overhead-sensitivity experiment (beyond the paper): the schedulability
//! analyses assume zero kernel cost, folding context-switch and mode-switch
//! overheads into WCETs. This experiment measures how quickly the MC
//! guarantee erodes when the simulator charges those overheads explicitly —
//! i.e. how much WCET margin an implementer must provision.
//!
//! For each overhead level (in ticks; 1 000 ticks = one paper time unit =
//! roughly "1 ms" at the avionics scale), CA-TPA-accepted partitions are
//! executed under the full worst case and the fraction of runs with any
//! mandatory miss is reported.

use mcs_gen::{generate_task_set, GenParams};
use mcs_model::{CoreId, CritLevel, McTask};
use mcs_partition::{Catpa, Partitioner};
use mcs_sim::{CoreSim, LevelCap, Overheads, SchedulerKind, SimConfig, Trace};

use mcs_analysis::{Theorem1, VdAssignment};
use mcs_model::UtilTable;

use crate::report::{fmt3, Table};
use crate::sweep::SweepConfig;

/// One row of the overhead sweep.
#[derive(Clone, Debug)]
pub struct OverheadPoint {
    /// Context-switch cost (ticks).
    pub context_switch: u64,
    /// Runs simulated.
    pub runs: usize,
    /// Runs with at least one mandatory miss.
    pub violated: usize,
}

/// Results of the overhead sweep.
#[derive(Clone, Debug, Default)]
pub struct OverheadResult {
    /// Swept points.
    pub points: Vec<OverheadPoint>,
}

impl OverheadResult {
    /// Render as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["context-switch (ticks)", "runs", "violated", "violation rate"]);
        for p in &self.points {
            let rate = if p.runs == 0 { 0.0 } else { p.violated as f64 / p.runs as f64 };
            t.push_row([
                p.context_switch.to_string(),
                p.runs.to_string(),
                p.violated.to_string(),
                fmt3(rate),
            ]);
        }
        t
    }
}

/// Run the sweep over context-switch costs (ticks).
#[must_use]
pub fn overhead_sweep(config: &SweepConfig, horizon_periods: u32) -> OverheadResult {
    let params = GenParams::default().with_n_range(16, 32).with_cores(4).with_nsu(0.6);
    // Ticks; 1 000 ticks = 1 paper time unit. Periods span 50–2 000 units,
    // so the ladder reaches ~10 % of a short period.
    let costs: &[u64] = &[0, 500, 1_000, 2_000, 5_000, 10_000];
    let sim_config = SimConfig { horizon_periods, ..Default::default() };
    let catpa = Catpa::default();

    let mut result = OverheadResult {
        points: costs
            .iter()
            .map(|&c| OverheadPoint { context_switch: c, runs: 0, violated: 0 })
            .collect(),
    };

    for trial in 0..config.trials {
        let ts = generate_task_set(&params, config.seed + trial as u64);
        let Ok(partition) = catpa.partition(&ts, params.cores) else { continue };
        // Build per-core simulators once per overhead level; worst-case
        // behaviour at the top level stresses mode switches too.
        for point in &mut result.points {
            let mut violated = false;
            for core in CoreId::all(params.cores) {
                let tasks: Vec<&McTask> = partition.tasks_on(core).map(|id| ts.task(id)).collect();
                let table = UtilTable::from_tasks(ts.num_levels(), tasks.iter().copied());
                let analysis = Theorem1::compute(&table);
                let vd = VdAssignment::compute(&table, &analysis).expect("CA-TPA output");
                let horizon = sim_config.horizon_for(&tasks);
                let report = CoreSim::new(tasks, SchedulerKind::EdfVd(vd))
                    .with_overheads(Overheads {
                        context_switch: point.context_switch,
                        mode_switch: point.context_switch,
                    })
                    .run(&mut LevelCap::new(ts.num_levels()), horizon, &mut Trace::disabled());
                if report.mandatory_misses(CritLevel::new(ts.num_levels())) > 0 {
                    violated = true;
                }
            }
            point.runs += 1;
            if violated {
                point.violated += 1;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_overhead_never_violates_and_rates_are_monotoneish() {
        let config = SweepConfig { trials: 8, threads: 1, seed: 4 };
        let r = overhead_sweep(&config, 3);
        assert!(!r.points.is_empty());
        let zero = &r.points[0];
        assert_eq!(zero.context_switch, 0);
        assert_eq!(zero.violated, 0, "soundness at zero overhead: {zero:?}");
        // The largest overhead must violate at least as often as zero.
        let last = r.points.last().unwrap();
        assert!(last.violated >= zero.violated);
        assert_eq!(r.table().rows.len(), r.points.len());
    }
}
