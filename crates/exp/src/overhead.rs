//! Overhead-sensitivity experiment (beyond the paper): the schedulability
//! analyses assume zero kernel cost, folding context-switch and mode-switch
//! overheads into WCETs. This experiment measures how quickly the MC
//! guarantee erodes when the simulator charges those overheads explicitly —
//! i.e. how much WCET margin an implementer must provision.
//!
//! For each overhead level (in ticks; 1 000 ticks = one paper time unit =
//! roughly "1 ms" at the avionics scale), CA-TPA-accepted partitions are
//! executed under the full worst case and the fraction of runs with any
//! mandatory miss is reported.

use mcs_gen::{generate_task_set, GenParams};
use mcs_harness::{JsonValue, RunSession, TrialRecord};
use mcs_model::{CoreId, CritLevel, McTask};
use mcs_partition::{Catpa, Partitioner};
use mcs_sim::{CoreSim, LevelCap, Overheads, SchedulerKind, SimConfig, Trace};

use mcs_analysis::{Theorem1, VdAssignment};
use mcs_model::UtilTable;

use crate::report::{fmt3, Table};
use crate::sweep::SweepConfig;

/// The swept context-switch costs (ticks; 1 000 ticks = 1 paper time unit).
/// Periods span 50–2 000 units, so the ladder reaches ~10 % of a short
/// period.
const COSTS: [u64; 6] = [0, 500, 1_000, 2_000, 5_000, 10_000];

/// One row of the overhead sweep.
#[derive(Clone, Debug)]
pub struct OverheadPoint {
    /// Context-switch cost (ticks).
    pub context_switch: u64,
    /// Runs simulated.
    pub runs: usize,
    /// Runs with at least one mandatory miss.
    pub violated: usize,
}

/// Results of the overhead sweep.
#[derive(Clone, Debug, Default)]
pub struct OverheadResult {
    /// Swept points.
    pub points: Vec<OverheadPoint>,
}

impl OverheadResult {
    /// Render as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["context-switch (ticks)", "runs", "violated", "violation rate"]);
        for p in &self.points {
            let rate = if p.runs == 0 { 0.0 } else { p.violated as f64 / p.runs as f64 };
            t.push_row([
                p.context_switch.to_string(),
                p.runs.to_string(),
                p.violated.to_string(),
                fmt3(rate),
            ]);
        }
        t
    }
}

/// Per-trial record: `None` when CA-TPA rejected the set; otherwise the
/// per-cost violation verdicts, in [`COSTS`] order.
#[derive(Clone, Debug, PartialEq, Eq)]
struct OverheadTrial {
    violated: Option<Vec<bool>>,
}

impl TrialRecord for OverheadTrial {
    fn to_json(&self) -> String {
        match &self.violated {
            None => "\"ok\":false".to_string(),
            Some(v) => {
                let items: Vec<&str> =
                    v.iter().map(|&x| if x { "true" } else { "false" }).collect();
                format!("\"ok\":true,\"viol\":[{}]", items.join(","))
            }
        }
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        if !v.get("ok")?.as_bool()? {
            return Some(Self { violated: None });
        }
        let violated =
            v.get("viol")?.as_arr()?.iter().map(JsonValue::as_bool).collect::<Option<Vec<_>>>()?;
        Some(Self { violated: Some(violated) })
    }
}

/// Run the sweep over context-switch costs (ticks).
#[must_use]
pub fn overhead_sweep(config: &SweepConfig, horizon_periods: u32) -> OverheadResult {
    overhead_sweep_session(&mut RunSession::new(config.clone()), horizon_periods)
}

/// The sweep on an existing session (enables `--jsonl`/`--resume`).
#[must_use]
pub fn overhead_sweep_session(session: &mut RunSession, horizon_periods: u32) -> OverheadResult {
    let params = GenParams::default().with_n_range(16, 32).with_cores(4).with_nsu(0.6);
    let sim_config = SimConfig { horizon_periods, ..Default::default() };

    let records = session.point("overhead").run(Catpa::default, |catpa, trial| {
        let ts = generate_task_set(&params, trial.seed);
        let Ok(partition) = catpa.partition(&ts, params.cores) else {
            return OverheadTrial { violated: None };
        };
        // Simulate the partition once per overhead level; worst-case
        // behaviour at the top level stresses mode switches too.
        let violated = COSTS
            .iter()
            .map(|&cost| {
                let mut violated = false;
                for core in CoreId::all(params.cores) {
                    let tasks: Vec<&McTask> =
                        partition.tasks_on(core).map(|id| ts.task(id)).collect();
                    let table = UtilTable::from_tasks(ts.num_levels(), tasks.iter().copied());
                    let analysis = Theorem1::compute(&table);
                    let vd = VdAssignment::compute(&table, &analysis).expect("CA-TPA output");
                    let horizon = sim_config.horizon_for(&tasks);
                    let report = CoreSim::new(tasks, SchedulerKind::EdfVd(vd))
                        .with_overheads(Overheads { context_switch: cost, mode_switch: cost })
                        .run(&mut LevelCap::new(ts.num_levels()), horizon, &mut Trace::disabled());
                    if report.mandatory_misses(CritLevel::new(ts.num_levels())) > 0 {
                        violated = true;
                    }
                }
                violated
            })
            .collect();
        OverheadTrial { violated: Some(violated) }
    });

    let mut result = OverheadResult {
        points: COSTS
            .iter()
            .map(|&c| OverheadPoint { context_switch: c, runs: 0, violated: 0 })
            .collect(),
    };
    for rec in records.iter() {
        let Some(violated) = &rec.violated else { continue };
        assert_eq!(violated.len(), result.points.len(), "checkpoint shape mismatch");
        for (point, &v) in result.points.iter_mut().zip(violated) {
            point.runs += 1;
            point.violated += usize::from(v);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_overhead_never_violates_and_rates_are_monotoneish() {
        let config = SweepConfig { trials: 8, threads: 1, seed: 4 };
        let r = overhead_sweep(&config, 3);
        assert!(!r.points.is_empty());
        let zero = &r.points[0];
        assert_eq!(zero.context_switch, 0);
        assert_eq!(zero.violated, 0, "soundness at zero overhead: {zero:?}");
        // The largest overhead must violate at least as often as zero.
        let last = r.points.last().unwrap();
        assert!(last.violated >= zero.violated);
        assert_eq!(r.table().rows.len(), r.points.len());
    }
}
