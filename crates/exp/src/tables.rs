//! Tables I–IV of the paper.
//!
//! Tables I–III are the §III worked example (parameters + utilization
//! contributions, the FFD allocation trace that fails, and the CA-TPA
//! allocation trace that succeeds). Table IV is the simulation parameter
//! space, printed from the generator defaults so documentation can never
//! drift from the code.

use mcs_analysis::Theorem1;
use mcs_model::{CritLevel, TaskSet, UtilTable, WithTask};
use mcs_partition::{
    contribution::{contribution, system_totals},
    order_by_contribution, BinPacker, FitTest,
};

use crate::example::{display_name, paper_example_task_set};
use crate::report::{fmt3, Table};

/// Table I: the example's task parameters and utilization contributions.
#[must_use]
pub fn table1() -> Table {
    let ts = paper_example_task_set();
    let totals = system_totals(&ts);
    let mut t = Table::new(["task", "c(1)", "c(2)", "p", "l", "u(1)", "u(2)", "C(1)", "C(2)", "C"]);
    for task in ts.tasks() {
        let c = contribution(task, &totals);
        let l2 = CritLevel::new(2);
        let (c2, u2, cc2) = if task.level() == l2 {
            (task.wcet(l2).to_string(), fmt3(task.util(l2)), fmt3(c.per_level[1]))
        } else {
            ("-".into(), "-".into(), "-".into())
        };
        t.push_row([
            display_name(task.id()),
            task.wcet(CritLevel::LO).to_string(),
            c2,
            task.period().to_string(),
            task.level().to_string(),
            fmt3(task.util(CritLevel::LO)),
            u2,
            fmt3(c.per_level[0]),
            cc2,
            fmt3(c.max),
        ]);
    }
    t
}

/// One step of an allocation trace.
#[derive(Clone, Debug)]
pub struct AllocStep {
    /// Paper-style task name.
    pub task: String,
    /// Target core ("P1"/"P2") or "FAIL".
    pub core: String,
    /// Core utilizations after the step.
    pub core_utils: Vec<f64>,
}

fn steps_to_table(steps: &[AllocStep], cores: usize) -> Table {
    let mut header = vec!["task".to_string(), "core".to_string()];
    header.extend((0..cores).map(|m| format!("U(P{})", m + 1)));
    let mut t = Table::new(header);
    for s in steps {
        let mut row = vec![s.task.clone(), s.core.clone()];
        row.extend(s.core_utils.iter().map(|&u| fmt3(u)));
        t.push_row(row);
    }
    t
}

/// Trace FFD on the example: per-step target core and the Theorem-1 core
/// utilizations (`∞` renders as the failing step). Returns the table and
/// whether FFD succeeded.
#[must_use]
pub fn table2() -> (Table, bool) {
    let ts = paper_example_task_set();
    let cores = 2;
    let order = BinPacker::decreasing_max_util_order(&ts);
    let fit = FitTest::SimpleThenImproved;
    let mut tables: Vec<UtilTable> = (0..cores).map(|_| UtilTable::new(2)).collect();
    let mut steps = Vec::new();
    let mut ok = true;
    for task in order {
        let chosen = (0..cores).find(|&m| fit.feasible(&WithTask::new(&tables[m], task)));
        match chosen {
            Some(m) => {
                tables[m].add(task);
                steps.push(AllocStep {
                    task: display_name(task.id()),
                    core: format!("P{}", m + 1),
                    core_utils: tables
                        .iter()
                        .map(|t| Theorem1::compute(t).core_utilization().unwrap_or(f64::NAN))
                        .collect(),
                });
            }
            None => {
                ok = false;
                steps.push(AllocStep {
                    task: display_name(task.id()),
                    core: "FAIL".into(),
                    core_utils: tables
                        .iter()
                        .map(|t| Theorem1::compute(t).core_utilization().unwrap_or(f64::NAN))
                        .collect(),
                });
                break;
            }
        }
    }
    (steps_to_table(&steps, cores), ok)
}

/// Trace CA-TPA on the example (same layout as Table III of the paper).
/// Returns the table and whether CA-TPA succeeded.
#[must_use]
pub fn table3() -> (Table, bool) {
    let ts = paper_example_task_set();
    let cores = 2;
    let order = order_by_contribution(&ts);
    let mut tables: Vec<UtilTable> = (0..cores).map(|_| UtilTable::new(2)).collect();
    let mut utils = vec![0.0f64; cores];
    let mut steps = Vec::new();
    let mut ok = true;
    for id in order {
        let task = ts.task(id);
        // Replicate CA-TPA's selection (α = 0.7 default).
        let rebalance = mcs_partition::catpa::imbalance(&utils) > mcs_partition::DEFAULT_ALPHA;
        let mut best: Option<(usize, f64)> = None;
        for m in 0..cores {
            let Some(new_u) = mcs_partition::catpa::probe(&tables[m], task) else { continue };
            let key = if rebalance { utils[m] } else { new_u - utils[m] };
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((m, key));
            }
        }
        match best {
            Some((m, _)) => {
                tables[m].add(task);
                utils[m] =
                    Theorem1::compute(&tables[m]).core_utilization().expect("probed feasible");
                steps.push(AllocStep {
                    task: display_name(id),
                    core: format!("P{}", m + 1),
                    core_utils: utils.clone(),
                });
            }
            None => {
                ok = false;
                steps.push(AllocStep {
                    task: display_name(id),
                    core: "FAIL".into(),
                    core_utils: utils.clone(),
                });
                break;
            }
        }
    }
    (steps_to_table(&steps, cores), ok)
}

/// Table IV: the simulation parameter space, read back from the generator
/// defaults.
#[must_use]
pub fn table4() -> Table {
    let p = mcs_gen::GenParams::default();
    let mut t = Table::new(["parameter", "values/ranges", "default"]);
    t.push_row(["Number of cores (M)", "2, 4, 8, 16, 32", &p.cores.to_string()]);
    t.push_row(["System criticality level (K)", "[2, 6]", &p.levels.to_string()]);
    t.push_row(["Threshold for workload imbalance (α)", "[0.1, 0.5]", "0.7"]);
    t.push_row(["Normalized system utilization (NSU)", "[0.4, 0.8]", &fmt3(p.nsu)]);
    t.push_row([
        "Number of tasks (N)".to_string(),
        format!("[{}, {}]", p.n_range.0, p.n_range.1),
        "drawn per set".to_string(),
    ]);
    t.push_row([
        "Task periods (P)".to_string(),
        p.period_ranges
            .iter()
            .map(|r| format!("[{}, {}]", r.lo, r.hi))
            .collect::<Vec<_>>()
            .join(", "),
        "drawn per task".to_string(),
    ]);
    t.push_row(["Increment factor (IFC)", "[0.3, 0.7]", &fmt3(p.ifc)]);
    t
}

/// Does the full worked example hold: FFD fails, CA-TPA succeeds?
#[must_use]
pub fn example_reproduces() -> bool {
    let (_, ffd_ok) = table2();
    let (_, catpa_ok) = table3();
    !ffd_ok && catpa_ok
}

/// The example task set, re-exported for the quickstart binary.
#[must_use]
pub fn example_task_set() -> TaskSet {
    paper_example_task_set()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_tasks() {
        let t = table1();
        assert_eq!(t.rows.len(), 5);
        // τ4's numbers from the paper's prose survive.
        let tau4 = &t.rows[3];
        assert_eq!(tau4[0], "τ4");
        assert_eq!(tau4[5], "0.339");
        assert_eq!(tau4[6], "0.633");
    }

    #[test]
    fn table2_shows_ffd_failure() {
        let (t, ok) = table2();
        assert!(!ok, "FFD must fail on the example");
        let last = t.rows.last().unwrap();
        assert_eq!(last[0], "τ3");
        assert_eq!(last[1], "FAIL");
        // Four successful placements + the failing step.
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn table3_shows_catpa_success() {
        let (t, ok) = table3();
        assert!(ok, "CA-TPA must succeed on the example");
        assert_eq!(t.rows.len(), 5);
        // Paper's mapping: τ4→P1, τ2→P2, τ1→P2, τ5→P1, τ3→P2.
        let mapping: Vec<(String, String)> =
            t.rows.iter().map(|r| (r[0].clone(), r[1].clone())).collect();
        assert_eq!(
            mapping,
            [
                ("τ4".to_string(), "P1".to_string()),
                ("τ2".to_string(), "P2".to_string()),
                ("τ1".to_string(), "P2".to_string()),
                ("τ5".to_string(), "P1".to_string()),
                ("τ3".to_string(), "P2".to_string()),
            ]
        );
    }

    #[test]
    fn example_reproduces_paper_result() {
        assert!(example_reproduces());
    }

    #[test]
    fn table4_lists_all_parameters() {
        let t = table4();
        assert_eq!(t.rows.len(), 7);
    }
}
