//! Integration tests for the telemetry layer.
//!
//! * stdout byte-identity: `--telemetry` must not change a single byte of
//!   any published command's stdout (`sweep`, `fig2`, `audit`);
//! * sidecar schema: the JSONL sidecar parses with the same hand-rolled
//!   parser the harness uses (`mcs_harness::json`) and carries the
//!   provenance header plus registry-resolvable counter/phase names;
//! * thread-count invariance: counter totals are a property of the work,
//!   not the schedule — 1 worker and 8 workers produce identical deltas
//!   for every deterministic counter (proptest over trials × seed).
//!
//! All counter-producing runs happen in subprocesses so the assertions
//! see exactly one command's activity; the in-process test only snapshots
//! and serializes, never asserts on global totals.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use mcs_harness::json;
use proptest::prelude::*;

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mcs-exp-telemetry-{}-{name}", std::process::id()));
    p
}

/// Run the real `mcs-exp` binary; returns (stdout, stderr).
fn run_mcs_exp(args: &[&str]) -> (Vec<u8>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcs-exp"))
        .args(args)
        .output()
        .expect("failed to spawn mcs-exp");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "mcs-exp {args:?} failed:\n{stderr}");
    (out.stdout, stderr)
}

/// Parse the counter lines of a sidecar into `name -> value`.
fn sidecar_counters(path: &PathBuf) -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(path).expect("sidecar unreadable");
    let mut counters = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = json::parse(line).expect("sidecar line is not valid JSON");
        if v.get("kind").and_then(json::JsonValue::as_str) == Some("counter") {
            let name = v.get("name").and_then(json::JsonValue::as_str).unwrap().to_string();
            let value = v.get("value").and_then(json::JsonValue::as_u64).unwrap();
            counters.insert(name, value);
        }
    }
    counters
}

#[test]
fn telemetry_leaves_published_stdout_byte_identical() {
    let cases: &[(&str, &[&str])] = &[
        ("sweep", &["sweep", "--trials", "25"]),
        ("fig2", &["fig2", "--trials", "5"]),
        // Byte-identity is a formatting property, not a statistical one;
        // the audit's exact-rational oracle is slow in debug builds, so a
        // couple of trials suffice here (ci.sh audits at full depth).
        ("audit", &["audit", "--trials", "2"]),
    ];
    for (name, args) in cases {
        let (plain, _) = run_mcs_exp(args);
        let sidecar = tmp_path(&format!("ident-{name}.jsonl"));
        let mut with_telemetry = args.to_vec();
        let sidecar_str = sidecar.to_str().unwrap().to_string();
        with_telemetry.extend(["--telemetry", &sidecar_str]);
        let (instrumented, _) = run_mcs_exp(&with_telemetry);
        assert_eq!(plain, instrumented, "--telemetry changed the stdout bytes of `mcs-exp {name}`");
        let _ = std::fs::remove_file(&sidecar);
    }
}

#[test]
fn sidecar_carries_provenance_header_and_registry_names() {
    let sidecar = tmp_path("schema.jsonl");
    let sidecar_str = sidecar.to_str().unwrap().to_string();
    let (_, _) =
        run_mcs_exp(&["sweep", "--trials", "25", "--seed", "123", "--telemetry", &sidecar_str]);

    let text = std::fs::read_to_string(&sidecar).expect("sidecar was not written");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "sidecar is empty");

    // Every line must round-trip through the harness's own JSON parser.
    let parsed: Vec<json::JsonValue> =
        lines.iter().map(|l| json::parse(l).expect("invalid JSONL line")).collect();

    let head = &parsed[0];
    assert_eq!(head.get("kind").and_then(json::JsonValue::as_str), Some("header"));
    assert_eq!(head.get("schema").and_then(json::JsonValue::as_str), Some(mcs_obs::SCHEMA));
    assert_eq!(head.get("command").and_then(json::JsonValue::as_str), Some("sweep"));
    assert_eq!(head.get("seed").and_then(json::JsonValue::as_u64), Some(123));
    assert_eq!(head.get("trials").and_then(json::JsonValue::as_u64), Some(25));
    // --telemetry arms span timing for the run.
    assert_eq!(head.get("timing").and_then(json::JsonValue::as_bool), Some(true));
    for key in ["threads", "schemes", "params", "git", "build_profile"] {
        assert!(head.get(key).is_some(), "header missing {key:?}");
    }
    let schemes = head.get("schemes").and_then(json::JsonValue::as_arr).unwrap();
    assert!(!schemes.is_empty(), "header scheme roster is empty");

    // Counter and phase names must resolve against the static registry.
    let mut counter_lines = 0usize;
    let mut phase_lines = 0usize;
    for v in &parsed[1..] {
        match v.get("kind").and_then(json::JsonValue::as_str) {
            Some("counter") => {
                counter_lines += 1;
                let name = v.get("name").and_then(json::JsonValue::as_str).unwrap();
                assert!(
                    mcs_obs::Counter::from_name(name).is_some(),
                    "unknown counter {name:?} in sidecar"
                );
                assert!(v.get("value").and_then(json::JsonValue::as_u64).is_some());
            }
            Some("phase") => {
                phase_lines += 1;
                let name = v.get("name").and_then(json::JsonValue::as_str).unwrap();
                assert!(
                    mcs_obs::Phase::from_name(name).is_some(),
                    "unknown phase {name:?} in sidecar"
                );
                for key in ["count", "total_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
                    assert!(v.get(key).is_some(), "phase line missing {key:?}");
                }
                assert!(v.get("buckets").and_then(json::JsonValue::as_arr).is_some());
            }
            Some("worker") => {
                for key in ["index", "trials", "blocks", "busy_ns", "wall_ns", "idle_ns"] {
                    assert!(v.get(key).is_some(), "worker line missing {key:?}");
                }
            }
            kind => panic!("unexpected sidecar line kind {kind:?}"),
        }
    }
    assert!(counter_lines > 0, "no counter lines in sidecar");
    assert!(phase_lines > 0, "no phase lines in sidecar");

    if mcs_obs::compiled() {
        let counters = sidecar_counters(&sidecar);
        assert_eq!(
            counters.get("harness_trials_computed").copied(),
            Some(25),
            "sweep --trials 25 must compute exactly 25 trials"
        );
        let issued = counters.get("engine_probes_issued").copied().unwrap_or(0);
        let rejected = counters.get("engine_probes_rejected").copied().unwrap_or(0);
        let feasible = counters.get("engine_probes_feasible").copied().unwrap_or(0);
        assert!(issued > 0, "a sweep must issue probes");
        assert_eq!(issued, rejected + feasible, "probe verdict algebra broken");
    }
    let _ = std::fs::remove_file(&sidecar);
}

/// The deterministic counter set: totals depend only on (seed, trials,
/// params), never on the worker schedule. Scheduling-shaped counters
/// (`harness_block_claims`, `scratch_*`) and byte counts that include
/// per-run headers are deliberately excluded.
const SCHEDULE_INVARIANT: &[&str] = &[
    "engine_probes_issued",
    "engine_probes_rejected",
    "engine_probes_feasible",
    "engine_commits",
    "engine_placements_untracked",
    "engine_evictions",
    "engine_resets",
    "placement_attempts",
    "alpha_fallbacks",
    "repair_moves",
    "harness_trials_computed",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn counter_totals_are_thread_count_invariant(
        trials in 5usize..25,
        seed in 0u64..1_000,
    ) {
        let trials_s = trials.to_string();
        let seed_s = seed.to_string();
        let mut totals: Vec<BTreeMap<String, u64>> = Vec::new();
        for threads in ["1", "8"] {
            let sidecar = tmp_path(&format!("threads-{threads}.jsonl"));
            let sidecar_str = sidecar.to_str().unwrap().to_string();
            run_mcs_exp(&[
                "sweep", "--trials", &trials_s, "--seed", &seed_s,
                "--threads", threads, "--telemetry", &sidecar_str,
            ]);
            totals.push(sidecar_counters(&sidecar));
            let _ = std::fs::remove_file(&sidecar);
        }
        if mcs_obs::compiled() {
            for name in SCHEDULE_INVARIANT {
                prop_assert_eq!(
                    totals[0].get(*name).copied().unwrap_or(0),
                    totals[1].get(*name).copied().unwrap_or(0),
                    "counter {} differs between 1 and 8 workers", name
                );
            }
            prop_assert_eq!(
                totals[0].get("harness_trials_computed").copied().unwrap_or(0),
                trials as u64
            );
        }
    }
}

#[test]
fn write_jsonl_roundtrips_through_harness_json() {
    let prov = mcs_obs::Provenance::capture(
        "roundtrip".to_string(),
        7,
        10,
        2,
        vec!["ca-tpa".to_string(), "ffd \"quoted\"".to_string()],
        "growth=Linear horizon=8".to_string(),
    );
    let snap = mcs_obs::Snapshot::capture();
    let mut buf = Vec::new();
    mcs_obs::write_jsonl(&mut buf, &prov, &snap).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let mut kinds = BTreeMap::new();
    for line in text.lines() {
        let v = json::parse(line).expect("write_jsonl emitted unparseable JSON");
        let kind = v.get("kind").and_then(json::JsonValue::as_str).unwrap().to_string();
        *kinds.entry(kind.clone()).or_insert(0usize) += 1;
        if kind == "header" {
            assert_eq!(v.get("seed").and_then(json::JsonValue::as_u64), Some(7));
            assert_eq!(v.get("trials").and_then(json::JsonValue::as_u64), Some(10));
            assert_eq!(v.get("threads").and_then(json::JsonValue::as_u64), Some(2));
            let schemes = v.get("schemes").and_then(json::JsonValue::as_arr).unwrap();
            // Escaping survives the round trip, quotes and all.
            assert_eq!(schemes[1].as_str(), Some("ffd \"quoted\""));
            assert_eq!(
                v.get("params").and_then(json::JsonValue::as_str),
                Some("growth=Linear horizon=8")
            );
        }
    }
    assert_eq!(kinds.get("header"), Some(&1), "exactly one header line");
    if mcs_obs::compiled() {
        assert_eq!(
            kinds.get("counter").copied().unwrap_or(0),
            mcs_obs::Counter::COUNT,
            "one line per registered counter"
        );
        assert_eq!(
            kinds.get("phase").copied().unwrap_or(0),
            mcs_obs::Phase::COUNT,
            "one line per registered phase"
        );
    }
}
