//! End-to-end tests of the `mcs-exp` binary itself.

use std::io::Write as _;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcs-exp"))
}

fn demo_file() -> tempfile_lite::TempPath {
    let mut f = tempfile_lite::TempPath::new("mcs-exp-cli-test.csv");
    writeln!(f.file, "K=2").unwrap();
    writeln!(f.file, "100000,1,30000").unwrap();
    writeln!(f.file, "100000,2,10000,25000").unwrap();
    writeln!(f.file, "200000,1,60000").unwrap();
    writeln!(f.file, "200000,2,20000,50000").unwrap();
    f.file.flush().unwrap();
    f
}

/// Minimal self-cleaning temp file (std-only; no tempfile crate).
mod tempfile_lite {
    use std::fs::File;
    use std::path::PathBuf;

    pub struct TempPath {
        pub path: PathBuf,
        pub file: File,
    }

    impl TempPath {
        pub fn new(name: &str) -> Self {
            let path = std::env::temp_dir().join(format!("{}-{name}", std::process::id()));
            let file = File::create(&path).expect("create temp file");
            Self { path, file }
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[test]
fn tables_command_reproduces_the_worked_example() {
    let out = bin().args(["tables"]).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "{stdout}");
    assert!(stdout.contains("FAILURE (as in the paper)"), "{stdout}");
    assert!(stdout.contains("feasible (as in the paper)"), "{stdout}");
}

#[test]
fn figure_command_emits_four_panels() {
    let out = bin().args(["fig2", "--trials", "8", "--seed", "3"]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for panel in ["(a: schedulability ratio)", "(b: U_sys)", "(c: U_avg)", "(d: imbalance"] {
        assert!(stdout.contains(panel), "missing {panel} in {stdout}");
    }
}

#[test]
fn csv_flag_switches_format() {
    let out = bin().args(["table4", "--csv"]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parameter,values/ranges,default"), "{stdout}");
}

#[test]
fn partition_and_describe_work_on_a_file() {
    let f = demo_file();
    let path = f.path.to_str().unwrap();
    let out = bin()
        .args(["partition", "--file", path, "--cores", "2", "--scheme", "catpa"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("U_sys"));

    let out = bin().args(["describe", "--file", path]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Theorem 1"), "{stdout}");
}

#[test]
fn sweep_jsonl_resume_matches_a_fresh_run() {
    let dir = std::env::temp_dir();
    let ck = dir.join(format!("{}-mcs-cli-resume.jsonl", std::process::id()));
    let fresh = dir.join(format!("{}-mcs-cli-fresh.jsonl", std::process::id()));
    let ck_s = ck.to_str().unwrap();
    let fresh_s = fresh.to_str().unwrap();

    // 12 trials, then resume the same file up to 30.
    let out = bin()
        .args(["sweep", "--trials", "12", "--seed", "5", "--jsonl", ck_s])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["sweep", "--trials", "30", "--seed", "5", "--resume", "--jsonl", ck_s])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let resumed_stdout = String::from_utf8_lossy(&out.stdout).to_string();

    // One uninterrupted 30-trial run: same stdout, same JSONL records.
    let out = bin()
        .args(["sweep", "--trials", "30", "--seed", "5", "--jsonl", fresh_s])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert_eq!(resumed_stdout, String::from_utf8_lossy(&out.stdout));
    let strip_header = |p: &std::path::Path| {
        let s = std::fs::read_to_string(p).unwrap();
        s.split_once('\n').unwrap().1.to_string()
    };
    assert_eq!(strip_header(&ck), strip_header(&fresh));

    // A mismatched resume (different seed) is refused, not silently merged.
    let out = bin()
        .args(["sweep", "--trials", "30", "--seed", "6", "--resume", "--jsonl", ck_s])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("mismatch"), "unexpected error: {stderr}");

    std::fs::remove_file(&ck).ok();
    std::fs::remove_file(&fresh).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().args(["bogus"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_reports_cleanly() {
    let out =
        bin().args(["partition", "--file", "/nonexistent/x.csv"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn chart_flag_renders_ascii_panels() {
    let out = bin().args(["fig3", "--trials", "6", "--chart"]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# CA-TPA"), "legend missing: {stdout}");
    assert!(stdout.contains('|'), "no axis: {stdout}");
}

#[test]
fn admit_stdout_is_byte_identical_across_shard_counts() {
    // The admission service runs one engine per policy per worker shard;
    // records fold in trial order, so stdout must not depend on how many
    // shards served the stream.
    let run = |threads: &str| {
        let out = bin()
            .args(["admit", "--trials", "12", "--seed", "7", "--threads", threads])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let one = run("1");
    let eight = run("8");
    assert_eq!(one, eight, "admit stdout differs between 1 and 8 shards");
    let stdout = String::from_utf8_lossy(&one);
    assert!(stdout.contains("admission state identical: true"), "{stdout}");
    assert!(stdout.contains("CA-TPA"), "{stdout}");
}
