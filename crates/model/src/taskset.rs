//! Task sets: a collection of MC tasks plus the system criticality level `K`.

use std::fmt;

use crate::level::CritLevel;
use crate::task::{McTask, TaskId};
use crate::time::{hyperperiod, Tick};
use crate::util::{LevelUtils, UtilTable};

/// Errors detected when assembling a [`TaskSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSetError {
    /// Task ids must be dense `0..N` in order (so they index vectors).
    NonDenseIds {
        /// Position in the input vector where the gap was found.
        position: usize,
        /// The id actually found there.
        id: TaskId,
    },
    /// A task's criticality exceeds the system level `K`.
    LevelAboveSystem {
        /// The offending task.
        id: TaskId,
        /// That task's criticality level.
        level: u8,
        /// The system level `K` it exceeds.
        system: u8,
    },
    /// `K` must be at least 1.
    ZeroLevels,
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::NonDenseIds { position, id } => {
                write!(f, "task at position {position} has id {id}, expected {position}")
            }
            TaskSetError::LevelAboveSystem { id, level, system } => {
                write!(f, "task {id} has level {level} above system K={system}")
            }
            TaskSetError::ZeroLevels => write!(f, "system criticality level K must be >= 1"),
        }
    }
}

impl std::error::Error for TaskSetError {}

/// An immutable set of mixed-criticality tasks `Ψ = {τ_1, …, τ_N}` together
/// with the system criticality level `K`.
///
/// Task ids are dense (`TaskId(i)` is the task at position `i`), which lets
/// partitions and simulators use plain vectors keyed by id.
#[derive(Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<McTask>,
    k: u8,
}

impl TaskSet {
    /// Build a task set, validating id density and level bounds.
    pub fn new(k: u8, tasks: Vec<McTask>) -> Result<Self, TaskSetError> {
        if k == 0 {
            return Err(TaskSetError::ZeroLevels);
        }
        for (i, t) in tasks.iter().enumerate() {
            if t.id().index() != i {
                return Err(TaskSetError::NonDenseIds { position: i, id: t.id() });
            }
            if t.level().get() > k {
                return Err(TaskSetError::LevelAboveSystem {
                    id: t.id(),
                    level: t.level().get(),
                    system: k,
                });
            }
        }
        Ok(Self { tasks, k })
    }

    /// System criticality level `K`.
    #[inline]
    #[must_use]
    pub fn num_levels(&self) -> u8 {
        self.k
    }

    /// Number of tasks `N`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the set holds no tasks.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    #[inline]
    #[must_use]
    pub fn task(&self, id: TaskId) -> &McTask {
        &self.tasks[id.index()]
    }

    /// All tasks in id order.
    #[inline]
    #[must_use]
    pub fn tasks(&self) -> &[McTask] {
        &self.tasks
    }

    /// Iterate over the tasks at criticality level exactly `j` (`L_j`).
    pub fn tasks_at_level(&self, j: CritLevel) -> impl Iterator<Item = &McTask> {
        self.tasks.iter().filter(move |t| t.level() == j)
    }

    /// `U_j(k)` over the whole set (Eq. (1)).
    #[must_use]
    pub fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        if k > j {
            return 0.0;
        }
        self.tasks_at_level(j).map(|t| t.util(k)).sum()
    }

    /// `U(k) = Σ_{j=k}^{K} U_j(k)` over the whole set (Eq. (2)): total
    /// level-`k` utilization of tasks with criticality `k` or higher.
    #[must_use]
    pub fn total_util_at(&self, k: CritLevel) -> f64 {
        self.tasks.iter().filter(|t| t.level() >= k).map(|t| t.util(k)).sum()
    }

    /// Total level-1 "raw" utilization `Σ_i u_i(1)` — the numerator of the
    /// paper's normalized system utilization (NSU · M).
    #[must_use]
    pub fn raw_util(&self) -> f64 {
        self.tasks.iter().map(|t| t.util(CritLevel::LO)).sum()
    }

    /// Aggregate utilization table for the entire set.
    #[must_use]
    pub fn util_table(&self) -> UtilTable {
        UtilTable::from_tasks(self.k, self.tasks.iter())
    }

    /// Hyperperiod (LCM of periods), saturating at `Tick::MAX`.
    #[must_use]
    pub fn hyperperiod(&self) -> Tick {
        hyperperiod(self.tasks.iter().map(McTask::period))
    }

    /// Largest period in the set (0 if empty) — a convenient simulation
    /// horizon unit when the hyperperiod overflows.
    #[must_use]
    pub fn max_period(&self) -> Tick {
        self.tasks.iter().map(McTask::period).max().unwrap_or(0)
    }
}

impl LevelUtils for TaskSet {
    fn num_levels(&self) -> u8 {
        self.k
    }
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        TaskSet::util_jk(self, j, k)
    }
}

impl fmt::Debug for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TaskSet(K={}, N={})", self.k, self.tasks.len())?;
        for t in &self.tasks {
            writeln!(f, "  {t:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    fn t(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    fn demo() -> TaskSet {
        TaskSet::new(
            2,
            vec![
                t(0, 100, 1, &[20]),     // u(1)=0.2
                t(1, 100, 2, &[10, 40]), // u(1)=0.1, u(2)=0.4
                t(2, 200, 2, &[30, 50]), // u(1)=0.15, u(2)=0.25
            ],
        )
        .unwrap()
    }

    #[test]
    fn level_groups() {
        let ts = demo();
        assert_eq!(ts.tasks_at_level(CritLevel::new(1)).count(), 1);
        assert_eq!(ts.tasks_at_level(CritLevel::new(2)).count(), 2);
    }

    #[test]
    fn equation_1_and_2() {
        let ts = demo();
        let l1 = CritLevel::new(1);
        let l2 = CritLevel::new(2);
        assert!((ts.util_jk(l1, l1) - 0.2).abs() < 1e-12);
        assert!((ts.util_jk(l2, l1) - 0.25).abs() < 1e-12);
        assert!((ts.util_jk(l2, l2) - 0.65).abs() < 1e-12);
        // U(1) = 0.2 + 0.25, U(2) = 0.65
        assert!((ts.total_util_at(l1) - 0.45).abs() < 1e-12);
        assert!((ts.total_util_at(l2) - 0.65).abs() < 1e-12);
        assert!((ts.raw_util() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn util_table_matches_direct_sums() {
        let ts = demo();
        let tab = ts.util_table();
        for j in CritLevel::up_to(2) {
            for k in CritLevel::up_to(j.get()) {
                assert!((tab.util_jk(j, k) - ts.util_jk(j, k)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_non_dense_ids() {
        let r = TaskSet::new(2, vec![t(1, 10, 1, &[1])]);
        assert!(matches!(r, Err(TaskSetError::NonDenseIds { position: 0, .. })));
    }

    #[test]
    fn rejects_level_above_k() {
        let r = TaskSet::new(1, vec![t(0, 10, 2, &[1, 2])]);
        assert!(matches!(r, Err(TaskSetError::LevelAboveSystem { .. })));
    }

    #[test]
    fn rejects_zero_k() {
        assert_eq!(TaskSet::new(0, vec![]).unwrap_err(), TaskSetError::ZeroLevels);
    }

    #[test]
    fn hyperperiod_and_max_period() {
        let ts = demo();
        assert_eq!(ts.hyperperiod(), 200);
        assert_eq!(ts.max_period(), 200);
        let empty = TaskSet::new(2, vec![]).unwrap();
        assert_eq!(empty.hyperperiod(), 0);
        assert_eq!(empty.max_period(), 0);
        assert!(empty.is_empty());
    }
}
