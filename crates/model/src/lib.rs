//! # mcs-model
//!
//! Core data model for mixed-criticality (MC) real-time task systems, as used
//! by the ICPP'16 paper *"Criticality-Aware Partitioning for Multicore
//! Mixed-Criticality Systems"* (Han, Tao, Zhu, Aydin).
//!
//! The model follows Vestal's classic formulation: a system has `K > 1`
//! criticality levels; each implicit-deadline periodic task `τ_i = (C_i, p_i,
//! l_i)` has its own criticality `l_i ∈ [1, K]` and a vector of worst-case
//! execution times `C_i = <c_i(1), …, c_i(l_i)>` that is non-decreasing in the
//! level. The utilization of `τ_i` at level `k ≤ l_i` is `u_i(k) = c_i(k) /
//! p_i`.
//!
//! This crate provides:
//!
//! * [`Tick`] integer time, [`CritLevel`] 1-based criticality levels,
//!   [`TaskId`] / [`CoreId`] newtypes;
//! * [`McTask`] and its builder, with validation of the WCET monotonicity
//!   invariants;
//! * [`TaskSet`] — an immutable collection of tasks plus the system
//!   criticality level `K`, with the per-level utilization sums `U_j(k)`
//!   (Eq. (1)) and `U(k)` (Eq. (2)) of the paper;
//! * [`UtilTable`] — an incrementally-maintained triangular table of
//!   `U_j(k)` values for a *subset* of tasks (one per core during
//!   partitioning), plus the [`LevelUtils`] abstraction that the analysis
//!   crate consumes;
//! * [`Partition`] — a task-to-core mapping `Γ = {Ψ_1, …, Ψ_M}`.

#![forbid(unsafe_code)]

pub mod io;
pub mod level;
pub mod partition;
pub mod rational;
pub mod task;
pub mod taskset;
pub mod time;
pub mod transform;
pub mod util;

pub use io::{format_task_set, parse_task_set, ParseError};
pub use level::{CritLevel, MAX_LEVELS};
pub use partition::{CoreId, Partition, PartitionError};
pub use task::{McTask, TaskBuildError, TaskBuilder, TaskId};
pub use taskset::{TaskSet, TaskSetError};
pub use time::{gcd, hyperperiod, lcm_saturating, Tick, TICKS_PER_UNIT};
pub use transform::{period_transform, promote_critical, transform_task};
pub use util::{LevelUtils, UtilTable, WithTask, WithoutTask};
