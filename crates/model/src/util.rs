//! Per-level utilization tables and the [`LevelUtils`] abstraction.
//!
//! The EDF-VD schedulability conditions consume only the aggregated values
//! `U_j^Ψ(k)` — the level-`k` utilization of the tasks in subset `Ψ` whose
//! own criticality is exactly `j` (Eq. (3) of the paper):
//!
//! ```text
//! U_j^Ψ(k) = Σ_{τ_i ∈ Ψ ∩ L_j} u_i(k),    1 ≤ k ≤ j ≤ K
//! ```
//!
//! [`UtilTable`] maintains this triangular table incrementally so that the
//! partitioner can probe "what if task τ were added to core P_m" in `O(K)`
//! without copying the table: [`WithTask`] / [`WithoutTask`] are zero-copy
//! adapter views.

use crate::level::CritLevel;
use crate::task::McTask;

/// Read access to the per-level utilization sums of a subset of tasks.
///
/// Implemented by [`UtilTable`] and by the probe adapters [`WithTask`] /
/// [`WithoutTask`], so the analysis crate can evaluate schedulability
/// conditions on hypothetical assignments without mutation.
pub trait LevelUtils {
    /// Number of criticality levels `K` of the system (not of the subset).
    fn num_levels(&self) -> u8;

    /// `U_j(k)`: total level-`k` utilization of the subset's tasks whose own
    /// criticality is exactly `j`. Must return 0.0 when `k > j`.
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64;

    /// `Σ_{j=k}^{K} U_j(k)` — total level-`k` utilization of tasks with
    /// criticality `k` or higher (Eq. (2) restricted to the subset).
    fn util_at_or_above(&self, k: CritLevel) -> f64 {
        let mut s = 0.0;
        let mut j = k;
        loop {
            s += self.util_jk(j, k);
            match j.next() {
                Some(n) if n.get() <= self.num_levels() => j = n,
                _ => break,
            }
        }
        s
    }

    /// `Σ_{k=1}^{K} U_k(k)` — the left-hand side of the simple sufficient
    /// condition, Eq. (4): each task counted at its own level.
    fn own_level_total(&self) -> f64 {
        CritLevel::up_to(self.num_levels()).map(|k| self.util_jk(k, k)).sum()
    }
}

/// Incrementally maintained triangular table of `U_j(k)` values for one
/// subset of tasks (typically: the tasks currently assigned to one core).
#[derive(Clone, Debug, PartialEq)]
pub struct UtilTable {
    k: u8,
    /// Row-major lower triangle: entry for `(j, k)` with `k ≤ j` lives at
    /// `tri_index(j, k)`.
    sums: Vec<f64>,
    tasks: usize,
}

#[inline]
fn tri_index(j: CritLevel, k: CritLevel) -> usize {
    let j = j.index();
    let k = k.index();
    debug_assert!(k <= j);
    j * (j + 1) / 2 + k
}

impl UtilTable {
    /// Empty table for a system with `k` criticality levels.
    #[must_use]
    pub fn new(k: u8) -> Self {
        assert!(k >= 1, "a system needs at least one criticality level");
        let n = usize::from(k);
        Self { k, sums: vec![0.0; n * (n + 1) / 2], tasks: 0 }
    }

    /// Build a table from an iterator of tasks.
    #[must_use]
    pub fn from_tasks<'a, I: IntoIterator<Item = &'a McTask>>(k: u8, tasks: I) -> Self {
        let mut t = Self::new(k);
        for task in tasks {
            t.add(task);
        }
        t
    }

    /// Number of tasks accumulated in the table.
    #[inline]
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks
    }

    /// Add a task's utilizations to the table.
    pub fn add(&mut self, task: &McTask) {
        let j = task.level();
        assert!(j.get() <= self.k, "task level {} exceeds system K={}", j, self.k);
        for k in CritLevel::up_to(j.get()) {
            self.sums[tri_index(j, k)] += task.util(k);
        }
        self.tasks += 1;
    }

    /// Remove a previously added task's utilizations.
    ///
    /// Floating-point subtraction can leave tiny negative residue; it is
    /// clamped to zero to keep the table usable as a utilization.
    pub fn remove(&mut self, task: &McTask) {
        let j = task.level();
        assert!(j.get() <= self.k, "task level {} exceeds system K={}", j, self.k);
        assert!(self.tasks > 0, "removing a task from an empty table");
        for k in CritLevel::up_to(j.get()) {
            let e = &mut self.sums[tri_index(j, k)];
            *e = (*e - task.util(k)).max(0.0);
        }
        self.tasks -= 1;
    }
}

impl LevelUtils for UtilTable {
    #[inline]
    fn num_levels(&self) -> u8 {
        self.k
    }

    #[inline]
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        if k > j || j.get() > self.k {
            0.0
        } else {
            self.sums[tri_index(j, k)]
        }
    }
}

impl<T: LevelUtils + ?Sized> LevelUtils for &T {
    fn num_levels(&self) -> u8 {
        (**self).num_levels()
    }
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        (**self).util_jk(j, k)
    }
}

/// Zero-copy view of `base ∪ {task}` — evaluates conditions for a probe
/// assignment without mutating the underlying table (`Ψ_m ∪ {τ_i}` in
/// Eq. (14)/(15)).
#[derive(Clone, Copy)]
pub struct WithTask<'a, B: LevelUtils> {
    base: &'a B,
    task: &'a McTask,
}

impl<'a, B: LevelUtils> WithTask<'a, B> {
    /// View of `base` with `task` hypothetically added.
    #[must_use]
    pub fn new(base: &'a B, task: &'a McTask) -> Self {
        assert!(task.level().get() <= base.num_levels());
        Self { base, task }
    }
}

impl<B: LevelUtils> LevelUtils for WithTask<'_, B> {
    #[inline]
    fn num_levels(&self) -> u8 {
        self.base.num_levels()
    }

    #[inline]
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        let mut v = self.base.util_jk(j, k);
        if j == self.task.level() && k <= j {
            v += self.task.util(k);
        }
        v
    }
}

/// Zero-copy view of `base ∖ {task}` — the dual of [`WithTask`], used by
/// repair/rebalancing heuristics.
#[derive(Clone, Copy)]
pub struct WithoutTask<'a, B: LevelUtils> {
    base: &'a B,
    task: &'a McTask,
}

impl<'a, B: LevelUtils> WithoutTask<'a, B> {
    /// View of `base` with `task` hypothetically removed. The caller must
    /// ensure `task` is actually contained in `base`.
    #[must_use]
    pub fn new(base: &'a B, task: &'a McTask) -> Self {
        assert!(task.level().get() <= base.num_levels());
        Self { base, task }
    }
}

impl<B: LevelUtils> LevelUtils for WithoutTask<'_, B> {
    #[inline]
    fn num_levels(&self) -> u8 {
        self.base.num_levels()
    }

    #[inline]
    fn util_jk(&self, j: CritLevel, k: CritLevel) -> f64 {
        let mut v = self.base.util_jk(j, k);
        if j == self.task.level() && k <= j {
            v = (v - self.task.util(k)).max(0.0);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskBuilder, TaskId};

    fn t(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    const L1: CritLevel = CritLevel::LO;

    #[test]
    fn empty_table_is_all_zero() {
        let tab = UtilTable::new(3);
        for j in CritLevel::up_to(3) {
            for k in CritLevel::up_to(j.get()) {
                assert_eq!(tab.util_jk(j, k), 0.0);
            }
        }
        assert_eq!(tab.own_level_total(), 0.0);
        assert_eq!(tab.task_count(), 0);
    }

    #[test]
    fn add_accumulates_per_level() {
        let mut tab = UtilTable::new(2);
        tab.add(&t(0, 100, 2, &[10, 30])); // u(1)=0.1, u(2)=0.3
        tab.add(&t(1, 100, 2, &[20, 20])); // u(1)=0.2, u(2)=0.2
        tab.add(&t(2, 100, 1, &[40])); // u(1)=0.4
        let l2 = CritLevel::new(2);
        assert!((tab.util_jk(l2, L1) - 0.3).abs() < 1e-12);
        assert!((tab.util_jk(l2, l2) - 0.5).abs() < 1e-12);
        assert!((tab.util_jk(L1, L1) - 0.4).abs() < 1e-12);
        // U(1) = all tasks at level 1 utilization.
        assert!((tab.util_at_or_above(L1) - 0.7).abs() < 1e-12);
        // U(2) = only level-2 tasks.
        assert!((tab.util_at_or_above(l2) - 0.5).abs() < 1e-12);
        // Eq. (4) LHS.
        assert!((tab.own_level_total() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn remove_is_inverse_of_add() {
        let a = t(0, 50, 3, &[5, 10, 15]);
        let b = t(1, 200, 2, &[20, 60]);
        let mut tab = UtilTable::new(3);
        tab.add(&a);
        tab.add(&b);
        tab.remove(&a);
        let only_b = UtilTable::from_tasks(3, [&b]);
        for j in CritLevel::up_to(3) {
            for k in CritLevel::up_to(j.get()) {
                assert!((tab.util_jk(j, k) - only_b.util_jk(j, k)).abs() < 1e-12);
            }
        }
        assert_eq!(tab.task_count(), 1);
    }

    #[test]
    fn with_task_view_matches_mutated_table() {
        let a = t(0, 100, 2, &[10, 30]);
        let b = t(1, 100, 3, &[5, 6, 90]);
        let base = UtilTable::from_tasks(3, [&a]);
        let view = WithTask::new(&base, &b);
        let mut mutated = base.clone();
        mutated.add(&b);
        for j in CritLevel::up_to(3) {
            for k in CritLevel::up_to(j.get()) {
                assert!(
                    (view.util_jk(j, k) - mutated.util_jk(j, k)).abs() < 1e-12,
                    "mismatch at U_{j}({k})"
                );
            }
        }
        assert!((view.util_at_or_above(L1) - mutated.util_at_or_above(L1)).abs() < 1e-12);
    }

    #[test]
    fn without_task_view_matches_removed_table() {
        let a = t(0, 100, 2, &[10, 30]);
        let b = t(1, 100, 2, &[5, 6]);
        let base = UtilTable::from_tasks(2, [&a, &b]);
        let view = WithoutTask::new(&base, &b);
        let only_a = UtilTable::from_tasks(2, [&a]);
        for j in CritLevel::up_to(2) {
            for k in CritLevel::up_to(j.get()) {
                assert!((view.util_jk(j, k) - only_a.util_jk(j, k)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn util_jk_above_j_is_zero() {
        let tab = UtilTable::from_tasks(3, [&t(0, 10, 1, &[5])]);
        assert_eq!(tab.util_jk(L1, CritLevel::new(2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds system K")]
    fn add_rejects_task_above_system_k() {
        let mut tab = UtilTable::new(2);
        tab.add(&t(0, 10, 3, &[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn remove_from_empty_panics() {
        let mut tab = UtilTable::new(2);
        tab.remove(&t(0, 10, 1, &[1]));
    }
}
