//! Task-to-core partitions `Γ = {Ψ_1, …, Ψ_M}`.

use std::fmt;

use crate::task::TaskId;
use crate::taskset::TaskSet;
use crate::util::UtilTable;

/// Identifier of a processing core `P_m` (0-based internally; the paper's
/// cores are 1-based, display adds 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Zero-based index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterate over all cores `P_0..P_{m-1}`.
    pub fn all(m: usize) -> impl Iterator<Item = CoreId> {
        (0..u16::try_from(m).expect("core count fits in u16")).map(CoreId)
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

/// Errors from partition construction / validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A task was assigned to a core index `>= M`.
    CoreOutOfRange {
        /// The offending task.
        task: TaskId,
        /// The out-of-range core it was assigned to.
        core: CoreId,
        /// Number of cores in the system.
        cores: usize,
    },
    /// Assignment vector length does not match the task set.
    WrongLength {
        /// Task-set size.
        expected: usize,
        /// Assignment-vector length actually supplied.
        got: usize,
    },
    /// A task was left unassigned where a complete partition was required.
    Unassigned {
        /// The unplaced task.
        task: TaskId,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::CoreOutOfRange { task, core, cores } => {
                write!(f, "task {task} assigned to {core} but system has {cores} cores")
            }
            PartitionError::WrongLength { expected, got } => {
                write!(f, "assignment vector has {got} entries, task set has {expected}")
            }
            PartitionError::Unassigned { task } => write!(f, "task {task} is unassigned"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A (possibly partial) task-to-core mapping.
///
/// `assignment[i]` is the core of task `TaskId(i)`, or `None` while the task
/// is not (yet) placed. A *complete* partition has every task placed; only
/// complete partitions are "feasible partitionings" in the paper's sense.
#[derive(Clone, PartialEq, Eq)]
pub struct Partition {
    cores: usize,
    assignment: Vec<Option<CoreId>>,
}

impl Partition {
    /// Empty partition over `m` cores for `n` tasks.
    #[must_use]
    pub fn empty(cores: usize, tasks: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        Self { cores, assignment: vec![None; tasks] }
    }

    /// Build from an explicit assignment vector, validating core bounds.
    pub fn from_assignment(
        cores: usize,
        assignment: Vec<Option<CoreId>>,
    ) -> Result<Self, PartitionError> {
        for (i, a) in assignment.iter().enumerate() {
            if let Some(c) = a {
                if c.index() >= cores {
                    return Err(PartitionError::CoreOutOfRange {
                        task: TaskId(u32::try_from(i).expect("task index fits u32")),
                        core: *c,
                        cores,
                    });
                }
            }
        }
        Ok(Self { cores, assignment })
    }

    /// Number of cores `M`.
    #[inline]
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores
    }

    /// Number of tasks covered by the assignment vector.
    #[inline]
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.assignment.len()
    }

    /// Core of a task, if placed.
    #[inline]
    #[must_use]
    pub fn core_of(&self, task: TaskId) -> Option<CoreId> {
        self.assignment[task.index()]
    }

    /// Place (or move) a task on a core.
    pub fn assign(&mut self, task: TaskId, core: CoreId) {
        assert!(core.index() < self.cores, "core {core} out of range");
        self.assignment[task.index()] = Some(core);
    }

    /// Remove a task from the mapping.
    pub fn unassign(&mut self, task: TaskId) {
        self.assignment[task.index()] = None;
    }

    /// True when every task is placed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().all(Option::is_some)
    }

    /// Ids of unassigned tasks.
    pub fn unassigned(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_none())
            .map(|(i, _)| TaskId(u32::try_from(i).expect("task index fits u32")))
    }

    /// Task ids of subset `Ψ_m` in id order.
    pub fn tasks_on(&self, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, a)| **a == Some(core))
            .map(|(i, _)| TaskId(u32::try_from(i).expect("task index fits u32")))
    }

    /// Number of tasks on each core.
    #[must_use]
    pub fn load_counts(&self) -> Vec<usize> {
        let mut v = vec![0usize; self.cores];
        for a in self.assignment.iter().flatten() {
            v[a.index()] += 1;
        }
        v
    }

    /// Per-core utilization tables `U_j^{Ψ_m}(k)` for a given task set.
    #[must_use]
    pub fn core_tables(&self, ts: &TaskSet) -> Vec<UtilTable> {
        assert_eq!(ts.len(), self.assignment.len(), "partition/task-set size mismatch");
        let mut tables: Vec<UtilTable> =
            (0..self.cores).map(|_| UtilTable::new(ts.num_levels())).collect();
        for (i, a) in self.assignment.iter().enumerate() {
            if let Some(c) = a {
                tables[c.index()].add(&ts.tasks()[i]);
            }
        }
        tables
    }

    /// Validate that the partition is complete for `ts`.
    pub fn require_complete(&self, ts: &TaskSet) -> Result<(), PartitionError> {
        if self.assignment.len() != ts.len() {
            return Err(PartitionError::WrongLength {
                expected: ts.len(),
                got: self.assignment.len(),
            });
        }
        match self.unassigned().next() {
            Some(t) => Err(PartitionError::Unassigned { task: t }),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Partition({} cores, {} tasks)", self.cores, self.assignment.len())?;
        for c in CoreId::all(self.cores) {
            let ids: Vec<String> = self.tasks_on(c).map(|t| format!("τ{t}")).collect();
            writeln!(f, "  {c}: {{{}}}", ids.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    fn ts3() -> TaskSet {
        let mk = |id: u32| {
            TaskBuilder::new(TaskId(id)).period(100).level(1).wcet(&[10]).build().unwrap()
        };
        TaskSet::new(1, vec![mk(0), mk(1), mk(2)]).unwrap()
    }

    #[test]
    fn empty_partition_has_no_assignments() {
        let p = Partition::empty(2, 3);
        assert!(!p.is_complete());
        assert_eq!(p.unassigned().count(), 3);
        assert_eq!(p.load_counts(), vec![0, 0]);
    }

    #[test]
    fn assign_and_query() {
        let mut p = Partition::empty(2, 3);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(1));
        p.assign(TaskId(2), CoreId(1));
        assert!(p.is_complete());
        assert_eq!(p.core_of(TaskId(2)), Some(CoreId(1)));
        assert_eq!(p.tasks_on(CoreId(1)).count(), 2);
        assert_eq!(p.load_counts(), vec![1, 2]);
        p.unassign(TaskId(1));
        assert!(!p.is_complete());
        assert_eq!(p.unassigned().collect::<Vec<_>>(), vec![TaskId(1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assign_out_of_range_panics() {
        let mut p = Partition::empty(2, 1);
        p.assign(TaskId(0), CoreId(2));
    }

    #[test]
    fn from_assignment_validates() {
        let ok = Partition::from_assignment(2, vec![Some(CoreId(0)), None]);
        assert!(ok.is_ok());
        let bad = Partition::from_assignment(2, vec![Some(CoreId(5))]);
        assert!(matches!(bad, Err(PartitionError::CoreOutOfRange { .. })));
    }

    #[test]
    fn core_tables_sum_assigned_tasks() {
        let ts = ts3();
        let mut p = Partition::empty(2, 3);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(1), CoreId(0));
        p.assign(TaskId(2), CoreId(1));
        let tables = p.core_tables(&ts);
        use crate::level::CritLevel;
        use crate::util::LevelUtils;
        assert!((tables[0].util_jk(CritLevel::LO, CritLevel::LO) - 0.2).abs() < 1e-12);
        assert!((tables[1].util_jk(CritLevel::LO, CritLevel::LO) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn require_complete_reports_first_missing() {
        let ts = ts3();
        let mut p = Partition::empty(2, 3);
        p.assign(TaskId(0), CoreId(0));
        p.assign(TaskId(2), CoreId(0));
        assert_eq!(p.require_complete(&ts), Err(PartitionError::Unassigned { task: TaskId(1) }));
        p.assign(TaskId(1), CoreId(1));
        assert!(p.require_complete(&ts).is_ok());
    }

    #[test]
    fn require_complete_checks_length() {
        let ts = ts3();
        let p = Partition::empty(2, 2);
        assert!(matches!(
            p.require_complete(&ts),
            Err(PartitionError::WrongLength { expected: 3, got: 2 })
        ));
    }
}
