//! Criticality levels.

use std::fmt;

/// Upper bound on the number of criticality levels supported by the model.
///
/// The paper notes that real certification standards use at most a handful of
/// levels (DO-178B/C has five); its experiments use `K ∈ [2, 6]`. Eight gives
/// headroom while keeping tables small enough to treat `K` as a constant in
/// complexity terms.
pub const MAX_LEVELS: u8 = 8;

/// A 1-based criticality level (`1 ≤ level ≤ MAX_LEVELS`).
///
/// Level 1 is the *lowest* criticality; the system boots in level-1 operation
/// mode. A task of criticality `l` provides WCET estimates for levels
/// `1..=l` and is dropped whenever the (core-local) operation mode exceeds
/// `l`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CritLevel(u8);

impl CritLevel {
    /// Lowest criticality level.
    pub const LO: CritLevel = CritLevel(1);

    /// Construct a level, panicking if out of `1..=MAX_LEVELS`.
    #[must_use]
    pub fn new(level: u8) -> Self {
        Self::try_new(level).expect("criticality level must be in 1..=MAX_LEVELS")
    }

    /// Construct a level, returning `None` if out of `1..=MAX_LEVELS`.
    #[must_use]
    pub fn try_new(level: u8) -> Option<Self> {
        (1..=MAX_LEVELS).contains(&level).then_some(CritLevel(level))
    }

    /// The raw 1-based level value.
    #[inline]
    #[must_use]
    pub fn get(self) -> u8 {
        self.0
    }

    /// Zero-based index for table lookups (`level - 1`).
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0 - 1)
    }

    /// The next higher level, if within bounds.
    #[must_use]
    pub fn next(self) -> Option<Self> {
        Self::try_new(self.0 + 1)
    }

    /// Iterate over all levels `1..=k`.
    pub fn up_to(k: u8) -> impl Iterator<Item = CritLevel> {
        debug_assert!(k <= MAX_LEVELS);
        (1..=k).map(CritLevel)
    }
}

impl fmt::Debug for CritLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for CritLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<CritLevel> for u8 {
    fn from(l: CritLevel) -> u8 {
        l.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(CritLevel::try_new(0).is_none());
        assert!(CritLevel::try_new(1).is_some());
        assert!(CritLevel::try_new(MAX_LEVELS).is_some());
        assert!(CritLevel::try_new(MAX_LEVELS + 1).is_none());
    }

    #[test]
    #[should_panic(expected = "criticality level")]
    fn new_panics_on_zero() {
        let _ = CritLevel::new(0);
    }

    #[test]
    fn ordering_follows_numeric_level() {
        assert!(CritLevel::new(1) < CritLevel::new(2));
        assert!(CritLevel::new(5) > CritLevel::new(3));
        assert_eq!(CritLevel::new(4), CritLevel::new(4));
    }

    #[test]
    fn index_is_zero_based() {
        assert_eq!(CritLevel::new(1).index(), 0);
        assert_eq!(CritLevel::new(6).index(), 5);
    }

    #[test]
    fn next_stops_at_max() {
        assert_eq!(CritLevel::new(1).next(), Some(CritLevel::new(2)));
        assert_eq!(CritLevel::new(MAX_LEVELS).next(), None);
    }

    #[test]
    fn up_to_iterates_in_order() {
        let v: Vec<u8> = CritLevel::up_to(4).map(CritLevel::get).collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(CritLevel::new(3).to_string(), "3");
        assert_eq!(format!("{:?}", CritLevel::new(3)), "L3");
    }
}
