//! Period transformation (Sha, Lehoczky & Rajkumar) — the classic
//! mixed-criticality technique the paper's related work cites via \[6\],
//! \[18\], \[30\]: splitting a task into `f` slices with period `p/f` and
//! WCETs `⌈c/f⌉` raises its rate-monotonic priority without changing its
//! bandwidth, fixing criticality inversion under fixed-priority scheduling.
//!
//! The transform is utilization-neutral up to the ⌈·⌉ rounding (each slice
//! rounds up, so utilization never *decreases* — the usual implementation
//! pessimism) and preserves the criticality level.

use crate::level::CritLevel;
use crate::task::{McTask, TaskId};
use crate::taskset::TaskSet;

/// Transform one task by factor `f ≥ 1`: period `p/f` (must divide evenly
/// or the next-lower divisor-friendly period is *not* chosen — the caller
/// picks `f`; a non-dividing `f` returns `None` to avoid silently changing
/// the bandwidth), WCETs `⌈c/f⌉`.
#[must_use]
pub fn transform_task(task: &McTask, f: u64) -> Option<McTask> {
    if f == 0 || !task.period().is_multiple_of(f) {
        return None;
    }
    let wcet: Vec<u64> = task.wcet_vector().iter().map(|c| c.div_ceil(f)).collect();
    McTask::new(task.id(), task.period() / f, task.level(), wcet).ok()
}

/// Transform every task selected by `factor_of` (return 1 to leave a task
/// untouched). Returns `None` if any requested factor does not divide the
/// task's period.
#[must_use]
pub fn period_transform<F: Fn(&McTask) -> u64>(ts: &TaskSet, factor_of: F) -> Option<TaskSet> {
    let tasks: Option<Vec<McTask>> = ts
        .tasks()
        .iter()
        .map(|t| {
            let f = factor_of(t);
            if f <= 1 {
                Some(t.clone())
            } else {
                transform_task(t, f)
            }
        })
        .collect();
    TaskSet::new(ts.num_levels(), tasks?).ok()
}

/// Convenience: transform all tasks at criticality ≥ `level` by `f` — the
/// standard "promote the critical work" recipe.
#[must_use]
pub fn promote_critical(ts: &TaskSet, level: CritLevel, f: u64) -> Option<TaskSet> {
    period_transform(ts, |t| if t.level() >= level { f } else { 1 })
}

/// Ids of the tasks a transform touched (factor > 1), for reporting.
#[must_use]
pub fn transformed_ids<F: Fn(&McTask) -> u64>(ts: &TaskSet, factor_of: F) -> Vec<TaskId> {
    ts.tasks().iter().filter(|t| factor_of(t) > 1).map(McTask::id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    fn task(id: u32, period: u64, level: u8, wcet: &[u64]) -> McTask {
        TaskBuilder::new(TaskId(id)).period(period).level(level).wcet(wcet).build().unwrap()
    }

    #[test]
    fn transform_divides_period_and_ceils_wcet() {
        let t = task(0, 100, 2, &[10, 25]);
        let half = transform_task(&t, 2).unwrap();
        assert_eq!(half.period(), 50);
        assert_eq!(half.wcet_vector(), &[5, 13]); // 25/2 rounds up
        assert_eq!(half.level(), t.level());
        assert_eq!(half.id(), t.id());
    }

    #[test]
    fn non_dividing_factor_is_rejected() {
        let t = task(0, 100, 1, &[10]);
        assert!(transform_task(&t, 3).is_none());
        assert!(transform_task(&t, 0).is_none());
    }

    #[test]
    fn utilization_never_decreases() {
        let t = task(0, 100, 2, &[7, 13]);
        let q = transform_task(&t, 4).unwrap();
        for k in CritLevel::up_to(2) {
            assert!(q.util(k) >= t.util(k) - 1e-12);
            // And stays within one rounding step.
            assert!(q.util(k) <= t.util(k) + 4.0 / 100.0);
        }
    }

    #[test]
    fn promote_critical_transforms_only_high_levels() {
        let ts = TaskSet::new(2, vec![task(0, 100, 1, &[20]), task(1, 100, 2, &[10, 30])]).unwrap();
        let promoted = promote_critical(&ts, CritLevel::new(2), 2).unwrap();
        assert_eq!(promoted.tasks()[0].period(), 100); // LO untouched
        assert_eq!(promoted.tasks()[1].period(), 50);
        assert_eq!(
            transformed_ids(&ts, |t| if t.level().get() >= 2 { 2 } else { 1 }),
            vec![TaskId(1)]
        );
    }
}
