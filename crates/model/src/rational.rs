//! Exact rational arithmetic over `i128`.
//!
//! Utilizations are ratios of integer ticks, so every quantity in the
//! schedulability conditions is an exact rational; the production analysis
//! uses `f64` for speed and absorbs rounding with a tolerance. This module
//! provides the exact counterpart used by the cross-validation suite
//! (`mcs_analysis::exact_arith`) to certify that the tolerance never flips
//! a verdict outside a vanishing boundary band.
//!
//! All operations are checked: arithmetic that would overflow `i128`
//! returns `None` rather than silently wrapping (λ-recursion denominators
//! can grow quickly).

// lint: exact

use std::cmp::Ordering;

/// An exact rational number with `i128` numerator and positive `i128`
/// denominator, always stored in reduced form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor of the absolute values. Returns `None` when an
/// operand is `i128::MIN`, whose absolute value is not representable —
/// `i128::MIN.abs()` would panic in debug builds and wrap in release.
fn gcd_i128(a: i128, b: i128) -> Option<i128> {
    let mut a = a.checked_abs()?;
    let mut b = b.checked_abs()?;
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    Some(a)
}

// Checked arithmetic deliberately shadows the `std::ops` names: `Ratio`
// cannot implement the operator traits because every operation is fallible
// (`Option`), and `checked_add`-style names would read worse at the heavy
// call sites in `mcs_analysis::exact_arith`.
#[allow(clippy::should_implement_trait)]
impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Construct and reduce. Returns `None` when `den == 0`, or when an
    /// operand is `i128::MIN` (not reducible without overflow). As a
    /// consequence every stored numerator satisfies `|num| ≤ i128::MAX`
    /// and every denominator is positive.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Option<Ratio> {
        if den == 0 {
            return None;
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den)?.max(1);
        Some(Ratio { num: sign * (num / g), den: (den / g).abs() })
    }

    /// From integer ticks: `c / p`.
    #[must_use]
    pub fn from_ticks(c: u64, p: u64) -> Option<Ratio> {
        Ratio::new(i128::from(c), i128::from(p))
    }

    /// Numerator (reduced form).
    #[must_use]
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (reduced, positive).
    #[must_use]
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Checked addition.
    #[must_use]
    pub fn add(self, other: Ratio) -> Option<Ratio> {
        let g = gcd_i128(self.den, other.den)?.max(1);
        let l = self.den.checked_mul(other.den / g)?;
        let a = self.num.checked_mul(other.den / g)?;
        let b = other.num.checked_mul(self.den / g)?;
        Ratio::new(a.checked_add(b)?, l)
    }

    /// Checked subtraction.
    #[must_use]
    pub fn sub(self, other: Ratio) -> Option<Ratio> {
        self.add(Ratio { num: -other.num, den: other.den })
    }

    /// Checked multiplication (cross-reducing first to delay overflow).
    #[must_use]
    pub fn mul(self, other: Ratio) -> Option<Ratio> {
        let g1 = gcd_i128(self.num, other.den)?.max(1);
        let g2 = gcd_i128(other.num, self.den)?.max(1);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Ratio::new(num, den)
    }

    /// Checked division. `None` on division by zero or overflow.
    #[must_use]
    pub fn div(self, other: Ratio) -> Option<Ratio> {
        if other.num == 0 {
            return None;
        }
        self.mul(Ratio { num: other.den, den: other.num })
    }

    /// Whether the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Whether the value is negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Lossy conversion for reporting.
    // lint: allow(exact-float, the one sanctioned exact→float boundary; callers own the tolerance)
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact comparison (overflow-safe via i256-free widening trick: compare
    /// using checked multiplication, falling back to f64 only on overflow —
    /// practically unreachable for reduced operands from this crate).
    #[must_use]
    pub fn cmp_exact(&self, other: &Ratio) -> Ordering {
        match (self.num.checked_mul(other.den), other.num.checked_mul(self.den)) {
            (Some(a), Some(b)) => a.cmp(&b),
            _ => self.to_f64().partial_cmp(&other.to_f64()).expect("finite rationals compare"),
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_exact(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn construction_reduces_and_normalizes_sign() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Ratio::ZERO);
        assert!(Ratio::new(1, 0).is_none());
    }

    #[test]
    fn arithmetic_identities() {
        let a = r(1, 3);
        let b = r(1, 6);
        assert_eq!(a.add(b).unwrap(), r(1, 2));
        assert_eq!(a.sub(b).unwrap(), r(1, 6));
        assert_eq!(a.mul(b).unwrap(), r(1, 18));
        assert_eq!(a.div(b).unwrap(), r(2, 1));
        assert_eq!(a.add(Ratio::ZERO).unwrap(), a);
        assert_eq!(a.mul(Ratio::ONE).unwrap(), a);
    }

    #[test]
    fn division_by_zero_is_none() {
        assert!(r(1, 2).div(Ratio::ZERO).is_none());
    }

    #[test]
    fn ordering_is_exact() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Ratio::ZERO);
        assert_eq!(r(2, 6).cmp_exact(&r(1, 3)), Ordering::Equal);
        // A case where f64 would tie: 10^17 / (10^17+1) vs 1.
        let tight = r(100_000_000_000_000_000, 100_000_000_000_000_001);
        assert!(tight < Ratio::ONE);
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let huge = r(i128::MAX / 2, 3);
        assert!(huge.add(huge).is_none() || huge.add(huge).is_some());
        // Multiplication of two very large reduced ratios overflows.
        let a = Ratio::new(i128::MAX / 2, 1).unwrap();
        assert!(a.mul(a).is_none());
    }

    /// Regression: `i128::MIN` operands must be reported as unrepresentable
    /// (`None`), not panic in debug builds via `i128::MIN.abs()`.
    #[test]
    fn i128_min_operands_return_none_instead_of_panicking() {
        assert!(Ratio::new(i128::MIN, 1).is_none());
        assert!(Ratio::new(i128::MIN, 2).is_none());
        assert!(Ratio::new(1, i128::MIN).is_none());
        assert!(Ratio::new(i128::MIN, i128::MIN).is_none());
        // One step away from the edge still works.
        let near = Ratio::new(i128::MIN + 1, 1).unwrap();
        assert_eq!(near.num(), i128::MIN + 1);
        assert_eq!(near.den(), 1);
        // Halvable magnitudes reduce normally.
        let half = Ratio::new(i128::MIN / 2, 2).unwrap();
        assert_eq!(half.num(), i128::MIN / 4);
        assert_eq!(half.den(), 1);
        // Arithmetic on extreme-but-valid values reports overflow as None
        // rather than panicking.
        let big = Ratio::new(i128::MAX, 1).unwrap();
        assert!(big.add(big).is_none());
        assert!(near.sub(big).is_none());
        assert!(near.mul(big).is_none());
    }

    #[test]
    fn from_ticks_matches_f64() {
        let x = Ratio::from_ticks(339, 1000).unwrap();
        assert!((x.to_f64() - 0.339).abs() < 1e-15);
    }

    #[test]
    fn signs() {
        assert!(r(1, 2).is_positive());
        assert!(!r(0, 1).is_positive());
        assert!(r(-1, 2).is_negative());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_ratio() -> impl Strategy<Value = Ratio> {
        (-10_000i128..=10_000, 1i128..=10_000).prop_map(|(n, d)| Ratio::new(n, d).unwrap())
    }

    proptest! {
        /// Field axioms on a bounded domain (no overflow there).
        #[test]
        fn commutativity_and_associativity(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
            prop_assert_eq!(a.add(b), b.add(a));
            prop_assert_eq!(a.mul(b), b.mul(a));
            let left = a.add(b).and_then(|x| x.add(c));
            let right = b.add(c).and_then(|x| a.add(x));
            prop_assert_eq!(left, right);
        }

        /// Subtraction inverts addition.
        #[test]
        fn add_sub_inverse(a in arb_ratio(), b in arb_ratio()) {
            let back = a.add(b).and_then(|x| x.sub(b)).unwrap();
            prop_assert_eq!(back, a);
        }

        /// Exact ordering agrees with f64 ordering away from ties.
        #[test]
        fn ordering_consistent_with_f64(a in arb_ratio(), b in arb_ratio()) {
            let exact = a.cmp_exact(&b);
            let float = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
            // f64 can only blur *equality* (ties), never invert a strict order
            // at these magnitudes.
            if exact != float {
                prop_assert!((a.to_f64() - b.to_f64()).abs() < 1e-9);
            }
        }

        /// Division inverts multiplication (non-zero divisor).
        #[test]
        fn mul_div_inverse(a in arb_ratio(), b in arb_ratio()) {
            prop_assume!(b.num() != 0);
            let back = a.mul(b).and_then(|x| x.div(b)).unwrap();
            prop_assert_eq!(back, a);
        }
    }
}
