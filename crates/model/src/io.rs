//! Plain-text (CSV) serialization of task sets, so the tools can operate on
//! user-provided workloads rather than only generated ones.
//!
//! Format: one task per line, `period,level,c(1),c(2),…,c(level)`, in ticks;
//! `#`-prefixed lines and blank lines are ignored. A `K=<levels>` header
//! line may pin the system criticality level (otherwise the maximum task
//! level is used). Task ids are assigned by position.
//!
//! ```text
//! # avionics demo, K = 2
//! K=2
//! 100000,1,20000
//! 200000,2,30000,60000
//! ```

use std::fmt::Write as _;

use crate::level::CritLevel;
use crate::task::{McTask, TaskId};
use crate::taskset::TaskSet;
use crate::time::Tick;

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parse a task set from the CSV format described in the module docs.
pub fn parse_task_set(input: &str) -> Result<TaskSet, ParseError> {
    let mut tasks: Vec<McTask> = Vec::new();
    let mut pinned_k: Option<u8> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("K=") {
            let k: u8 = rest.trim().parse().map_err(|_| ParseError {
                line: line_no,
                reason: format!("invalid K header: {rest:?}"),
            })?;
            pinned_k = Some(k);
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 3 {
            return Err(ParseError {
                line: line_no,
                reason: "expected at least `period,level,c(1)`".into(),
            });
        }
        let period: Tick = fields[0].parse().map_err(|_| ParseError {
            line: line_no,
            reason: format!("invalid period {:?}", fields[0]),
        })?;
        let level: u8 = fields[1].parse().map_err(|_| ParseError {
            line: line_no,
            reason: format!("invalid level {:?}", fields[1]),
        })?;
        let level = CritLevel::try_new(level).ok_or_else(|| ParseError {
            line: line_no,
            reason: format!("level {level} out of range"),
        })?;
        let wcet: Vec<Tick> = fields[2..]
            .iter()
            .map(|f| {
                f.parse().map_err(|_| ParseError {
                    line: line_no,
                    reason: format!("invalid WCET {f:?}"),
                })
            })
            .collect::<Result<_, _>>()?;
        let id = TaskId(u32::try_from(tasks.len()).expect("task count fits u32"));
        let task = McTask::new(id, period, level, wcet)
            .map_err(|e| ParseError { line: line_no, reason: e.to_string() })?;
        tasks.push(task);
    }
    let k = pinned_k.or_else(|| tasks.iter().map(|t| t.level().get()).max()).unwrap_or(1);
    TaskSet::new(k, tasks).map_err(|e| ParseError { line: 0, reason: e.to_string() })
}

/// Serialize a task set into the CSV format (round-trips with
/// [`parse_task_set`]).
#[must_use]
pub fn format_task_set(ts: &TaskSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} tasks, K={}", ts.len(), ts.num_levels());
    let _ = writeln!(out, "K={}", ts.num_levels());
    for t in ts.tasks() {
        let wcets: Vec<String> = t.wcet_vector().iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "{},{},{}", t.period(), t.level(), wcets.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_input() {
        let input = "# comment\nK=3\n\n100,1,20\n200, 2, 30, 60\n";
        let ts = parse_task_set(input).unwrap();
        assert_eq!(ts.num_levels(), 3);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.tasks()[1].wcet(CritLevel::new(2)), 60);
    }

    #[test]
    fn infers_k_from_max_level() {
        let ts = parse_task_set("100,1,20\n200,4,10,20,30,40\n").unwrap();
        assert_eq!(ts.num_levels(), 4);
    }

    #[test]
    fn empty_input_is_a_single_level_empty_set() {
        let ts = parse_task_set("# nothing\n").unwrap();
        assert!(ts.is_empty());
        assert_eq!(ts.num_levels(), 1);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = parse_task_set("100,1,20\nbogus,2,3,4\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("period"), "{err}");
    }

    #[test]
    fn rejects_arity_mismatch_via_task_validation() {
        let err = parse_task_set("100,2,20\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("WCET"), "{err}");
    }

    #[test]
    fn rejects_bad_k_header() {
        let err = parse_task_set("K=banana\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_level_above_pinned_k() {
        let err = parse_task_set("K=2\n100,3,1,2,3\n").unwrap_err();
        assert!(err.reason.contains("above system K"), "{err}");
    }

    #[test]
    fn round_trips() {
        let input = "K=3\n100,1,20\n200,3,10,20,30\n";
        let ts = parse_task_set(input).unwrap();
        let printed = format_task_set(&ts);
        let again = parse_task_set(&printed).unwrap();
        assert_eq!(ts.num_levels(), again.num_levels());
        assert_eq!(ts.tasks(), again.tasks());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::task::TaskBuilder;
    use proptest::prelude::*;

    proptest! {
        /// Any valid task set survives a format/parse round trip exactly.
        #[test]
        fn round_trip_any_task_set(
            specs in proptest::collection::vec(
                (1u8..=5, 10u64..=5000, 1u64..=100, 1.0f64..=2.0),
                0..12,
            )
        ) {
            let tasks: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, (level, period, c1, growth))| {
                    let mut wcet = Vec::new();
                    let mut c = f64::from(u32::try_from(*c1).unwrap());
                    for _ in 0..*level {
                        wcet.push((c.round() as u64).clamp(1, *period * 3));
                        c *= growth;
                    }
                    // Enforce monotonicity after rounding.
                    for i in 1..wcet.len() {
                        wcet[i] = wcet[i].max(wcet[i - 1]);
                    }
                    TaskBuilder::new(TaskId(u32::try_from(i).unwrap()))
                        .period(*period)
                        .level(*level)
                        .wcet(&wcet)
                        .build()
                        .unwrap()
                })
                .collect();
            let k = tasks.iter().map(|t| t.level().get()).max().unwrap_or(1);
            let ts = TaskSet::new(k, tasks).unwrap();
            let printed = format_task_set(&ts);
            let parsed = parse_task_set(&printed).unwrap();
            prop_assert_eq!(parsed.num_levels(), ts.num_levels());
            prop_assert_eq!(parsed.tasks(), ts.tasks());
        }
    }
}
