//! Mixed-criticality tasks.

use std::fmt;

use crate::level::{CritLevel, MAX_LEVELS};
use crate::time::Tick;

/// Identifier of a task within a [`crate::TaskSet`]. Dense indices starting
/// at 0; usable directly as a `Vec` index via [`TaskId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Zero-based index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors detected when building an [`McTask`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskBuildError {
    /// The period must be at least one tick.
    ZeroPeriod,
    /// The WCET vector must contain exactly `level` entries.
    WcetArity {
        /// The task's criticality level (= required number of entries).
        expected: u8,
        /// Number of WCET entries actually supplied.
        got: usize,
    },
    /// Each WCET must be at least one tick.
    ZeroWcet {
        /// The level whose WCET entry was zero.
        level: u8,
    },
    /// WCETs must be non-decreasing in the criticality level.
    DecreasingWcet {
        /// The level whose WCET dropped below the previous level's.
        level: u8,
    },
}

impl fmt::Display for TaskBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskBuildError::ZeroPeriod => write!(f, "task period must be > 0 ticks"),
            TaskBuildError::WcetArity { expected, got } => {
                write!(f, "expected {expected} WCET entries (one per level), got {got}")
            }
            TaskBuildError::ZeroWcet { level } => {
                write!(f, "WCET at level {level} must be > 0 ticks")
            }
            TaskBuildError::DecreasingWcet { level } => {
                write!(f, "WCET at level {level} is smaller than at level {}", level - 1)
            }
        }
    }
}

impl std::error::Error for TaskBuildError {}

/// An implicit-deadline periodic mixed-criticality task
/// `τ_i = (C_i, p_i, l_i)`.
///
/// * `period` — period and relative deadline `p_i` (ticks);
/// * `level` — the task's own criticality `l_i`;
/// * `wcet[k-1]` — worst-case execution time `c_i(k)` at level `k ≤ l_i`,
///   non-decreasing in `k`.
///
/// Jobs arrive at `r_i^j = (j-1)·p_i` and must finish by `d_i^j = j·p_i`.
#[derive(Clone, PartialEq, Eq)]
pub struct McTask {
    id: TaskId,
    period: Tick,
    level: CritLevel,
    wcet: Box<[Tick]>,
}

impl McTask {
    /// Validated constructor. `wcet` must have exactly `level.get()` entries,
    /// each ≥ 1 tick and non-decreasing.
    pub fn new(
        id: TaskId,
        period: Tick,
        level: CritLevel,
        wcet: Vec<Tick>,
    ) -> Result<Self, TaskBuildError> {
        if period == 0 {
            return Err(TaskBuildError::ZeroPeriod);
        }
        if wcet.len() != usize::from(level.get()) {
            return Err(TaskBuildError::WcetArity { expected: level.get(), got: wcet.len() });
        }
        for (i, &c) in wcet.iter().enumerate() {
            let lvl = u8::try_from(i + 1).expect("level fits in u8");
            if c == 0 {
                return Err(TaskBuildError::ZeroWcet { level: lvl });
            }
            if i > 0 && c < wcet[i - 1] {
                return Err(TaskBuildError::DecreasingWcet { level: lvl });
            }
        }
        Ok(Self { id, period, level, wcet: wcet.into_boxed_slice() })
    }

    /// Task identifier.
    #[inline]
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Period == relative deadline `p_i` in ticks.
    #[inline]
    #[must_use]
    pub fn period(&self) -> Tick {
        self.period
    }

    /// The task's own criticality level `l_i`.
    #[inline]
    #[must_use]
    pub fn level(&self) -> CritLevel {
        self.level
    }

    /// WCET `c_i(k)` at level `k`. Panics if `k > l_i`.
    #[inline]
    #[must_use]
    pub fn wcet(&self, k: CritLevel) -> Tick {
        assert!(
            k <= self.level,
            "wcet({k}) undefined for task {:?} of level {}",
            self.id,
            self.level
        );
        self.wcet[k.index()]
    }

    /// WCET at level `k`, or `None` if `k > l_i`.
    #[inline]
    #[must_use]
    pub fn wcet_at(&self, k: CritLevel) -> Option<Tick> {
        self.wcet.get(k.index()).copied()
    }

    /// WCET at the task's own level, `c_i(l_i)` — the largest estimate.
    #[inline]
    #[must_use]
    pub fn wcet_own(&self) -> Tick {
        self.wcet[self.level.index()]
    }

    /// Full WCET vector `<c_i(1), …, c_i(l_i)>`.
    #[inline]
    #[must_use]
    pub fn wcet_vector(&self) -> &[Tick] {
        &self.wcet
    }

    /// Utilization `u_i(k) = c_i(k) / p_i`. Panics if `k > l_i`.
    #[inline]
    #[must_use]
    pub fn util(&self, k: CritLevel) -> f64 {
        self.wcet(k) as f64 / self.period as f64
    }

    /// Utilization at level `k`, or `None` if `k > l_i`.
    #[inline]
    #[must_use]
    pub fn util_at(&self, k: CritLevel) -> Option<f64> {
        self.wcet_at(k).map(|c| c as f64 / self.period as f64)
    }

    /// Maximum utilization `u_i(l_i)` — what classical decreasing-utilization
    /// heuristics (FFD/BFD/WFD) sort by.
    #[inline]
    #[must_use]
    pub fn util_own(&self) -> f64 {
        self.wcet_own() as f64 / self.period as f64
    }
}

impl fmt::Debug for McTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "McTask({:?}, p={}, l={}, C={:?})", self.id, self.period, self.level, self.wcet)
    }
}

/// Fluent builder for [`McTask`], mainly used by tests and examples.
///
/// ```
/// use mcs_model::{TaskBuilder, TaskId, CritLevel};
/// let t = TaskBuilder::new(TaskId(0))
///     .period(100)
///     .level(2)
///     .wcet(&[10, 25])
///     .build()
///     .unwrap();
/// assert_eq!(t.util(CritLevel::new(2)), 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    period: Tick,
    level: u8,
    wcet: Vec<Tick>,
}

impl TaskBuilder {
    /// Start building a task with the given id.
    #[must_use]
    pub fn new(id: TaskId) -> Self {
        Self { id, period: 0, level: 1, wcet: Vec::new() }
    }

    /// Set the period (ticks).
    #[must_use]
    pub fn period(mut self, p: Tick) -> Self {
        self.period = p;
        self
    }

    /// Set the criticality level (1-based).
    #[must_use]
    pub fn level(mut self, l: u8) -> Self {
        self.level = l;
        self
    }

    /// Set the WCET vector (one entry per level `1..=l`).
    #[must_use]
    pub fn wcet(mut self, c: &[Tick]) -> Self {
        self.wcet = c.to_vec();
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<McTask, TaskBuildError> {
        let level = CritLevel::try_new(self.level)
            .ok_or(TaskBuildError::WcetArity { expected: MAX_LEVELS, got: self.wcet.len() })?;
        McTask::new(self.id, self.period, level, self.wcet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(period: Tick, level: u8, wcet: &[Tick]) -> Result<McTask, TaskBuildError> {
        TaskBuilder::new(TaskId(0)).period(period).level(level).wcet(wcet).build()
    }

    #[test]
    fn valid_task_roundtrips() {
        let t = task(100, 3, &[5, 10, 20]).unwrap();
        assert_eq!(t.period(), 100);
        assert_eq!(t.level().get(), 3);
        assert_eq!(t.wcet(CritLevel::new(1)), 5);
        assert_eq!(t.wcet(CritLevel::new(3)), 20);
        assert_eq!(t.wcet_own(), 20);
        assert!((t.util(CritLevel::new(2)) - 0.10).abs() < 1e-12);
        assert!((t.util_own() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_period() {
        assert_eq!(task(0, 1, &[1]).unwrap_err(), TaskBuildError::ZeroPeriod);
    }

    #[test]
    fn rejects_wrong_wcet_arity() {
        assert_eq!(
            task(10, 2, &[1]).unwrap_err(),
            TaskBuildError::WcetArity { expected: 2, got: 1 }
        );
        assert_eq!(
            task(10, 1, &[1, 2]).unwrap_err(),
            TaskBuildError::WcetArity { expected: 1, got: 2 }
        );
    }

    #[test]
    fn rejects_zero_wcet() {
        assert_eq!(task(10, 2, &[0, 5]).unwrap_err(), TaskBuildError::ZeroWcet { level: 1 });
    }

    #[test]
    fn rejects_decreasing_wcet() {
        assert_eq!(
            task(10, 3, &[4, 3, 5]).unwrap_err(),
            TaskBuildError::DecreasingWcet { level: 2 }
        );
    }

    #[test]
    fn allows_equal_consecutive_wcets() {
        assert!(task(10, 2, &[5, 5]).is_ok());
    }

    #[test]
    fn wcet_at_out_of_level_is_none() {
        let t = task(100, 2, &[5, 10]).unwrap();
        assert_eq!(t.wcet_at(CritLevel::new(3)), None);
        assert_eq!(t.util_at(CritLevel::new(3)), None);
        assert_eq!(t.wcet_at(CritLevel::new(2)), Some(10));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn wcet_above_level_panics() {
        let t = task(100, 1, &[5]).unwrap();
        let _ = t.wcet(CritLevel::new(2));
    }

    #[test]
    fn builder_rejects_bad_level() {
        let r = TaskBuilder::new(TaskId(1)).period(10).level(0).wcet(&[1]).build();
        assert!(r.is_err());
        let r = TaskBuilder::new(TaskId(1)).period(10).level(MAX_LEVELS + 1).wcet(&[1]).build();
        assert!(r.is_err());
    }
}
