//! Integer time base.
//!
//! All timing parameters (periods, WCETs, absolute times in the simulator)
//! are expressed in integer [`Tick`]s. The workload generator scales the
//! paper's real-valued parameters by [`TICKS_PER_UNIT`] so that WCETs round
//! to at least one tick with negligible quantization error, and the
//! discrete-event simulator stays exact (no floating-point time).

/// One tick of model time. Periods, WCETs and absolute simulation times are
/// all measured in ticks.
pub type Tick = u64;

/// Number of ticks per "time unit" of the paper's parameter space (the
/// paper draws periods from `[50, 2000]` units).
pub const TICKS_PER_UNIT: Tick = 1_000;

/// Greatest common divisor (Euclid). `gcd(0, x) == x`.
#[must_use]
pub fn gcd(mut a: Tick, mut b: Tick) -> Tick {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple, saturating at `Tick::MAX` on overflow.
///
/// Hyperperiods of randomly generated task sets routinely overflow `u64`;
/// saturation lets callers clamp simulation horizons instead of panicking.
#[must_use]
pub fn lcm_saturating(a: Tick, b: Tick) -> Tick {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).saturating_mul(b)
}

/// Hyperperiod (LCM of all periods), saturating at `Tick::MAX`.
///
/// Returns 0 for an empty iterator.
#[must_use]
pub fn hyperperiod<I: IntoIterator<Item = Tick>>(periods: I) -> Tick {
    periods.into_iter().fold(0, |acc, p| {
        if acc == 0 {
            p
        } else if acc == Tick::MAX {
            Tick::MAX
        } else {
            lcm_saturating(acc, p)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(100, 100), 100);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm_saturating(0, 5), 0);
        assert_eq!(lcm_saturating(4, 6), 12);
        assert_eq!(lcm_saturating(7, 13), 91);
    }

    #[test]
    fn lcm_saturates_instead_of_overflowing() {
        let big = Tick::MAX - 1; // even
        assert_eq!(lcm_saturating(big, big - 1), Tick::MAX);
    }

    #[test]
    fn hyperperiod_of_empty_is_zero() {
        assert_eq!(hyperperiod(std::iter::empty()), 0);
    }

    #[test]
    fn hyperperiod_matches_pairwise_lcm() {
        assert_eq!(hyperperiod([4, 6, 10]), 60);
        assert_eq!(hyperperiod([5]), 5);
        assert_eq!(hyperperiod([2, 3, 5, 7]), 210);
    }

    #[test]
    fn hyperperiod_saturates() {
        assert_eq!(hyperperiod([Tick::MAX - 1, Tick::MAX - 2]), Tick::MAX);
        // Once saturated, further periods keep it saturated.
        assert_eq!(hyperperiod([Tick::MAX - 1, Tick::MAX - 2, 3]), Tick::MAX);
    }
}
