//! The static telemetry registry: named atomic counters (sharded to keep
//! concurrent sweep workers off each other's cache lines), per-phase
//! latency histograms, per-worker harness slots, and the [`Snapshot`] that
//! reads them all out.
//!
//! Everything here is a process-global static — there is no registration
//! step and no allocation on the hot path. A counter increment is one
//! relaxed `fetch_add` on a thread-sharded slot; when the crate is built
//! with the `telemetry-off` feature every probe point compiles to nothing
//! (the [`COMPILED`] constant folds the branch away).
//!
//! **Determinism contract.** Telemetry is strictly write-only from the
//! instrumented code's perspective: nothing in the partitioner, harness, or
//! simulator ever reads a counter to make a decision, so enabling,
//! disabling, or compiling out telemetry cannot change any published
//! output. Counter *totals* are deterministic for a deterministic workload
//! (same trials ⇒ same increments, in any interleaving); per-worker slots
//! and block-claim counts depend on scheduling and are reported for
//! diagnosis only.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::hist;

/// Whether telemetry is compiled into this build (`telemetry` feature on,
/// `telemetry-off` not set). When false, every probe point is a no-op the
/// optimizer removes.
pub const COMPILED: bool = cfg!(all(feature = "telemetry", not(feature = "telemetry-off")));

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// A registered event counter. Each variant is one process-global
        /// monotone counter; the wire name (JSONL `name` field) is
        /// [`Counter::name`].
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)+
        }

        impl Counter {
            /// Number of registered counters.
            pub const COUNT: usize = [$(Counter::$variant),+].len();
            /// Every counter, in registry (and JSONL emission) order.
            pub const ALL: [Counter; Self::COUNT] = [$(Counter::$variant),+];

            /// Stable wire name of this counter.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self { $(Counter::$variant => $name,)+ }
            }

            /// Inverse of [`Counter::name`].
            #[must_use]
            pub fn from_name(name: &str) -> Option<Self> {
                match name { $($name => Some(Counter::$variant),)+ _ => None }
            }
        }
    };
}

counters! {
    /// Theorem-1 probes issued by the probe engine (batch, single, swap,
    /// and own-level fit probes alike).
    EngineProbesIssued => "engine_probes_issued",
    /// Probes whose verdict was infeasible (the task was rejected on that
    /// core).
    EngineProbesRejected => "engine_probes_rejected",
    /// Probes whose verdict was feasible.
    EngineProbesFeasible => "engine_probes_feasible",
    /// Tracked commits (`ProbeEngine::commit`).
    EngineCommits => "engine_commits",
    /// Untracked placements (`ProbeEngine::place_untracked`, the
    /// bin-packing family).
    EnginePlacementsUntracked => "engine_placements_untracked",
    /// Evictions (repair moves removing a task from a core).
    EngineEvictions => "engine_evictions",
    /// Engine resets (one per partitioning run).
    EngineResets => "engine_resets",
    /// Placement attempts: one per task the scheme tried to place.
    PlacementAttempts => "placement_attempts",
    /// CA-TPA α-threshold activations (imbalance fallback placements).
    AlphaFallbacks => "alpha_fallbacks",
    /// Repair (local-search) relocation moves applied.
    RepairMoves => "repair_moves",
    /// Batch-kernel invocations (`probe_all_cores` lane-parallel sweeps).
    EngineBatchCalls => "engine_batch_calls",
    /// SIMD lane slots evaluated by batch-kernel sweeps (core count
    /// rounded up to the lane width; the excess over
    /// `engine_probes_issued` from batch calls is padding overhead).
    EngineBatchLaneSlots => "engine_batch_lane_slots",
    /// `with_scratch` calls served by the warm thread-local scratch.
    ScratchReuseHits => "scratch_reuse_hits",
    /// `with_scratch` calls that fell back to a fresh scratch (re-entrant
    /// partitioner invocations).
    ScratchFallbacks => "scratch_fallbacks",
    /// Trials computed by the harness this process (excludes resumed).
    HarnessTrialsComputed => "harness_trials_computed",
    /// Trials skipped by checkpoint resume.
    HarnessTrialsResumed => "harness_trials_resumed",
    /// Successful worker block claims in the parallel trial loop.
    HarnessBlockClaims => "harness_block_claims",
    /// Checkpoint JSONL lines flushed.
    CheckpointFlushes => "checkpoint_flushes",
    /// Checkpoint bytes written (data lines, including the newline).
    CheckpointBytes => "checkpoint_bytes",
    /// Simulator job releases.
    SimReleases => "sim_releases",
    /// Simulator job completions.
    SimCompletions => "sim_completions",
    /// Simulator mode switches (budget overruns).
    SimModeSwitches => "sim_mode_switches",
    /// Simulator job drops at mode switches.
    SimDrops => "sim_drops",
    /// Simulator idle resets back to level-1 operation.
    SimIdleResets => "sim_idle_resets",
    /// Simulator deadline misses.
    SimDeadlineMisses => "sim_deadline_misses",
    /// Admission requests accepted (a placement was found).
    AdmissionAdmits => "admission_admits",
    /// Admission requests rejected (no core could absorb the task).
    AdmissionRejects => "admission_rejects",
    /// Departures processed by the admission engine.
    AdmissionDeparts => "admission_departs",
}

macro_rules! phases {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// A named timed phase. Each variant owns one latency histogram;
        /// spans only record when the runtime timing gate is on
        /// ([`set_timing`]).
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Phase {
            $($(#[$doc])* $variant,)+
        }

        impl Phase {
            /// Number of registered phases.
            pub const COUNT: usize = [$(Phase::$variant),+].len();
            /// Every phase, in registry (and JSONL emission) order.
            pub const ALL: [Phase; Self::COUNT] = [$(Phase::$variant),+];

            /// Stable wire name of this phase.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self { $(Phase::$variant => $name,)+ }
            }

            /// Inverse of [`Phase::name`].
            #[must_use]
            pub fn from_name(name: &str) -> Option<Self> {
                match name { $($name => Some(Phase::$variant),)+ _ => None }
            }
        }
    };
}

phases! {
    /// Contribution ordering (Eq. (12)–(13) sort) per partitioning run.
    ContributionSort => "contribution_sort",
    /// One batch probe over all cores (`probe_all_cores`).
    ProbeBatch => "probe_batch",
    /// One lane-parallel batch-kernel sweep (inside `probe_batch`,
    /// excluding row materialization and telemetry counting).
    BatchKernel => "batch_kernel",
    /// One tracked commit.
    Commit => "commit",
    /// One α-fallback placement (probe + min-utilization selection).
    AlphaFallback => "alpha_fallback",
    /// One full Theorem-1 re-evaluation (`evaluate_verdict` after evict).
    Theorem1Eval => "theorem1_eval",
    /// One checkpoint line format + write + flush.
    CheckpointFlush => "checkpoint_flush",
    /// One worker block claim (fetch_add on the shared cursor).
    WorkerBlockClaim => "worker_block_claim",
    /// One admission decision (`AdmissionEngine::admit`): probe, policy
    /// selection, and commit — the placement-decision latency histogram.
    AdmissionDecision => "admission_decision",
    /// One repair move search on an admission reject (the relocation
    /// attempt seeded from the engine's live sums).
    AdmissionRepair => "admission_repair",
}

/// Counter shards: concurrent writers are spread over this many copies of
/// the counter array so sweep workers do not serialize on one cache line.
const SHARDS: usize = 16;

/// Harness worker slots tracked individually; workers beyond this fold
/// onto slot `index % MAX_WORKERS`.
pub const MAX_WORKERS: usize = 64;

#[repr(align(128))]
struct Shard {
    counters: [AtomicU64; Counter::COUNT],
}

struct PhaseSlot {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; hist::BUCKETS],
}

struct WorkerSlot {
    trials: AtomicU64,
    blocks: AtomicU64,
    busy_ns: AtomicU64,
    wall_ns: AtomicU64,
}

static COUNTERS: [Shard; SHARDS] =
    [const { Shard { counters: [const { AtomicU64::new(0) }; Counter::COUNT] } }; SHARDS];

static PHASES: [PhaseSlot; Phase::COUNT] = [const {
    PhaseSlot {
        count: AtomicU64::new(0),
        total_ns: AtomicU64::new(0),
        max_ns: AtomicU64::new(0),
        buckets: [const { AtomicU64::new(0) }; hist::BUCKETS],
    }
}; Phase::COUNT];

static WORKERS: [WorkerSlot; MAX_WORKERS] = [const {
    WorkerSlot {
        trials: AtomicU64::new(0),
        blocks: AtomicU64::new(0),
        busy_ns: AtomicU64::new(0),
        wall_ns: AtomicU64::new(0),
    }
}; MAX_WORKERS];

/// Runtime gate for span timing: `Instant::now()` is only taken when this
/// is set, so plain runs pay one relaxed load per span site.
static TIMING: AtomicBool = AtomicBool::new(false);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|cell| {
        let s = cell.get();
        if s != usize::MAX {
            return s;
        }
        let s = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        cell.set(s);
        s
    })
}

/// Add `n` to a counter: one relaxed `fetch_add` on this thread's shard
/// (nothing when telemetry is compiled out).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if COMPILED {
        COUNTERS[shard_index()].counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Record one phase sample of `ns` nanoseconds (count, total, max, and the
/// log₂ histogram bucket).
#[inline]
pub fn record_phase(phase: Phase, ns: u64) {
    if COMPILED {
        let slot = &PHASES[phase as usize];
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.total_ns.fetch_add(ns, Ordering::Relaxed);
        slot.max_ns.fetch_max(ns, Ordering::Relaxed);
        slot.buckets[hist::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Turn span timing on or off (the `--telemetry` flag and `mcs-exp
/// profile` turn it on). No-op when telemetry is compiled out.
pub fn set_timing(on: bool) {
    if COMPILED {
        TIMING.store(on, Ordering::Release);
    }
}

/// Whether span timing is currently on.
#[inline]
#[must_use]
pub fn timing_enabled() -> bool {
    COMPILED && TIMING.load(Ordering::Relaxed)
}

/// `Some(Instant::now())` when timing is on — the cheap way to time a
/// region without the RAII span.
#[inline]
#[must_use]
pub fn now_if_timing() -> Option<Instant> {
    timing_enabled().then(Instant::now) // lint: allow(determinism, telemetry timing is stderr/sidecar-only by contract)
}

/// Count `n` trials computed by harness worker `w`.
#[inline]
pub fn worker_trials(w: usize, n: u64) {
    if COMPILED {
        WORKERS[w % MAX_WORKERS].trials.fetch_add(n, Ordering::Relaxed);
    }
}

/// Count one block claim by harness worker `w`.
#[inline]
pub fn worker_block(w: usize) {
    if COMPILED {
        WORKERS[w % MAX_WORKERS].blocks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Add busy (in-trial) nanoseconds to harness worker `w`.
#[inline]
pub fn worker_busy_ns(w: usize, ns: u64) {
    if COMPILED {
        WORKERS[w % MAX_WORKERS].busy_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Add wall-clock (spawn-to-exit) nanoseconds to harness worker `w`.
#[inline]
pub fn worker_wall_ns(w: usize, ns: u64) {
    if COMPILED {
        WORKERS[w % MAX_WORKERS].wall_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Point-in-time reading of one phase histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// The phase this stat describes.
    pub phase: Phase,
    /// Recorded spans.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Largest span, nanoseconds. In a [`Snapshot::delta_since`] this is
    /// the lifetime maximum, not the window maximum.
    pub max_ns: u64,
    /// Log₂ histogram buckets ([`hist::BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl PhaseStat {
    /// Mean span duration in nanoseconds (0 when no spans recorded).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (bucket upper bound) in nanoseconds.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        hist::quantile(&self.buckets, q)
    }
}

/// Point-in-time reading of one harness worker slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (slot number).
    pub index: usize,
    /// Trials this worker computed.
    pub trials: u64,
    /// Blocks this worker claimed.
    pub blocks: u64,
    /// Nanoseconds spent inside trial closures (timing-gated).
    pub busy_ns: u64,
    /// Worker wall-clock nanoseconds, spawn to exit (timing-gated).
    pub wall_ns: u64,
}

impl WorkerStat {
    /// Idle time: wall minus busy (0 when timing was off).
    #[must_use]
    pub fn idle_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.busy_ns)
    }

    /// Whether this slot recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trials == 0 && self.blocks == 0 && self.busy_ns == 0 && self.wall_ns == 0
    }
}

/// A consistent-at-quiescence reading of the whole registry. Capture one
/// before and one after a region (with all workers joined) and take
/// [`Snapshot::delta_since`] to attribute activity to that region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    counters: Vec<u64>,
    phases: Vec<PhaseStat>,
    workers: Vec<WorkerStat>,
}

impl Snapshot {
    /// Read every counter, phase, and worker slot. Reads are relaxed:
    /// capture at quiescent points (no concurrent instrumented work) for
    /// exact algebra.
    #[must_use]
    pub fn capture() -> Self {
        let counters = Counter::ALL
            .iter()
            .map(|c| COUNTERS.iter().map(|s| s.counters[*c as usize].load(Ordering::Relaxed)).sum())
            .collect();
        let phases = Phase::ALL
            .iter()
            .map(|p| {
                let slot = &PHASES[*p as usize];
                PhaseStat {
                    phase: *p,
                    count: slot.count.load(Ordering::Relaxed),
                    total_ns: slot.total_ns.load(Ordering::Relaxed),
                    max_ns: slot.max_ns.load(Ordering::Relaxed),
                    buckets: slot.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                }
            })
            .collect();
        let workers = WORKERS
            .iter()
            .enumerate()
            .map(|(index, slot)| WorkerStat {
                index,
                trials: slot.trials.load(Ordering::Relaxed),
                blocks: slot.blocks.load(Ordering::Relaxed),
                busy_ns: slot.busy_ns.load(Ordering::Relaxed),
                wall_ns: slot.wall_ns.load(Ordering::Relaxed),
            })
            .collect();
        Self { counters, phases, workers }
    }

    /// Activity between `earlier` and `self` (saturating per field;
    /// `max_ns` is carried from `self`, see [`PhaseStat::max_ns`]).
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        let counters = self
            .counters
            .iter()
            .zip(&earlier.counters)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let phases = self
            .phases
            .iter()
            .zip(&earlier.phases)
            .map(|(now, then)| PhaseStat {
                phase: now.phase,
                count: now.count.saturating_sub(then.count),
                total_ns: now.total_ns.saturating_sub(then.total_ns),
                max_ns: now.max_ns,
                buckets: now
                    .buckets
                    .iter()
                    .zip(&then.buckets)
                    .map(|(a, b)| a.saturating_sub(*b))
                    .collect(),
            })
            .collect();
        let workers = self
            .workers
            .iter()
            .zip(&earlier.workers)
            .map(|(now, then)| WorkerStat {
                index: now.index,
                trials: now.trials.saturating_sub(then.trials),
                blocks: now.blocks.saturating_sub(then.blocks),
                busy_ns: now.busy_ns.saturating_sub(then.busy_ns),
                wall_ns: now.wall_ns.saturating_sub(then.wall_ns),
            })
            .collect();
        Self { counters, phases, workers }
    }

    /// Value of one counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Every `(counter, value)` pair in registry order.
    pub fn counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(|c| (*c, self.counters[*c as usize]))
    }

    /// One phase's stats.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &PhaseStat {
        &self.phases[phase as usize]
    }

    /// Every phase's stats in registry order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseStat] {
        &self.phases
    }

    /// Every worker slot (including empty ones).
    #[must_use]
    pub fn workers(&self) -> &[WorkerStat] {
        &self.workers
    }

    /// Sum of per-worker trial counts (should equal
    /// [`Counter::HarnessTrialsComputed`] at quiescence — the
    /// `telemetry-consistency` audit rule checks exactly this).
    #[must_use]
    pub fn worker_trials_sum(&self) -> u64 {
        self.workers.iter().map(|w| w.trials).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Counter::from_name("no_such_counter"), None);
    }

    #[test]
    fn add_is_visible_in_snapshots() {
        let before = Snapshot::capture();
        add(Counter::SimIdleResets, 3);
        let after = Snapshot::capture();
        let delta = after.delta_since(&before);
        if COMPILED {
            // Other tests in this binary may also bump counters
            // concurrently, so the delta is a lower bound.
            assert!(delta.counter(Counter::SimIdleResets) >= 3);
        } else {
            assert_eq!(delta.counter(Counter::SimIdleResets), 0);
        }
    }

    #[test]
    fn record_phase_fills_the_histogram() {
        let before = Snapshot::capture();
        record_phase(Phase::CheckpointFlush, 1000);
        record_phase(Phase::CheckpointFlush, 0);
        let delta = Snapshot::capture().delta_since(&before);
        let stat = delta.phase(Phase::CheckpointFlush);
        if COMPILED {
            assert!(stat.count >= 2);
            assert!(stat.total_ns >= 1000);
            assert!(stat.buckets[crate::hist::bucket_index(1000)] >= 1);
            assert!(stat.buckets[0] >= 1);
        } else {
            assert_eq!(stat.count, 0);
        }
    }

    #[test]
    fn worker_slots_accumulate_and_fold() {
        let before = Snapshot::capture();
        worker_trials(2, 5);
        worker_trials(2 + MAX_WORKERS, 1); // folds onto slot 2
        worker_block(2);
        worker_busy_ns(2, 100);
        worker_wall_ns(2, 150);
        let delta = Snapshot::capture().delta_since(&before);
        if COMPILED {
            assert!(delta.workers()[2].trials >= 6);
            assert!(delta.worker_trials_sum() >= 6);
            assert_eq!(delta.workers()[2].idle_ns(), 50);
        } else {
            assert!(delta.workers()[2].is_empty());
        }
    }

    #[test]
    fn timing_gate_controls_now_if_timing() {
        set_timing(false);
        assert!(now_if_timing().is_none());
        set_timing(true);
        assert_eq!(now_if_timing().is_some(), COMPILED);
        set_timing(false);
    }
}
