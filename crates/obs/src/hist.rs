//! Log₂-scale histogram arithmetic — the pure bucketing functions behind
//! the per-phase latency histograms in [`crate::registry`].
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds the half-open
//! power-of-two band `[2^(b-1), 2^b)` (the last bucket, 64, is closed at
//! `u64::MAX`). One `u64::leading_zeros` per sample, no floating point, and
//! any `u64` nanosecond reading lands in exactly one of the
//! [`BUCKETS`] buckets.

/// Number of histogram buckets: the zero bucket plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// The bucket a value falls into: `0` for `0`, else `64 - leading_zeros`
/// (one plus the index of the highest set bit).
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    64 - value.leading_zeros() as usize
}

/// Inclusive `[low, high]` value range of a bucket.
///
/// # Panics
/// If `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

/// The `q`-quantile of a bucketed sample (upper bound of the bucket where
/// the cumulative count reaches `q * total`). Returns 0 for an empty
/// histogram. `q` is clamped to `[0, 1]`.
#[must_use]
pub fn quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    // 1-based rank of the sample realizing the quantile.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            return bucket_bounds(i).1;
        }
    }
    bucket_bounds(buckets.len() - 1).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gets_its_own_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_bounds(0), (0, 0));
    }

    #[test]
    fn power_of_two_boundaries() {
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn every_value_lies_within_its_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1_000_000, u64::MAX / 2, u64::MAX] {
            let b = bucket_index(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {b} = [{lo}, {hi}]");
        }
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        // Consecutive buckets are adjacent: high(b) + 1 == low(b + 1).
        for b in 0..BUCKETS - 1 {
            assert_eq!(bucket_bounds(b).1 + 1, bucket_bounds(b + 1).0, "gap after bucket {b}");
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(quantile(&[0; BUCKETS], 0.5), 0);
    }

    #[test]
    fn quantile_follows_the_mass() {
        // 10 samples in bucket 3 ([4, 7]), 90 in bucket 10 ([512, 1023]).
        let mut h = [0u64; BUCKETS];
        h[3] = 10;
        h[10] = 90;
        assert_eq!(quantile(&h, 0.05), bucket_bounds(3).1);
        assert_eq!(quantile(&h, 0.50), bucket_bounds(10).1);
        assert_eq!(quantile(&h, 0.99), bucket_bounds(10).1);
        // Quantiles are monotone in q.
        let q1 = quantile(&h, 0.1);
        let q9 = quantile(&h, 0.9);
        assert!(q1 <= q9);
    }

    #[test]
    fn quantile_clamps_q() {
        let mut h = [0u64; BUCKETS];
        h[5] = 4;
        assert_eq!(quantile(&h, -1.0), bucket_bounds(5).1);
        assert_eq!(quantile(&h, 2.0), bucket_bounds(5).1);
    }
}
