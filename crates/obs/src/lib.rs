//! # mcs-obs
//!
//! Near-zero-overhead telemetry for the partitioner, harness, and
//! simulator: a static registry of relaxed atomic counters and log₂
//! latency histograms, RAII span timing for named phases, and a sink that
//! writes a JSONL sidecar plus a human-readable summary — strictly to
//! stderr or a `--telemetry <path>` file, never stdout.
//!
//! Three cost tiers:
//!
//! 1. **Compiled out** (`telemetry-off` feature): every probe point folds
//!    to nothing ([`COMPILED`] is `false` and all instrumentation is
//!    behind `if COMPILED`).
//! 2. **Counters** (default): one relaxed `fetch_add` on a thread-sharded
//!    slot per event; hot loops batch increments so the probe kernel pays
//!    a register add per probe and one atomic per batch.
//! 3. **Timing** (runtime, via [`set_timing`]): span sites additionally
//!    take two `Instant` readings and feed a histogram. Off by default;
//!    `--telemetry` and `mcs-exp profile` turn it on.
//!
//! Telemetry is write-only for the instrumented code — no decision ever
//! reads a counter — so enabling or disabling it cannot change published
//! outputs (the determinism contract; see DESIGN.md).
//!
//! ```
//! use mcs_obs::{Counter, Phase, Snapshot};
//!
//! let before = Snapshot::capture();
//! mcs_obs::counter!(Counter::EngineCommits);
//! {
//!     let _timer = mcs_obs::span(Phase::ProbeBatch); // inert unless timing is on
//! }
//! let delta = Snapshot::capture().delta_since(&before);
//! assert!(delta.counter(Counter::EngineCommits) <= 1);
//! ```

#![forbid(unsafe_code)]

pub mod hist;
pub mod registry;
pub mod sink;
pub mod span;

pub use registry::{
    add, now_if_timing, record_phase, set_timing, timing_enabled, worker_block, worker_busy_ns,
    worker_trials, worker_wall_ns, Counter, Phase, PhaseStat, Snapshot, WorkerStat, COMPILED,
    MAX_WORKERS,
};
pub use sink::{fmt_ns, git_describe, render_summary, write_jsonl, Provenance, SCHEMA};
pub use span::{span, PhaseSpan};

/// Whether telemetry is compiled into this build — `const`, so callers can
/// use it to skip even the cheapest local bookkeeping.
#[inline]
#[must_use]
pub const fn compiled() -> bool {
    COMPILED
}

/// Increment a [`Counter`] by 1 (or by `n` with a second argument). One
/// relaxed atomic add when telemetry is compiled in; nothing otherwise.
#[macro_export]
macro_rules! counter {
    ($counter:expr) => {
        $crate::add($counter, 1)
    };
    ($counter:expr, $n:expr) => {
        $crate::add($counter, $n)
    };
}

/// Record a raw nanosecond sample into a [`Phase`] histogram (the RAII
/// alternative is [`span`]).
#[macro_export]
macro_rules! histogram {
    ($phase:expr, $ns:expr) => {
        $crate::record_phase($phase, $ns)
    };
}
