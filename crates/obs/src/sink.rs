//! Telemetry output: the run-provenance header, the JSONL sidecar, and the
//! human-readable summary table.
//!
//! The sidecar is line-delimited JSON, schema [`SCHEMA`]: one `header`
//! line (provenance: command, seed, scheme set, params, git describe,
//! build profile), then one `counter` line per registered counter, one
//! `phase` line per registered phase, and one `worker` line per active
//! harness worker slot. It is written **only** to stderr or to the
//! `--telemetry <path>` file — never to stdout — so every published
//! command output stays byte-identical with telemetry enabled.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::registry::Snapshot;

/// Sidecar schema identifier (first field of the header line).
pub const SCHEMA: &str = "mcs-obs/1";

/// Run provenance recorded in the sidecar header, making every telemetry
/// artifact self-describing.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// The command(s) that produced this run (e.g. `sweep` or `fig2+fig3`).
    pub command: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Trials per sweep point.
    pub trials: u64,
    /// Requested worker threads (0 = auto).
    pub threads: u64,
    /// Scheme names in play.
    pub schemes: Vec<String>,
    /// Generator/experiment parameter summary.
    pub params: String,
    /// `git describe --always --dirty` of the built tree.
    pub git: String,
    /// `debug` or `release`.
    pub build_profile: &'static str,
    /// Whether span timing was on for the run.
    pub timing: bool,
}

impl Provenance {
    /// Provenance for the current process: fills `git`, `build_profile`,
    /// and `timing` from the environment.
    #[must_use]
    pub fn capture(
        command: String,
        seed: u64,
        trials: u64,
        threads: u64,
        schemes: Vec<String>,
        params: String,
    ) -> Self {
        Self {
            command,
            seed,
            trials,
            threads,
            schemes,
            params,
            git: git_describe(),
            build_profile: if cfg!(debug_assertions) { "debug" } else { "release" },
            timing: crate::registry::timing_enabled(),
        }
    }
}

/// `git describe --always --dirty`, or `"unknown"` outside a repository.
#[must_use]
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write the full JSONL sidecar: header, counters, phases, active workers.
pub fn write_jsonl(w: &mut dyn Write, prov: &Provenance, snap: &Snapshot) -> io::Result<()> {
    let schemes =
        prov.schemes.iter().map(|s| format!("\"{}\"", escape(s))).collect::<Vec<_>>().join(",");
    writeln!(
        w,
        "{{\"schema\":\"{}\",\"kind\":\"header\",\"command\":\"{}\",\"seed\":{},\"trials\":{},\
         \"threads\":{},\"schemes\":[{}],\"params\":\"{}\",\"git\":\"{}\",\
         \"build_profile\":\"{}\",\"timing\":{}}}",
        SCHEMA,
        escape(&prov.command),
        prov.seed,
        prov.trials,
        prov.threads,
        schemes,
        escape(&prov.params),
        escape(&prov.git),
        prov.build_profile,
        prov.timing,
    )?;
    for (counter, value) in snap.counters() {
        writeln!(
            w,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            counter.name(),
            value
        )?;
    }
    for stat in snap.phases() {
        // Trim trailing zero buckets; an empty histogram serializes as [].
        let used = stat.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
        let buckets = stat.buckets[..used].iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        writeln!(
            w,
            "{{\"kind\":\"phase\",\"name\":\"{}\",\"count\":{},\"total_ns\":{},\
             \"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
             \"buckets\":[{}]}}",
            stat.phase.name(),
            stat.count,
            stat.total_ns,
            stat.mean_ns(),
            stat.quantile_ns(0.50),
            stat.quantile_ns(0.90),
            stat.quantile_ns(0.99),
            stat.max_ns,
            buckets,
        )?;
    }
    for worker in snap.workers().iter().filter(|w| !w.is_empty()) {
        writeln!(
            w,
            "{{\"kind\":\"worker\",\"index\":{},\"trials\":{},\"blocks\":{},\"busy_ns\":{},\
             \"wall_ns\":{},\"idle_ns\":{}}}",
            worker.index,
            worker.trials,
            worker.blocks,
            worker.busy_ns,
            worker.wall_ns,
            worker.idle_ns(),
        )?;
    }
    Ok(())
}

/// Adaptive duration formatting (`38ns`, `1.20us`, `3.45ms`, `2.10s`).
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Human-readable per-counter / per-phase / per-worker summary (intended
/// for stderr). Zero rows are omitted.
#[must_use]
pub fn render_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("telemetry summary\n");
    out.push_str("  counters:\n");
    let mut any = false;
    for (counter, value) in snap.counters().filter(|(_, v)| *v > 0) {
        let _ = writeln!(out, "    {:<28} {value}", counter.name());
        any = true;
    }
    if !any {
        out.push_str("    (none)\n");
    }
    let timed: Vec<_> = snap.phases().iter().filter(|p| p.count > 0).collect();
    if !timed.is_empty() {
        out.push_str("  phases:\n");
        for stat in timed {
            let _ = writeln!(
                out,
                "    {:<18} count={:<9} total={:<9} mean={:<9} p50={:<9} p99={:<9} max={}",
                stat.phase.name(),
                stat.count,
                fmt_ns(stat.total_ns),
                fmt_ns(stat.mean_ns() as u64),
                fmt_ns(stat.quantile_ns(0.50)),
                fmt_ns(stat.quantile_ns(0.99)),
                fmt_ns(stat.max_ns),
            );
        }
    }
    let active: Vec<_> = snap.workers().iter().filter(|w| !w.is_empty()).collect();
    if !active.is_empty() {
        out.push_str("  workers:\n");
        for worker in active {
            let _ = writeln!(
                out,
                "    w{:<3} trials={:<8} blocks={:<6} busy={:<9} idle={}",
                worker.index,
                worker.trials,
                worker.blocks,
                fmt_ns(worker.busy_ns),
                fmt_ns(worker.idle_ns()),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provenance() -> Provenance {
        Provenance {
            command: "sweep".to_string(),
            seed: 42,
            trials: 100,
            threads: 8,
            schemes: vec!["WFD".to_string(), "CA-TPA".to_string()],
            params: "M=8 K=4".to_string(),
            git: "abc123-dirty".to_string(),
            build_profile: "release",
            timing: true,
        }
    }

    #[test]
    fn jsonl_has_header_and_all_counters_and_phases() {
        use crate::registry::{Counter, Phase};
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &provenance(), &Snapshot::capture()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"schema\":\"mcs-obs/1\""));
        assert!(lines[0].contains("\"kind\":\"header\""));
        assert!(lines[0].contains("\"git\":\"abc123-dirty\""));
        assert!(lines[0].contains("\"schemes\":[\"WFD\",\"CA-TPA\"]"));
        for c in Counter::ALL {
            assert!(
                text.contains(&format!("\"name\":\"{}\"", c.name())),
                "missing counter {}",
                c.name()
            );
        }
        for p in Phase::ALL {
            assert!(
                text.contains(&format!("\"name\":\"{}\"", p.name())),
                "missing phase {}",
                p.name()
            );
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn summary_renders_without_panicking() {
        let s = render_summary(&Snapshot::capture());
        assert!(s.starts_with("telemetry summary"));
    }
}
