//! RAII phase timing. [`span`] returns a guard that records the elapsed
//! nanoseconds into the phase's histogram when dropped — but only takes an
//! `Instant` at all when the runtime timing gate is on, so plain runs pay
//! one relaxed load per span site.

use std::time::Instant;

use crate::registry::{self, Phase};

/// Guard returned by [`span`]; records its lifetime on drop.
#[must_use = "a span records on drop — bind it to a variable for the region's lifetime"]
#[derive(Debug)]
pub struct PhaseSpan {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            registry::record_phase(self.phase, ns);
        }
    }
}

/// Start timing `phase`. When timing is off (or telemetry is compiled
/// out) the guard is inert.
#[inline]
pub fn span(phase: Phase) -> PhaseSpan {
    PhaseSpan { phase, start: registry::now_if_timing() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{set_timing, Snapshot, COMPILED};

    #[test]
    fn span_records_only_under_the_gate() {
        set_timing(false);
        let before = Snapshot::capture();
        drop(span(Phase::ContributionSort));
        let mid = Snapshot::capture();
        assert_eq!(mid.delta_since(&before).phase(Phase::ContributionSort).count, 0);

        set_timing(true);
        drop(span(Phase::ContributionSort));
        set_timing(false);
        let after = Snapshot::capture();
        let recorded = after.delta_since(&mid).phase(Phase::ContributionSort).count;
        assert_eq!(recorded, u64::from(COMPILED));
    }
}
