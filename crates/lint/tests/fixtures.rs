//! Fixture-based rule tests: each known-bad snippet under
//! `tests/fixtures/` is linted as if it were a library source file, and
//! the findings are asserted rule-by-rule. The fixtures live outside
//! `src/`, so the workspace walker never lints them for real.

use mcs_audit::Severity;
use mcs_lint::rules::standard_ids;
use mcs_lint::runner::{self, Outcome, DIRECTIVE_RULE};
use mcs_lint::{Baseline, Workspace};

/// Lint one fixture as `crates/fake/src/lib.rs` (a plain library file).
fn lint_fixture(src: &str) -> Outcome {
    let ws = Workspace::from_sources(&[("crates/fake/src/lib.rs", src)], &standard_ids());
    runner::run(&ws, &Baseline::default())
}

/// The error-severity rule ids of an outcome, sorted.
fn error_rules(out: &Outcome) -> Vec<&str> {
    let mut v: Vec<&str> = out
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.rule_id)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn stdout_fixture_flags_each_stdout_write() {
    let out = lint_fixture(include_str!("fixtures/stdout_bad.rs"));
    assert_eq!(
        error_rules(&out),
        vec!["stdout-purity"; 3],
        "println!, print!, io::stdout() — {}",
        out.render_text()
    );
}

#[test]
fn exact_fixture_flags_types_and_literals_but_not_tests() {
    let out = lint_fixture(include_str!("fixtures/exact_bad.rs"));
    assert_eq!(
        error_rules(&out),
        vec!["exact-float"; 3],
        "two f64 mentions and one float literal; the test module is exempt — {}",
        out.render_text()
    );
}

#[test]
fn hot_alloc_fixture_flags_tagged_region_only() {
    let out = lint_fixture(include_str!("fixtures/hot_alloc_bad.rs"));
    assert_eq!(
        error_rules(&out),
        vec!["hot-path-alloc"; 4],
        "vec!, .to_vec(), Vec::new, format! inside the tag; cold() is free — {}",
        out.render_text()
    );
}

#[test]
fn determinism_fixture_flags_hashmap_and_wall_clock() {
    let out = lint_fixture(include_str!("fixtures/determinism_bad.rs"));
    assert_eq!(
        error_rules(&out),
        vec!["determinism"; 4],
        "three HashMap mentions and one Instant::now — {}",
        out.render_text()
    );
}

#[test]
fn panics_fixture_flags_unwrap_empty_expect_and_macros() {
    let out = lint_fixture(include_str!("fixtures/panics_bad.rs"));
    assert_eq!(
        error_rules(&out),
        vec!["panic-policy"; 4],
        "unwrap, expect(\"\"), panic!, todo!; messaged expect and test unwrap pass — {}",
        out.render_text()
    );
}

#[test]
fn suppressed_fixture_is_clean_with_no_unused_allows() {
    let out = lint_fixture(include_str!("fixtures/suppressed_ok.rs"));
    assert!(out.is_clean(), "{}", out.render_text());
    assert_eq!(out.count(Severity::Warning), 0, "{}", out.render_text());
    assert_eq!(out.suppressed, 2);
}

#[test]
fn malformed_directives_error_and_do_not_suppress() {
    let out = lint_fixture(include_str!("fixtures/directive_bad.rs"));
    assert_eq!(
        error_rules(&out),
        vec![DIRECTIVE_RULE, DIRECTIVE_RULE, "stdout-purity"],
        "reasonless allow + typoed keyword, and the println still fires — {}",
        out.render_text()
    );
}

#[test]
fn binary_entry_points_are_exempt_from_panic_policy() {
    let src = include_str!("fixtures/panics_bad.rs");
    let ws = Workspace::from_sources(&[("crates/fake/src/main.rs", src)], &standard_ids());
    let out = runner::run(&ws, &Baseline::default());
    assert!(
        !out.diagnostics.iter().any(|d| d.rule_id == "panic-policy"),
        "main.rs may abort freely — {}",
        out.render_text()
    );
}

#[test]
fn counter_registry_cross_checks_usage_against_the_source() {
    let registry = "\
counters! {
    Used => \"used\",
    NeverHit => \"never_hit\",
}
phases! {
    ProbeBatch => \"probe_batch\",
}
";
    let user = "\
pub fn instrumented() {
    counter!(Counter::Used);
    counter!(Counter::Missing);
    let _t = span(Phase::ProbeBatch);
}
";
    let ws = Workspace::from_sources(
        &[("crates/obs/src/registry.rs", registry), ("crates/fake/src/lib.rs", user)],
        &standard_ids(),
    );
    let out = runner::run(&ws, &Baseline::default());
    let errors: Vec<&str> = out
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(errors.len(), 1, "{}", out.render_text());
    assert!(errors[0].contains("Counter::Missing"), "{}", out.render_text());
    let warnings: Vec<&str> = out
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(warnings.len(), 1, "{}", out.render_text());
    assert!(warnings[0].contains("NeverHit"), "{}", out.render_text());
}

#[test]
fn baseline_accepts_fixture_findings_end_to_end() {
    let src = include_str!("fixtures/stdout_bad.rs");
    let ws = Workspace::from_sources(&[("crates/fake/src/lib.rs", src)], &standard_ids());
    let unfiltered = runner::run(&ws, &Baseline::default());
    assert_eq!(unfiltered.count(Severity::Error), 3);

    let baseline = Baseline::parse(&Baseline::render(&unfiltered.diagnostics))
        .expect("rendered baselines always parse");
    let filtered = runner::run(&ws, &baseline);
    assert!(filtered.is_clean(), "{}", filtered.render_text());
    assert_eq!(filtered.baselined, 3);
    assert_eq!(filtered.count(Severity::Warning), 0, "no stale entries");
}
