//! The linter linting its own workspace: the tree must be clean.
//!
//! This is the test-suite mirror of the ci.sh gate — zero errors *and*
//! zero warnings (an unused allow or a dead counter fails here too), with
//! the checked-in baseline applied exactly as the CLI would apply it.

use std::path::Path;

use mcs_audit::Severity;
use mcs_lint::rules::standard_ids;
use mcs_lint::{runner, Baseline, Workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let ws = Workspace::load(root, &standard_ids()).expect("workspace sources load");
    assert!(ws.files.len() > 50, "walker found only {} files", ws.files.len());
    assert!(ws.ctx.has_registry, "mcs-obs registry must be discovered");

    let baseline = Baseline::load(&root.join("lint.baseline"))
        .expect("baseline readable")
        .expect("baseline well-formed");
    let out = runner::run(&ws, &baseline);
    assert_eq!(
        (out.count(Severity::Error), out.count(Severity::Warning)),
        (0, 0),
        "the tree must ship lint-clean:\n{}",
        out.render_text()
    );
}
