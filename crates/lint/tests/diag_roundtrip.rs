//! Satellite: the shared diagnostic schema round-trips through the
//! harness's JSON parser — `mcs-audit` and `mcs-lint` findings serialize
//! to the same shape, and `mcs-lint --json` output is machine-readable
//! with the repo's own parser (the same one ci.sh consumers would use).

use mcs_audit::{Diagnostic, Severity, Subject};
use mcs_harness::json::{self, JsonValue};
use mcs_lint::rules::standard_ids;
use mcs_lint::{runner, Baseline, Workspace};

fn parse(s: &str) -> JsonValue {
    json::parse(s).unwrap_or_else(|e| panic!("{e}: {s}"))
}

#[test]
fn source_diagnostic_round_trips() {
    let d = Diagnostic::error(
        "stdout-purity",
        Subject::source("crates/sim/src/core.rs", 42),
        "println! with \"quotes\" and\nnewline",
    );
    let v = parse(&d.to_json());
    assert_eq!(v.get("rule").and_then(JsonValue::as_str), Some("stdout-purity"));
    assert_eq!(v.get("severity").and_then(JsonValue::as_str), Some("error"));
    let subject = v.get("subject").expect("subject object");
    assert_eq!(subject.get("kind").and_then(JsonValue::as_str), Some("source"));
    assert_eq!(subject.get("file").and_then(JsonValue::as_str), Some("crates/sim/src/core.rs"));
    assert_eq!(subject.get("line").and_then(JsonValue::as_u64), Some(42));
    assert_eq!(
        v.get("message").and_then(JsonValue::as_str),
        Some("println! with \"quotes\" and\nnewline")
    );
}

#[test]
fn audit_subjects_share_the_same_schema() {
    use mcs_model::{CoreId, TaskId};
    for (d, kind) in [
        (Diagnostic::info("r", Subject::System, "m"), "system"),
        (Diagnostic::warning("r", Subject::Task(TaskId(3)), "m"), "task"),
        (Diagnostic::error("r", Subject::Core(CoreId(1)), "m"), "core"),
        (Diagnostic::error("r", Subject::source("a.rs", 1), "m"), "source"),
    ] {
        let v = parse(&d.to_json());
        assert_eq!(
            v.get("subject").and_then(|s| s.get("kind")).and_then(JsonValue::as_str),
            Some(kind)
        );
        assert_eq!(v.get("severity").and_then(JsonValue::as_str), Some(d.severity.label()));
    }
}

#[test]
fn lint_json_report_parses_with_the_harness_parser() {
    let ws = Workspace::from_sources(
        &[("crates/fake/src/lib.rs", "fn f() { println!(\"x\"); }")],
        &standard_ids(),
    );
    let out = runner::run(&ws, &Baseline::default());
    let v = parse(&out.render_json());
    assert_eq!(v.get("tool").and_then(JsonValue::as_str), Some("mcs-lint"));
    assert_eq!(v.get("files").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(v.get("errors").and_then(JsonValue::as_u64), Some(1));
    let diags = v.get("diagnostics").and_then(JsonValue::as_arr).expect("diagnostics array");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].get("rule").and_then(JsonValue::as_str), Some("stdout-purity"));
    assert_eq!(
        diags[0].get("subject").and_then(|s| s.get("line")).and_then(JsonValue::as_u64),
        Some(1)
    );
    let _ = Severity::Error; // schema shared with mcs-audit by construction
}
