//! Fixture: violations covered by well-formed `allow` directives.

pub fn quiet() {
    println!("ok"); // lint: allow(stdout-purity, fixture demonstrates a trailing allow)
}

// lint: allow(panic-policy, fixture demonstrates an item-spanning allow)
pub fn item_allowed(x: Option<u32>) -> u32 {
    match x {
        Some(v) => v,
        None => panic!("covered by the item allow"),
    }
}
