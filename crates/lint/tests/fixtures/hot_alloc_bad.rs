//! Fixture: allocation inside a `no_alloc`-tagged hot path.

// lint: no_alloc
pub fn hot(xs: &[u32], scratch: &mut Vec<u32>) -> String {
    let v = vec![1, 2, 3];
    let copied = xs.to_vec();
    let fresh: Vec<u32> = Vec::new();
    scratch.clear();
    scratch.extend(v.iter().chain(copied.iter()).chain(fresh.iter()));
    format!("{}", scratch.len())
}

pub fn cold(xs: &[u32]) -> Vec<u32> {
    xs.to_vec() // untagged: allocation is fine here
}
