//! Fixture: float contamination in a tagged exact-arithmetic module.

// lint: exact

pub fn approx(x: u64) -> f64 {
    x as f64 * 0.5
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_in_tests_are_fine() {
        assert!((0.5_f64).abs() > 0.0);
    }
}
